#!/usr/bin/env python3
"""Watch Set Dueling adapt CP_th to workload and NVM capacity.

Runs CP_SD on two very different mixes (mix6 contains xz17's
incompressible traffic, mix1 is compression-friendly) and then on an
artificially aged cache, printing the per-epoch winning threshold.
This is the mechanism behind Fig. 8: the best CP_th is not a constant.

Run:  python examples/set_dueling_adaptivity.py
"""

from collections import Counter

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments import aged_capacities, get_scale


def winners(scale, config, mix, capacities=None, epochs=10):
    workload = scale.workload(mix)
    sim = Simulation(config, make_policy("cp_sd"), workload)
    if capacities is not None:
        sim.hierarchy.llc.faultmap.load_capacities(capacities)
    epoch = config.dueling.epoch_cycles
    result = sim.run(cycles=epochs * epoch, warmup_cycles=0)
    return [e.winner_cpth for e in result.epochs]


def describe(label, history):
    counts = Counter(history)
    common = ", ".join(f"{cpth}:{n}" for cpth, n in counts.most_common())
    print(f"{label:34s} winners per epoch: {history}")
    print(f"{'':34s} histogram: {common}")


def main() -> None:
    scale = get_scale("smoke")
    config = scale.system()

    print("CP_th candidates:", config.dueling.cpth_candidates, "\n")
    describe("mix1 (compressible, 100% cap)", winners(scale, config, "mix1"))
    describe("mix6 (xz17/lbm17, 100% cap)", winners(scale, config, "mix6"))

    worn = aged_capacities(config, 0.6)
    describe("mix1 (aged to 60% capacity)",
             winners(scale, config, "mix1", capacities=worn))

    print("\nExpected: the winner drifts to smaller CP_th values on the")
    print("aged cache (large frames become scarce) and differs per mix.")


if __name__ == "__main__":
    main()
