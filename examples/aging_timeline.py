#!/usr/bin/env python3
"""Watch an NVM part wear out: capacity histogram over a forecast.

Runs the forecasting procedure for BH_CP (compression + byte-disabling,
NVM-unaware) and prints, at each capacity milestone, the distribution
of per-frame capacities — making Sec. III-B's central point visible:
under byte-disabling, frames *degrade gradually* through partially
usable states instead of dying outright, and compression keeps those
partial frames in service.

Run:  python examples/aging_timeline.py
"""

import numpy as np

from repro.core import make_policy
from repro.experiments import aged_capacities, get_scale
from repro.forecast import AgingModel, SECONDS_PER_MONTH

_BUCKETS = [(64, 64, "full"), (58, 63, "63-58B"), (37, 57, "57-38B"),
            (3, 36, "36-3B"), (0, 2, "dead")]


def histogram(caps: np.ndarray) -> str:
    total = caps.size
    parts = []
    for lo, hi, label in _BUCKETS:
        share = ((caps >= lo) & (caps <= hi)).sum() / total
        parts.append(f"{label}:{share:5.1%}")
    return "  ".join(parts)


def main() -> None:
    scale = get_scale("smoke")
    config = scale.system()
    geom = config.llc

    aging = AgingModel(config.endurance, geom.n_sets, geom.nvm_ways)
    rates = np.full((geom.n_sets, geom.nvm_ways), 1.0)  # uniform wear

    print("NVM frame-capacity distribution as the part wears")
    print(f"({geom.n_sets * geom.nvm_ways} frames, endurance mean "
          f"{config.endurance.mean:g}, cv {config.endurance.cv})\n")
    print(f"{'capacity':>9}  distribution")
    for target in (1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5):
        if target < 1.0:
            dt = aging.time_to_capacity(rates, target, max_seconds=1e18)
            aging.advance(rates, dt)
        caps = aging.capacities()
        print(f"{aging.effective_capacity():8.1%}   {histogram(caps)}")

    print("\nKey observation: between 100% and 50% effective capacity the")
    print("frames pass through partially-usable states (>37B can still")
    print("hold LCR blocks, >3B still holds a zero block) — the capacity")
    print("a frame-disabled design would have thrown away entirely.")

    frame_caps = aged_capacities(config, 0.8, granularity="frame")
    byte_caps = aged_capacities(config, 0.8)
    print(f"\nAt equal byte wear, usable frames: "
          f"byte-disabling {np.count_nonzero(byte_caps) / byte_caps.size:.1%} "
          f"vs frame-disabling {np.count_nonzero(frame_caps) / frame_caps.size:.1%}")


if __name__ == "__main__":
    main()
