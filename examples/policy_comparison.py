#!/usr/bin/env python3
"""Compare every insertion policy on the same reference stream.

Replays one mix against all Table III policies (plus the SRAM bounds)
and prints a ranking by IPC and by NVM write pressure — the two axes
the paper trades off.  Because each run replays the same materialised
traces with the same per-block compressibility, differences are purely
the policies'.

Run:  python examples/policy_comparison.py [mix-name]
"""

import sys

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments import format_records, get_scale


def run_policy(scale, config, workload, policy):
    sim = Simulation(config, policy, workload)
    epoch = config.dueling.epoch_cycles
    return sim.run(cycles=14 * epoch, warmup_cycles=10 * epoch)


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix1"
    scale = get_scale("smoke")
    config = scale.system()
    workload = scale.workload(mix)

    line_up = [
        ("bh", make_policy("bh")),
        ("bh_cp", make_policy("bh_cp")),
        ("lhybrid", make_policy("lhybrid")),
        ("tap", make_policy("tap")),
        ("ca cpth=37", make_policy("ca", cpth=37)),
        ("ca_rwr cpth=37", make_policy("ca_rwr", cpth=37)),
        ("cp_sd", make_policy("cp_sd")),
        ("cp_sd_th8", make_policy("cp_sd_th", th=8.0)),
    ]

    records = []
    baseline = None
    for label, policy in line_up:
        result = run_policy(scale, config, workload, policy)
        llc = result.stats.llc
        if baseline is None:
            baseline = (result.mean_ipc, max(1, llc.nvm_bytes_written))
        records.append(
            {
                "policy": label,
                "ipc": result.mean_ipc,
                "ipc_vs_bh": result.mean_ipc / baseline[0],
                "hit_rate": llc.hit_rate,
                "nvm_bytes": llc.nvm_bytes_written,
                "nvm_bytes_vs_bh": llc.nvm_bytes_written / baseline[1],
            }
        )

    # SRAM bounds bracket the hybrids
    for label, ways in (("16w SRAM (upper)", 16), ("4w SRAM (lower)", 4)):
        bound_cfg = scale.system(sram_ways=ways, nvm_ways=0)
        result = run_policy(scale, bound_cfg, workload, make_policy("sram"))
        records.append(
            {
                "policy": label,
                "ipc": result.mean_ipc,
                "ipc_vs_bh": result.mean_ipc / baseline[0],
                "hit_rate": result.stats.llc.hit_rate,
                "nvm_bytes": 0,
                "nvm_bytes_vs_bh": 0.0,
            }
        )

    print(format_records(records, f"Policy comparison on {mix}"))
    print("\nReading the table: the paper's thesis is that cp_sd keeps")
    print("ipc_vs_bh near 1.0 while nvm_bytes_vs_bh drops far below the")
    print("naive baseline; lhybrid/tap buy lifetime with lost IPC.")


if __name__ == "__main__":
    main()
