#!/usr/bin/env python3
"""Quickstart: simulate one SPEC mix on the hybrid LLC under CP_SD.

Builds the Table IV system (scaled to laptop size), runs the mix1
workload under the paper's CP_SD insertion policy, and prints the
headline statistics: IPC, LLC hit rate, where hits landed (SRAM vs
NVM), and how many bytes the NVM part absorbed.

Run:  python examples/quickstart.py
"""

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments import get_scale


def main() -> None:
    scale = get_scale("smoke")  # laptop-sized preset (REPRO_SCALE also works)
    config = scale.system()
    workload = scale.workload("mix1")

    policy = make_policy("cp_sd")
    simulation = Simulation(config, policy, workload)

    epoch = config.dueling.epoch_cycles
    result = simulation.run(cycles=12 * epoch, warmup_cycles=6 * epoch)

    llc = result.stats.llc
    print(f"simulated {result.cycles / 1e6:.1f}M cycles "
          f"({result.seconds * 1e3:.2f} ms of machine time)")
    print(f"mean IPC            : {result.mean_ipc:.3f}")
    print(f"LLC hit rate        : {llc.hit_rate:.3f} "
          f"({llc.hits} hits / {llc.accesses} accesses)")
    print(f"hits in SRAM / NVM  : {llc.hits_sram} / {llc.hits_nvm}")
    print(f"LLC fills SRAM/NVM  : {llc.fills_sram} / {llc.fills_nvm}")
    print(f"NVM bytes written   : {llc.nvm_bytes_written}")
    print(f"SRAM->NVM migrations: {llc.migrations_to_nvm}")
    print(f"CP_th per epoch     : "
          f"{[e.winner_cpth for e in result.epochs if e.after_warmup]}")


if __name__ == "__main__":
    main()
