#!/usr/bin/env python3
"""Explore the modified-BDI compressor and the fault-tolerant write path.

Walks one cache block end to end through the paper's Sec. III machinery:

1. compress a 64-byte block with modified BDI (Table I);
2. build the extended compressed block (CB + CE + SECDED);
3. scatter it into a partially faulty NVM frame with the block
   rearrangement circuitry (Fig. 5c), honouring the wear-leveling
   counter;
4. gather + decompress it back (Fig. 5d) and check it round-trips.

Run:  python examples/compression_explorer.py
"""

import random

import numpy as np

from repro.compression import DEFAULT_COMPRESSOR, PatternLibrary, classify
from repro.nvm import NVM_DATA_CODE, GlobalWearCounter, gather, scatter


def show_block(label: str, block: bytes) -> None:
    result = DEFAULT_COMPRESSOR.compress(block)
    print(f"{label:28s} -> {result.encoding.name:12s} "
          f"{result.size:2d} B ({classify(result.size)}), "
          f"ECB {result.ecb_size} B")


def main() -> None:
    rng = random.Random(2023)
    library = PatternLibrary(seed=7)

    print("== modified BDI on representative blocks ==")
    show_block("all zeros", bytes(64))
    show_block("repeated 8-byte value", (0xABCD).to_bytes(8, "little") * 8)
    for size in (16, 30, 37, 44, 58):
        show_block(f"synthetic size-{size} block", library.block_for_size(size))
    show_block("random (incompressible)", bytes(rng.getrandbits(8) for _ in range(64)))

    print("\n== fault-tolerant write path (Fig. 5) ==")
    block = library.block_for_size(30)
    result = DEFAULT_COMPRESSOR.compress(block)
    print(f"block compresses to {result.size} B with {result.encoding.name}")

    # SECDED over CE + payload (code (527,516), Sec. III-B)
    data_bits = int.from_bytes(result.payload, "little") << 4 | result.encoding.ce
    codeword = NVM_DATA_CODE.encode(data_bits)
    print(f"SECDED(527,516) codeword: {NVM_DATA_CODE.codeword_bits} bits")

    # a frame that has already lost 20 bytes to wear
    live_mask = np.ones(64, dtype=bool)
    dead = rng.sample(range(64), 20)
    live_mask[dead] = False
    print(f"target frame: {live_mask.sum()} live bytes (20 faulty)")

    counter = GlobalWearCounter(advance_period_writes=4)
    ecb = result.payload + bytes([result.encoding.ce, 0])  # payload + CE + pad
    for write in range(3):
        start = counter.start_position()
        recb, write_mask = scatter(ecb, live_mask, start)
        back = gather(bytes(recb), live_mask, start, len(ecb))
        assert back == ecb, "scatter/gather must invert"
        print(f"write {write}: wear-level start={start:2d}, "
              f"{int(write_mask.sum())} bytes written, round-trip OK")
        counter.tick(4)

    decompressed = DEFAULT_COMPRESSOR.decompress(result)
    assert decompressed == block
    print("decompression matches the original block: OK")

    # the same frame cannot hold an incompressible block
    print(f"\n64-B uncompressed block fits this frame? "
          f"{64 <= int(live_mask.sum())} (fit-LRU would skip it)")


if __name__ == "__main__":
    main()
