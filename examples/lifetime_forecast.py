#!/usr/bin/env python3
"""Forecast the IPC/capacity evolution of a hybrid LLC over its life.

Reproduces a miniature Fig. 1: runs the forecasting procedure for BH
and CP_SD on one mix and prints the capacity and IPC trajectory until
the NVM part reaches 50 % effective capacity, plus the lifetime ratio.

Run:  python examples/lifetime_forecast.py
"""

from repro.analysis import ascii_chart, resample_capacity, resample_ipc, time_grid
from repro.core import make_policy
from repro.experiments import format_records, get_scale
from repro.forecast import SECONDS_PER_MONTH, Forecaster


def forecast(scale, config, workload, policy):
    epoch = config.dueling.epoch_cycles
    return Forecaster(
        config,
        policy,
        workload,
        phase_cycles=2 * epoch,
        initial_warmup_cycles=8 * epoch,
        rewarm_cycles=epoch,
        capacity_step=0.1,
        max_steps=8,
    ).run()


def main() -> None:
    scale = get_scale("smoke")
    config = scale.system()
    workload = scale.workload("mix1")

    results = {}
    for name in ("bh", "cp_sd"):
        results[name] = forecast(scale, config, workload, make_policy(name))

    for name, result in results.items():
        rows = [
            {
                "months": p.time_months,
                "capacity": p.capacity_fraction,
                "ipc": p.ipc,
                "hit_rate": p.hit_rate,
            }
            for p in result.points
        ]
        print(format_records(rows, f"Forecast for {name}"))
        print()

    grid = time_grid(list(results.values()), points=48)
    print("Normalised IPC over time (Fig. 1 shape):")
    print(ascii_chart([resample_ipc(r, grid) for r in results.values()]))
    print("\nNVM effective capacity over time:")
    print(ascii_chart([resample_capacity(r, grid) for r in results.values()]))
    print()

    bh_life = results["bh"].lifetime_or_horizon_seconds()
    sd_life = results["cp_sd"].lifetime_or_horizon_seconds()
    print(f"BH    lifetime to 50% capacity: {bh_life / SECONDS_PER_MONTH:8.3f} months")
    print(f"CP_SD lifetime to 50% capacity: {sd_life / SECONDS_PER_MONTH:8.3f} months")
    print(f"CP_SD / BH lifetime ratio     : {sd_life / bh_life:8.1f}x")
    print("\n(Absolute months shrink with the scaled-down LLC; the ratio is")
    print("the paper's reported quantity — Fig. 1 shows ~17x for CP_SD.)")


if __name__ == "__main__":
    main()
