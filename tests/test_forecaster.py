"""Tests for the forecasting procedure (simulate/predict alternation)."""

import pytest

from repro.core import make_policy
from repro.experiments.common import SMOKE
from repro.forecast import ForecastPoint, ForecastResult, Forecaster, SECONDS_PER_MONTH


def run_forecast(policy_name="bh", mix="mix1", max_steps=5, **kw):
    scale = SMOKE
    config = scale.system()
    workload = scale.workload(mix)
    epoch = config.dueling.epoch_cycles
    forecaster = Forecaster(
        config,
        make_policy(policy_name, **kw),
        workload,
        phase_cycles=2 * epoch,
        initial_warmup_cycles=4 * epoch,
        rewarm_cycles=epoch * 0.5,
        capacity_step=0.15,
        max_steps=max_steps,
    )
    return forecaster.run()


def test_forecast_points_well_formed():
    result = run_forecast()
    assert result.policy == "bh"
    assert result.points
    assert result.points[0].time_seconds == 0.0
    assert result.points[0].capacity_fraction == 1.0
    times = [p.time_seconds for p in result.points]
    caps = [p.capacity_fraction for p in result.points]
    assert times == sorted(times)
    assert all(a >= b for a, b in zip(caps, caps[1:]))
    assert all(p.ipc > 0 for p in result.points)
    assert result.horizon_seconds > 0


def test_bh_reaches_stop_quickly():
    result = run_forecast("bh", max_steps=8)
    assert result.reached_stop
    assert result.lifetime_seconds(0.5) is not None
    assert result.lifetime_months(0.5) == pytest.approx(
        result.lifetime_seconds(0.5) / SECONDS_PER_MONTH
    )


def test_capacity_loss_degrades_performance():
    """IPC at 50-60 % capacity must not exceed initial IPC by much."""
    result = run_forecast("bh", max_steps=8)
    assert result.points[-1].ipc <= result.initial_ipc * 1.05


# ----------------------------------------------------------------------
# ForecastResult helpers on synthetic data
# ----------------------------------------------------------------------
def synthetic_result():
    points = [
        ForecastPoint(0.0, 1.0, 2.0, 0.8, 100.0),
        ForecastPoint(100.0, 0.8, 1.9, 0.78, 100.0),
        ForecastPoint(200.0, 0.6, 1.7, 0.7, 100.0),
        ForecastPoint(300.0, 0.4, 1.2, 0.5, 100.0),
    ]
    return ForecastResult(policy="x", points=points, horizon_seconds=300.0)


def test_lifetime_interpolation():
    r = synthetic_result()
    # capacity crosses 0.5 midway between t=200 (0.6) and t=300 (0.4)
    assert r.lifetime_seconds(0.5) == pytest.approx(250.0)
    assert r.lifetime_seconds(0.8) == pytest.approx(100.0)
    assert r.lifetime_seconds(0.1) is None
    assert r.lifetime_or_horizon_seconds(0.1) == 300.0


def test_ipc_at_step_interpolation():
    r = synthetic_result()
    assert r.ipc_at(0.0) == 2.0
    assert r.ipc_at(150.0) == 1.9
    assert r.ipc_at(1e9) == 1.2


def test_mean_ipc_over_window():
    r = synthetic_result()
    # first 200 s: 100 s at 2.0 + 100 s at 1.9
    assert r.mean_ipc_over(200.0) == pytest.approx(1.95)
    assert r.mean_ipc_over(0.0) == 0.0


def test_empty_result_is_safe():
    r = ForecastResult(policy="none")
    assert r.initial_ipc == 0.0
    assert r.lifetime_seconds() is None
    assert r.ipc_at(0.0) == 0.0
    assert r.mean_ipc_over(10.0) == 0.0


def test_fault_reconciliation_runs():
    """A byte-disabling forecast must keep resident blocks consistent
    with shrinking frame capacities."""
    result = run_forecast("cp_sd", max_steps=6)
    assert len(result.points) >= 2
