"""Integration tests: campaign lifecycle, resume semantics, chaos.

The acceptance bar (ISSUE 1): a campaign interrupted mid-flight
resumes from its checkpoint and produces results *byte-identical* to
an uninterrupted run, skipping all verified-complete tasks; chaos
mode at p=0.3 completes a smoke campaign with zero lost results.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness import (
    COMPLETE,
    FAILED,
    PENDING,
    CampaignManifest,
    CampaignSettings,
    ChaosConfig,
    load_result,
    run_campaign,
)

FAST = CampaignSettings(jobs=2, task_timeout=60, retries=2, backoff_base=0.01)


def result_bytes(directory) -> dict:
    """Map result filename -> raw bytes for byte-identity checks."""
    return {
        p.name: p.read_bytes() for p in (Path(directory) / "results").glob("*.json")
    }


@pytest.fixture(scope="module")
def reference_campaign(tmp_path_factory):
    """One uninterrupted `tables` campaign all tests compare against."""
    directory = tmp_path_factory.mktemp("campaigns") / "reference"
    report = run_campaign(
        directory, scale="smoke", experiments=["tables"], settings=FAST
    )
    assert report.ok and report.completed == 5
    return directory


def test_campaign_completes_and_checkpoints(reference_campaign):
    manifest = CampaignManifest.load(reference_campaign)
    assert len(manifest.tasks) == 5
    assert all(e.status == COMPLETE for e in manifest.tasks.values())
    for task_id, entry in manifest.tasks.items():
        envelope = json.loads(
            (reference_campaign / entry.result).read_text()
        )
        # Results are checksummed repro-blob/1 envelopes on disk.
        assert envelope["format"] == "repro-blob/1"
        assert envelope["schema"] == "repro-task-result/1"
        payload = load_result(reference_campaign / entry.result)
        assert payload["task_id"] == task_id
        assert payload["status"] == "ok"
        assert manifest.verified_complete(task_id)


def test_interrupted_campaign_marks_incomplete_and_resumes_identically(
    tmp_path, reference_campaign
):
    directory = tmp_path / "interrupted"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=FAST,
        stop_after=2,  # die mid-flight after two completions
    )
    assert report.interrupted and not report.ok
    assert report.completed >= 2

    manifest = CampaignManifest.load(directory)
    incomplete = manifest.incomplete_tasks()
    assert incomplete, "interruption must leave tasks marked incomplete"
    for task_id in incomplete:
        assert manifest.tasks[task_id].status == PENDING
        assert not manifest.verified_complete(task_id)

    resumed = run_campaign(directory, resume=True, settings=FAST)
    assert resumed.ok
    assert resumed.skipped == report.completed, "verified tasks must be skipped"
    assert resumed.completed == 5 - report.completed

    assert result_bytes(directory) == result_bytes(reference_campaign)


def test_resume_after_chaos_crashes_is_byte_identical(
    tmp_path, reference_campaign
):
    # Chaos crashes with a zero retry budget permanently fail ~half of
    # the tasks (deterministically, given the seed) ...
    directory = tmp_path / "chaotic"
    chaos = ChaosConfig(p=0.6, kinds=("crash",), seed=5)
    crashed = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=0, backoff_base=0.01, chaos=chaos
        ),
    )
    assert not crashed.ok and crashed.failed

    manifest = CampaignManifest.load(directory)
    failed = [t for t, e in manifest.tasks.items() if e.status == FAILED]
    assert len(failed) == len(crashed.failed)
    for task_id in failed:
        error = manifest.tasks[task_id].error
        assert error["kind"] == "crash"
    assert (directory / "failures.json").exists()

    # ... and a chaos-free resume completes exactly the failed ones,
    # reproducing the uninterrupted run byte for byte.
    resumed = run_campaign(directory, resume=True, settings=FAST)
    assert resumed.ok
    assert resumed.completed == len(failed)
    assert resumed.skipped == 5 - len(failed)
    assert result_bytes(directory) == result_bytes(reference_campaign)
    assert not (directory / "failures.json").exists()


def test_resume_reruns_corrupted_result(tmp_path, reference_campaign):
    directory = tmp_path / "bitrot"
    report = run_campaign(
        directory, scale="smoke", experiments=["tables"], settings=FAST
    )
    assert report.ok

    # Corrupt one completed result behind the manifest's back.
    victim = sorted((directory / "results").glob("*.json"))[0]
    victim.write_bytes(b'{"status": "ok", "task_id": "trunc')

    resumed = run_campaign(directory, resume=True, settings=FAST)
    assert resumed.ok
    assert resumed.completed == 1, "only the corrupt task re-runs"
    assert resumed.skipped == 4
    assert result_bytes(directory) == result_bytes(reference_campaign)


def test_worker_exception_is_captured_in_failure_report(tmp_path):
    # "table99" passes enumeration only if injected directly; poke the
    # manifest path by running a unit that raises inside the worker.
    from repro.experiments.campaign_tasks import CampaignTask
    from repro.harness.scheduler import CampaignRunner

    directory = tmp_path / "broken"
    runner = CampaignRunner(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=1, task_timeout=60, retries=1, backoff_base=0.01
        ),
    )
    # Sabotage one enumerated unit so the worker raises KeyError.
    import repro.experiments.campaign_tasks as campaign_tasks

    original = campaign_tasks.enumerate_campaign_tasks

    def sabotaged(experiments, scale):
        tasks = original(experiments, scale)
        tasks[0] = CampaignTask("tables", {"table": "table99"})
        return tasks

    import repro.harness.scheduler as scheduler_module

    old = scheduler_module.enumerate_campaign_tasks
    scheduler_module.enumerate_campaign_tasks = sabotaged
    try:
        report = runner.run()
    finally:
        scheduler_module.enumerate_campaign_tasks = old

    assert len(report.failed) == 1
    failure = report.failed[0].failures[-1]
    assert failure.kind == "error"
    assert "KeyError" in (failure.traceback or "")
    manifest = CampaignManifest.load(directory)
    entry = manifest.tasks["tables/table=table99"]
    assert entry.status == FAILED
    assert "KeyError" in entry.error["traceback"]
    failures = json.loads((directory / "failures.json").read_text())
    assert failures["failed_tasks"][0]["task_id"] == "tables/table=table99"


def test_isolated_mode_is_byte_identical_to_pool(tmp_path, reference_campaign):
    """--isolate-tasks (one process per attempt) and the default
    persistent pool must produce the same campaign bytes."""
    directory = tmp_path / "isolated"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=2, backoff_base=0.01,
            isolate_tasks=True,
        ),
    )
    assert report.ok
    assert result_bytes(directory) == result_bytes(reference_campaign)
    # both modes record a duration per completed task
    manifest = CampaignManifest.load(directory)
    assert set(report.durations) == set(manifest.tasks)
    assert all(seconds > 0 for seconds in report.durations.values())


def test_pool_worker_crash_loses_nothing(tmp_path, reference_campaign):
    """Chaos kills persistent workers mid-batch; the scheduler must
    respawn them and finish with results byte-identical to a calm run
    — no task lost, none duplicated."""
    directory = tmp_path / "pool_crash"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=8, backoff_base=0.01,
            chaos=ChaosConfig(p=0.5, kinds=("crash",), seed=9),
        ),
    )
    assert report.ok
    assert report.worker_respawns > 0, "the chaos seed must kill workers"
    assert result_bytes(directory) == result_bytes(reference_campaign)
    manifest = CampaignManifest.load(directory)
    assert set(report.durations) == set(manifest.tasks)


def test_pool_corrupt_results_are_caught_and_retried(
    tmp_path, reference_campaign
):
    """A pool worker reporting success over a torn result must be
    caught by verification, not trusted."""
    directory = tmp_path / "pool_corrupt"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=8, backoff_base=0.01,
            chaos=ChaosConfig(p=0.5, kinds=("corrupt",), seed=3),
        ),
    )
    assert report.ok
    assert report.retried_attempts > 0, "the chaos seed must tear results"
    assert result_bytes(directory) == result_bytes(reference_campaign)


def test_disk_fault_chaos_is_byte_identical_and_quarantines(
    tmp_path, reference_campaign
):
    """Disk-level chaos (torn result writes, bit flips, ENOSPC) inside
    the workers: every defect must be detected — never served — the
    campaign must lose nothing, the final bytes must match a fault-free
    run, and the corrupt artefacts must sit in quarantine/ with
    structured reason records."""
    from repro.fsio.quarantine import load_reason

    directory = tmp_path / "disk_chaos"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=8, backoff_base=0.01,
            chaos=ChaosConfig(
                p=0.5, kinds=("disk-torn", "disk-flip", "disk-enospc"),
                seed=4,
            ),
        ),
    )
    assert report.ok, [f.task_id for f in report.failed]
    assert report.retried_attempts > 0, "the chaos seed must inject faults"
    assert result_bytes(directory) == result_bytes(reference_campaign)

    # Torn/flipped results were scrubbed into quarantine with evidence.
    quarantine = directory / "quarantine"
    assert quarantine.is_dir()
    victims = [
        p for p in quarantine.iterdir()
        if not p.name.endswith(".reason.json")
    ]
    assert victims, "disk faults must leave quarantined artefacts"
    for victim in victims:
        reason = load_reason(quarantine / f"{victim.name}.reason.json")
        assert reason is not None
        assert reason["category"] == "campaign-result"
        assert reason["quarantined_as"] == victim.name
        assert reason["reason"]

    # The campaign directory passes a post-hoc integrity audit.
    from repro.fsio.doctor import run_doctor

    audit = run_doctor([directory])
    assert audit.ok, audit.summary()


def test_pool_batched_dispatch_is_byte_identical(tmp_path, reference_campaign):
    directory = tmp_path / "batched"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=1, task_timeout=60, retries=0, backoff_base=0.01,
            batch_size=4,
        ),
    )
    assert report.ok
    assert result_bytes(directory) == result_bytes(reference_campaign)


def test_smoke_campaign_with_chaos_loses_nothing(tmp_path, capsys):
    """Tier-1 acceptance: chaos at p=0.3 with crash/timeout/corrupt on a
    two-experiment smoke campaign completes with zero lost tasks."""
    directory = tmp_path / "chaos_smoke"
    rc = main(
        [
            "campaign",
            "--scale", "smoke",
            "--out", str(directory),
            "--experiments", "tables,fig2",
            "--chaos", "p=0.3,kinds=crash,timeout,corrupt",
            "--retries", "8",
            "--timeout", "10",
            "--backoff", "0.05",
            "--jobs", "4",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "campaign OK" in out

    manifest = CampaignManifest.load(directory)
    assert len(manifest.tasks) == 25  # 5 tables + 20 apps
    lost = [t for t, e in manifest.tasks.items() if e.status != COMPLETE]
    assert lost == []
    for task_id in manifest.tasks:
        assert manifest.verified_complete(task_id)
