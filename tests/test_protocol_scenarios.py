"""Scripted protocol walkthroughs: exact expected behaviour, step by step.

Each scenario drives the full hierarchy through a hand-written access
sequence and asserts the precise intermediate states the paper's
Sec. III/IV machinery must produce — these are the executable version
of the paper's prose examples.
"""

import pytest

from repro.cache.block import ReuseClass
from repro.cache.cacheset import NVM, SRAM
from repro.cache.hierarchy import Level, MemoryHierarchy
from repro.config import CacheGeometry, CoreConfig, HybridGeometry, SystemConfig
from repro.core import make_policy


def build(policy_name, size=30, l1_ways=1, l1_sets=1, l2_ways=2, l2_sets=1,
          llc_sets=1, sram=2, nvm=4, **policy_kw):
    """A deliberately tiny hierarchy so evictions are scriptable."""
    config = SystemConfig(
        cores=CoreConfig(n_cores=2),
        l1=CacheGeometry(l1_sets * l1_ways * 64, l1_ways),
        l2=CacheGeometry(l2_sets * l2_ways * 64, l2_ways),
        llc=HybridGeometry(n_sets=llc_sets, sram_ways=sram, nvm_ways=nvm,
                           n_banks=1),
    )
    from repro.compression.encodings import ecb_size

    policy = make_policy(policy_name, **policy_kw)
    size_fn = (lambda addr: (size, ecb_size(size))) if policy.compressed else None
    return MemoryHierarchy(config, policy, size_fn=size_fn)


def part_of(h, addr):
    cs = h.llc.set_of(addr)
    way = cs.find(addr)
    return None if way is None else cs.part_of(way)


# ----------------------------------------------------------------------
# Sec. III-A: the non-inclusive, mostly-exclusive flow
# ----------------------------------------------------------------------
def test_block_journey_memory_to_llc_and_back():
    """A read block travels mem -> L1/L2 -> (L2 evict) -> LLC -> L2."""
    h = build("ca_rwr", size=30)
    # A: miss everywhere; fills L1+L2, NOT the LLC
    assert h.access(0, 0xA, False).level == Level.MEMORY
    assert part_of(h, 0xA) is None
    # B, C: push A out of the 2-way L2 (L1 is 1-way so L2 holds A)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)
    # A's L2 eviction filled the LLC; compressed 30 <= 58 -> NVM
    assert part_of(h, 0xA) == NVM
    # re-read A: LLC GetS hit, copy stays, block now read-reused
    assert h.access(0, 0xA, False).level == Level.LLC_NVM
    assert part_of(h, 0xA) == NVM
    assert h.meta.get(0xA).reuse is ReuseClass.READ


def test_getx_invalidate_on_hit_then_dirty_return():
    """Sec. III-A: a write-permission hit invalidates the LLC copy;
    the dirty block is written back into the LLC on its next L2 exit."""
    h = build("ca_rwr", size=30)
    h.access(0, 0xA, False)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)            # A now in LLC (NVM)
    assert part_of(h, 0xA) == NVM
    h.access(0, 0xA, True)             # GetX hit -> invalidate
    assert part_of(h, 0xA) is None
    assert h.meta.get(0xA).reuse is ReuseClass.WRITE
    # force A's dirty eviction from L2: it must come back as a
    # write-reused block and therefore land in SRAM (Table II)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)
    assert part_of(h, 0xA) == SRAM
    cs = h.llc.set_of(0xA)
    assert cs.dirty[cs.find(0xA)]


def test_store_to_l1_resident_clean_line_upgrades():
    h = build("ca_rwr", size=30)
    h.access(0, 0xA, False)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)            # A in LLC
    h.access(0, 0xA, False)            # A back in L1 (clean), LLC copy kept
    assert part_of(h, 0xA) == NVM
    h.access(0, 0xA, True)             # store hits clean L1 line
    assert part_of(h, 0xA) is None     # upgrade invalidated the LLC copy
    assert h.llc.stats.upgrade_hits == 1


# ----------------------------------------------------------------------
# Sec. IV-B: CA_RWR migration mechanics
# ----------------------------------------------------------------------
def test_read_reused_sram_victim_migrates_to_nvm():
    h = build("ca_rwr", size=64)  # incompressible -> SRAM when non-reused
    # A becomes resident in SRAM (big, no reuse)
    h.access(0, 0xA, False)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)
    assert part_of(h, 0xA) == SRAM
    # hit A -> read-reused; stays in SRAM until replaced
    h.access(0, 0xA, False)
    assert h.meta.get(0xA).reuse is ReuseClass.READ
    assert part_of(h, 0xA) == SRAM
    # flood SRAM with more big blocks until A is the LRU victim
    for addr in (0xD, 0xE, 0xF, 0x10, 0x11, 0x12):
        h.access(0, addr, False)
    # A must have been migrated into the NVM part, not dropped
    assert part_of(h, 0xA) == NVM
    assert h.llc.stats.migrations_to_nvm >= 1


# ----------------------------------------------------------------------
# LHybrid: loop-block detection and SRAM replacement preference
# ----------------------------------------------------------------------
def test_lhybrid_loop_block_lifecycle():
    h = build("lhybrid")
    # A enters the hierarchy, gets evicted to LLC as NLB -> SRAM
    h.access(0, 0xA, False)
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)
    assert part_of(h, 0xA) == SRAM
    # clean read hit -> tagged LB
    h.access(0, 0xA, False)
    assert h.meta.get(0xA).is_loop_block
    # on the next SRAM replacement, the MRU LB (A) is migrated to NVM
    for addr in (0xD, 0xE, 0xF, 0x10, 0x11, 0x12):
        h.access(0, addr, False)
    assert part_of(h, 0xA) == NVM


def test_lhybrid_dirty_blocks_never_tagged_lb():
    h = build("lhybrid")
    h.access(0, 0xA, True)             # dirty from the start
    h.access(0, 0xB, False)
    h.access(0, 0xC, False)            # A evicted dirty -> LLC SRAM
    assert part_of(h, 0xA) == SRAM
    h.access(0, 0xA, False)            # hit on a dirty copy
    assert not h.meta.get(0xA).is_loop_block
    assert h.meta.get(0xA).reuse is ReuseClass.WRITE


# ----------------------------------------------------------------------
# TAP: thrashing qualification
# ----------------------------------------------------------------------
def test_tap_requires_repeated_hits_before_nvm():
    h = build("tap", hit_threshold=1)
    tap = h.llc.policy

    def cycle(addr):
        h.access(0, addr, False)
        h.access(0, 0xB0, False)
        h.access(0, 0xC0, False)

    cycle(0xA)                         # A -> LLC (SRAM: unqualified)
    assert part_of(h, 0xA) == SRAM
    h.access(0, 0xA, False)            # first LLC hit (count 1)
    assert not tap.is_thrashing(0xA)
    h.access(0, 0xB0, False)
    h.access(0, 0xC0, False)           # A back out of L2... still in LLC
    h.access(0, 0xA, False)            # second LLC hit (count 2 > 1)
    assert tap.is_thrashing(0xA)


# ----------------------------------------------------------------------
# BH: global LRU is technology-blind
# ----------------------------------------------------------------------
def test_bh_fills_all_ways_in_lru_order():
    h = build("bh", sram=1, nvm=2, l2_ways=2)
    # touch enough distinct blocks to fill all 3 LLC ways via L2 spills
    for addr in range(0xA, 0xA + 8):
        h.access(0, addr, False)
    cs = h.llc.sets[0]
    assert cs.occupancy(SRAM) == 1
    assert cs.occupancy(NVM) == 2
    assert h.llc.stats.evictions > 0
