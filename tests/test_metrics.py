"""Metrics spine tests: registry metadata, RunRecord round-trips,
exporter equivalence and the committed-artefact schema gate.

The contract: one versioned RunRecord is the result shape of every
producing layer; every metric it carries is declared (name, unit,
layer, doc, aggregation) in the registry; serialisation round-trips
exactly; unknown versions/fields/metrics are *loud* SchemaErrors; and
the exporters reproduce the numbers the pre-spine consumers printed.
"""

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# Import every registering module so the registry is complete.
import repro  # noqa: F401
import repro.bench.runner  # noqa: F401  (bench.*)
import repro.experiments.compressibility  # noqa: F401  (fig2.*)
import repro.experiments.lifetime  # noqa: F401  (forecast.*)
from repro.cache.stats import CoreStats, LLCStats
from repro.core import make_policy
from repro.experiments.common import get_scale, run_one
from repro.experiments.report import format_records, format_run_records
from repro.experiments.tables import run_table_unit, table1_rows
from repro.metrics import (
    AGGREGATIONS,
    REGISTRY,
    RUN_RECORD_SCHEMA,
    MetricRegistry,
    MetricSpecError,
    RunRecord,
    SchemaError,
    check_artifacts,
    export_records,
    is_run_record_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Registry metadata.
def test_every_registered_metric_carries_full_metadata():
    assert len(REGISTRY) > 30
    for spec in REGISTRY:
        assert spec.name == f"{spec.layer}.{spec.short_name}"
        assert spec.unit, f"{spec.name} lacks a unit"
        assert spec.doc, f"{spec.name} lacks a docstring"
        assert spec.aggregation in AGGREGATIONS


def test_llc_layer_matches_dataclass_and_snapshot_is_byte_identical():
    declared = [s.short_name for s in REGISTRY.by_layer("llc")]
    assert declared == [f.name for f in dataclasses.fields(LLCStats)]
    stats = LLCStats()
    stats.gets_hits = 7
    stats.nvm_bytes_written = 1234
    hand_rolled = {
        f.name: getattr(stats, f.name) for f in dataclasses.fields(stats)
    }
    assert stats.snapshot() == hand_rolled
    assert list(stats.snapshot()) == list(hand_rolled)  # key order too


def test_core_layer_covers_corestats_fields():
    declared = {s.short_name for s in REGISTRY.by_layer("core")}
    assert {f.name for f in dataclasses.fields(CoreStats)} <= declared


def test_registration_is_idempotent_but_conflicts_are_loud():
    registry = MetricRegistry()
    first = registry.register("t", "x", "count", "a test metric")
    again = registry.register("t", "x", "count", "a test metric")
    assert first is again and len(registry) == 1
    with pytest.raises(MetricSpecError):
        registry.register("t", "x", "bytes", "a test metric")
    with pytest.raises(MetricSpecError):
        registry.register("t", "y", "count", "bad agg", aggregation="max")
    with pytest.raises(MetricSpecError):
        registry.register("t", "z", "count", "")  # no doc


# ----------------------------------------------------------------------
# RunRecord round-trips and schema rejection.
_metric_names = st.sampled_from(REGISTRY.names())
_numbers = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.none(),
)
_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.text(max_size=10)
)


@settings(max_examples=50, deadline=None)
@given(
    kind=st.text(min_size=1, max_size=12),
    metrics=st.dictionaries(_metric_names, _numbers, max_size=8),
    meta=st.dictionaries(st.text(max_size=8), _json_scalars, max_size=4),
    values=st.dictionaries(
        st.text(max_size=8), st.lists(_json_scalars, max_size=3), max_size=3
    ),
    events=st.lists(
        st.dictionaries(st.text(max_size=8), _json_scalars, max_size=3),
        max_size=3,
    ),
)
def test_run_record_round_trips_exactly(kind, metrics, meta, values, events):
    record = RunRecord(
        kind=kind, meta=meta, metrics=metrics, values=values, events=events
    )
    payload = record.to_json()
    assert is_run_record_payload(payload)
    # JSON-serialisable and stable through an actual dump/load cycle.
    rehydrated = RunRecord.from_json(json.loads(json.dumps(payload)))
    assert rehydrated == record
    assert rehydrated.to_json() == payload


def test_unknown_schema_version_is_rejected():
    payload = RunRecord(kind="unit").to_json()
    payload["schema"] = "repro-run/999"
    with pytest.raises(SchemaError):
        RunRecord.from_json(payload)
    assert is_run_record_payload(payload)  # still *looks* like a record


def test_unknown_fields_and_metrics_are_rejected():
    good = RunRecord(kind="unit", metrics={"llc.gets": 1}).to_json()
    RunRecord.from_json(good)  # sanity
    with pytest.raises(SchemaError):
        RunRecord.from_json({**good, "extra_field": 1})
    with pytest.raises(SchemaError):
        RunRecord.from_json({**good, "metrics": {"llc.access_count": 1}})
    with pytest.raises(SchemaError):
        RunRecord.from_json({**good, "metrics": {"llc.gets": "many"}})
    with pytest.raises(SchemaError):
        RunRecord.from_json([good])
    with pytest.raises(SchemaError):
        RunRecord(kind="").to_json()


# ----------------------------------------------------------------------
# Live simulation records: the façade and the collected metrics agree.
@pytest.fixture(scope="module")
def sim_record():
    scale = get_scale("smoke")
    return run_one(
        scale.system(),
        make_policy("cp_sd"),
        scale.workload("mix1"),
        warmup_epochs=0.5,
        measure_epochs=1.0,
    )


def test_run_one_returns_a_live_validated_record(sim_record):
    assert isinstance(sim_record, RunRecord)
    assert sim_record.schema == RUN_RECORD_SCHEMA
    assert sim_record.result is not None
    result = sim_record.result
    # Façade delegates to the live result ...
    assert sim_record.mean_ipc == result.mean_ipc
    assert sim_record.stats is result.stats
    # ... and the collected metrics hold the same numbers.
    assert sim_record.metrics["llc.gets"] == result.stats.llc.gets
    assert sim_record.metrics["sim.mean_ipc"] == result.mean_ipc
    assert sim_record.metrics["nvm.bytes_written"] >= 0
    assert sim_record.meta["policy"]["name"]
    assert any(e["event"] == "epoch" for e in sim_record.events)


def test_detached_record_serves_the_same_numbers(sim_record):
    detached = RunRecord.from_json(
        json.loads(json.dumps(sim_record.to_json()))
    )
    assert detached.result is None
    assert detached.mean_ipc == sim_record.mean_ipc
    assert detached.hit_rate == sim_record.hit_rate
    assert detached.cycles == sim_record.cycles
    assert detached.nvm_bytes_written == sim_record.nvm_bytes_written
    assert detached.llc_hits == sim_record.result.llc_hits
    assert detached.ipcs == list(sim_record.result.ipcs)
    with pytest.raises(AttributeError):
        detached.stats  # live objects are gone, loudly


# ----------------------------------------------------------------------
# Exporters reproduce the pre-spine numbers.
def test_table_unit_reproduces_the_report_table():
    record = run_table_unit(get_scale("smoke"), "table1")
    assert record.kind == "table"
    expected = format_records(table1_rows(), "Table I")
    assert format_records(record.values["rows"], "Table I") == expected


def test_exporters_render_the_collected_values(sim_record):
    records = [sim_record]

    payload = json.loads(export_records(records, "json"))
    assert payload == sim_record.to_json()

    csv_text = export_records(records, "csv")
    lines = csv_text.strip().splitlines()
    assert lines[0] == "record,kind,metric,value,unit,layer,aggregation"
    accesses = sim_record.metrics["llc.gets"]
    assert any(
        line.split(",")[2:4] == ["llc.gets", str(accesses)]
        for line in lines[1:]
    )

    jsonl = [json.loads(line) for line in
             export_records(records, "jsonl").strip().splitlines()]
    assert jsonl[0]["event"] == "task"
    assert jsonl[0]["metrics"] == sim_record.metrics
    assert sum(1 for e in jsonl if e.get("event") == "epoch") == len(
        sim_record.events
    )

    prom = export_records(records, "prom")
    assert "# TYPE repro_llc_gets counter" in prom
    assert "# TYPE repro_sim_mean_ipc gauge" in prom
    assert f" {accesses}" in prom

    table = format_run_records(records, "smoke run")
    assert "llc.gets" in table and "smoke run" in table


def test_check_artifacts_passes_on_committed_tree():
    checked, errors = check_artifacts(repo_root=REPO_ROOT)
    assert errors == []
    assert any("BENCH_engine" in c for c in checked)
    assert any("determinism.json" in c for c in checked)


def test_check_artifacts_flags_drifted_extra_file(tmp_path):
    stale = RunRecord(kind="unit", metrics={"llc.gets": 1}).to_json()
    stale["schema"] = "repro-run/0"
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(stale))
    _, errors = check_artifacts(repo_root=REPO_ROOT, extra_paths=[path])
    assert any("stale.json" in e for e in errors)


# ----------------------------------------------------------------------
# Claims consume detached records.
def test_measurements_from_records_matches_study_shape():
    from repro.analysis.claims import measurements_from_records

    def forecast(policy, ipc, life):
        return RunRecord(
            kind="forecast",
            meta={"unit": {"kind": "forecast", "policy": policy}},
            metrics={
                "forecast.initial_ipc": ipc,
                "forecast.lifetime_seconds": life,
            },
        )

    def bound(ways, ipc):
        return RunRecord(
            kind="bound",
            meta={"unit": {"kind": "bound", "ways": ways}},
            metrics={"forecast.bound_ipc": ipc},
        )

    records = [
        bound(16, 2.0), bound(16, 2.2), bound(4, 1.0),
        forecast("bh", 1.9, 100.0), forecast("bh", 2.1, 200.0),
        forecast("cp_sd", 1.8, 1000.0),
    ]
    measurements = measurements_from_records(records)
    assert measurements["ipc_upper"] == pytest.approx(2.1)
    assert measurements["ipc_bh"] == pytest.approx(2.0)
    assert measurements["life_bh"] == pytest.approx(150.0)
    assert measurements["life_cp_sd"] == pytest.approx(1000.0)
