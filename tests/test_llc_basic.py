"""Tests for the hybrid LLC request/fill paths (Sec. III-A protocol)."""

import pytest

from repro.cache.block import MetadataTable, ReuseClass
from repro.cache.cacheset import NVM, SRAM
from repro.cache.llc import HybridLLC
from repro.config import HybridGeometry, SystemConfig
from repro.core import make_policy


def make_llc(policy_name="bh_cp", n_sets=4, sram=2, nvm=4, size_fn=None, **kw):
    config = SystemConfig(
        llc=HybridGeometry(
            n_sets=n_sets, sram_ways=sram, nvm_ways=nvm, n_banks=min(2, n_sets)
        )
    )
    policy = make_policy(policy_name, **kw)
    return HybridLLC(config, policy, size_fn=size_fn), MetadataTable()


def test_miss_then_fill_then_hit():
    llc, meta = make_llc()
    result = llc.request(100, is_getx=False, meta_table=meta)
    assert not result.hit
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    assert llc.contains(100)
    result = llc.request(100, is_getx=False, meta_table=meta)
    assert result.hit and not result.invalidated
    assert llc.contains(100)  # GetS leaves the copy


def test_getx_invalidate_on_hit():
    llc, meta = make_llc()
    llc.fill_from_l2(100, dirty=True, meta_table=meta)
    result = llc.request(100, is_getx=True, meta_table=meta)
    assert result.hit and result.invalidated and result.dirty
    assert not llc.contains(100)
    assert llc.stats.writebacks_to_memory == 0  # data went to the requester


def test_upgrade_invalidates_copy():
    llc, meta = make_llc()
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    assert llc.upgrade(100, meta)
    assert not llc.contains(100)
    assert meta.get(100).reuse is ReuseClass.WRITE
    assert llc.stats.upgrades == 1 and llc.stats.upgrade_hits == 1
    assert not llc.upgrade(100, meta)  # second time: no copy


def test_clean_refill_is_silent_drop():
    llc, meta = make_llc()
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    before = llc.stats.nvm_bytes_written + llc.stats.sram_writes
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    after = llc.stats.nvm_bytes_written + llc.stats.sram_writes
    assert llc.stats.silent_drops == 1
    assert before == after  # no write happened


def test_dirty_refill_updates_in_place():
    llc, meta = make_llc()
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    llc.fill_from_l2(100, dirty=True, meta_table=meta)
    assert llc.stats.updates_in_place == 1
    way = llc.set_of(100).find(100)
    assert llc.set_of(100).dirty[way]


def test_reuse_classification_on_hits():
    llc, meta = make_llc()
    llc.fill_from_l2(100, dirty=False, meta_table=meta)
    llc.request(100, is_getx=False, meta_table=meta)
    assert meta.get(100).reuse is ReuseClass.READ
    llc.request(100, is_getx=True, meta_table=meta)
    assert meta.get(100).reuse is ReuseClass.WRITE


def test_eviction_writes_back_dirty_blocks():
    llc, meta = make_llc(n_sets=1, sram=1, nvm=1)
    # same set: capacity 2 blocks (bh_cp = global fit-LRU)
    llc.fill_from_l2(0, dirty=True, meta_table=meta)
    llc.fill_from_l2(4, dirty=False, meta_table=meta)
    llc.fill_from_l2(8, dirty=False, meta_table=meta)  # evicts block 0
    assert llc.stats.evictions == 1
    assert llc.stats.writebacks_to_memory == 1


def test_on_block_to_memory_callback():
    seen = []
    llc, meta = make_llc(n_sets=1, sram=1, nvm=0)
    llc.on_block_to_memory = seen.append
    llc.fill_from_l2(0, dirty=False, meta_table=meta)
    llc.fill_from_l2(4, dirty=False, meta_table=meta)
    assert seen == [0]


def test_nvm_write_charges_wear_and_stats():
    size_fn = lambda addr: (30, 32)
    llc, meta = make_llc(size_fn=size_fn, policy_name="ca", cpth=37)
    llc.fill_from_l2(100, dirty=False, meta_table=meta)  # small -> NVM
    assert llc.stats.fills_nvm == 1
    assert llc.stats.nvm_bytes_written == 32
    assert llc.wear.total_bytes_written() == 32


def test_sram_write_not_charged_to_wear():
    size_fn = lambda addr: (64, 64)
    llc, meta = make_llc(size_fn=size_fn, policy_name="ca", cpth=37)
    llc.fill_from_l2(100, dirty=False, meta_table=meta)  # big -> SRAM
    assert llc.stats.fills_sram == 1
    assert llc.stats.nvm_bytes_written == 0
    assert llc.stats.sram_writes == 1


def test_fit_lru_fallback_to_sram_when_frames_too_small():
    size_fn = lambda addr: (58, 60)
    llc, meta = make_llc(size_fn=size_fn, policy_name="ca", cpth=64)
    # ruin all NVM frames of set 0 below 60 bytes
    for w in range(4):
        llc.faultmap.set_capacity(0, w, 40)
    llc.fill_from_l2(0, dirty=False, meta_table=meta)
    cs = llc.set_of(0)
    way = cs.find(0)
    assert cs.part_of(way) == SRAM  # paper: unfit NVM blocks go to SRAM


def test_bypass_when_nothing_fits():
    size_fn = lambda addr: (58, 60)
    llc, meta = make_llc(size_fn=size_fn, policy_name="ca", cpth=64, sram=0, nvm=4)
    for w in range(4):
        llc.faultmap.set_capacity(0, w, 10)
    llc.fill_from_l2(0, dirty=True, meta_table=meta)
    assert llc.stats.bypasses == 1
    assert llc.stats.writebacks_to_memory == 1
    assert not llc.contains(0)


def test_frame_disabling_policy_needs_full_frames():
    llc, meta = make_llc(policy_name="bh", n_sets=1, sram=0, nvm=2)
    llc.faultmap.kill_bytes(0, 0, 1)  # frame granularity: whole frame dies
    assert llc.faultmap.capacity(0, 0) == 0
    llc.fill_from_l2(0, dirty=False, meta_table=meta)
    llc.fill_from_l2(4, dirty=False, meta_table=meta)
    # only one usable frame remains; second fill evicted the first block
    assert llc.stats.evictions == 1
    assert len(llc.set_of(0).way_of) == 1


def test_reconcile_faults_evicts_unfit_blocks():
    size_fn = lambda addr: (30, 32)
    llc, meta = make_llc(size_fn=size_fn, policy_name="ca", cpth=37)
    llc.fill_from_l2(100, dirty=True, meta_table=meta)
    cs = llc.set_of(100)
    way = cs.find(100)
    llc.faultmap.set_capacity(cs.index, cs.nvm_way(way), 10)
    evicted = llc.reconcile_faults()
    assert evicted == 1
    assert not llc.contains(100)
    assert llc.stats.writebacks_to_memory == 1


def test_flush_writes_back_dirty():
    llc, meta = make_llc()
    llc.fill_from_l2(0, dirty=True, meta_table=meta)
    llc.fill_from_l2(1, dirty=False, meta_table=meta)
    llc.flush()
    assert llc.stats.writebacks_to_memory == 1
    assert llc.resident_blocks() == []


def test_bank_interleaving():
    llc, _meta = make_llc(n_sets=4)
    banks = {llc.bank_of(addr) for addr in range(8)}
    assert banks == {0, 1}


def test_occupancy_fraction():
    llc, meta = make_llc(n_sets=2, sram=1, nvm=1)
    assert llc.occupancy_fraction() == 0.0
    llc.fill_from_l2(0, dirty=False, meta_table=meta)
    assert llc.occupancy_fraction() == pytest.approx(0.25)
