"""Tests for the FPC comparator compressor."""

import random
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.encodings import BLOCK_SIZE, ENCODING_SIZES
from repro.compression.fpc import FPCCompressor

fpc = FPCCompressor()


def test_zero_block_small():
    result = fpc.compress(bytes(64))
    assert result.size <= 8


def test_small_integers_compress():
    block = struct.pack("<16I", *([3] * 16))
    assert fpc.compress(block).size < BLOCK_SIZE


def test_random_data_incompressible():
    rng = random.Random(9)
    block = bytes(rng.getrandbits(8) for _ in range(64))
    assert fpc.compress(block).size == BLOCK_SIZE


def test_sizes_quantised_to_table1():
    rng = random.Random(10)
    for _ in range(50):
        words = [
            rng.choice([0, 1, 255, 0xFFFF, rng.getrandbits(32)]) for _ in range(16)
        ]
        block = struct.pack("<16I", *words)
        size = fpc.compress(block).size
        assert size in ENCODING_SIZES


@given(st.binary(min_size=64, max_size=64))
@settings(max_examples=150)
def test_fpc_roundtrip(block):
    result = fpc.compress(block)
    assert fpc.decompress(result) == block
    assert 1 <= result.size <= BLOCK_SIZE


def test_halfword_repeated_pattern():
    word = 0xABCD_ABCD
    block = struct.pack("<16I", *([word] * 16))
    assert fpc.compress(block).size < BLOCK_SIZE
