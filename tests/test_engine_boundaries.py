"""Engine boundary behaviour: epoch edges, warmup edges, bursts."""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments.common import SMOKE


def sim_for(policy="cp_sd"):
    scale = SMOKE
    return SMOKE.system(), Simulation(
        SMOKE.system(), make_policy(policy), scale.workload("mix1")
    )


def test_epochs_fire_exactly_once_per_boundary():
    config, sim = sim_for()
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=5.5 * epoch, warmup_cycles=0)
    indices = [e.index for e in res.epochs]
    assert indices == sorted(set(indices))  # no duplicates
    assert len(indices) >= 4
    # boundaries are exact multiples of the epoch length
    for e in res.epochs:
        assert e.end_cycle % epoch == pytest.approx(0.0)


def test_epoch_numbering_continues_across_runs():
    config, sim = sim_for()
    epoch = config.dueling.epoch_cycles
    first = sim.run(cycles=2 * epoch, warmup_cycles=0)
    second = sim.run(cycles=2 * epoch, warmup_cycles=0)
    all_indices = [e.index for e in first.epochs + second.epochs]
    assert all_indices == sorted(set(all_indices))


def test_dueling_elections_match_epoch_count():
    config, sim = sim_for()
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=4 * epoch, warmup_cycles=0)
    controller = sim.policy.controller
    assert controller.epochs_elapsed == len(res.epochs)


def test_warmup_resets_only_once():
    config, sim = sim_for("bh")
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=3 * epoch, warmup_cycles=epoch)
    # measured stats cover roughly two epochs of accesses, not three
    assert res.cycles == pytest.approx(2 * epoch)
    assert res.stats.llc.accesses > 0


def test_record_epochs_false_suppresses_records():
    config, sim = sim_for()
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=3 * epoch, warmup_cycles=0, record_epochs=False)
    assert res.epochs == []
    # dueling still advanced even without records
    assert sim.policy.controller.epochs_elapsed >= 2


def test_core_clocks_stay_close():
    """Burst interleaving must not let cores drift apart."""
    config, sim = sim_for("bh")
    epoch = config.dueling.epoch_cycles
    sim.run(cycles=2 * epoch, warmup_cycles=0)
    clocks = [core.cycles for core in sim.cores]
    spread = max(clocks) - min(clocks)
    assert spread < 0.05 * max(clocks)
