"""Tests for scale calibration helpers."""

import pytest

from repro.forecast import ForecastPoint, ForecastResult, SECONDS_PER_MONTH
from repro.forecast.calibration import (
    calibrated_lifetime_months,
    paper_scale_months,
    paper_scale_seconds,
)


def test_scaling_is_inverse_of_factor():
    assert paper_scale_seconds(10.0, 1 / 16) == pytest.approx(160.0)
    assert paper_scale_seconds(10.0, 1.0) == 10.0


def test_months_conversion():
    assert paper_scale_months(SECONDS_PER_MONTH, 0.5) == pytest.approx(2.0)


def test_factor_validation():
    with pytest.raises(ValueError):
        paper_scale_seconds(1.0, 0.0)
    with pytest.raises(ValueError):
        paper_scale_seconds(1.0, 2.0)


def test_calibrated_lifetime_from_result():
    points = [
        ForecastPoint(0.0, 1.0, 1.0, 0.5, 1.0),
        ForecastPoint(100.0, 0.4, 1.0, 0.5, 1.0),
    ]
    result = ForecastResult("x", points, reached_stop=True, horizon_seconds=100.0)
    months = calibrated_lifetime_months(result, 1 / 16)
    expected = result.lifetime_seconds(0.5) / (1 / 16) / SECONDS_PER_MONTH
    assert months == pytest.approx(expected)
