"""Tests for the private L1/L2 caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.private_cache import PrivateCache
from repro.config import CacheGeometry


def small_cache(ways=2, sets=4):
    return PrivateCache(CacheGeometry(sets * ways * 64, ways))


def test_miss_then_hit():
    cache = small_cache()
    assert cache.lookup(100) == PrivateCache.MISS
    cache.fill(100, dirty=False)
    assert cache.lookup(100) == PrivateCache.HIT
    assert cache.hits == 1 and cache.misses == 1


def test_store_to_clean_line_signals_upgrade():
    cache = small_cache()
    cache.fill(5, dirty=False)
    assert cache.lookup(5, is_write=True) == PrivateCache.HIT_UPGRADE
    # second store: the line is already dirty, no upgrade needed
    assert cache.lookup(5, is_write=True) == PrivateCache.HIT
    assert cache.is_dirty(5)


def test_lru_eviction_order():
    cache = small_cache(ways=2, sets=1)
    cache.fill(0, False)
    cache.fill(1, False)
    cache.lookup(0)  # 0 becomes MRU
    victim = cache.fill(2, False)
    assert victim == (1, False)


def test_eviction_carries_dirtiness():
    cache = small_cache(ways=1, sets=1)
    cache.fill(0, dirty=True)
    victim = cache.fill(1, dirty=False)
    assert victim == (0, True)


def test_fill_refreshes_existing_entry():
    cache = small_cache(ways=2, sets=1)
    cache.fill(0, False)
    cache.fill(1, False)
    assert cache.fill(0, dirty=True) is None  # refresh, no eviction
    assert cache.is_dirty(0)
    victim = cache.fill(2, False)
    assert victim[0] == 1  # 0 was refreshed to MRU


def test_set_isolation():
    cache = small_cache(ways=1, sets=4)
    for addr in range(4):
        assert cache.fill(addr, False) is None  # different sets
    assert cache.occupancy() == 4


def test_invalidate():
    cache = small_cache()
    cache.fill(7, dirty=True)
    assert cache.invalidate(7) == (True, True)
    assert cache.invalidate(7) == (False, False)
    assert not cache.contains(7)


def test_set_dirty_noop_when_absent():
    cache = small_cache()
    cache.set_dirty(123)  # must not raise
    assert not cache.is_dirty(123)


def test_resident_blocks():
    cache = small_cache()
    cache.fill(1, False)
    cache.fill(2, False)
    assert sorted(cache.resident_blocks()) == [1, 2]


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_geometry(ops):
    """Property: per-set occupancy is bounded by associativity."""
    cache = small_cache(ways=2, sets=4)
    for addr, is_write in ops:
        if not cache.lookup(addr, is_write):
            cache.fill(addr, is_write)
    assert cache.occupancy() <= 8
    for entries in cache._sets:
        assert len(entries) <= 2


@given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_most_recent_block_always_resident(addrs):
    """Property: the block just accessed is always resident."""
    cache = small_cache(ways=2, sets=2)
    for addr in addrs:
        if not cache.lookup(addr):
            cache.fill(addr, False)
        assert cache.contains(addr)
