"""Workload family registry: refs, specs, fingerprints, new families.

The registry's contract has two halves.  Backwards: the ``synthetic``
family must be indistinguishable from the pre-registry code — bare mix
names resolve, builds are byte-identical (the golden-digest gate), and
memo fingerprints stay ``None`` so no cached result is orphaned.
Forwards: every family is enumerable with a key-grade
:class:`TargetSpec`, buildable at any scale, campaign-enumerable, and
unknown references fail loudly with the valid choices attached.
"""

from dataclasses import replace

import pytest

from repro.experiments.common import SMOKE
from repro.workloads.registry import (
    DEFAULT_FAMILY,
    SyntheticProfileFamily,
    TargetSpec,
    WorkloadFamily,
    WorkloadRefError,
    build_workload,
    family_names,
    get_family,
    normalize_workload_ref,
    parse_workload_ref,
    register_family,
    resolve_workload_ref,
    workload_ref_fingerprint,
    workload_refs,
)

TINY = replace(SMOKE, trace_records_per_core=3_000)


# ----------------------------------------------------------------------
# reference parsing and resolution

def test_bare_name_is_synthetic():
    assert parse_workload_ref("mix1") == (DEFAULT_FAMILY, "mix1")


def test_qualified_ref_parses():
    assert parse_workload_ref("datacenter:kv_read") == ("datacenter", "kv_read")


@pytest.mark.parametrize("bad", ["", ":", "family:", ":target"])
def test_malformed_refs_rejected(bad):
    with pytest.raises(WorkloadRefError):
        parse_workload_ref(bad)


def test_unknown_family_carries_choices():
    with pytest.raises(WorkloadRefError) as err:
        resolve_workload_ref("nosuch:thing")
    assert err.value.choices == family_names()


def test_unknown_target_carries_qualified_choices():
    with pytest.raises(WorkloadRefError) as err:
        resolve_workload_ref("synthetic:mix99")
    assert "synthetic:mix1" in err.value.choices


def test_ref_error_is_keyerror():
    # pre-registry callers caught KeyError from mix_profiles; the
    # registry's error must stay catchable the same way
    with pytest.raises(KeyError):
        build_workload("mix99", scale=TINY)


def test_normalize_prefers_bare_synthetic():
    assert normalize_workload_ref("synthetic:mix1") == "mix1"
    assert normalize_workload_ref("mix1") == "mix1"
    assert normalize_workload_ref("phase:abrupt") == "phase:abrupt"


def test_family_names_default_first():
    names = family_names()
    assert names[0] == DEFAULT_FAMILY
    assert {"datacenter", "phase", "adversarial", "external"} <= set(names)


def test_workload_refs_cover_every_family_target():
    refs = workload_refs()
    for name in family_names():
        for target in get_family(name).targets():
            assert f"{name}:{target}" in refs


def test_register_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_family(get_family(DEFAULT_FAMILY))


def test_register_rejects_nameless():
    with pytest.raises(ValueError, match="no name"):
        register_family(WorkloadFamily())


# ----------------------------------------------------------------------
# target specs

def test_every_builtin_target_has_a_spec():
    for name in family_names():
        family = get_family(name)
        for target in family.targets():
            spec = family.target_spec(target)
            assert spec.ref == f"{name}:{target}"
            assert spec.cores >= 1
            assert spec.footprint_blocks > 0
            fractions = (
                spec.hcr_fraction,
                spec.lcr_fraction,
                spec.incompressible_fraction,
            )
            assert all(0.0 <= f <= 1.0 for f in fractions)
            assert sum(fractions) == pytest.approx(1.0, abs=1e-6)


def test_spec_hash_is_stable_and_distinct():
    spec = get_family("synthetic").target_spec("mix1")
    again = get_family("synthetic").target_spec("mix1")
    other = get_family("synthetic").target_spec("mix4")
    assert spec.spec_hash == again.spec_hash
    assert spec.spec_hash != other.spec_hash


def test_spec_json_roundtrips_identity():
    spec = get_family("datacenter").target_spec("kv_read")
    data = spec.to_json()
    rebuilt = TargetSpec(
        family=data["family"],
        target=data["target"],
        cores=data["cores"],
        description=data["description"],
        footprint_blocks=data["footprint_blocks"],
        hcr_fraction=data["hcr_fraction"],
        lcr_fraction=data["lcr_fraction"],
        incompressible_fraction=data["incompressible_fraction"],
        scalable=data["scalable"],
    )
    assert rebuilt.spec_hash == spec.spec_hash


# ----------------------------------------------------------------------
# memo fingerprints

def test_synthetic_fingerprint_is_none():
    # bare mix names ARE the pre-registry memo key space: a synthetic
    # fingerprint component would orphan every existing cache entry
    assert workload_ref_fingerprint("mix1") is None
    assert workload_ref_fingerprint("synthetic:mix1") is None


def test_new_family_fingerprint_names_family_and_spec():
    fp = workload_ref_fingerprint("phase:abrupt")
    assert fp["family"] == "phase"
    assert fp["target"] == "abrupt"
    assert fp["spec_hash"] == get_family("phase").target_spec("abrupt").spec_hash


def test_fingerprints_differ_across_targets():
    a = workload_ref_fingerprint("phase:abrupt")
    b = workload_ref_fingerprint("phase:gradual")
    assert a["spec_hash"] != b["spec_hash"]


# ----------------------------------------------------------------------
# building

def test_synthetic_build_matches_scale_workload():
    via_registry = build_workload("mix1", scale=TINY, seed=0)
    direct = TINY.workload("mix1", seed=0)
    assert via_registry is direct  # same shared-cache entry


def test_builds_stamp_family_and_target():
    workload = build_workload("adversarial:thrash", scale=TINY, seed=0)
    assert workload.family == "adversarial"
    assert workload.target == "thrash"
    assert len(workload.traces) == 4


@pytest.mark.parametrize(
    "ref",
    [
        "datacenter:kv_read",
        "datacenter:kv_scan_mix",
        "phase:abrupt",
        "phase:burst",
        "adversarial:comp_flip",
        "adversarial:duel_stress",
    ],
)
def test_new_family_targets_build_and_replay(ref):
    workload = build_workload(ref, scale=TINY, seed=0)
    spec = resolve_workload_ref(ref)[0].target_spec(ref.split(":")[1])
    assert len(workload.traces) == spec.cores
    for trace in workload.traces:
        assert len(trace) == TINY.trace_records_per_core


def test_same_ref_same_seed_shares_cache_entry():
    first = build_workload("phase:gradual", scale=TINY, seed=3)
    second = build_workload("phase:gradual", scale=TINY, seed=3)
    assert first is second


def test_comp_flip_changes_sizes_not_addresses():
    # the flip must be carried entirely by the DataModel: the RNG
    # streams (and hence addresses) stay those of the unflipped twin
    flipped = build_workload("adversarial:comp_flip", scale=TINY, seed=0)
    model = flipped.data_model
    profile = flipped.profiles[0]
    sizes = {
        model.size_fn(addr)[0]
        for addr in range(0, profile.hot_region_blocks)
    }
    assert 64 in sizes       # some slots flipped incompressible
    assert min(sizes) < 64   # others kept their compressible draw


def test_campaign_units_enumerate_over_new_families():
    from repro.experiments.campaign_tasks import enumerate_campaign_tasks

    scale = replace(TINY, mixes=("datacenter:kv_read", "phase:abrupt"))
    tasks = enumerate_campaign_tasks(["fig6"], scale)
    mixes = {task.unit["mix"] for task in tasks}
    assert mixes == {"datacenter:kv_read", "phase:abrupt"}


# ----------------------------------------------------------------------
# back-compat shims

def test_legacy_names_still_importable():
    from repro.workloads import (  # noqa: F401
        APP_NAMES,
        MIX_NAMES,
        AppProfile,
        mix_profiles,
        profile,
    )

    assert "mix1" in MIX_NAMES


def test_registry_api_reachable_from_package_root():
    import repro.workloads as pkg

    assert pkg.build_workload is build_workload
    assert pkg.WorkloadRefError is WorkloadRefError
