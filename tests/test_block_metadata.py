"""Tests for reuse classification (Sec. IV-B) and the metadata table."""

from repro.cache.block import BlockMeta, MetadataTable, ReuseClass


def test_new_block_has_no_reuse():
    table = MetadataTable()
    meta = table.get_or_create(1)
    assert meta.reuse is ReuseClass.NONE
    assert meta.llc_hits == 0
    assert not meta.is_loop_block


def test_clean_gets_hit_marks_read_reuse():
    table = MetadataTable()
    meta = table.classify_llc_hit(1, is_getx=False, copy_dirty=False)
    assert meta.reuse is ReuseClass.READ
    assert meta.is_loop_block  # LHybrid LB == read-reused


def test_getx_hit_marks_write_reuse():
    table = MetadataTable()
    meta = table.classify_llc_hit(1, is_getx=True, copy_dirty=False)
    assert meta.reuse is ReuseClass.WRITE
    assert not meta.is_loop_block


def test_hit_on_dirty_copy_marks_write_reuse():
    table = MetadataTable()
    meta = table.classify_llc_hit(1, is_getx=False, copy_dirty=True)
    assert meta.reuse is ReuseClass.WRITE


def test_write_reuse_is_sticky():
    """Once written, a clean re-read does not demote to read-reuse."""
    table = MetadataTable()
    table.classify_llc_hit(1, is_getx=True, copy_dirty=False)
    meta = table.classify_llc_hit(1, is_getx=False, copy_dirty=False)
    assert meta.reuse is ReuseClass.WRITE


def test_hit_counter_accumulates():
    table = MetadataTable()
    for _ in range(3):
        table.classify_llc_hit(9, is_getx=False, copy_dirty=False)
    assert table.get(9).llc_hits == 3


def test_drop_forgets_block():
    table = MetadataTable()
    table.classify_llc_hit(1, False, False)
    table.drop(1)
    assert table.get(1) is None
    assert len(table) == 0
    table.drop(1)  # idempotent


def test_get_does_not_create():
    table = MetadataTable()
    assert table.get(5) is None
    assert len(table) == 0


def test_independent_blocks():
    table = MetadataTable()
    table.classify_llc_hit(1, False, False)
    table.classify_llc_hit(2, True, False)
    assert table.get(1).reuse is ReuseClass.READ
    assert table.get(2).reuse is ReuseClass.WRITE
