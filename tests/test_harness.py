"""Unit tests for the campaign harness building blocks."""

import json

import pytest

from repro.experiments import SMOKE, enumerate_campaign_tasks
from repro.harness import (
    CampaignManifest,
    ChaosConfig,
    ChaosSpecError,
    CorruptResultError,
    dump_json,
    load_result,
    parse_chaos_spec,
    verify_result,
    write_atomic,
    write_json_atomic,
)
from repro.workloads.traceio import file_sha256


# ----------------------------------------------------------------------
# retry backoff: bounded exponential envelope, deterministic jitter

def test_backoff_delay_envelope_and_jitter_bounds():
    from repro.harness import backoff_delay

    assert backoff_delay(1.0, 60.0, 0, "t") == 0.0
    for tries in range(1, 10):
        envelope = min(60.0, 1.0 * 2 ** (tries - 1))
        delay = backoff_delay(1.0, 60.0, tries, "tables/table=table1")
        assert 0.5 * envelope <= delay < envelope
    # the cap bounds the envelope however many tries accumulate
    assert backoff_delay(1.0, 5.0, 30, "t") < 5.0


def test_backoff_delay_deterministic_and_decorrelated():
    from repro.harness import backoff_delay

    a = backoff_delay(1.0, 60.0, 3, "task/a", seed=1)
    assert a == backoff_delay(1.0, 60.0, 3, "task/a", seed=1)
    # different tasks (or seeds) draw different jitter
    others = {
        backoff_delay(1.0, 60.0, 3, f"task/{i}", seed=1) for i in range(8)
    }
    assert len(others) == 8
    assert backoff_delay(1.0, 60.0, 3, "task/a", seed=2) != a


# ----------------------------------------------------------------------
# chaos spec parsing and deterministic decisions

def test_parse_chaos_spec_full():
    cfg = parse_chaos_spec("p=0.3,kinds=crash,timeout,corrupt")
    assert cfg.p == 0.3
    assert cfg.kinds == ("crash", "timeout", "corrupt")
    assert cfg.seed == 0


def test_parse_chaos_spec_subset_and_seed():
    cfg = parse_chaos_spec("p=0.5,kinds=crash,seed=7")
    assert cfg.p == 0.5
    assert cfg.kinds == ("crash",)
    assert cfg.seed == 7


def test_parse_chaos_spec_defaults_kinds():
    cfg = parse_chaos_spec("p=0.2")
    assert cfg.kinds == ("crash", "timeout", "corrupt")


def test_parse_chaos_spec_disk_kinds():
    cfg = parse_chaos_spec("p=0.3,kinds=disk-torn,disk-flip,seed=2")
    assert cfg.kinds == ("disk-torn", "disk-flip")
    assert cfg.seed == 2
    # the full disk set is valid too, and ALL_CHAOS_KINDS covers it
    from repro.harness import ALL_CHAOS_KINDS

    cfg = parse_chaos_spec("p=0.1,kinds=disk-torn,disk-enospc,disk-flip")
    assert all(k in ALL_CHAOS_KINDS for k in cfg.kinds)
    # ... but p=... alone still means task-level faults only
    assert parse_chaos_spec("p=0.1").kinds == ("crash", "timeout", "corrupt")


def test_parse_chaos_spec_rejects_garbage():
    with pytest.raises(ChaosSpecError):
        parse_chaos_spec("p=high")
    with pytest.raises(ChaosSpecError):
        parse_chaos_spec("p=0.1,kinds=explode")
    with pytest.raises(ChaosSpecError):
        parse_chaos_spec("p=2.0")
    with pytest.raises(ChaosSpecError):
        parse_chaos_spec("p=0.1,bogus=1")
    with pytest.raises(ChaosSpecError):
        parse_chaos_spec("crash,timeout")


def test_chaos_decisions_are_deterministic():
    cfg = ChaosConfig(p=0.5, seed=3)
    decisions = [cfg.decide("task/a", attempt) for attempt in range(1, 20)]
    again = [cfg.decide("task/a", attempt) for attempt in range(1, 20)]
    assert decisions == again
    # independent draws per task and attempt, roughly at rate p
    injected = [d for d in decisions if d is not None]
    assert 0 < len(injected) < len(decisions)
    assert set(injected) <= {"crash", "timeout", "corrupt"}


def test_chaos_rate_zero_and_one():
    assert ChaosConfig(p=0.0).decide("t", 1) is None
    assert ChaosConfig(p=1.0).decide("t", 1) in ("crash", "timeout", "corrupt")


def test_chaos_roundtrip_json():
    cfg = ChaosConfig(p=0.25, kinds=("crash",), seed=11)
    assert ChaosConfig.from_json(cfg.to_json()) == cfg


# ----------------------------------------------------------------------
# atomic checkpoints

def test_write_atomic_content_and_hash(tmp_path):
    path = tmp_path / "x.json"
    sha = write_atomic(path, b"hello")
    assert path.read_bytes() == b"hello"
    assert sha == file_sha256(path)
    # no temporary litter
    assert list(tmp_path.iterdir()) == [path]


def test_write_atomic_replaces_existing(tmp_path):
    path = tmp_path / "x.json"
    write_atomic(path, b"old")
    write_atomic(path, b"new")
    assert path.read_bytes() == b"new"


def test_dump_json_is_canonical():
    assert dump_json({"b": 1, "a": 2}) == dump_json({"a": 2, "b": 1})


def test_load_result_rejects_truncated(tmp_path):
    path = tmp_path / "r.json"
    path.write_bytes(b'{"status": "ok", "task_id": "trunc')
    with pytest.raises(CorruptResultError, match="unparsable"):
        load_result(path)


def test_load_result_rejects_missing(tmp_path):
    with pytest.raises(CorruptResultError, match="missing"):
        load_result(tmp_path / "nope.json")


def test_verify_result_checks_identity_and_hash(tmp_path):
    path = tmp_path / "r.json"
    sha = write_json_atomic(path, {"status": "ok", "task_id": "t1", "result": {}})
    payload, actual = verify_result(path, "t1", sha)
    assert payload["task_id"] == "t1" and actual == sha
    with pytest.raises(CorruptResultError, match="task_id mismatch"):
        verify_result(path, "t2")
    with pytest.raises(CorruptResultError, match="sha256 mismatch"):
        verify_result(path, "t1", "0" * 64)
    bad = tmp_path / "bad.json"
    write_json_atomic(bad, {"status": "error", "task_id": "t1"})
    with pytest.raises(CorruptResultError, match="status"):
        verify_result(bad, "t1")


# ----------------------------------------------------------------------
# manifest

def test_manifest_roundtrip(tmp_path):
    manifest = CampaignManifest.create(
        tmp_path / "c", scale="smoke", experiments=("tables", "fig2")
    )
    manifest.entry("tables/table=table1")
    manifest.save()
    loaded = CampaignManifest.load(tmp_path / "c")
    assert loaded.scale == "smoke"
    assert loaded.experiments == ("tables", "fig2")
    assert "tables/table=table1" in loaded.tasks


def test_manifest_verified_complete_requires_intact_file(tmp_path):
    manifest = CampaignManifest.create(
        tmp_path / "c", scale="smoke", experiments=("tables",)
    )
    task_id = "tables/table=table1"
    result_rel = "results/tables__table=table1.json"
    sha = write_json_atomic(
        manifest.directory / result_rel,
        {"status": "ok", "task_id": task_id, "result": {"rows": []}},
    )
    manifest.mark_complete(task_id, result_rel, sha, attempts=1)
    assert manifest.verified_complete(task_id)

    # truncate the file behind the manifest's back -> no longer verified
    (manifest.directory / result_rel).write_bytes(b'{"status": "ok"')
    assert not manifest.verified_complete(task_id)

    # restore with different bytes -> hash mismatch -> not verified
    write_json_atomic(
        manifest.directory / result_rel,
        {"status": "ok", "task_id": task_id, "result": {"rows": [1]}},
    )
    assert not manifest.verified_complete(task_id)


def test_manifest_rejects_foreign_directory(tmp_path):
    from repro.harness import CampaignConfigError

    with pytest.raises(CampaignConfigError, match="not a campaign"):
        CampaignManifest.load(tmp_path)
    (tmp_path / "campaign.json").write_text('{"format": "other/9"}')
    with pytest.raises(CampaignConfigError, match="unsupported"):
        CampaignManifest.load(tmp_path)


# ----------------------------------------------------------------------
# task enumeration

def test_enumerate_campaign_tasks_stable_ids():
    tasks = enumerate_campaign_tasks(["tables", "fig2"], SMOKE)
    ids = [t.task_id for t in tasks]
    assert len(ids) == len(set(ids))
    assert ids == [t.task_id for t in enumerate_campaign_tasks(["tables", "fig2"], SMOKE)]
    assert "tables/table=table1" in ids
    filenames = [t.filename for t in tasks]
    assert all("/" not in f and f.endswith(".json") for f in filenames)


def test_enumerate_campaign_tasks_unknown_experiment():
    with pytest.raises(KeyError, match="unknown experiment"):
        enumerate_campaign_tasks(["fig99"], SMOKE)


def test_run_campaign_task_deterministic_bytes():
    from repro.experiments import run_campaign_task

    one = dump_json(run_campaign_task("fig2", {"app": "mcf17"}, "smoke"))
    two = dump_json(run_campaign_task("fig2", {"app": "mcf17"}, "smoke"))
    assert one == two
