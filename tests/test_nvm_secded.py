"""Tests for the Hamming SECDED codec."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.secded import NVM_DATA_CODE, SECDED


def test_nvm_code_is_527_516():
    """Sec. III-B: the NVM data array uses code (527, 516)."""
    assert NVM_DATA_CODE.data_bits == 516
    assert NVM_DATA_CODE.codeword_bits == 527
    assert NVM_DATA_CODE.check_bits == 10


def test_encode_decode_small_code():
    code = SECDED(8)
    for data in (0, 1, 0x55, 0xAA, 0xFF):
        word = code.encode(data)
        result = code.decode(word)
        assert result.ok
        assert result.data == data
        assert result.corrected_bit is None


def test_single_bit_errors_corrected():
    code = SECDED(16)
    data = 0xBEEF
    word = code.encode(data)
    for bit in range(code.codeword_bits):
        corrupted = word ^ (1 << bit)
        result = code.decode(corrupted)
        assert result.ok, f"bit {bit} not corrected"
        assert result.data == data


def test_double_bit_errors_detected():
    code = SECDED(16)
    word = code.encode(0x1234)
    rng = random.Random(0)
    for _ in range(64):
        b1, b2 = rng.sample(range(code.codeword_bits), 2)
        corrupted = word ^ (1 << b1) ^ (1 << b2)
        result = code.decode(corrupted)
        assert result.double_error
        assert result.data is None


def test_encode_range_checked():
    code = SECDED(8)
    with pytest.raises(ValueError):
        code.encode(256)
    with pytest.raises(ValueError):
        code.encode(-1)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        SECDED(0)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100)
def test_roundtrip_32bit(data):
    code = SECDED(32)
    assert code.decode(code.encode(data)).data == data


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=38),
)
@settings(max_examples=150)
def test_any_single_flip_recovers_32bit(data, bit):
    code = SECDED(32)
    bit = bit % code.codeword_bits
    word = code.encode(data) ^ (1 << bit)
    result = code.decode(word)
    assert result.ok
    assert result.data == data


def test_nvm_code_roundtrip_large_word():
    data = int.from_bytes(bytes(range(1, 65)) + b"\x0f", "little")  # 516+ bits? trim
    data &= (1 << 516) - 1
    word = NVM_DATA_CODE.encode(data)
    assert NVM_DATA_CODE.decode(word).data == data
    # flip one bit somewhere in the middle
    corrupted = word ^ (1 << 300)
    result = NVM_DATA_CODE.decode(corrupted)
    assert result.ok and result.data == data
