"""Cross-compressor comparison on a shared corpus.

The policies are compressor-agnostic (Sec. II-B); these tests pin the
*relative* behaviour of the three implementations on data classes with
known structure, so a regression in any one of them shows up as an
ordering change.
"""

import random
import struct

import pytest

from repro.compression import (
    BDICompressor,
    CPackCompressor,
    FPCCompressor,
)

bdi = BDICompressor()
fpc = FPCCompressor()
cpack = CPackCompressor()
ALL = [bdi, fpc, cpack]


def corpus(seed=0):
    rng = random.Random(seed)
    blocks = {}
    blocks["zeros"] = bytes(64)
    blocks["repeated_word"] = struct.pack("<16I", *([0xCAFEBABE] * 16))
    blocks["small_ints"] = struct.pack("<16I", *[rng.randrange(128) for _ in range(16)])
    base = 1 << 40
    blocks["base_delta8"] = b"".join(
        (base + rng.randrange(100)).to_bytes(8, "little") for _ in range(8)
    )
    blocks["random"] = bytes(rng.getrandbits(8) for _ in range(64))
    return blocks


@pytest.mark.parametrize("name,block", list(corpus().items()))
@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_roundtrip_across_corpus(compressor, name, block):
    result = compressor.compress(block)
    assert compressor.decompress(result) == block


def test_all_compress_zeros_hard():
    for compressor in ALL:
        assert compressor.compress(bytes(64)).size <= 8, compressor.name


def test_all_leave_random_uncompressed():
    block = corpus()["random"]
    for compressor in ALL:
        assert compressor.compress(block).size == 64, compressor.name


def test_bdi_wins_on_base_delta_data():
    """BDI is built for narrow deltas against a shared base."""
    block = corpus()["base_delta8"]
    assert bdi.compress(block).size <= fpc.compress(block).size
    assert bdi.compress(block).size <= cpack.compress(block).size


def test_fpc_and_cpack_handle_small_ints():
    block = corpus()["small_ints"]
    assert fpc.compress(block).size < 64
    assert cpack.compress(block).size < 64


def test_dictionary_beats_patterns_on_repeats():
    """C-PACK's dictionary catches repeated arbitrary words that FPC's
    fixed patterns cannot."""
    word = 0x9E3779B9  # no FPC pattern matches this
    block = struct.pack("<16I", *([word] * 16))
    assert cpack.compress(block).size <= fpc.compress(block).size


def test_average_ratio_ordering_on_mixed_corpus():
    rng = random.Random(7)
    totals = {c.name: 0 for c in ALL}
    for _ in range(40):
        kind = rng.choice(["zeros", "repeated_word", "small_ints",
                           "base_delta8", "random"])
        block = corpus(rng.randrange(10_000))[kind]
        for c in ALL:
            totals[c.name] += c.compress(block).size
    # every compressor must do meaningfully better than 'store'
    for name, total in totals.items():
        assert total < 40 * 64, name
