"""Tests for the command-line interface."""

import pytest

from repro.cli import _policy_args, build_parser, main


def test_policy_spec_parsing():
    assert _policy_args("cp_sd") == ("cp_sd", {})
    assert _policy_args("ca_rwr:cpth=37") == ("ca_rwr", {"cpth": 37})
    assert _policy_args("cp_sd_th:th=8,tw=5") == ("cp_sd_th", {"th": 8, "tw": 5})
    assert _policy_args("cp_sd_th:th=4.5") == ("cp_sd_th", {"th": 4.5})


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cp_sd" in out and "mix10" in out and "zeusmp06" in out


def test_simulate_command(capsys):
    rc = main(
        [
            "--scale", "smoke",
            "simulate", "--mix", "mix1", "--policy", "bh",
            "--epochs", "1", "--warmup-epochs", "1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "mean IPC" in out and "NVM bytes written" in out


def test_figure_command_table(capsys):
    assert main(["--scale", "smoke", "figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "B8D7" in out


def test_figure_command_unknown(capsys):
    assert main(["--scale", "smoke", "figure", "fig99"]) == 2


def test_ablation_command_unknown(capsys):
    assert main(["--scale", "smoke", "ablation", "nope"]) == 2
