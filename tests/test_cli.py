"""Tests for the command-line interface."""

import pytest

from repro.cli import _policy_args, build_parser, main


def test_policy_spec_parsing():
    assert _policy_args("cp_sd") == ("cp_sd", {})
    assert _policy_args("ca_rwr:cpth=37") == ("ca_rwr", {"cpth": 37})
    assert _policy_args("cp_sd_th:th=8,tw=5") == ("cp_sd_th", {"th": 8, "tw": 5})
    assert _policy_args("cp_sd_th:th=4.5") == ("cp_sd_th", {"th": 4.5})


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cp_sd" in out and "mix10" in out and "zeusmp06" in out


def test_simulate_command(capsys):
    rc = main(
        [
            "--scale", "smoke",
            "simulate", "--mix", "mix1", "--policy", "bh",
            "--epochs", "1", "--warmup-epochs", "1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "mean IPC" in out and "NVM bytes written" in out


def test_figure_command_table(capsys):
    assert main(["--scale", "smoke", "figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "B8D7" in out


def test_figure_command_unknown(capsys):
    assert main(["--scale", "smoke", "figure", "fig99"]) == 2


def test_ablation_command_unknown(capsys):
    assert main(["--scale", "smoke", "ablation", "nope"]) == 2


# ----------------------------------------------------------------------
# did-you-mean errors (exit code 2, one-line message, no traceback)

def test_unknown_mix_suggests(capsys):
    rc = main(["--scale", "smoke", "simulate", "--mix", "mix99", "--policy", "bh"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown workload 'mix99'" in err
    assert "did you mean 'mix9'" in err


def test_unknown_policy_suggests(capsys):
    rc = main(["--scale", "smoke", "simulate", "--mix", "mix1", "--policy", "cp_ds"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown policy 'cp_ds'" in err
    assert "did you mean 'cp_sd'" in err


def test_unknown_scale_suggests(capsys):
    rc = main(["--scale", "smkoe", "simulate"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown scale 'smkoe'" in err
    assert "did you mean 'smoke'" in err


def test_unknown_forecast_policy_suggests(capsys):
    rc = main(["--scale", "smoke", "forecast", "--mix", "mix1", "lhybird"])
    assert rc == 2
    assert "did you mean 'lhybrid'" in capsys.readouterr().err


def test_campaign_requires_out_or_resume(capsys):
    rc = main(["campaign", "--scale", "smoke"])
    assert rc == 2
    assert "--out" in capsys.readouterr().err


def test_campaign_unknown_experiment_suggests(tmp_path, capsys):
    rc = main(
        ["campaign", "--scale", "smoke", "--out", str(tmp_path / "c"),
         "--experiments", "fig10"]
    )
    assert rc == 2
    assert "did you mean 'fig10a'" in capsys.readouterr().err


def test_campaign_bad_chaos_spec(tmp_path, capsys):
    rc = main(
        ["campaign", "--scale", "smoke", "--out", str(tmp_path / "c"),
         "--chaos", "p=banana"]
    )
    assert rc == 2
    assert "chaos" in capsys.readouterr().err
