"""Cross-validation of the vectorised aging model against a naive
per-event reference implementation.

The production model collapses each frame's wear to one scalar (valid
under intra-frame leveling) and resolves byte-death boundaries with
vector arithmetic; the reference below distributes every single byte
write explicitly.  Both must agree on live-byte counts for any write
schedule — this is the strongest correctness check the forecaster
rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EnduranceConfig
from repro.forecast.aging import AgingModel


def reference_live_count(endurance_sorted: np.ndarray, total_bytes: float) -> int:
    """Distribute ``total_bytes`` one unit at a time, evenly over the
    currently-live bytes (what perfect leveling converges to)."""
    wear = 0.0
    remaining = float(total_bytes)
    values = list(endurance_sorted)
    live = len(values)
    dead = 0
    while remaining > 1e-9 and live > 0:
        next_death = values[dead] - wear
        budget_to_death = next_death * live
        if remaining < budget_to_death:
            wear += remaining / live
            remaining = 0.0
        else:
            remaining -= budget_to_death
            wear = values[dead]
            dead += 1
            live -= 1
        # consume ties
        while dead < len(values) and values[dead] <= wear:
            dead += 1
            live -= 1
    return live


@given(
    total=st.floats(min_value=0.0, max_value=5e5),
    seed=st.integers(0, 1000),
    cv=st.floats(min_value=0.05, max_value=0.4),
)
@settings(max_examples=80, deadline=None)
def test_vectorised_matches_reference_single_frame(total, seed, cv):
    cfg = EnduranceConfig(mean=1000.0, cv=cv, seed=seed)
    model = AgingModel(cfg, 1, 1)
    model.advance(np.array([[total]]), 1.0)
    expected = reference_live_count(model.endurance[0], total)
    assert model.live_counts()[0] == expected


@given(
    chunks=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=8),
    seed=st.integers(0, 500),
)
@settings(max_examples=60, deadline=None)
def test_incremental_advance_equals_one_shot(chunks, seed):
    """Aging in k steps must equal aging once with the summed volume."""
    cfg = EnduranceConfig(mean=1000.0, cv=0.2, seed=seed)
    stepped = AgingModel(cfg, 1, 1)
    for chunk in chunks:
        stepped.advance(np.array([[chunk]]), 1.0)
    oneshot = AgingModel(cfg, 1, 1)
    oneshot.advance(np.array([[sum(chunks)]]), 1.0)
    assert stepped.live_counts()[0] == oneshot.live_counts()[0]
    assert stepped.wear[0] == pytest.approx(oneshot.wear[0], rel=1e-9, abs=1e-6)


@given(
    rates=st.lists(st.floats(min_value=0.0, max_value=200.0), min_size=4, max_size=4),
    seed=st.integers(0, 300),
)
@settings(max_examples=40, deadline=None)
def test_multi_frame_independence(rates, seed):
    """Frames age independently: batching them must equal per-frame."""
    cfg = EnduranceConfig(mean=500.0, cv=0.25, seed=seed)
    batched = AgingModel(cfg, 2, 2)
    batched.advance(np.array(rates).reshape(2, 2), 100.0)
    for i, rate in enumerate(rates):
        solo = AgingModel(cfg, 2, 2)
        single = np.zeros((2, 2))
        single[i // 2, i % 2] = rate
        solo.advance(single, 100.0)
        assert solo.live_counts()[i] == batched.live_counts()[i]
