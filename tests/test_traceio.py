"""Tests for trace file I/O."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import AppTraceGenerator
from repro.workloads.profiles import profile
from repro.workloads.trace import MaterializedTrace, TraceRecord, materialize
from repro.workloads.traceio import (
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
)


def sample_trace(n=200):
    gen = AppTraceGenerator(profile("mcf17").scaled(1 / 32), 2, seed=7)
    return materialize(gen, n)


def test_binary_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.records == trace.records


def test_binary_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(path)


def test_binary_rejects_truncated(tmp_path):
    trace = sample_trace(10)
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_binary_rejects_short_header(tmp_path):
    path = tmp_path / "t.trc"
    path.write_bytes(b"RE")
    with pytest.raises(ValueError, match="truncated header"):
        load_trace(path)


def test_csv_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path)
    assert loaded.records == trace.records


def test_csv_accepts_decimal_and_comments():
    text = io.StringIO("# comment\n5,100,1\n0,0x40,0\n")
    trace = load_trace_csv(text)
    assert trace.records == [TraceRecord(5, 100, True), TraceRecord(0, 64, False)]


def test_csv_rejects_malformed():
    with pytest.raises(ValueError, match="expected 3 fields"):
        load_trace_csv(io.StringIO("1,2\n"))
    with pytest.raises(ValueError, match="negative"):
        load_trace_csv(io.StringIO("-1,5,0\n"))


def test_loaded_trace_drives_simulation(tmp_path):
    """A trace written to disk replays identically through the engine."""
    from repro.core import make_policy
    from repro.engine import Simulation, Workload
    from repro.experiments.common import SMOKE

    scale = SMOKE
    workload = scale.workload("mix1")
    paths = []
    for i, trace in enumerate(workload.traces):
        path = tmp_path / f"core{i}.trc"
        save_trace(trace, path)
        paths.append(path)

    reloaded = scale.workload("mix1")
    reloaded.traces = [load_trace(p) for p in paths]

    epoch = scale.system().dueling.epoch_cycles
    r1 = Simulation(scale.system(), make_policy("bh"), workload).run(epoch, 0)
    r2 = Simulation(scale.system(), make_policy("bh"), reloaded).run(epoch, 0)
    assert r1.stats.llc.hits == r2.stats.llc.hits
    assert r1.stats.llc.nvm_bytes_written == r2.stats.llc.nvm_bytes_written


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**32 - 1),
            st.integers(0, 2**64 - 1),
            st.booleans(),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_binary_roundtrip_arbitrary_records(tmp_path_factory, raw):
    trace = MaterializedTrace([TraceRecord(*r) for r in raw])
    path = tmp_path_factory.mktemp("traces") / "x.trc"
    save_trace(trace, path)
    assert load_trace(path).records == trace.records


# ----------------------------------------------------------------------
# integrity validation (TraceFormatError, validate_trace, file_sha256)

def test_errors_are_trace_format_errors(tmp_path):
    from repro.workloads.traceio import TraceFormatError

    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace(path)
    assert excinfo.value.path == str(path)
    assert TraceFormatError.__bases__ == (ValueError,)  # back-compat


def test_rejects_wrong_version(tmp_path):
    import struct

    from repro.workloads.traceio import TraceFormatError

    path = tmp_path / "v9.trc"
    path.write_bytes(struct.pack("<8sII", b"REPROTRC", 9, 0))
    with pytest.raises(TraceFormatError, match="unsupported version"):
        load_trace(path)


def test_rejects_count_bytes_mismatch(tmp_path):
    """The declared record count must match the bytes actually present."""
    import struct

    from repro.workloads.traceio import TraceFormatError, validate_trace

    record = struct.pack("<IQB", 1, 64, 0)
    # header claims 3 records, file holds 2 -> truncated
    short = tmp_path / "short.trc"
    short.write_bytes(struct.pack("<8sII", b"REPROTRC", 1, 3) + record * 2)
    with pytest.raises(TraceFormatError, match="truncated records"):
        validate_trace(short)
    with pytest.raises(TraceFormatError, match="truncated records"):
        load_trace(short)

    # header claims 1 record, file holds 2 -> trailing data is an error
    # too (a silent short read would hide generator/converter bugs)
    extra = tmp_path / "extra.trc"
    extra.write_bytes(struct.pack("<8sII", b"REPROTRC", 1, 1) + record * 2)
    with pytest.raises(TraceFormatError, match="trailing data"):
        validate_trace(extra)


def test_validate_trace_accepts_good_file(tmp_path):
    from repro.workloads.traceio import validate_trace

    trace = sample_trace(25)
    path = tmp_path / "ok.trc"
    save_trace(trace, path)
    version, count = validate_trace(path)
    assert version == 1 and count == 25


def test_file_sha256_matches_hashlib(tmp_path):
    import hashlib

    from repro.workloads.traceio import file_sha256

    path = tmp_path / "blob.bin"
    path.write_bytes(b"x" * 100_000)
    assert file_sha256(path) == hashlib.sha256(b"x" * 100_000).hexdigest()


# ----------------------------------------------------------------------
# stat-keyed sha256 memo

def test_file_sha256_cached_hashes_once_per_stat(tmp_path, monkeypatch):
    import repro.workloads.traceio as traceio

    path = tmp_path / "blob.bin"
    path.write_bytes(b"a" * 1000)
    expected = traceio.file_sha256(path)

    calls = []
    real = traceio.file_sha256

    def counting(p):
        calls.append(p)
        return real(p)

    monkeypatch.setattr(traceio, "file_sha256", counting)
    assert traceio.file_sha256_cached(path) == expected
    assert traceio.file_sha256_cached(path) == expected
    assert len(calls) == 1, "second lookup must come from the memo"


def test_file_sha256_cached_invalidates_on_change(tmp_path):
    import os

    from repro.workloads.traceio import file_sha256, file_sha256_cached

    path = tmp_path / "blob.bin"
    path.write_bytes(b"before")
    assert file_sha256_cached(path) == file_sha256(path)

    # same size, different bytes: the mtime_ns change must invalidate
    path.write_bytes(b"after!")
    os.utime(path)  # ensure a strictly newer timestamp either way
    assert file_sha256_cached(path) == file_sha256(path)

    # different size invalidates too
    path.write_bytes(b"a much longer blob")
    assert file_sha256_cached(path) == file_sha256(path)


def test_file_sha256_cached_invalidates_within_one_mtime_tick(tmp_path):
    """An atomic rewrite (same size, same forced mtime) lands on a new
    inode, which alone must bust the memo — the stat key that only
    covered (size, mtime) served stale digests for rewrites faster
    than the filesystem timestamp granularity."""
    import os

    from repro.fsio.durable import atomic_write_bytes
    from repro.workloads.traceio import file_sha256, file_sha256_cached

    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"version-A")
    first = file_sha256_cached(path)
    assert first == file_sha256(path)
    stat = path.stat()

    # rewrite atomically with identical size, then pin mtime back so
    # (size, mtime_ns) is byte-for-byte the same stat key as before
    atomic_write_bytes(path, b"version-B")
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    after = path.stat()
    assert after.st_size == stat.st_size
    assert after.st_mtime_ns == stat.st_mtime_ns
    assert after.st_ino != stat.st_ino, "atomic replace must change inode"

    second = file_sha256_cached(path)
    assert second == file_sha256(path)
    assert second != first


def test_file_sha256_cached_missing_file_raises(tmp_path):
    from repro.workloads.traceio import file_sha256_cached

    with pytest.raises(OSError):
        file_sha256_cached(tmp_path / "nope.bin")


# ----------------------------------------------------------------------
# zero-copy mmap loader

def test_mmap_loader_equivalent_to_struct_loader(tmp_path):
    from repro.workloads.traceio import load_trace_mmap

    trace = sample_trace(500)
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    struct_loaded = load_trace(path)
    mmap_loaded = load_trace_mmap(path)
    assert len(mmap_loaded) == len(struct_loaded)
    assert mmap_loaded.records == struct_loaded.records
    # the replay view the engine indexes must be native Python ints
    gaps, addrs, writes = mmap_loaded.replay_columns()
    assert type(gaps[0]) is int and type(addrs[0]) is int
    assert type(writes[0]) is bool
    assert (gaps, addrs, writes) == struct_loaded.replay_columns()


def test_mmap_loader_rejects_what_struct_loader_rejects(tmp_path):
    import struct

    from repro.workloads.traceio import TraceFormatError, load_trace_mmap

    garbage = tmp_path / "bad.trc"
    garbage.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(TraceFormatError, match="not a repro trace"):
        load_trace_mmap(garbage)

    short = tmp_path / "short.trc"
    short.write_bytes(b"RE")
    with pytest.raises(TraceFormatError, match="truncated header"):
        load_trace_mmap(short)

    trace = sample_trace(10)
    truncated = tmp_path / "trunc.trc"
    save_trace(trace, truncated)
    truncated.write_bytes(truncated.read_bytes()[:-5])
    with pytest.raises(TraceFormatError, match="truncated"):
        load_trace_mmap(truncated)

    wrong_version = tmp_path / "v9.trc"
    wrong_version.write_bytes(struct.pack("<8sII", b"REPROTRC", 9, 0))
    with pytest.raises(TraceFormatError, match="unsupported version"):
        load_trace_mmap(wrong_version)


def test_mmap_loaded_trace_drives_simulation_identically(tmp_path):
    """Digest-level equivalence: an mmap-loaded workload produces the
    same simulation statistics as the in-memory one, bit for bit."""
    from repro.bench.golden import simulation_digest
    from repro.core import make_policy
    from repro.engine import Simulation, Workload
    from repro.experiments.common import SMOKE
    from repro.workloads.mixes import mix_profiles
    from repro.workloads.traceio import load_trace_mmap

    # Built directly (not via SMOKE.workload) so the two workloads are
    # distinct objects — the shared cache would alias them.
    profiles = [p.scaled(SMOKE.factor) for p in mix_profiles("mix1")]
    records = SMOKE.trace_records_per_core
    workload = Workload(profiles, seed=0, trace_records_per_core=records)
    paths = []
    for i, trace in enumerate(workload.traces):
        path = tmp_path / f"core{i}.trc"
        save_trace(trace, path)
        paths.append(path)
    reloaded = Workload(profiles, seed=0, trace_records_per_core=records)
    reloaded.traces = [load_trace_mmap(p) for p in paths]

    epoch = SMOKE.system().dueling.epoch_cycles
    r1 = Simulation(SMOKE.system(), make_policy("cp_sd"), workload).run(epoch, 0)
    r2 = Simulation(SMOKE.system(), make_policy("cp_sd"), reloaded).run(epoch, 0)
    assert simulation_digest(r1) == simulation_digest(r2)
