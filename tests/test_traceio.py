"""Tests for trace file I/O."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import AppTraceGenerator
from repro.workloads.profiles import profile
from repro.workloads.trace import MaterializedTrace, TraceRecord, materialize
from repro.workloads.traceio import (
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
)


def sample_trace(n=200):
    gen = AppTraceGenerator(profile("mcf17").scaled(1 / 32), 2, seed=7)
    return materialize(gen, n)


def test_binary_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.records == trace.records


def test_binary_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(path)


def test_binary_rejects_truncated(tmp_path):
    trace = sample_trace(10)
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_binary_rejects_short_header(tmp_path):
    path = tmp_path / "t.trc"
    path.write_bytes(b"RE")
    with pytest.raises(ValueError, match="truncated header"):
        load_trace(path)


def test_csv_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path)
    assert loaded.records == trace.records


def test_csv_accepts_decimal_and_comments():
    text = io.StringIO("# comment\n5,100,1\n0,0x40,0\n")
    trace = load_trace_csv(text)
    assert trace.records == [TraceRecord(5, 100, True), TraceRecord(0, 64, False)]


def test_csv_rejects_malformed():
    with pytest.raises(ValueError, match="expected 3 fields"):
        load_trace_csv(io.StringIO("1,2\n"))
    with pytest.raises(ValueError, match="negative"):
        load_trace_csv(io.StringIO("-1,5,0\n"))


def test_loaded_trace_drives_simulation(tmp_path):
    """A trace written to disk replays identically through the engine."""
    from repro.core import make_policy
    from repro.engine import Simulation, Workload
    from repro.experiments.common import SMOKE

    scale = SMOKE
    workload = scale.workload("mix1")
    paths = []
    for i, trace in enumerate(workload.traces):
        path = tmp_path / f"core{i}.trc"
        save_trace(trace, path)
        paths.append(path)

    reloaded = scale.workload("mix1")
    reloaded.traces = [load_trace(p) for p in paths]

    epoch = scale.system().dueling.epoch_cycles
    r1 = Simulation(scale.system(), make_policy("bh"), workload).run(epoch, 0)
    r2 = Simulation(scale.system(), make_policy("bh"), reloaded).run(epoch, 0)
    assert r1.stats.llc.hits == r2.stats.llc.hits
    assert r1.stats.llc.nvm_bytes_written == r2.stats.llc.nvm_bytes_written


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**32 - 1),
            st.integers(0, 2**64 - 1),
            st.booleans(),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_binary_roundtrip_arbitrary_records(tmp_path_factory, raw):
    trace = MaterializedTrace([TraceRecord(*r) for r in raw])
    path = tmp_path_factory.mktemp("traces") / "x.trc"
    save_trace(trace, path)
    assert load_trace(path).records == trace.records


# ----------------------------------------------------------------------
# integrity validation (TraceFormatError, validate_trace, file_sha256)

def test_errors_are_trace_format_errors(tmp_path):
    from repro.workloads.traceio import TraceFormatError

    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace(path)
    assert excinfo.value.path == str(path)
    assert TraceFormatError.__bases__ == (ValueError,)  # back-compat


def test_rejects_wrong_version(tmp_path):
    import struct

    from repro.workloads.traceio import TraceFormatError

    path = tmp_path / "v9.trc"
    path.write_bytes(struct.pack("<8sII", b"REPROTRC", 9, 0))
    with pytest.raises(TraceFormatError, match="unsupported version"):
        load_trace(path)


def test_rejects_count_bytes_mismatch(tmp_path):
    """The declared record count must match the bytes actually present."""
    import struct

    from repro.workloads.traceio import TraceFormatError, validate_trace

    record = struct.pack("<IQB", 1, 64, 0)
    # header claims 3 records, file holds 2 -> truncated
    short = tmp_path / "short.trc"
    short.write_bytes(struct.pack("<8sII", b"REPROTRC", 1, 3) + record * 2)
    with pytest.raises(TraceFormatError, match="truncated records"):
        validate_trace(short)
    with pytest.raises(TraceFormatError, match="truncated records"):
        load_trace(short)

    # header claims 1 record, file holds 2 -> trailing data is an error
    # too (a silent short read would hide generator/converter bugs)
    extra = tmp_path / "extra.trc"
    extra.write_bytes(struct.pack("<8sII", b"REPROTRC", 1, 1) + record * 2)
    with pytest.raises(TraceFormatError, match="trailing data"):
        validate_trace(extra)


def test_validate_trace_accepts_good_file(tmp_path):
    from repro.workloads.traceio import validate_trace

    trace = sample_trace(25)
    path = tmp_path / "ok.trc"
    save_trace(trace, path)
    version, count = validate_trace(path)
    assert version == 1 and count == 25


def test_file_sha256_matches_hashlib(tmp_path):
    import hashlib

    from repro.workloads.traceio import file_sha256

    path = tmp_path / "blob.bin"
    path.write_bytes(b"x" * 100_000)
    assert file_sha256(path) == hashlib.sha256(b"x" * 100_000).hexdigest()
