"""Tests for trace file I/O."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import AppTraceGenerator
from repro.workloads.profiles import profile
from repro.workloads.trace import MaterializedTrace, TraceRecord, materialize
from repro.workloads.traceio import (
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
)


def sample_trace(n=200):
    gen = AppTraceGenerator(profile("mcf17").scaled(1 / 32), 2, seed=7)
    return materialize(gen, n)


def test_binary_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.records == trace.records


def test_binary_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trc"
    path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(path)


def test_binary_rejects_truncated(tmp_path):
    trace = sample_trace(10)
    path = tmp_path / "t.trc"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_binary_rejects_short_header(tmp_path):
    path = tmp_path / "t.trc"
    path.write_bytes(b"RE")
    with pytest.raises(ValueError, match="truncated header"):
        load_trace(path)


def test_csv_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "t.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path)
    assert loaded.records == trace.records


def test_csv_accepts_decimal_and_comments():
    text = io.StringIO("# comment\n5,100,1\n0,0x40,0\n")
    trace = load_trace_csv(text)
    assert trace.records == [TraceRecord(5, 100, True), TraceRecord(0, 64, False)]


def test_csv_rejects_malformed():
    with pytest.raises(ValueError, match="expected 3 fields"):
        load_trace_csv(io.StringIO("1,2\n"))
    with pytest.raises(ValueError, match="negative"):
        load_trace_csv(io.StringIO("-1,5,0\n"))


def test_loaded_trace_drives_simulation(tmp_path):
    """A trace written to disk replays identically through the engine."""
    from repro.core import make_policy
    from repro.engine import Simulation, Workload
    from repro.experiments.common import SMOKE

    scale = SMOKE
    workload = scale.workload("mix1")
    paths = []
    for i, trace in enumerate(workload.traces):
        path = tmp_path / f"core{i}.trc"
        save_trace(trace, path)
        paths.append(path)

    reloaded = scale.workload("mix1")
    reloaded.traces = [load_trace(p) for p in paths]

    epoch = scale.system().dueling.epoch_cycles
    r1 = Simulation(scale.system(), make_policy("bh"), workload).run(epoch, 0)
    r2 = Simulation(scale.system(), make_policy("bh"), reloaded).run(epoch, 0)
    assert r1.stats.llc.hits == r2.stats.llc.hits
    assert r1.stats.llc.nvm_bytes_written == r2.stats.llc.nvm_bytes_written


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**32 - 1),
            st.integers(0, 2**64 - 1),
            st.booleans(),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_binary_roundtrip_arbitrary_records(tmp_path_factory, raw):
    trace = MaterializedTrace([TraceRecord(*r) for r in raw])
    path = tmp_path_factory.mktemp("traces") / "x.trc"
    save_trace(trace, path)
    assert load_trace(path).records == trace.records
