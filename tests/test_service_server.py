"""The standing service: job lifecycle, telemetry, audit, CLI."""

import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.service.client import ServiceClient, ServiceError, resolve_endpoint
from repro.service.server import (
    DONE,
    LEDGER_NAME,
    QUEUED,
    RUNNING,
    ServiceServer,
    read_ledger,
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One server with one completed smoke job, shared by the module.

    Job execution dominates the cost of these tests; everything that
    only *reads* state piggybacks on this fixture.
    """
    root = tmp_path_factory.mktemp("service") / "root"
    server = ServiceServer(root, jobs=1)
    server.start()
    client = ServiceClient(server.endpoint)
    job_id = client.submit(experiments=["tables"], scale="smoke")
    record = client.watch(job_id, timeout=300.0)
    assert record["status"] == DONE, record
    yield server, client, job_id
    server.stop()


# ----------------------------------------------------------------------
# job lifecycle

def test_job_completes_with_full_report(service):
    _server, client, job_id = service
    record = client.status(job_id)
    assert record["status"] == DONE
    report = record["report"]
    assert report["completed"] == report["total"] > 0
    assert report["failed"] == 0
    assert record["started_ts"] >= record["submitted_ts"]
    assert record["finished_ts"] >= record["started_ts"]


def test_watch_streams_unit_events_in_order(service):
    _server, client, job_id = service
    events = []
    client.watch(job_id, on_event=events.append, timeout=60.0)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "job_submitted"
    assert kinds[-1] == "job_done"
    assert kinds.count("unit_done") == client.status(job_id)["report"]["completed"]
    # Events are seq-stamped in order (job_submitted predates the log).
    seqs = [e["seq"] for e in events if "seq" in e]
    assert seqs == sorted(seqs)


def test_watch_from_seq_skips_replayed_events(service):
    _server, client, job_id = service
    events = []
    client.watch(job_id, on_event=events.append, from_seq=3, timeout=60.0)
    full = []
    client.watch(job_id, on_event=full.append, timeout=60.0)
    assert len(full) - len(events) == 3


def test_resume_job_serves_completed_units_from_manifest(service):
    _server, client, job_id = service
    before = client.status(job_id)["report"]
    assert client.resume(job_id) == job_id
    record = client.watch(job_id, timeout=300.0)
    assert record["status"] == DONE
    # Every unit was already complete on disk: nothing recomputed.
    assert record["report"]["skipped"] == before["total"]
    assert record["report"]["completed"] == 0


def test_submit_validates_experiments(service):
    _server, client, _job = service
    with pytest.raises(ServiceError, match="unknown experiments"):
        client.submit(experiments=["not_an_experiment"])


def test_status_unknown_job_is_an_error(service):
    _server, client, _job = service
    with pytest.raises(ServiceError, match="no such job"):
        client.status("job-9999")


def test_status_lists_jobs_and_cache_summary(service):
    server, client, job_id = service
    jobs = client.status()
    assert any(j["job_id"] == job_id for j in jobs)
    # The raw wire response also carries the shared-cache summary.
    import socket as socket_module

    from repro.service.protocol import LineReader, recv_message, send_message

    sock = socket_module.create_connection((server.host, server.port))
    try:
        send_message(sock, {"type": "status"})
        response = recv_message(LineReader(sock), timeout=30.0)
    finally:
        sock.close()
    summary = response["result_cache"]
    assert summary["entries"] > 0 and summary["bytes"] > 0


# ----------------------------------------------------------------------
# telemetry: one metrics spine, two transports

def test_metrics_exposes_scheduler_and_storage_counters(service):
    _server, client, job_id = service
    body = client.metrics()
    assert f'repro_scheduler_completed{{record="{job_id}"}}' in body
    assert "repro_scheduler_shard_deaths" in body
    assert "repro_storage_" in body
    assert "# HELP repro_scheduler_completed" in body


def test_http_metrics_agrees_with_json_protocol(service):
    server, client, _job = service
    http = urllib.request.urlopen(
        f"http://{server.endpoint}/metrics", timeout=30
    )
    assert http.status == 200
    assert http.headers["Content-Type"].startswith("text/plain")
    assert http.read().decode("utf-8") == client.metrics()


def test_http_unknown_path_404s(service):
    server, _client, _job = service
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"http://{server.endpoint}/nope", timeout=30)
    assert excinfo.value.code == 404


def test_metrics_agrees_with_file_exporter(service):
    """The endpoint is load_records+to_prometheus over the job health
    records — the same path `repro export --format prom` takes."""
    from repro.harness.scheduler import HEALTH_RECORD_NAME
    from repro.metrics.export import load_records, to_prometheus

    server, client, job_id = service
    health = server.root / "jobs" / job_id / "campaign" / HEALTH_RECORD_NAME
    records = load_records([health])
    for record in records:
        record.meta.setdefault("task_id", job_id)
    assert to_prometheus(records) == client.metrics()


# ----------------------------------------------------------------------
# crash resume and durability

def test_ledger_is_a_checksummed_envelope(service):
    server, _client, job_id = service
    document = json.loads((server.root / LEDGER_NAME).read_text())
    assert document["schema"] == "repro-service-ledger/1"
    assert read_ledger(server.root)[job_id]["status"] == DONE


def test_server_restart_requeues_running_jobs(tmp_path):
    """A job the server died while RUNNING re-queues at startup."""
    root = tmp_path / "root"
    server = ServiceServer(root)
    job_id = server._submit(["tables"], "smoke")
    with server._lock:
        server._ledger[job_id]["status"] = RUNNING
        server._save_job_locked(job_id)
        server._queue.clear()
    # A fresh server over the same root (no network needed to check).
    reborn = ServiceServer(root)
    assert reborn._ledger[job_id]["status"] == QUEUED
    assert job_id in reborn._queue


def test_watch_after_restart_replays_from_disk(service, tmp_path):
    """Event buffers rebuild from the on-disk log, not process memory."""
    server, client, job_id = service
    fresh = ServiceServer(server.root)
    replayed = fresh._buffer_for(job_id)
    kinds = [e["event"] for e in replayed]
    assert "job_started" in kinds and "job_done" in kinds


def test_resolve_endpoint_accepts_announce_file(service):
    server, _client, _job = service
    announce = server.root / "service.announce.json"
    assert resolve_endpoint(str(announce)) == server.endpoint
    with pytest.raises(ValueError):
        resolve_endpoint("not an endpoint at all")


def test_doctor_audits_service_root_clean(service):
    from repro.fsio.doctor import run_doctor

    server, _client, job_id = service
    report = run_doctor([server.root])
    assert report.ok, [f.line() for f in report.findings]
    checked = "\n".join(report.checked)
    assert LEDGER_NAME in checked
    assert "events.jsonl" in checked
    assert f"{job_id}" in checked


def test_doctor_flags_torn_event_tail_as_warning(service):
    from repro.fsio.doctor import run_doctor

    server, _client, job_id = service
    log = server.root / "jobs" / job_id / "events.jsonl"
    original = log.read_bytes()
    try:
        with open(log, "ab") as fh:
            fh.write(b'{"torn mid-append')
        report = run_doctor([log])
        assert report.ok  # torn tail is survivable, not corruption
        assert any(
            f.defect == "truncated" and f.severity == "warn"
            for f in report.findings
        )
    finally:
        log.write_bytes(original)


def test_doctor_flags_corrupt_ledger(tmp_path):
    from repro.fsio.doctor import run_doctor

    root = tmp_path / "root"
    ServiceServer(root)._save_ledger_locked()
    ledger = root / LEDGER_NAME
    ledger.write_text(ledger.read_text().replace('"jobs"', '"j0bs"'))
    report = run_doctor([root])
    assert not report.ok
    assert any(f.category == "service-ledger" for f in report.errors)


# ----------------------------------------------------------------------
# CLI surface

def test_cli_status_reports_campaign_and_shards(tmp_path, capsys):
    from repro.harness import CampaignSettings, run_campaign
    from repro.service.shard import LocalShardSet

    with LocalShardSet(2, tmp_path / "fleet") as fleet:
        run_campaign(
            tmp_path / "camp",
            scale="smoke",
            experiments=("tables",),
            settings=CampaignSettings(shards=fleet.endpoints, retries=0),
        )
    assert main(["status", str(tmp_path / "camp")]) == 0
    out = capsys.readouterr().out
    assert "complete" in out
    assert "shard-0" in out and "shard-1" in out
    assert "last run:" in out and "completed=" in out


def test_cli_campaign_rejects_bad_shard_specs(tmp_path):
    assert main([
        "campaign", "--out", str(tmp_path / "camp"),
        "--scale", "smoke",
        "--shards", "nonsense",
    ]) == 2
    assert main([
        "campaign", "--out", str(tmp_path / "camp"),
        "--scale", "smoke",
        "--shards", "127.0.0.1:9,127.0.0.1:10",
        "--isolate-tasks",
    ]) == 2


def test_cli_serve_submit_watch_roundtrip(tmp_path, capsys):
    """The CLI path end to end: serve in a thread, submit --watch."""
    root = tmp_path / "root"
    server = ServiceServer(root, jobs=1)
    server.start()
    try:
        endpoint = server.endpoint
        rc = main([
            "submit", "--endpoint", endpoint,
            "--experiments", "tables", "--scale", "smoke",
            "--watch",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job-0001" in out
        assert "done" in out
        assert main(["status", "--endpoint", endpoint]) == 0
        out = capsys.readouterr().out
        assert "job-0001" in out
        assert main(["watch", "job-0001", "--endpoint", endpoint]) == 0
    finally:
        server.stop()
