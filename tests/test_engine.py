"""Tests for the Workload bundle and the Simulation engine."""

import pytest

from repro.config import SystemConfig
from repro.core import make_policy
from repro.engine import Simulation, Workload, run_policy_on_mix
from repro.experiments.common import SMOKE
from repro.workloads import mix_profiles


def small_workload(mix="mix1", records=5000):
    profiles = [p.scaled(1 / 32) for p in mix_profiles(mix)]
    return Workload(profiles, seed=0, trace_records_per_core=records)


def small_config():
    return SMOKE.system()


def test_workload_builds_four_traces():
    wl = small_workload()
    assert wl.n_cores == 4
    assert len(wl.traces) == 4
    assert all(len(t) == 5000 for t in wl.traces)


def test_workload_from_mix():
    wl = Workload.from_mix("mix2", trace_records_per_core=1000)
    assert wl.n_cores == 4


def test_workload_requires_profiles():
    with pytest.raises(ValueError):
        Workload([])


def test_simulation_core_count_checked():
    wl = small_workload()
    config = SystemConfig()  # 4 cores, OK
    Simulation(config, make_policy("bh"), wl)
    from dataclasses import replace

    bad = replace(config, cores=replace(config.cores, n_cores=2))
    with pytest.raises(ValueError):
        Simulation(bad, make_policy("bh"), wl)


def test_run_produces_consistent_result():
    config = small_config()
    wl = small_workload()
    sim = Simulation(config, make_policy("cp_sd"), wl)
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=3 * epoch, warmup_cycles=epoch)
    assert res.cycles == pytest.approx(2 * epoch)
    assert res.seconds == pytest.approx(2 * epoch / config.latency.cpu_freq_hz)
    assert len(res.ipcs) == 4
    assert res.mean_ipc > 0
    llc = res.stats.llc
    assert llc.accesses > 0
    assert llc.hits == llc.gets_hits + llc.getx_hits
    assert llc.hits <= llc.accesses
    assert 0.0 <= res.hit_rate <= 1.0


def test_run_requires_cycles_beyond_warmup():
    sim = Simulation(small_config(), make_policy("bh"), small_workload())
    with pytest.raises(ValueError):
        sim.run(cycles=100, warmup_cycles=100)


def test_epoch_records_align_with_dueling():
    config = small_config()
    wl = small_workload()
    sim = Simulation(config, make_policy("cp_sd"), wl)
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=4 * epoch, warmup_cycles=0)
    assert len(res.epochs) >= 3
    for i, record in enumerate(res.epochs):
        assert record.index == i
        assert record.end_cycle == pytest.approx((i + 1) * epoch)
        assert record.winner_cpth in config.dueling.cpth_candidates
        assert record.hits >= 0 and record.nvm_bytes_written >= 0


def test_runs_are_resumable():
    """Two consecutive run() calls continue the same simulation."""
    config = small_config()
    wl = small_workload()
    sim = Simulation(config, make_policy("bh"), wl)
    epoch = config.dueling.epoch_cycles
    first = sim.run(cycles=epoch, warmup_cycles=0)
    resident_before = set(sim.hierarchy.llc.resident_blocks())
    second = sim.run(cycles=epoch, warmup_cycles=0)
    # cache contents persisted: warm-start hit rate is higher
    assert second.hit_rate >= first.hit_rate * 0.8
    assert resident_before  # something was cached
    # epoch numbering continues across runs
    assert second.epochs[0].index > first.epochs[-1].index - 1


def test_same_workload_same_policy_is_deterministic():
    config = small_config()
    epoch = config.dueling.epoch_cycles
    results = []
    for _ in range(2):
        wl = small_workload()
        sim = Simulation(config, make_policy("cp_sd"), wl)
        res = sim.run(cycles=2 * epoch, warmup_cycles=0)
        results.append(
            (res.stats.llc.hits, res.stats.llc.nvm_bytes_written, res.mean_ipc)
        )
    assert results[0] == results[1]


def test_policies_see_identical_reference_streams():
    """The workload replays byte-identical traces for every policy."""
    config = small_config()
    epoch = config.dueling.epoch_cycles
    wl = small_workload()
    r1 = Simulation(config, make_policy("bh"), wl).run(epoch, 0)
    wl2 = small_workload()
    r2 = Simulation(config, make_policy("lhybrid"), wl2).run(epoch, 0)
    # same number of demand accesses reach the hierarchy front end
    a1 = sum(c.accesses for c in r1.stats.cores)
    a2 = sum(c.accesses for c in r2.stats.cores)
    assert a1 > 0
    # policies change latencies (and thus pacing) but not the stream
    assert wl.traces[0].records[:100] == wl2.traces[0].records[:100]


def test_run_policy_on_mix_helper():
    config = small_config()
    wl = small_workload()
    res = run_policy_on_mix(config, make_policy("bh"), wl, cycles=100_000)
    assert res.stats.llc.accesses > 0
