"""Tests for the NVM aging model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EnduranceConfig
from repro.forecast.aging import AgingModel


def model(n_sets=4, ways=2, cv=0.2, granularity="byte", mean=1000.0):
    return AgingModel(
        EnduranceConfig(mean=mean, cv=cv, seed=42),
        n_sets,
        ways,
        granularity=granularity,
    )


def test_initial_state_full_capacity():
    m = model()
    assert m.effective_capacity() == 1.0
    assert (m.live_counts() == 64).all()
    assert m.capacities().shape == (4, 2)


def test_capacity_decreases_monotonically():
    m = model()
    rates = np.full((4, 2), 100.0)
    caps = [m.effective_capacity()]
    for _ in range(12):
        m.advance(rates, dt_seconds=100.0)
        caps.append(m.effective_capacity())
    assert all(a >= b for a, b in zip(caps, caps[1:]))
    assert caps[-1] < caps[0]


def test_uniform_wear_kills_weakest_bytes_first():
    m = model(n_sets=1, ways=1)
    # push wear just past the weakest byte of the frame
    weakest = m.endurance[0, 0]
    m.advance(np.array([[1.0]]), dt_seconds=weakest * 64 + 64)
    assert m.live_counts()[0] <= 63


def test_byte_deaths_accelerate_survivor_wear():
    """Writing B bytes to fewer live bytes wears each byte more."""
    m = model(n_sets=1, ways=1, mean=100.0)
    total = np.array([[100.0 * 64 * 0.9]])
    m.advance(total, 1.0)
    live_after_one = m.live_counts()[0]
    # same volume again: deaths accelerate
    m.advance(total, 1.0)
    assert m.live_counts()[0] < live_after_one


def test_zero_rate_changes_nothing():
    m = model()
    m.advance(np.zeros((4, 2)), dt_seconds=1e12)
    assert m.effective_capacity() == 1.0


def test_dead_frames_absorb_nothing():
    m = model(n_sets=1, ways=1, mean=10.0)
    huge = np.array([[1e9]])
    m.advance(huge, 1.0)
    assert m.live_counts()[0] == 0
    wear_before = m.wear.copy()
    m.advance(huge, 1.0)
    assert (m.wear == wear_before).all()


def test_frame_granularity_death():
    m = model(n_sets=1, ways=1, granularity="frame", mean=100.0)
    e_min = m.endurance[0, 0]
    m.advance(np.array([[1.0]]), dt_seconds=e_min - 1)
    assert m.live_counts()[0] == 64
    m.advance(np.array([[1.0]]), dt_seconds=2)
    assert m.live_counts()[0] == 0


def test_advance_validation():
    m = model()
    with pytest.raises(ValueError):
        m.advance(np.zeros((4, 2)), -1.0)
    with pytest.raises(ValueError):
        m.advance(np.zeros((3, 2)), 1.0)


def test_bad_granularity():
    with pytest.raises(ValueError):
        AgingModel(EnduranceConfig(), 2, 2, granularity="word")


def test_time_to_capacity_bracket():
    m = model(mean=1000.0)
    rates = np.full((4, 2), 10.0)
    dt = m.time_to_capacity(rates, 0.9, max_seconds=1e9)
    assert dt is not None and dt > 0
    probe = m.clone()
    probe.advance(rates, dt)
    assert probe.effective_capacity() <= 0.905
    # original untouched
    assert m.effective_capacity() == 1.0


def test_time_to_capacity_unreachable():
    m = model(mean=1e12)
    rates = np.full((4, 2), 1e-6)
    assert m.time_to_capacity(rates, 0.5, max_seconds=1e6) is None


def test_time_to_capacity_already_there():
    m = model(mean=10.0)
    m.advance(np.full((4, 2), 1e9), 1.0)
    assert m.time_to_capacity(np.ones((4, 2)), 0.99, 1e9) == 0.0


def test_clone_independent():
    m = model()
    c = m.clone()
    c.advance(np.full((4, 2), 1e6), 1e6)
    assert m.effective_capacity() == 1.0
    assert c.effective_capacity() < 1.0


def test_frame_vs_byte_disabling_capacity_gap():
    """Frame-disabling loses capacity much faster at equal byte wear —
    the mechanism behind Fig. 10c."""
    byte_m = model(n_sets=8, ways=4, granularity="byte", mean=100.0)
    frame_m = model(n_sets=8, ways=4, granularity="frame", mean=100.0)
    byte_rates = np.full((8, 4), 64.0)  # 64 bytes/s spread over the frame
    frame_rates = np.full((8, 4), 1.0)  # 1 frame write/s = same byte volume
    for _ in range(8):
        byte_m.advance(byte_rates, dt_seconds=10.0)
        frame_m.advance(frame_rates, dt_seconds=10.0)
    assert frame_m.effective_capacity() <= byte_m.effective_capacity()


@given(st.floats(min_value=0.1, max_value=1e4), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_capacity_bounded(rate, steps):
    m = model(n_sets=2, ways=2, mean=500.0)
    rates = np.full((2, 2), rate)
    for _ in range(steps):
        m.advance(rates, dt_seconds=50.0)
        assert 0.0 <= m.effective_capacity() <= 1.0
        assert (m.live_counts() >= 0).all()
