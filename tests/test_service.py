"""Service layer: wire protocol, shard fleets, chaos, events, bench gates."""

import json
import socket

import pytest

from repro.bench.service import (
    SERVICE_SPEEDUP_FLOOR,
    _floor_section,
    _results_digest,
    service_floor_errors,
)
from repro.harness import CampaignSettings, run_campaign
from repro.service.dispatch import (
    SHARD_MANIFEST_NAME,
    IsolatedDispatcher,
    LocalPoolDispatcher,
    ShardedDispatcher,
    ShardError,
    make_dispatcher,
)
from repro.service.events import (
    EVENT_SCHEMA,
    EventLog,
    EventLogError,
    read_events,
    scan_events,
)
from repro.service.protocol import (
    LineReader,
    ProtocolError,
    decode_message,
    encode_message,
)
from repro.service.shard import KILL_AT_ENV, LocalShardSet, _KillSwitch, parse_endpoint


# ----------------------------------------------------------------------
# protocol framing

def test_message_roundtrip():
    line = encode_message({"type": "run", "payloads": ["a", "b"]})
    assert line.endswith(b"\n")
    assert decode_message(line.rstrip(b"\n")) == {
        "type": "run", "payloads": ["a", "b"],
    }


@pytest.mark.parametrize("line", [
    b"not json", b"[1, 2]", b'{"no_type": 1}', b'{"type": 7}',
])
def test_decode_rejects_malformed(line):
    with pytest.raises(ProtocolError):
        decode_message(line)


def test_linereader_reassembles_split_lines():
    left, right = socket.socketpair()
    try:
        right.sendall(b'{"type":"a"}\n{"ty')
        reader = LineReader(left)
        assert reader.fill() is True
        assert reader.lines() == [b'{"type":"a"}']
        right.sendall(b'pe":"b"}\n')
        assert reader.fill() is True
        assert reader.lines() == [b'{"type":"b"}']
    finally:
        left.close()
        right.close()


def test_linereader_serves_buffered_lines_after_eof():
    """A 'done' flushed before the peer died must still be delivered."""
    left, right = socket.socketpair()
    try:
        right.sendall(b'{"type":"done"}\n{"type":"tor')
        right.close()
        reader = LineReader(left)
        while reader.fill():
            pass
        assert reader.eof
        assert reader.lines() == [b'{"type":"done"}']
        # The torn tail stays incomplete and is never surfaced.
        assert reader.lines() == []
    finally:
        left.close()


# ----------------------------------------------------------------------
# endpoints and the kill switch

def test_parse_endpoint():
    assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
    for bad in ("no-port", "host:notnum", "host:0", ":123", "h:-1"):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


def test_kill_switch_parses_and_validates(monkeypatch):
    monkeypatch.setenv(KILL_AT_ENV, "done:3")
    switch = _KillSwitch.from_env()
    assert (switch.stage, switch.nth) == ("done", 3)
    for bad in ("done", "nope:1", "done:0", "done:x"):
        monkeypatch.setenv(KILL_AT_ENV, bad)
        with pytest.raises(ValueError):
            _KillSwitch.from_env()
    monkeypatch.delenv(KILL_AT_ENV)
    assert _KillSwitch.from_env().stage is None


# ----------------------------------------------------------------------
# the event log

def test_event_log_roundtrip_and_seq_continuation(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        first = log.append({"event": "job_started"})
        log.append({"event": "unit_done", "task_id": "t1"})
    assert first["seq"] == 0 and "ts" in first
    events = read_events(path)
    assert [e["event"] for e in events] == ["job_started", "unit_done"]
    # Reopening continues the sequence (job resume).
    with EventLog(path) as log:
        third = log.append({"event": "job_done"})
    assert third["seq"] == 2
    assert [e["seq"] for e in read_events(path)] == [0, 1, 2]


def test_event_log_lines_are_envelopes(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.append({"event": "x"})
    line = json.loads(path.read_text().splitlines()[0])
    assert line["schema"] == EVENT_SCHEMA
    assert "sha256" in line


def test_event_log_torn_tail_is_survivable(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.append({"event": "a"})
        log.append({"event": "b"})
    with open(path, "ab") as fh:
        fh.write(b'{"schema": "repro-service-event/1", "torn')  # no newline
    events, tail_defect = scan_events(path)
    assert [e["event"] for e in events] == ["a", "b"]
    assert tail_defect is not None and "unparsable" in tail_defect
    # Non-strict read drops the debris; strict raises.
    assert len(read_events(path)) == 2
    with pytest.raises(EventLogError):
        read_events(path, strict=True)


def test_event_log_middle_corruption_is_an_error(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.append({"event": "a"})
        log.append({"event": "b"})
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"not": "an envelope"}\n'
    path.write_bytes(b"".join(lines))
    with pytest.raises(EventLogError):
        scan_events(path)


def test_event_log_missing_file_is_empty(tmp_path):
    events, tail = scan_events(tmp_path / "absent.jsonl")
    assert events == [] and tail is None


# ----------------------------------------------------------------------
# dispatcher selection and validation

def test_make_dispatcher_selects_by_settings():
    assert isinstance(make_dispatcher(CampaignSettings()), LocalPoolDispatcher)
    assert isinstance(
        make_dispatcher(CampaignSettings(isolate_tasks=True)),
        IsolatedDispatcher,
    )
    sharded = make_dispatcher(CampaignSettings(shards=["127.0.0.1:1234"]))
    assert isinstance(sharded, ShardedDispatcher)
    assert sharded.name == "sharded"


def test_sharded_dispatcher_validates_endpoints():
    with pytest.raises(ShardError):
        ShardedDispatcher([])
    with pytest.raises(ValueError):
        ShardedDispatcher(["not-an-endpoint"])


def test_sharded_dispatch_refuses_unreachable_shard(tmp_path):
    # Grab a port nothing listens on.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(ShardError):
        run_campaign(
            tmp_path / "camp",
            scale="smoke",
            experiments=("tables",),
            settings=CampaignSettings(
                shards=[f"127.0.0.1:{port}"], retries=0
            ),
        )


# ----------------------------------------------------------------------
# sharded campaigns against real subprocess shards

def _result_bytes(directory):
    return {
        p.name: p.read_bytes()
        for p in (directory / "results").glob("*.json")
    }


def _reference_run(tmp_path):
    report = run_campaign(
        tmp_path / "reference",
        scale="smoke",
        experiments=("tables",),
        settings=CampaignSettings(jobs=1, retries=0),
    )
    assert report.ok
    return _result_bytes(tmp_path / "reference")


def test_sharded_campaign_byte_identical_with_manifest(tmp_path):
    from repro.fsio.durable import unwrap_json
    from repro.harness import CampaignManifest
    from repro.harness.scheduler import HEALTH_RECORD_NAME

    reference = _reference_run(tmp_path)
    with LocalShardSet(2, tmp_path / "fleet") as fleet:
        report = run_campaign(
            tmp_path / "camp",
            scale="smoke",
            experiments=("tables",),
            settings=CampaignSettings(shards=fleet.endpoints, retries=0),
        )
    assert report.ok and report.shard_deaths == 0
    assert _result_bytes(tmp_path / "camp") == reference

    # Per-shard wall clocks surface in the report...
    assert set(report.shard_walls) == {"shard-0", "shard-1"}
    assert all(w >= 0.0 for w in report.shard_walls.values())

    # ...in the checksummed shard manifest...
    document = json.loads((tmp_path / "camp" / SHARD_MANIFEST_NAME).read_text())
    summary = unwrap_json(document)
    assert summary["total_shards"] == 2 and summary["deaths"] == 0
    assert sum(s["tasks_done"] for s in summary["shards"]) == report.completed

    # ...mirrored into the campaign manifest for `repro status`...
    manifest = CampaignManifest.load(tmp_path / "camp")
    assert manifest.shards == summary

    # ...and in the campaign health record's scheduler metrics.
    health = unwrap_json(
        json.loads((tmp_path / "camp" / HEALTH_RECORD_NAME).read_text())
    )
    assert health["metrics"]["scheduler.completed"] == report.completed
    assert health["metrics"]["scheduler.shard_deaths"] == 0
    assert health["values"]["shard_walls"] == dict(report.shard_walls)


def test_unsharded_campaign_manifest_has_no_shards_key(tmp_path):
    from repro.fsio.durable import unwrap_json

    run_campaign(
        tmp_path / "camp",
        scale="smoke",
        experiments=("tables",),
        settings=CampaignSettings(jobs=1, retries=0),
    )
    document = unwrap_json(
        json.loads((tmp_path / "camp" / "campaign.json").read_text())
    )
    assert "shards" not in document


@pytest.mark.parametrize("stage", ["run", "start", "done"])
def test_kill_shard_at_stage_loses_nothing(tmp_path, stage):
    """A shard dying at any protocol stage costs zero units.

    Unstarted units requeue to the survivor attempt-free, started
    units are charged a crash attempt and retried; either way the
    merged output is byte-identical to a single-pool run.
    """
    reference = _reference_run(tmp_path)
    env = [None, {KILL_AT_ENV: f"{stage}:1"}]
    with LocalShardSet(2, tmp_path / "fleet", extra_env=env) as fleet:
        report = run_campaign(
            tmp_path / "camp",
            scale="smoke",
            experiments=("tables",),
            settings=CampaignSettings(shards=fleet.endpoints, retries=2),
        )
    assert report.ok
    assert report.shard_deaths == 1
    assert report.completed == report.total
    assert _result_bytes(tmp_path / "camp") == reference


def test_kill_shard_at_connect_aborts_then_resumes(tmp_path):
    """A shard dead before hello aborts the fleet; resume completes.

    Connect failures are loud (the fleet was mis-specified or died
    under the controller's feet), but the campaign directory stays
    resumable with whatever fleet survives.
    """
    reference = _reference_run(tmp_path)
    env = [None, {KILL_AT_ENV: "connect:1"}]
    with LocalShardSet(2, tmp_path / "fleet", extra_env=env) as fleet:
        with pytest.raises(ShardError):
            run_campaign(
                tmp_path / "camp",
                scale="smoke",
                experiments=("tables",),
                settings=CampaignSettings(shards=fleet.endpoints, retries=2),
            )
        survivor = fleet.endpoints[0]
        report = run_campaign(
            tmp_path / "camp",
            resume=True,
            settings=CampaignSettings(shards=[survivor], retries=2),
        )
    assert report.ok
    assert _result_bytes(tmp_path / "camp") == reference


def test_two_shard_chaos_with_disk_faults(tmp_path):
    """Deterministic chaos (worker crashes + disk faults) across a
    two-subprocess fleet still converges to byte-identical output."""
    from repro.harness import parse_chaos_spec

    reference = _reference_run(tmp_path)
    # Crash + disk kinds only: a "timeout" fault would hang a shard
    # for the full task deadline, which is pointless wall-clock here.
    chaos = parse_chaos_spec(
        "p=0.3,kinds=crash,corrupt,disk-torn,disk-flip,seed=5"
    )
    with LocalShardSet(2, tmp_path / "fleet") as fleet:
        report = run_campaign(
            tmp_path / "camp",
            scale="smoke",
            experiments=("tables",),
            settings=CampaignSettings(
                shards=fleet.endpoints,
                retries=6,
                backoff_base=0.02,
                chaos=chaos,
            ),
        )
    assert report.ok
    assert report.completed == report.total
    assert _result_bytes(tmp_path / "camp") == reference


# ----------------------------------------------------------------------
# service bench gates (unit-level: synthetic documents, no fleets)

def test_results_digest_tracks_bytes(tmp_path):
    for name in ("a", "b"):
        results = tmp_path / name / "results"
        results.mkdir(parents=True)
        (results / "t1.json").write_bytes(b'{"x": 1}')
        (results / "t2.json").write_bytes(b'{"y": 2}')
    assert _results_digest(tmp_path / "a") == _results_digest(tmp_path / "b")
    (tmp_path / "b" / "results" / "t2.json").write_bytes(b'{"y": 3}')
    assert _results_digest(tmp_path / "a") != _results_digest(tmp_path / "b")


def test_floor_section_enforced_only_on_multicore():
    scaling = [
        {"shards": 1, "speedup": 1.0},
        {"shards": 2, "speedup": 1.9},
    ]
    multi = _floor_section(scaling, cpu_count=8)
    assert multi["enforced"] and not multi["degenerate_single_core"]
    assert multi["measured_speedup"] == 1.9
    single = _floor_section(scaling, cpu_count=1)
    assert not single["enforced"] and single["degenerate_single_core"]
    # No 2-shard data point: nothing to enforce even on a big host.
    partial = _floor_section([{"shards": 1, "speedup": 1.0}], cpu_count=8)
    assert not partial["enforced"] and not partial["degenerate_single_core"]


def _service_document(**floor_overrides):
    floor = {
        "min_speedup": SERVICE_SPEEDUP_FLOOR,
        "at_shards": 2,
        "measured_speedup": 1.9,
        "cpu_count": 8,
        "degenerate_single_core": False,
        "enforced": True,
    }
    floor.update(floor_overrides)
    return {"service": {"byte_identical": True, "floor": floor}}


def test_service_floor_gate_passes_and_fails():
    assert service_floor_errors(_service_document()) == []
    errors = service_floor_errors(_service_document(measured_speedup=1.2))
    assert errors and "floor violated" in errors[0]


def test_service_floor_gate_honours_single_core_stamp():
    stamped = _service_document(
        measured_speedup=0.9, degenerate_single_core=True, enforced=False,
        cpu_count=1,
    )
    assert service_floor_errors(stamped) == []


def test_service_floor_gate_rejects_unstamped_unenforced():
    sneaky = _service_document(enforced=False)
    errors = service_floor_errors(sneaky)
    assert errors and "degenerate_single_core" in errors[0]


def test_service_floor_gate_demands_attestations():
    assert service_floor_errors({}) == [
        "document has no 'service' section to gate"
    ]
    document = _service_document()
    document["service"]["byte_identical"] = False
    errors = service_floor_errors(document)
    assert errors and "byte-identical" in errors[0]
