"""Unit tests for the forecaster's rate-smoothing and CLI-level bits."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.engine import Workload
from repro.experiments.common import SMOKE
from repro.forecast import Forecaster


def forecaster(policy_name="cp_sd", smooth=True):
    scale = SMOKE
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    return Forecaster(
        config,
        make_policy(policy_name),
        scale.workload("mix1"),
        phase_cycles=epoch,
        initial_warmup_cycles=epoch,
        capacity_step=0.2,
        max_steps=3,
        smooth_rates=smooth,
    )


def test_byte_smoothing_pools_within_sets_weighted_by_capacity():
    fc = forecaster("cp_sd")
    raw = np.zeros((4, 3))
    raw[0] = [300.0, 0.0, 0.0]   # one frame took all the set's writes
    raw[2] = [10.0, 20.0, 30.0]
    caps = np.full((4, 3), 64.0)
    caps[0] = [64, 32, 32]       # frame 0 has twice the live bytes
    smoothed = fc._smoothed(raw, caps)
    # set totals preserved
    assert smoothed.sum(axis=1) == pytest.approx(raw.sum(axis=1))
    # capacity-weighted shares in set 0: 64:32:32 -> 150:75:75
    assert smoothed[0] == pytest.approx([150.0, 75.0, 75.0])
    # untouched set stays zero
    assert smoothed[1].sum() == 0.0


def test_frame_smoothing_uniform_over_live_frames():
    fc = forecaster("bh")  # frame granularity
    raw = np.array([[90.0, 0.0, 0.0]])
    caps = np.array([[64, 64, 0]])  # third frame is dead
    smoothed = fc._smoothed(raw, caps)
    assert smoothed[0] == pytest.approx([45.0, 45.0, 0.0])


def test_smoothing_handles_fully_dead_set():
    fc = forecaster("bh")
    raw = np.array([[10.0, 10.0, 10.0]])
    caps = np.zeros((1, 3))
    smoothed = fc._smoothed(raw, caps)
    assert np.isfinite(smoothed).all()


def test_unsmoothed_forecaster_still_runs():
    result = forecaster("bh", smooth=False).run()
    assert result.points
