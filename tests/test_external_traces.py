"""External trace ingestion: the full malformed-input failure taxonomy.

The importer's contract is *unusable, never silently wrong*: every
structural defect in the interchange CSV raises
:class:`TraceFormatError` naming the line, and every on-disk artefact
corrupted after import is either fatal (traces, target.json —
quarantined, build fails) or deterministically degraded (size sidecars
— quarantined, redrawn, counted in ``workload.sidecar_redraws``).
"""

import io
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import REPRO_EXTERNAL_ENV
from repro.experiments.common import SMOKE
from repro.fsio.quarantine import quarantine_dir
from repro.workloads.external import (
    TARGET_NAME,
    import_trace,
    load_target_manifest,
    parse_interchange_csv,
)
from repro.workloads.registry import (
    build_workload,
    get_family,
    workload_ref_fingerprint,
)
from repro.workloads.trace import CORE_ADDR_SHIFT
from repro.workloads.traceio import MAX_BLOCK_OFFSET, TraceFormatError

FIXTURE = Path(__file__).parent / "fixtures" / "external_fixture.csv"

TINY = replace(SMOKE, trace_records_per_core=3_000)


@pytest.fixture()
def ext_root(tmp_path, monkeypatch):
    root = tmp_path / "external"
    monkeypatch.setenv(REPRO_EXTERNAL_ENV, str(root))
    return root


def _csv(text: str) -> io.StringIO:
    return io.StringIO(text)


# ----------------------------------------------------------------------
# interchange CSV validation

def test_parse_accepts_comments_header_and_hex():
    records = parse_interchange_csv(
        _csv("# comment\ncore,gap,addr,is_write\n0,5,0x40,1\n0,2,64,0\n"),
        cores=1,
    )
    assert len(records[0]) == 2
    assert records[0][0].addr == records[0][1].addr
    assert records[0][0].is_write and not records[0][1].is_write


def test_parse_byte_addresses_shift_to_blocks():
    block, = parse_interchange_csv(_csv("0,1,128,0\n"), 1, addr_kind="byte")
    assert block[0].addr == 128 >> 6


def test_wrong_field_count_names_line():
    with pytest.raises(TraceFormatError, match="line 2: expected 4 fields"):
        parse_interchange_csv(_csv("0,1,2,0\n0,1,2\n"), 1)


def test_unparsable_record_names_line():
    with pytest.raises(TraceFormatError, match="line 1: unparsable"):
        parse_interchange_csv(_csv("0,one,2,0\n"), 1)


def test_core_out_of_range():
    with pytest.raises(TraceFormatError, match="core 2 out of range"):
        parse_interchange_csv(_csv("0,1,2,0\n1,1,2,0\n2,1,2,0\n"), 2)


def test_negative_gap_rejected():
    with pytest.raises(TraceFormatError, match="negative gap"):
        parse_interchange_csv(_csv("0,-1,2,0\n"), 1)


def test_negative_address_rejected():
    with pytest.raises(TraceFormatError, match="negative address"):
        parse_interchange_csv(_csv("0,1,-2,0\n"), 1)


def test_address_beyond_core_slice_rejected():
    too_big = MAX_BLOCK_OFFSET
    with pytest.raises(TraceFormatError, match="address slice"):
        parse_interchange_csv(_csv(f"0,1,{too_big},0\n"), 1)
    # the largest representable offset is fine
    records = parse_interchange_csv(_csv(f"0,1,{too_big - 1},0\n"), 1)
    assert records[0][0].addr == too_big - 1


def test_empty_core_rejected():
    with pytest.raises(TraceFormatError, match="core 1 has no records"):
        parse_interchange_csv(_csv("0,1,2,0\n"), 2)


def test_import_rejects_bad_target_names(ext_root):
    with pytest.raises(ValueError, match="bad target name"):
        import_trace(FIXTURE, "../escape", cores=4)


def test_import_without_root_is_loud(monkeypatch):
    monkeypatch.delenv(REPRO_EXTERNAL_ENV, raising=False)
    with pytest.raises(ValueError, match="no external workload root"):
        import_trace(FIXTURE, "demo", cores=4)


# ----------------------------------------------------------------------
# happy path: committed fixture imports and runs

def test_fixture_round_trip(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    assert (target_dir / TARGET_NAME).is_file()
    for core in range(4):
        assert (target_dir / f"core{core}.trc").is_file()
        assert (target_dir / f"core{core}.sizes").is_file()

    family = get_family("external")
    assert family.targets() == ("fixture",)
    spec = family.target_spec("fixture")
    assert spec.cores == 4 and not spec.scalable

    workload = build_workload("external:fixture", scale=TINY)
    assert workload.family == "external"
    assert workload.target == "fixture"
    assert workload.sidecar_redraws == 0
    assert [len(t) for t in workload.traces] == [300] * 4
    for core, trace in enumerate(workload.traces):
        assert all(a >> CORE_ADDR_SHIFT == core for a in trace.addrs)


def test_fixture_simulates_deterministically(ext_root):
    from repro.core import make_policy
    from repro.engine import Simulation

    import_trace(FIXTURE, "fixture", cores=4)
    config = TINY.system()
    results = []
    for _ in range(2):
        workload = build_workload("external:fixture", scale=TINY)
        sim = Simulation(config, make_policy("bh"), workload)
        epoch = config.dueling.epoch_cycles
        result = sim.run(cycles=epoch, warmup_cycles=epoch * 0.25)
        results.append((result.mean_ipc, result.stats.llc.hit_rate))
    assert results[0] == results[1]
    assert results[0][1] > 0  # the hot sets actually hit


def test_external_fingerprint_tracks_reimports(ext_root, tmp_path):
    import_trace(FIXTURE, "fixture", cores=4)
    before = workload_ref_fingerprint("external:fixture")
    assert before["family"] == "external"
    # re-import with a different declared compressibility: the spec
    # hash must change so stale memo entries are shed
    import_trace(FIXTURE, "fixture", cores=4, hcr=0.9, lcr=0.05)
    after = workload_ref_fingerprint("external:fixture")
    assert after["spec_hash"] != before["spec_hash"]


# ----------------------------------------------------------------------
# post-import corruption: traces and manifest are fatal

def test_truncated_trace_fails_build(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    trc = target_dir / "core1.trc"
    trc.write_bytes(trc.read_bytes()[:-7])
    with pytest.raises(TraceFormatError, match="checksum mismatch"):
        build_workload("external:fixture", scale=TINY)
    assert (quarantine_dir(target_dir) / "core1.trc").is_file()


def test_bad_magic_trace_fails_build(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    trc = target_dir / "core0.trc"
    data = bytearray(trc.read_bytes())
    data[:4] = b"EVIL"
    trc.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError):
        build_workload("external:fixture", scale=TINY)


def test_missing_trace_fails_build(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    (target_dir / "core2.trc").unlink()
    with pytest.raises(TraceFormatError, match="missing trace file"):
        build_workload("external:fixture", scale=TINY)


def test_garbage_target_manifest_quarantined(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    (target_dir / TARGET_NAME).write_bytes(b"\x00garbage\xff")
    with pytest.raises(TraceFormatError, match="unparsable target record"):
        load_target_manifest(target_dir)
    assert (quarantine_dir(target_dir) / TARGET_NAME).is_file()
    # the quarantined manifest no longer resolves as a target at all
    assert "fixture" not in get_family("external").targets()


def test_plain_json_manifest_rejected(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    (target_dir / TARGET_NAME).write_text(json.dumps({"cores": 4}))
    with pytest.raises(TraceFormatError, match="not a checksummed"):
        load_target_manifest(target_dir)


def test_tampered_envelope_rejected(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    path = target_dir / TARGET_NAME
    data = json.loads(path.read_text())
    data["payload"]["cores"] = 8  # checksum no longer matches
    path.write_text(json.dumps(data))
    with pytest.raises(TraceFormatError):
        load_target_manifest(target_dir)


# ----------------------------------------------------------------------
# post-import corruption: size sidecars degrade deterministically

def test_corrupt_sizes_sidecar_redraws_and_counts(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    intact = build_workload("external:fixture", scale=TINY)
    reference = [
        dict(intact.data_model.sizes_for(set(trace.addrs)))
        for trace in intact.traces
    ]

    (target_dir / "core3.sizes").write_bytes(b"REPROSZC" + b"\x00" * 10)
    # sidecars are advisory: the corrupt one must not poison the
    # also-affected manifest hash check, so patch target.json's sizes
    # entry out of the comparison by rebuilding the workload fresh
    degraded = build_workload("external:fixture", scale=TINY)
    assert degraded.sidecar_redraws == 1
    assert (quarantine_dir(target_dir) / "core3.sizes").is_file()
    redrawn = [
        dict(degraded.data_model.sizes_for(set(trace.addrs)))
        for trace in degraded.traces
    ]
    # the redraw is deterministic: same seed, same sizes as at import
    assert redrawn == reference


def test_missing_sizes_sidecar_is_not_an_error(ext_root):
    target_dir = import_trace(FIXTURE, "fixture", cores=4)
    (target_dir / "core0.sizes").unlink()
    workload = build_workload("external:fixture", scale=TINY)
    assert workload.sidecar_redraws == 0
    assert not quarantine_dir(target_dir).exists()
