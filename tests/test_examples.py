"""The example scripts must run end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "mean IPC" in out
    assert "NVM bytes written" in out


def test_compression_explorer_runs(capsys):
    run_example("compression_explorer.py")
    out = capsys.readouterr().out
    assert "round-trip OK" in out
    assert "decompression matches" in out


def test_set_dueling_adaptivity_runs(capsys):
    run_example("set_dueling_adaptivity.py")
    out = capsys.readouterr().out
    assert "winners per epoch" in out


def test_aging_timeline_runs(capsys):
    run_example("aging_timeline.py")
    out = capsys.readouterr().out
    assert "frame-capacity distribution" in out
    assert "byte-disabling" in out


@pytest.mark.slow
def test_policy_comparison_runs(capsys):
    run_example("policy_comparison.py", argv=["mix1"])
    out = capsys.readouterr().out
    assert "Policy comparison" in out
    assert "16w SRAM (upper)" in out


@pytest.mark.slow
def test_lifetime_forecast_runs(capsys):
    run_example("lifetime_forecast.py")
    out = capsys.readouterr().out
    assert "lifetime ratio" in out
