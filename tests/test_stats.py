"""Tests for the statistics containers."""

import pytest

from repro.cache.stats import CoreStats, HierarchyStats, LLCStats


def test_llc_derived_metrics():
    s = LLCStats()
    s.gets, s.getx = 80, 20
    s.gets_hits, s.getx_hits = 40, 10
    assert s.accesses == 100
    assert s.hits == 50
    assert s.misses == 50
    assert s.hit_rate == 0.5


def test_llc_hit_rate_empty():
    assert LLCStats().hit_rate == 0.0


def test_snapshot_delta():
    s = LLCStats()
    s.gets = 5
    snap = s.snapshot()
    s.gets = 12
    s.nvm_bytes_written = 640
    delta = s.delta_since(snap)
    assert delta["gets"] == 7
    assert delta["nvm_bytes_written"] == 640
    assert delta["getx"] == 0


def test_core_stats_ipc():
    c = CoreStats(instructions=100, cycles=50.0)
    assert c.ipc == 2.0
    assert CoreStats().ipc == 0.0


def test_hierarchy_core_accessor_grows():
    h = HierarchyStats()
    c2 = h.core(2)
    assert len(h.cores) == 3
    assert h.core(2) is c2


def test_mean_ipc_over_active_cores():
    h = HierarchyStats()
    h.core(0).instructions, h.core(0).cycles = 100, 100.0
    h.core(1).instructions, h.core(1).cycles = 300, 100.0
    assert h.mean_ipc == pytest.approx(2.0)
    assert h.total_instructions == 400


def test_mean_ipc_empty():
    assert HierarchyStats().mean_ipc == 0.0
