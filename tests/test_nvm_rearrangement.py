"""Tests for the block-rearrangement circuitry model (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.rearrangement import DONT_CARE, gather, index_vector, scatter


def _mask(block_size, dead):
    mask = np.ones(block_size, dtype=bool)
    mask[list(dead)] = False
    return mask


def test_paper_figure5_example_shape():
    """Fig. 5c: 5-byte ECB into an 8-byte frame with bytes 2 and 5 dead."""
    mask = _mask(8, [2, 5])
    ecb = bytes([10, 11, 12, 13, 14])
    recb, write_mask = scatter(ecb, mask, start=0)
    assert write_mask.sum() == 5
    assert not write_mask[2] and not write_mask[5]
    assert gather(bytes(recb), mask, 0, len(ecb)) == ecb


def test_rotation_respects_counter():
    mask = np.ones(8, dtype=bool)
    ecb = bytes([1, 2, 3])
    recb, write_mask = scatter(ecb, mask, start=6)
    # starts writing at position 6, wraps to 7 and 0
    assert recb[6] == 1 and recb[7] == 2 and recb[0] == 3
    assert list(np.flatnonzero(write_mask)) == [0, 6, 7]


def test_faulty_bytes_skipped_during_rotation():
    mask = _mask(8, [7, 0])
    ecb = bytes([9, 8])
    recb, write_mask = scatter(ecb, mask, start=6)
    assert recb[6] == 9
    assert recb[1] == 8  # 7 and 0 are dead, next live is 1
    assert write_mask.sum() == 2


def test_ecb_too_large_raises():
    mask = _mask(8, [0, 1, 2, 3])
    with pytest.raises(ValueError):
        scatter(bytes(5), mask, 0)


def test_bad_counter_raises():
    mask = np.ones(8, dtype=bool)
    with pytest.raises(ValueError):
        index_vector(mask, 8, 2)


def test_index_vector_dont_cares():
    mask = _mask(8, [3])
    idx = index_vector(mask, 0, 4)
    assert idx[3] == DONT_CARE
    assert sorted(i for i in idx if i != DONT_CARE) == [0, 1, 2, 3]


@given(
    st.integers(min_value=0, max_value=63),
    st.sets(st.integers(min_value=0, max_value=63), max_size=30),
    st.binary(min_size=0, max_size=34),
)
@settings(max_examples=200, deadline=None)
def test_scatter_gather_inverse(start, dead, ecb):
    """gather(scatter(x)) == x whenever the ECB fits the live bytes."""
    mask = _mask(64, dead)
    if len(ecb) > mask.sum():
        with pytest.raises(ValueError):
            scatter(ecb, mask, start)
        return
    recb, write_mask = scatter(ecb, mask, start)
    assert int(write_mask.sum()) == len(ecb)
    assert not (write_mask & ~mask).any()  # never writes dead bytes
    assert gather(bytes(recb), mask, start, len(ecb)) == ecb
