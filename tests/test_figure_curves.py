"""Tests for figure-style curve rendering from lifetime studies."""

import pytest

from repro.experiments.figure_curves import (
    render_study,
    study_capacity_curves,
    study_ipc_curves,
)
from repro.experiments.lifetime import LifetimeStudy
from repro.forecast import ForecastPoint, ForecastResult


def fake_result(policy, ipc0, horizon):
    points = [
        ForecastPoint(0.0, 1.0, ipc0, 0.7, 10.0),
        ForecastPoint(horizon / 2, 0.7, ipc0 * 0.95, 0.65, 10.0),
        ForecastPoint(horizon, 0.5, ipc0 * 0.8, 0.5, 10.0),
    ]
    return ForecastResult(policy, points, reached_stop=True,
                          horizon_seconds=horizon)


def fake_study():
    study = LifetimeStudy(label="test", upper_bound_ipc=2.0, lower_bound_ipc=1.0)
    study.forecasts["bh"] = [fake_result("bh", 1.9, 100.0),
                             fake_result("bh", 2.1, 120.0)]
    study.forecasts["cp_sd"] = [fake_result("cp_sd", 1.8, 900.0),
                                fake_result("cp_sd", 2.0, 1100.0)]
    return study


def test_ipc_curves_share_grid_and_normalise():
    study = fake_study()
    curves = study_ipc_curves(study, points=8)
    assert {c.label for c in curves} == {"bh", "cp_sd"}
    assert all(list(c.times) == list(curves[0].times) for c in curves)
    # normalised to bound 2.0: first point is mix-mean ipc0 / 2.0
    bh = next(c for c in curves if c.label == "bh")
    assert bh.values[0] == pytest.approx((1.9 + 2.1) / 2 / 2.0)
    # grid spans the longest horizon (1100 s)
    assert curves[0].times[-1] == pytest.approx(1100.0)


def test_ipc_curves_without_normalisation():
    curves = study_ipc_curves(fake_study(), points=4, normalise_to_bound=False)
    bh = next(c for c in curves if c.label == "bh")
    assert bh.values[0] == pytest.approx(2.0)


def test_capacity_curves_monotone():
    curves = study_capacity_curves(fake_study(), points=16)
    for curve in curves:
        assert all(a >= b for a, b in zip(curve.values, curve.values[1:]))
        assert curve.values[0] == 1.0


def test_render_study_text():
    text = render_study(fake_study(), width=40, height=8)
    assert "IPC normalised" in text
    assert "NVM effective capacity" in text
    assert "0=bh" in text and "1=cp_sd" in text
