"""Backend selection precedence: --backend > REPRO_BACKEND > default.

The contract lives in :func:`repro.config.resolve_backend_name`; these
tests pin it there *and* through every CLI entry point that launches
simulations (simulate, bench, campaign, explore), by spying on the
resolution call the engine makes.
"""

import pytest

from repro.cli import main
from repro.config import (
    DEFAULT_ENGINE_BACKEND,
    REPRO_BACKEND_ENV,
    resolve_backend_name,
)


# ----------------------------------------------------------------------
# The resolution function itself
def test_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "vectorized")
    assert resolve_backend_name("reference") == "reference"


def test_env_beats_default(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "vectorized")
    assert resolve_backend_name() == "vectorized"
    assert resolve_backend_name(None) == "vectorized"


def test_default_when_nothing_set(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    assert resolve_backend_name() == DEFAULT_ENGINE_BACKEND == "reference"


# ----------------------------------------------------------------------
# Through the CLI entry points (spy on the engine's resolution call)
@pytest.fixture
def backend_calls(monkeypatch):
    """Record every (explicit, resolved) pair the engine resolves."""
    import repro.engine as engine
    from repro.config import resolve_backend_name as real

    calls = []

    def spy(explicit=None):
        resolved = real(explicit)
        calls.append((explicit, resolved))
        return resolved

    monkeypatch.setattr(engine, "resolve_backend_name", spy)
    return calls


def test_simulate_flag_beats_env(monkeypatch, backend_calls, capsys):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "reference")
    rc = main([
        "--scale", "smoke", "simulate", "--mix", "mix1", "--policy", "bh",
        "--epochs", "0.5", "--warmup-epochs", "0",
        "--backend", "vectorized",
    ])
    assert rc == 0
    assert backend_calls and backend_calls[-1] == ("vectorized", "vectorized")


def test_simulate_env_beats_default(monkeypatch, backend_calls, capsys):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "vectorized")
    rc = main([
        "--scale", "smoke", "simulate", "--mix", "mix1", "--policy", "bh",
        "--epochs", "0.5", "--warmup-epochs", "0",
    ])
    assert rc == 0
    assert backend_calls and backend_calls[-1] == (None, "vectorized")


def test_simulate_rejects_unknown_backend(capsys):
    rc = main([
        "--scale", "smoke", "simulate", "--mix", "mix1", "--policy", "bh",
        "--backend", "vectorised",
    ])
    assert rc == 2
    assert "vectorized" in capsys.readouterr().err  # did-you-mean


def test_bench_flag_beats_env(monkeypatch, backend_calls, capsys, tmp_path):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "reference")
    rc = main([
        "--scale", "smoke", "bench", "--policies", "bh", "--mixes", "mix1",
        "--epochs", "0.5", "--warmup-epochs", "0",
        "--out", str(tmp_path), "--backend", "vectorized",
    ])
    assert rc == 0
    assert ("vectorized", "vectorized") in backend_calls
    # a non-reference backend names its own artefact
    assert (tmp_path / "BENCH_vectorized.json").exists()


def test_campaign_exports_flag_to_workers(monkeypatch, capsys, tmp_path):
    # Workers inherit the environment: --backend must land in
    # REPRO_BACKEND *before* the runner spawns them, overriding any
    # value the parent shell had.
    import repro.harness as harness

    exported = {}

    class StubRunner:
        def __init__(self, *args, **kwargs):
            import os

            exported["backend"] = os.environ.get(REPRO_BACKEND_ENV)
            raise harness.CampaignConfigError("stub: stop before running")

    monkeypatch.setenv(REPRO_BACKEND_ENV, "reference")
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "rc"))
    monkeypatch.setattr(harness, "CampaignRunner", StubRunner)
    rc = main([
        "--scale", "smoke", "campaign", "--out", str(tmp_path / "camp"),
        "--experiments", "fig6", "--backend", "vectorized",
    ])
    assert rc == 2  # the stub aborts the run after the env is staged
    assert exported["backend"] == "vectorized"


def test_explore_flag_beats_env(monkeypatch, backend_calls, capsys, tmp_path):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "reference")
    rc = main([
        "--scale", "smoke", "explore", "--out", str(tmp_path / "exp"),
        "--space", "tiny", "--confirm", "1", "--backend", "vectorized",
    ])
    assert rc == 0
    # the confirm tier's simulations resolved the explicit flag value
    confirm_calls = [c for c in backend_calls if c[0] == "vectorized"]
    assert confirm_calls and all(
        resolved == "vectorized" for _e, resolved in confirm_calls)
