"""``repro doctor``: the artefact audit and its failure taxonomy."""

import json

import pytest

from repro.cli import main
from repro.fsio.doctor import default_targets, run_doctor
from repro.fsio.durable import dump_json, wrap_json
from repro.harness.checkpoint import RESULT_SCHEMA, write_json_atomic

GOOD_PAYLOAD = {
    "status": "ok",
    "task_id": "t1",
    "result": {
        "schema": "repro-run/1",
        "kind": "unit",
        "meta": {},
        "metrics": {},
        "values": {},
        "events": [],
    },
}


def test_doctor_passes_clean_artefacts(tmp_path):
    good = tmp_path / "good.json"
    write_json_atomic(good, GOOD_PAYLOAD, schema=RESULT_SCHEMA)
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps({"status": "ok", "anything": 1}))

    report = run_doctor([good, legacy])
    assert report.ok
    assert not report.findings
    assert str(good) in report.checked and str(legacy) in report.checked


def test_doctor_finds_and_classifies_defects(tmp_path):
    flipped = tmp_path / "flipped.json"
    envelope = wrap_json(dict(GOOD_PAYLOAD, extra=12345), RESULT_SCHEMA)
    raw = dump_json(envelope).decode().replace("12345", "12346")
    flipped.write_text(raw)

    torn = tmp_path / "torn.json"
    torn.write_bytes(dump_json(envelope)[:40])

    report = run_doctor([flipped, torn])
    assert not report.ok
    taxonomy = report.taxonomy()
    assert taxonomy["campaign-result/checksum-mismatch"] == 1
    assert taxonomy["artefact/malformed-envelope"] == 1
    assert "FAILED" in report.summary()


def test_doctor_repair_quarantines_with_reason(tmp_path):
    from repro.fsio.quarantine import load_reason

    bad = tmp_path / "bad.json"
    envelope = wrap_json(dict(GOOD_PAYLOAD, marker=777), RESULT_SCHEMA)
    bad.write_text(dump_json(envelope).decode().replace("777", "778"))

    report = run_doctor([bad], repair=True)
    assert not report.ok
    assert report.findings[0].action == "quarantined"
    assert not bad.exists()
    moved = tmp_path / "quarantine" / "bad.json"
    assert moved.exists()
    reason = load_reason(moved.parent / "bad.json.reason.json")
    assert reason["category"] == "campaign-result"
    # a second audit of the directory is clean: quarantine/ is skipped
    assert run_doctor([tmp_path]).ok


def test_doctor_flags_stale_cache_fingerprints(tmp_path):
    from repro.memo.results import ResultCache

    cache = ResultCache(tmp_path)
    key = "ef" * 32
    assert cache.put(
        key, GOOD_PAYLOAD,
        annotations={"fingerprint": "0" * 64, "task_id": "t1"},
    )
    report = run_doctor([tmp_path])
    # stale is a warning — safe, self-healing — never a strict failure
    assert report.ok
    assert report.warnings
    assert report.warnings[0].defect == "stale-fingerprint"


def test_doctor_audits_sidecars_and_traces(tmp_path, monkeypatch):
    from repro.workloads.cache import TRACE_CACHE_ENV, save_sizes_sidecar
    from repro.workloads.profiles import profile

    cache_dir = tmp_path / "trace_cache"
    monkeypatch.setenv(TRACE_CACHE_ENV, str(cache_dir))
    prof = profile("mcf17").scaled(1 / 32)
    save_sizes_sidecar(prof, 0, 0, 10, {1: (2, 3)})
    sidecar = next(cache_dir.glob("*.sizes"))
    assert run_doctor([cache_dir]).ok

    sidecar.write_bytes(sidecar.read_bytes()[:-3])
    report = run_doctor([cache_dir])
    assert not report.ok
    assert report.findings[0].category == "sizes-sidecar"

    trace = cache_dir / "bogus.trc"
    trace.write_bytes(b"not a trace at all")
    sidecar.unlink()
    report = run_doctor([cache_dir])
    assert [f.category for f in report.findings] == ["trace"]


def test_doctor_default_targets_cover_committed_artefacts():
    targets = [str(t) for t in default_targets(".")]
    assert any("BENCH_" in t for t in targets)
    assert any(t.endswith("determinism.json") for t in targets)


def test_doctor_strict_gate_on_committed_artefacts(capsys):
    """The CI leg: every committed artefact must audit clean."""
    rc = main(["doctor", "--strict"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "doctor ok" in out


def test_doctor_cli_strict_fails_on_corruption(tmp_path, capsys):
    bad = tmp_path / "rotten.json"
    envelope = wrap_json({"n": 42}, "repro-test/1")
    bad.write_text(dump_json(envelope).decode().replace("42", "43"))
    assert main(["doctor", str(bad)]) == 0          # advisory by default
    assert main(["doctor", "--strict", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "checksum-mismatch" in err
