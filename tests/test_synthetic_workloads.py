"""Tests for the single-behaviour synthetic profiles — and through
them, focused behavioural checks of the policies' core mechanisms."""

import pytest

from repro.core import make_policy
from repro.engine import Simulation, Workload
from repro.experiments.common import SMOKE
from repro.workloads.synthetic import (
    homogeneous_mix,
    incompressible_profile,
    looping_profile,
    pointer_chase_profile,
    scanning_profile,
    streaming_profile,
    write_heavy_profile,
)


def run(profile, policy_name, epochs=8, warm=4, **policy_kw):
    scale = SMOKE
    config = scale.system()
    profiles = homogeneous_mix(profile.scaled(scale.factor))
    workload = Workload(profiles, trace_records_per_core=20_000)
    sim = Simulation(config, make_policy(policy_name, **policy_kw), workload)
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=epochs * epoch, warmup_cycles=warm * epoch)
    return sim, res


def test_factories_produce_valid_profiles():
    for factory in (streaming_profile, looping_profile, scanning_profile,
                    write_heavy_profile, pointer_chase_profile):
        prof = factory()
        assert sum(prof.region_weights) == pytest.approx(1.0)
        prof.scaled(1 / 32)  # must not raise


def test_incompressible_variants():
    for kind in ("stream", "loop", "scan", "rw", "chase"):
        prof = incompressible_profile(kind)
        assert prof.incompressible_fraction == 1.0


def test_pure_stream_never_hits():
    _sim, res = run(streaming_profile(), "bh")
    assert res.hit_rate < 0.05


def test_pure_stream_tap_inserts_nothing_to_nvm():
    _sim, res = run(streaming_profile(), "tap")
    assert res.stats.llc.fills_nvm == 0


def test_pure_loop_lhybrid_converges_to_nvm():
    # the aggregate loop (4 cores) must fit the SRAM reuse-detection
    # window for LHybrid to tag loop-blocks; the stream share forces
    # the SRAM replacements that trigger the migrations
    sim, res = run(
        looping_profile(loop_blocks=10 * 1024, stream=0.3), "lhybrid", epochs=12
    )
    llc = sim.hierarchy.llc
    nvm_occupancy = sum(s.occupancy(1) for s in llc.sets)
    assert res.stats.llc.migrations_to_nvm > 0
    assert nvm_occupancy > 0.1 * llc.n_sets * llc.geom.nvm_ways
    assert res.hit_rate > 0.5


def test_scan_class_splits_bh_from_lhybrid():
    """The Sec. II-D mechanism in isolation: BH keeps a 16-way-sized
    scan, LHybrid cannot detect it in a 4-way SRAM."""
    scan = scanning_profile(scan_blocks=24 * 1024)
    _s1, bh = run(scan, "bh", epochs=10, warm=6)
    _s2, lh = run(scan, "lhybrid", epochs=10, warm=6)
    assert bh.hit_rate > lh.hit_rate + 0.2


def test_write_heavy_goes_to_sram_under_ca_rwr():
    _sim, res = run(write_heavy_profile(), "ca_rwr", cpth=58)
    llc = res.stats.llc
    assert llc.fills_sram > llc.fills_nvm


def test_write_heavy_wears_nvm_under_bh():
    # the hot set must exceed the LLC's SRAM part so BH's global LRU
    # spills dirty blocks into NVM frames
    prof = write_heavy_profile(rw_blocks=48 * 1024)
    _s1, bh = run(prof, "bh", epochs=10, warm=6)
    _s2, rwr = run(prof, "ca_rwr", cpth=58, epochs=10, warm=6)
    assert bh.stats.llc.nvm_bytes_written > 0
    assert rwr.stats.llc.nvm_bytes_written < 0.6 * bh.stats.llc.nvm_bytes_written


def test_pointer_chase_low_hit_rate_everywhere():
    _s1, bh = run(pointer_chase_profile(rnd_blocks=256 * 1024), "bh")
    assert bh.hit_rate < 0.4
