"""Tests for the energy model."""

import pytest

from repro.cache.stats import HierarchyStats
from repro.config import SystemConfig
from repro.timing.energy import EnergyBreakdown, EnergyModel, EnergyParams


def stats_with(**llc_fields):
    stats = HierarchyStats()
    stats.core(0).accesses = 1000
    stats.core(0).l1_hits = 800
    for key, value in llc_fields.items():
        setattr(stats.llc, key, value)
    return stats


def test_breakdown_totals():
    b = EnergyBreakdown(
        l1_dynamic=1.0,
        l2_dynamic=2.0,
        llc_sram_read=3.0,
        llc_sram_write=4.0,
        llc_nvm_read=5.0,
        llc_nvm_write=6.0,
        memory_dynamic=7.0,
        sram_leakage=8.0,
        nvm_leakage=9.0,
    )
    assert b.llc_dynamic == 18.0
    assert b.llc_total == 35.0
    assert b.total == 45.0
    assert b.as_dict()["total"] == 45.0


def test_dynamic_energy_charges_events():
    model = EnergyModel(SystemConfig(), EnergyParams())
    stats = stats_with(hits_sram=10, hits_nvm=20, sram_writes=5,
                       nvm_bytes_written=640, nvm_writes=10)
    b = model.evaluate(stats, seconds=0.0)
    p = EnergyParams()
    assert b.llc_sram_read == pytest.approx(10 * p.llc_sram_read_nj)
    assert b.llc_nvm_read == pytest.approx(20 * p.llc_nvm_read_nj)
    assert b.llc_sram_write == pytest.approx(5 * p.llc_sram_write_nj)
    # 640 bytes = 10 full frames worth of write energy
    assert b.llc_nvm_write == pytest.approx(10 * p.llc_nvm_write_nj)
    assert b.sram_leakage == 0.0


def test_compression_halves_write_energy():
    model = EnergyModel(SystemConfig())
    full = model.evaluate(stats_with(nvm_bytes_written=64 * 100), 0.0)
    compressed = model.evaluate(stats_with(nvm_bytes_written=32 * 100), 0.0)
    assert compressed.llc_nvm_write == pytest.approx(0.5 * full.llc_nvm_write)


def test_leakage_scales_with_time_and_capacity():
    cfg = SystemConfig()
    model = EnergyModel(cfg)
    one = model.evaluate(HierarchyStats(), seconds=1.0)
    two = model.evaluate(HierarchyStats(), seconds=2.0)
    assert two.sram_leakage == pytest.approx(2 * one.sram_leakage)
    # NVM leaks far less per byte than SRAM
    sram_mib = model._sram_mib
    nvm_mib = model._nvm_mib
    assert one.nvm_leakage / nvm_mib < 0.1 * (one.sram_leakage / sram_mib)


def test_sram_only_config_has_no_nvm_energy():
    cfg = SystemConfig().with_llc(sram_ways=16, nvm_ways=0)
    model = EnergyModel(cfg)
    b = model.evaluate(stats_with(hits_sram=100), seconds=1.0)
    assert b.nvm_leakage == 0.0
    assert b.llc_nvm_write == 0.0


def test_negative_time_rejected():
    model = EnergyModel(SystemConfig())
    with pytest.raises(ValueError):
        model.evaluate(HierarchyStats(), seconds=-1.0)


def test_memory_energy_counts_reads_and_writebacks():
    model = EnergyModel(SystemConfig())
    stats = stats_with(writebacks_to_memory=5)
    stats.memory_reads = 10
    b = model.evaluate(stats, 0.0)
    assert b.memory_dynamic == pytest.approx(15 * EnergyParams().memory_access_nj)
