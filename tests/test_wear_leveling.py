"""Tests for the pluggable wear-leveling strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.leveling import (
    GlobalCounterLeveling,
    HashedStart,
    NoLeveling,
    PerFrameRotation,
    simulate_frame_wear,
    wear_imbalance,
)


def test_no_leveling_always_zero():
    s = NoLeveling()
    assert all(s.start_position(f, w, 64) == 0 for f in range(3) for w in range(3))


def test_global_counter_shared_across_frames():
    s = GlobalCounterLeveling(period_writes=1)
    p0 = s.start_position(0, 0, 64)
    p1 = s.start_position(99, 1, 64)  # different frame, same counter
    assert p1 == (p0 + 1) % 64


def test_per_frame_rotation_independent():
    s = PerFrameRotation()
    assert s.start_position(0, 0, 64) == 0
    assert s.start_position(0, 1, 64) == 1
    assert s.start_position(7, 0, 64) == 0  # other frame starts fresh


def test_hashed_start_deterministic_and_in_range():
    s = HashedStart()
    values = [s.start_position(3, i, 64) for i in range(200)]
    assert values == [s.start_position(3, i, 64) for i in range(200)]
    assert all(0 <= v < 64 for v in values)
    assert len(set(values)) > 16  # spreads out


def test_simulate_frame_wear_total_conserved():
    sizes = [10, 20, 30, 40]
    counts = simulate_frame_wear(PerFrameRotation(), sizes)
    assert counts.sum() == sum(sizes)


def test_simulate_frame_wear_skips_faulty_bytes():
    mask = np.ones(64, dtype=bool)
    mask[[0, 1, 2]] = False
    counts = simulate_frame_wear(NoLeveling(), [30] * 10, live_mask=mask)
    assert counts[[0, 1, 2]].sum() == 0
    assert counts.sum() == 300


def test_no_leveling_concentrates_wear():
    sizes = [16] * 64
    flat = simulate_frame_wear(NoLeveling(), sizes)
    rotated = simulate_frame_wear(PerFrameRotation(), sizes)
    assert wear_imbalance(flat) > wear_imbalance(rotated)
    assert wear_imbalance(rotated) < 1.2


def test_wear_imbalance_edge_cases():
    assert wear_imbalance(np.zeros(64)) == 1.0
    assert wear_imbalance(np.ones(64)) == 1.0


@given(
    st.lists(st.integers(min_value=1, max_value=58), min_size=1, max_size=64),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_rotation_conserves_bytes_with_faults(sizes, n_dead):
    mask = np.ones(64, dtype=bool)
    mask[:n_dead] = False
    counts = simulate_frame_wear(GlobalCounterLeveling(period_writes=2), sizes,
                                 live_mask=mask)
    assert counts.sum() == sum(sizes)
    assert counts[~mask].sum() == 0
