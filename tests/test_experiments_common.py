"""Tests for the experiment machinery: scales, helpers, report, tables."""

import numpy as np
import pytest

from repro.compression.encodings import ecb_size
from repro.experiments import (
    DEFAULT,
    SMOKE,
    aged_capacities,
    format_records,
    format_table,
    get_scale,
    run_one,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.core import make_policy
from repro.experiments.common import geometric_mean


# ----------------------------------------------------------------------
# scales
# ----------------------------------------------------------------------
def test_scale_presets_resolve():
    assert get_scale("smoke") is SMOKE
    assert get_scale("default") is DEFAULT
    with pytest.raises(KeyError):
        get_scale("gigantic")


def test_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert get_scale() is SMOKE


def test_scaled_system_internally_consistent():
    for scale in (SMOKE, DEFAULT):
        cfg = scale.system()
        assert cfg.llc.n_sets == scale.n_sets
        assert cfg.dueling.epoch_cycles == scale.epoch_cycles
        assert cfg.llc.sram_ways == 4 and cfg.llc.nvm_ways == 12
        # sensitivity knobs reach the config
        assert scale.system(sram_ways=3, nvm_ways=13).llc.nvm_ways == 13
        assert scale.system(cv=0.25).endurance.cv == 0.25
        assert scale.system(nvm_latency_factor=1.5).latency.llc_nvm_load == 36


def test_scaled_workload_footprints_shrink():
    wl_small = SMOKE.workload("mix1")
    for prof in wl_small.profiles:
        assert prof.footprint_blocks < 40 * 1024


def test_run_one_executes():
    scale = SMOKE
    res = run_one(scale.system(), make_policy("bh"), scale.workload("mix1"), 1, 1)
    assert res.stats.llc.accesses > 0


# ----------------------------------------------------------------------
# aged capacities
# ----------------------------------------------------------------------
def test_aged_capacities_reach_target():
    cfg = SMOKE.system()
    caps = aged_capacities(cfg, 0.8)
    frac = caps.sum() / (cfg.llc.n_sets * cfg.llc.nvm_ways * 64)
    assert frac == pytest.approx(0.8, abs=0.02)
    assert caps.shape == (cfg.llc.n_sets, cfg.llc.nvm_ways)


def test_aged_capacities_full():
    cfg = SMOKE.system()
    caps = aged_capacities(cfg, 1.0)
    assert (caps == 64).all()


# ----------------------------------------------------------------------
# report formatting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "2.500" in text and "-" in lines[-1]


def test_format_records():
    text = format_records([{"x": 1, "y": "z"}], title="R")
    assert "x" in text and "z" in text
    assert format_records([]) == "(no data)"


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
def test_table1_is_table_i():
    rows = table1_rows()
    by = {r["encoding"]: r for r in rows}
    assert by["ZERO"]["size"] == 1
    assert by["B8D4"]["size"] == 37 and by["B8D4"]["class"] == "HCR"
    assert by["B8D5"]["class"] == "LCR"
    assert by["UNCOMPRESSED"]["ecb"] == 64
    for r in rows:
        if r["size"] < 64:
            assert r["ecb"] == ecb_size(r["size"])


def test_table2_matches_table_ii():
    rows = table2_rows(cpth=37)
    lookup = {(r["reuse"], r["compressed_size"]): r["target"] for r in rows}
    assert lookup[("read", "small (<=CP_th)")] == "NVM"
    assert lookup[("read", "big (>CP_th)")] == "NVM"
    assert lookup[("write", "small (<=CP_th)")] == "SRAM"
    assert lookup[("none", "small (<=CP_th)")] == "NVM"
    assert lookup[("none", "big (>CP_th)")] == "SRAM"


def test_table3_taxonomy():
    rows = table3_rows()
    names = [r["name"] for r in rows]
    assert "bh" in names and "lhybrid" in names and "cp_sd" in names


def test_table4_and_5_dump():
    rows4 = table4_rows()
    assert any("NVM" in r["component"] for r in rows4)
    rows5 = table5_rows()
    assert len(rows5) == 10
    assert rows5[0]["mix"] == "mix1"


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([1, 0]) == 0.0
