"""The optimized engine must agree bit-for-bit with the seed engine.

``tests/goldens/determinism.json`` was recorded with the
pre-optimization engine; every hot-path change since (sharer index,
array replay, inlined fill paths, workload caching) claims to be
semantics-preserving.  This test is that claim, enforced: the SHA-256
of every statistic, epoch record and IPC the golden window produces
must equal the committed digest for each golden policy.

If a change is *meant* to alter results, re-record with
``python -c "from repro.bench.golden import compute_golden_digests;
import json; print(json.dumps(compute_golden_digests(), indent=2))"``
and say so in the commit message — never silently.
"""

import json
from pathlib import Path

from repro.bench.golden import GOLDEN_POLICIES, compute_golden_digests

GOLDEN_PATH = Path(__file__).parent / "goldens" / "determinism.json"


def test_committed_goldens_cover_the_golden_policies():
    committed = json.loads(GOLDEN_PATH.read_text())
    assert set(committed) == set(GOLDEN_POLICIES)
    for policy, digest in committed.items():
        assert isinstance(digest, str) and len(digest) == 64, policy


def test_engine_matches_committed_goldens():
    committed = json.loads(GOLDEN_PATH.read_text())
    computed = compute_golden_digests()
    mismatches = {
        policy: (committed.get(policy), digest)
        for policy, digest in computed.items()
        if committed.get(policy) != digest
    }
    assert not mismatches, (
        "engine output diverged from the committed goldens "
        f"(policy -> (committed, computed)): {mismatches}"
    )
