"""Smoke tests of the figure/ablation runners (tiny dimensions).

The benchmarks exercise these at full experiment size; here each
runner is driven at minimal cost to pin its structure and basic sanity
so a refactor cannot silently break the harness.
"""

import pytest

from repro.experiments import (
    SMOKE,
    run_cpth_sweep,
    run_energy_study,
    run_epoch_size_sweep,
    run_fig8b,
    run_fig9,
    run_lifetime_study,
    run_migration_ablation,
    run_wear_leveling_study,
)

pytestmark = pytest.mark.slow

MIX = ("mix1",)


def test_cpth_sweep_structure():
    result = run_cpth_sweep(
        SMOKE, mixes=MIX, cpth_values=(37, 64), warmup_epochs=2, measure_epochs=1
    )
    assert set(result.ca_hit) == {37, 64}
    assert set(result.ca_rwr_bytes) == {37, 64}
    assert result.cp_sd_hit > 0
    rows = result.rows()
    assert rows[-1]["cpth"] == "SD"
    assert all(v is None or v >= 0 for row in rows for v in row.values()
               if not isinstance(v, str))


def test_fig8b_distributions_normalised():
    dists = run_fig8b(
        SMOKE, mixes=MIX, cpth_values=(37, 64), warmup_epochs=1, measure_epochs=3
    )
    assert len(dists) == 1
    assert abs(sum(dists[0].shares.values()) - 1.0) < 1e-9
    assert dists[0].dominant() in (37, 64)


def test_fig9_points_structure():
    points = run_fig9(
        SMOKE, th_values=(0.0, 8.0), capacities_pct=(100,), mixes=MIX,
        warmup_epochs=2, measure_epochs=1,
    )
    assert len(points) == 2
    assert all(p.capacity_pct == 100 for p in points)
    assert all(p.hits_norm > 0 and p.nvm_bytes_norm >= 0 for p in points)


def test_lifetime_study_structure():
    study = run_lifetime_study(
        SMOKE,
        mixes=MIX,
        policies=(("bh", "bh", {}), ("cp_sd", "cp_sd", {})),
        with_bounds=False,
    )
    rows = study.rows()
    assert {r["policy"] for r in rows} == {"bh", "cp_sd"}
    assert study.lifetime_seconds("cp_sd") > study.lifetime_seconds("bh")
    assert study.initial_ipc("bh") > 0


def test_epoch_sweep_normalisation():
    rows = run_epoch_size_sweep(
        SMOKE, multipliers=(1.0, 2.0), mixes=MIX,
        total_epochs_at_1x=4, warmup_epochs_at_1x=2,
    )
    assert max(r["hits_norm"] for r in rows) == 1.0


def test_migration_ablation_structure():
    rows = run_migration_ablation(SMOKE, mixes=MIX, warmup_epochs=2,
                                  measure_epochs=1)
    by = {r["migration"]: r for r in rows}
    assert by["off"]["migrations"] == 0


def test_energy_study_structure():
    rows = run_energy_study(SMOKE, mixes=MIX, policies=("bh",),
                            warmup_epochs=2, measure_epochs=1)
    assert rows[-1]["policy"] == "sram16 (bound)"
    assert all(r["total_nj"] > 0 for r in rows)


def test_wear_leveling_rows():
    rows = run_wear_leveling_study(n_writes=512)
    names = {r["strategy"] for r in rows}
    assert names == {"none", "global_counter", "per_frame", "hashed"}
    assert all(r["imbalance"] >= 1.0 for r in rows)
