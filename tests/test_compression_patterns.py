"""Tests for the synthetic pattern library feeding the workloads."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bdi import DEFAULT_COMPRESSOR
from repro.compression.encodings import ALL_ENCODINGS, BLOCK_SIZE
from repro.compression.patterns import (
    PatternLibrary,
    base_delta_block,
    incompressible_block,
    rep8_block,
    zero_block,
)


def test_zero_block_compresses_to_one_byte():
    assert DEFAULT_COMPRESSOR.compress(zero_block()).size == 1


def test_rep8_block_compresses_to_eight_bytes():
    block = rep8_block(random.Random(3))
    assert DEFAULT_COMPRESSOR.compress(block).size == 8


def test_incompressible_block_stays_uncompressed():
    block = incompressible_block(random.Random(5))
    assert DEFAULT_COMPRESSOR.compress(block).size == BLOCK_SIZE


@pytest.mark.parametrize(
    "name", ["B8D1", "B8D2", "B8D3", "B8D4", "B8D5", "B8D6", "B8D7"]
)
def test_base_delta_blocks_hit_their_encoding(name):
    enc = next(e for e in ALL_ENCODINGS if e.name == name)
    rng = random.Random(11)
    hits = 0
    for _ in range(16):
        block = base_delta_block(rng, enc)
        if DEFAULT_COMPRESSOR.compress(block).size == enc.size:
            hits += 1
    # the generator is probabilistic but must succeed most of the time
    assert hits >= 12


def test_library_serves_every_encoding_size():
    lib = PatternLibrary(seed=1, pool_size=4)
    for size in lib.available_sizes:
        block = lib.block_for_size(size)
        assert DEFAULT_COMPRESSOR.compress(block).size == size


def test_library_deterministic_choice():
    lib = PatternLibrary(seed=2, pool_size=8)
    a = lib.block_for_size(30, choice=1234)
    b = lib.block_for_size(30, choice=1234)
    assert a == b


def test_library_caches_compression_results():
    lib = PatternLibrary(seed=3, pool_size=4)
    block = lib.block_for_size(44, choice=0)
    first = lib.compression_of(block)
    assert lib.compression_of(block) is first
    assert first.size == 44


def test_library_rejects_unknown_size():
    lib = PatternLibrary(seed=4)
    with pytest.raises(ValueError):
        lib.block_for_size(13)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_library_any_choice_valid(choice):
    lib = PatternLibrary(seed=5, pool_size=4)
    block = lib.block_for_size(23, choice=choice)
    assert DEFAULT_COMPRESSOR.compress(block).size == 23
