"""Unit tests for every insertion policy's placement logic."""

import pytest

from repro.cache.block import ReuseClass
from repro.cache.cacheset import NVM, SRAM, CacheSet
from repro.cache.llc import EvictedBlock
from repro.compression.encodings import ecb_size
from repro.core import make_policy, registered_policies
from repro.core.policy import GLOBAL, FillContext


class FakeLLC:
    """Minimal LLC stand-in: full-capacity frames, migration recorder."""

    n_sets = 64

    def __init__(self):
        self.migrated = []

    def capacity_of(self, cache_set, way):
        return 64

    def sizes_of(self, addr):
        return (64, 64)

    def migrate_to_nvm(self, cache_set, victim):
        self.migrated.append(victim.addr)
        return True


def ctx(csize=30, reuse=ReuseClass.NONE, dirty=False, addr=0):
    return FillContext(addr, dirty, csize, ecb_size(csize), reuse, 0)


def bound(name, **kw):
    policy = make_policy(name, **kw)
    policy.bind(FakeLLC())
    return policy


def cache_set():
    return CacheSet(0, 4, 12)


# ----------------------------------------------------------------------
def test_registry_contains_all_policies():
    names = registered_policies()
    for expected in ("bh", "bh_cp", "ca", "ca_rwr", "cp_sd", "cp_sd_th",
                     "lhybrid", "tap", "sram"):
        assert expected in names


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        make_policy("no_such_policy")


def test_bh_is_global_and_uncompressed():
    policy = bound("bh")
    assert policy.placement(cache_set(), ctx()) == (GLOBAL,)
    assert policy.granularity == "frame"
    assert not policy.compressed and not policy.nvm_aware


def test_bh_cp_is_global_with_compression():
    policy = bound("bh_cp")
    assert policy.placement(cache_set(), ctx()) == (GLOBAL,)
    assert policy.granularity == "byte"
    assert policy.compressed and not policy.nvm_aware


def test_sram_only_placement():
    policy = bound("sram")
    assert policy.placement(cache_set(), ctx()) == (SRAM,)


# ----------------------------------------------------------------------
def test_ca_threshold_split():
    policy = bound("ca", cpth=37)
    assert policy.placement(cache_set(), ctx(csize=37)) == (NVM, SRAM)
    assert policy.placement(cache_set(), ctx(csize=38)) == (SRAM,)
    assert policy.current_cpth() == 37


def test_ca_ignores_reuse():
    policy = bound("ca", cpth=37)
    assert policy.placement(cache_set(), ctx(csize=64, reuse=ReuseClass.READ)) == (SRAM,)


def test_ca_rejects_bad_threshold():
    with pytest.raises(ValueError):
        make_policy("ca", cpth=65)


# ----------------------------------------------------------------------
def test_ca_rwr_table2():
    policy = bound("ca_rwr", cpth=37)
    cs = cache_set()
    # read reuse -> NVM regardless of size
    assert policy.placement(cs, ctx(csize=64, reuse=ReuseClass.READ)) == (NVM, SRAM)
    assert policy.placement(cs, ctx(csize=1, reuse=ReuseClass.READ)) == (NVM, SRAM)
    # write reuse -> SRAM regardless of size
    assert policy.placement(cs, ctx(csize=1, reuse=ReuseClass.WRITE)) == (SRAM,)
    # no reuse -> by size
    assert policy.placement(cs, ctx(csize=30)) == (NVM, SRAM)
    assert policy.placement(cs, ctx(csize=58)) == (SRAM,)


def test_ca_rwr_migrates_read_reused_sram_victims():
    policy = bound("ca_rwr", cpth=37)
    cs = cache_set()
    victim = EvictedBlock(7, False, 30, ReuseClass.READ, SRAM)
    assert policy.handle_sram_eviction(cs, victim)
    assert policy.llc.migrated == [7]
    assert not policy.handle_sram_eviction(
        cs, EvictedBlock(8, True, 30, ReuseClass.WRITE, SRAM)
    )
    assert not policy.handle_sram_eviction(
        cs, EvictedBlock(9, False, 30, ReuseClass.NONE, SRAM)
    )


# ----------------------------------------------------------------------
def test_lhybrid_inserts_only_loop_blocks_to_nvm():
    policy = bound("lhybrid")
    cs = cache_set()
    assert policy.placement(cs, ctx(reuse=ReuseClass.READ)) == (NVM, SRAM)
    assert policy.placement(cs, ctx(reuse=ReuseClass.NONE)) == (SRAM,)
    assert policy.placement(cs, ctx(reuse=ReuseClass.WRITE)) == (SRAM,)


def test_lhybrid_sram_victim_prefers_mru_loop_block():
    policy = bound("lhybrid")
    cs = cache_set()
    cs.insert(0, 10, False, 64, 64, ReuseClass.READ)
    cs.insert(1, 11, False, 64, 64, ReuseClass.NONE)
    cs.insert(2, 12, False, 64, 64, ReuseClass.READ)
    assert policy.choose_victim(cs, SRAM, ctx()) == 2  # MRU LB
    # no loop blocks: plain LRU
    cs2 = cache_set()
    cs2.insert(0, 10, False, 64, 64, ReuseClass.NONE)
    cs2.insert(1, 11, False, 64, 64, ReuseClass.WRITE)
    assert policy.choose_victim(cs2, SRAM, ctx()) == 0


def test_lhybrid_migrates_loop_blocks():
    policy = bound("lhybrid")
    victim = EvictedBlock(5, False, 64, ReuseClass.READ, SRAM)
    assert policy.handle_sram_eviction(cache_set(), victim)
    assert policy.llc.migrated == [5]


# ----------------------------------------------------------------------
def test_tap_requires_clean_and_thrashing():
    policy = bound("tap", hit_threshold=1)
    cs = cache_set()
    addr = 42
    assert policy.placement(cs, ctx(addr=addr)) == (SRAM,)
    cs.insert(0, addr, False, 64, 64, ReuseClass.NONE)
    policy.on_hit(cs, 0, False)
    assert policy.placement(cs, ctx(addr=addr)) == (SRAM,)  # 1 hit: not yet
    policy.on_hit(cs, 0, False)
    assert policy.is_thrashing(addr)
    assert policy.placement(cs, ctx(addr=addr)) == (NVM, SRAM)
    # dirty blocks never go to NVM under TAP
    assert policy.placement(cs, ctx(addr=addr, dirty=True)) == (SRAM,)


def test_tap_counters_decay_periodically():
    policy = bound("tap", hit_threshold=1, decay_epochs=1)
    cs = cache_set()
    cs.insert(0, 42, False, 64, 64, ReuseClass.NONE)
    for _ in range(2):
        policy.on_hit(cs, 0, False)
    assert policy.is_thrashing(42)
    policy.end_epoch()  # 2 -> 1
    assert not policy.is_thrashing(42)
    policy.end_epoch()  # 1 -> 0, dropped
    assert policy._hit_counts == {}


def test_tap_decay_period_respected():
    policy = bound("tap", hit_threshold=1, decay_epochs=3)
    cs = cache_set()
    cs.insert(0, 42, False, 64, 64, ReuseClass.NONE)
    for _ in range(2):
        policy.on_hit(cs, 0, False)
    policy.end_epoch()
    policy.end_epoch()
    assert policy.is_thrashing(42)  # not yet decayed
    policy.end_epoch()
    assert not policy.is_thrashing(42)


def test_tap_validation():
    with pytest.raises(ValueError):
        make_policy("tap", hit_threshold=0)
    with pytest.raises(ValueError):
        make_policy("tap", decay_epochs=0)


# ----------------------------------------------------------------------
def test_taxonomy_complete():
    for name in ("bh", "bh_cp", "lhybrid", "tap", "cp_sd"):
        tax = make_policy(name).taxonomy()
        assert set(tax) == {"name", "disabling", "compression", "nvm_aware"}
