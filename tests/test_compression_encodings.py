"""Tests for the modified-BDI encoding table (Table I)."""

import pytest

from repro.compression.encodings import (
    ALL_ENCODINGS,
    BLOCK_SIZE,
    CPTH_LADDER,
    ECB_OVERHEAD_BYTES,
    ENCODING_SIZES,
    ENCODINGS_BY_CE,
    ENCODINGS_BY_NAME,
    HCR_LIMIT,
    best_fit_encoding,
    classify,
    ecb_size,
)


def test_block_size_is_64():
    assert BLOCK_SIZE == 64


def test_hcr_boundary_is_37():
    # Sec. II-B: blocks with compressed size <= 37 are HCR.
    assert HCR_LIMIT == 37


def test_base8_family_matches_paper_ladder():
    """The B8 sizes must produce the CP_th ladder the paper sweeps."""
    sizes = [ENCODINGS_BY_NAME[f"B8D{d}"].size for d in range(1, 8)]
    assert sizes == [16, 23, 30, 37, 44, 51, 58]


def test_cpth_ladder_values():
    assert CPTH_LADDER == (30, 37, 44, 51, 58, 64)
    for value in CPTH_LADDER:
        assert value == 64 or value in ENCODING_SIZES


def test_special_encoding_sizes():
    assert ENCODINGS_BY_NAME["ZERO"].size == 1
    assert ENCODINGS_BY_NAME["REP8"].size == 8
    assert ENCODINGS_BY_NAME["UNCOMPRESSED"].size == 64


def test_b8d7_fits_frame_with_one_dead_byte():
    """Sec. III-B: encodings B8D7 and above (<=58 B) fit 63 live bytes."""
    enc = ENCODINGS_BY_NAME["B8D7"]
    assert ecb_size(enc.size) <= 63


def test_ce_identifiers_unique_and_4bit():
    ces = [e.ce for e in ALL_ENCODINGS]
    assert len(set(ces)) == len(ces)
    assert all(0 <= ce < 16 for ce in ces)
    assert ENCODINGS_BY_CE[15].name == "UNCOMPRESSED"


def test_sizes_strictly_within_block():
    for enc in ALL_ENCODINGS:
        assert 1 <= enc.size <= BLOCK_SIZE


def test_n_values_consistency():
    for enc in ALL_ENCODINGS:
        if enc.base_bytes:
            assert enc.n_values * enc.base_bytes == BLOCK_SIZE


def test_classify_boundaries():
    assert classify(1) == "hcr"
    assert classify(37) == "hcr"
    assert classify(38) == "lcr"
    assert classify(58) == "lcr"
    assert classify(64) == "incompressible"


def test_ecb_size_adds_metadata():
    assert ecb_size(30) == 30 + ECB_OVERHEAD_BYTES
    assert ecb_size(64) == 64  # uncompressed pays no in-frame metadata
    assert ecb_size(63) == 64  # capped at the frame size


def test_ecb_size_rejects_out_of_range():
    with pytest.raises(ValueError):
        ecb_size(-1)
    with pytest.raises(ValueError):
        ecb_size(65)


def test_best_fit_encoding():
    assert best_fit_encoding(64).name == "UNCOMPRESSED"
    assert best_fit_encoding(63).size == 58
    assert best_fit_encoding(37).size == 37
    assert best_fit_encoding(15).size == 8
    assert best_fit_encoding(0) is None


def test_hcr_flags():
    assert ENCODINGS_BY_NAME["B8D4"].is_hcr
    assert not ENCODINGS_BY_NAME["B8D5"].is_hcr
    assert ENCODINGS_BY_NAME["B8D5"].is_compressed
    assert not ENCODINGS_BY_NAME["UNCOMPRESSED"].is_compressed
