"""Snapshot/restore tests: split-run equivalence, gated by goldens.

The warm-start contract (ISSUE 4): ``run_until(w, w)`` + snapshot +
restore + ``run_until(total, w)`` must be *byte-identical* to the cold
``run(total, warmup_cycles=w)`` — gated against the committed golden
digests, so a divergence fails even if warm and cold drift together.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.bench.golden import (
    GOLDEN_EPOCHS,
    GOLDEN_MIX,
    GOLDEN_POLICIES,
    GOLDEN_RECORDS_PER_CORE,
    GOLDEN_SCALE_FACTOR,
    GOLDEN_SEED,
    GOLDEN_WARMUP_EPOCHS,
    simulation_digest,
)
from repro.core import make_policy
from repro.engine import Simulation, Workload
from repro.experiments.common import SMOKE, run_one
from repro.forecast import Forecaster
from repro.memo.snapshots import (
    SNAPSHOT_MEMO_ENV,
    SnapshotStore,
    reset_shared_snapshot_store,
    shared_snapshot_store,
    warm_prefix_key,
)
from repro.workloads.mixes import mix_profiles

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "determinism.json").read_text()
)


def golden_workload() -> Workload:
    profiles = [p.scaled(GOLDEN_SCALE_FACTOR) for p in mix_profiles(GOLDEN_MIX)]
    return Workload(
        profiles, seed=GOLDEN_SEED,
        trace_records_per_core=GOLDEN_RECORDS_PER_CORE,
    )


@pytest.mark.parametrize("policy_name", GOLDEN_POLICIES)
def test_snapshot_restore_matches_golden_digest(policy_name):
    """Warm-started split run reproduces the committed golden digest."""
    config = SMOKE.system()
    epoch = config.dueling.epoch_cycles
    warmup = epoch * GOLDEN_WARMUP_EPOCHS
    total = epoch * (GOLDEN_WARMUP_EPOCHS + GOLDEN_EPOCHS)

    sim = Simulation(config, make_policy(policy_name), golden_workload())
    prefix = sim.run_until(warmup, warmup_until=warmup)
    snap = sim.snapshot()

    def measured_from(snapshot):
        warm = Simulation(config, make_policy(policy_name), golden_workload())
        warm.restore(snapshot)
        result = warm.run_until(total, warmup_until=warmup)
        result.epochs[:0] = [dataclasses.replace(e) for e in prefix.epochs]
        return result

    assert simulation_digest(measured_from(snap)) == GOLDENS[policy_name]
    # The snapshot must survive being restored twice (the store serves
    # many units from one entry) — a restore must not consume it.
    assert simulation_digest(measured_from(snap)) == GOLDENS[policy_name]


def test_restore_rejects_core_count_mismatch():
    from repro.engine import SimulationSnapshot

    config = SMOKE.system()
    sim = Simulation(config, make_policy("bh"), golden_workload())
    snap = sim.snapshot()
    hierarchy, cores, cursors, next_epoch, epoch_index = snap._state
    truncated = SimulationSnapshot(
        (hierarchy, cores[:2], cursors[:2], next_epoch, epoch_index),
        snap._shared,
    )
    with pytest.raises(ValueError):
        sim.restore(truncated)


@pytest.fixture
def snapshot_env(monkeypatch):
    """Enable a fresh shared store; restore global state afterwards."""
    monkeypatch.setenv(SNAPSHOT_MEMO_ENV, "1")
    reset_shared_snapshot_store()
    yield
    reset_shared_snapshot_store()


def _run_one_golden(policy_name):
    return run_one(
        SMOKE.system(),
        make_policy(policy_name),
        golden_workload(),
        warmup_epochs=GOLDEN_WARMUP_EPOCHS,
        measure_epochs=GOLDEN_EPOCHS,
    )


@pytest.mark.parametrize("policy_name", GOLDEN_POLICIES)
def test_run_one_warm_path_is_invisible(policy_name, snapshot_env):
    """Miss (populates), hit, and cold paths all yield the golden digest."""
    store = shared_snapshot_store()
    miss = _run_one_golden(policy_name)
    assert store.hits == 0 and len(store) == 1
    hit = _run_one_golden(policy_name)
    assert store.hits == 1

    assert simulation_digest(miss) == GOLDENS[policy_name]
    assert simulation_digest(hit) == GOLDENS[policy_name]


def test_run_one_with_store_disabled(monkeypatch):
    monkeypatch.setenv(SNAPSHOT_MEMO_ENV, "0")
    reset_shared_snapshot_store()
    assert shared_snapshot_store() is None
    result = _run_one_golden("bh")
    assert simulation_digest(result) == GOLDENS["bh"]


def test_forecaster_warm_start_is_invisible(snapshot_env, monkeypatch):
    """Forecast points are identical cold, on a miss, and on a hit."""
    config = SMOKE.system()
    epoch = config.dueling.epoch_cycles

    def forecast():
        return Forecaster(
            config,
            make_policy("cp_sd"),
            golden_workload(),
            phase_cycles=epoch * 1.0,
            initial_warmup_cycles=epoch * 0.5,
            rewarm_cycles=epoch * 0.25,
            max_steps=2,
        ).run()

    monkeypatch.setenv(SNAPSHOT_MEMO_ENV, "0")
    reset_shared_snapshot_store()
    cold = forecast()
    monkeypatch.setenv(SNAPSHOT_MEMO_ENV, "1")
    reset_shared_snapshot_store()
    miss = forecast()
    store = shared_snapshot_store()
    assert len(store) == 1
    hit = forecast()
    assert store.hits == 1

    assert miss.points == cold.points
    assert hit.points == cold.points
    assert (miss.reached_stop, miss.horizon_seconds) == (
        cold.reached_stop, cold.horizon_seconds,
    )


def test_warm_prefix_key_sensitivity():
    config = SMOKE.system()
    workload = golden_workload()
    key = warm_prefix_key(config, make_policy("cp_sd"), workload, 1000.0)
    # Same inputs, fresh objects: content addressing, not identity.
    assert key == warm_prefix_key(
        SMOKE.system(), make_policy("cp_sd"), golden_workload(), 1000.0
    )
    assert key != warm_prefix_key(config, make_policy("bh"), workload, 1000.0)
    assert key != warm_prefix_key(config, make_policy("cp_sd"), workload, 2000.0)
    assert key != warm_prefix_key(
        SMOKE.system(nvm_ways=8), make_policy("cp_sd"), workload, 1000.0
    )
    other_seed = Workload(
        [p.scaled(GOLDEN_SCALE_FACTOR) for p in mix_profiles(GOLDEN_MIX)],
        seed=1, trace_records_per_core=GOLDEN_RECORDS_PER_CORE,
    )
    assert key != warm_prefix_key(config, make_policy("cp_sd"), other_seed, 1000.0)


def test_warm_prefix_key_gives_up_on_unfreezable_policy():
    policy = make_policy("cp_sd")
    policy.opaque = lambda: None  # not canonicalisable
    assert (
        warm_prefix_key(SMOKE.system(), policy, golden_workload(), 1000.0)
        is None
    )


def test_snapshot_store_is_a_bounded_lru():
    store = SnapshotStore(capacity=2)
    store.put("a", "snap_a", [])
    store.put("b", "snap_b", [])
    assert store.get("a").snapshot == "snap_a"  # refreshes "a"
    store.put("c", "snap_c", [])                # evicts "b", the LRU
    assert store.get("b") is None
    assert store.get("a") is not None and store.get("c") is not None
    assert len(store) == 2
    assert store.hits == 3 and store.misses == 1
