"""Integration: Set Dueling adaptivity and fault-injected (aged) caches."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments.common import SMOKE, aged_capacities


def run_cp_sd(mix, capacities=None, epochs=12):
    scale = SMOKE
    config = scale.system()
    sim = Simulation(config, make_policy("cp_sd"), scale.workload(mix))
    if capacities is not None:
        sim.hierarchy.llc.faultmap.load_capacities(capacities)
    epoch = config.dueling.epoch_cycles
    res = sim.run(cycles=epochs * epoch, warmup_cycles=4 * epoch)
    return sim, res


def test_dueling_elects_each_epoch():
    sim, res = run_cp_sd("mix1")
    controller = sim.policy.controller
    assert controller.epochs_elapsed >= 8
    assert all(
        w in controller.candidates for w in controller.winner_history
    )


def test_incompressible_mix_starves_nvm_under_ca():
    """mix4 contains milc (100 % incompressible): CA must under-use NVM
    for that app's traffic while CP_SD still populates NVM overall."""
    scale = SMOKE
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    ca = Simulation(config, make_policy("ca", cpth=37), scale.workload("mix4"))
    res = ca.run(cycles=8 * epoch, warmup_cycles=4 * epoch)
    llc = res.stats.llc
    # incompressible blocks all land in SRAM
    assert llc.fills_sram > 0
    assert llc.fills_nvm < llc.fills_sram * 3


def test_aged_cache_reduces_nvm_insertions():
    _sim_full, res_full = run_cp_sd("mix1")
    caps = aged_capacities(SMOKE.system(), 0.55)
    _sim_aged, res_aged = run_cp_sd("mix1", capacities=caps)
    # with over half the NVM bytes gone, fewer blocks fit NVM frames
    assert res_aged.stats.llc.fills_nvm < res_full.stats.llc.fills_nvm
    assert res_aged.stats.llc.nvm_bytes_written < res_full.stats.llc.nvm_bytes_written


def test_aged_cache_costs_hit_rate():
    _s1, res_full = run_cp_sd("mix1")
    caps = aged_capacities(SMOKE.system(), 0.5)
    _s2, res_aged = run_cp_sd("mix1", capacities=caps)
    assert res_aged.hit_rate <= res_full.hit_rate + 0.02


def test_dead_frames_never_hold_blocks():
    config = SMOKE.system()
    caps = aged_capacities(config, 0.6)
    sim, _res = run_cp_sd("mix1", capacities=caps)
    llc = sim.hierarchy.llc
    for cache_set in llc.sets:
        for way in range(cache_set.sram_ways, cache_set.total_ways):
            if cache_set.tags[way] is not None:
                assert cache_set.ecb[way] <= llc.capacity_of(cache_set, way)


def test_frame_disabling_policy_on_aged_cache():
    scale = SMOKE
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    sim = Simulation(config, make_policy("bh"), scale.workload("mix1"))
    caps = aged_capacities(config, 0.7, granularity="frame")
    sim.hierarchy.llc.faultmap.load_capacities(caps)
    res = sim.run(cycles=6 * epoch, warmup_cycles=2 * epoch)
    assert res.stats.llc.accesses > 0
    # frame granularity: every capacity is 0 or 64
    unique = set(np.unique(sim.hierarchy.llc.faultmap.capacities))
    assert unique <= {0, 64}
