"""Tests for the closed-form analytical estimator and its validation gate."""

import numpy as np
import pytest

from repro.analytical import (
    CLASS_NONE,
    CLASS_READ,
    CLASS_WRITE,
    TOLERANCES,
    AnalyticalModel,
    PolicyDescriptor,
    estimate_record,
    load_reference,
    validate_against_reference,
    validation_table,
    workload_statistics,
)
from repro.analytical.model import _apportion
from repro.analytical.validate import DEFAULT_REFERENCE, REFERENCE_POLICIES
from repro.experiments.common import SMOKE


@pytest.fixture(scope="module")
def workload():
    return SMOKE.workload("mix1", seed=0)


@pytest.fixture(scope="module")
def model():
    return AnalyticalModel(SMOKE.system())


# ----------------------------------------------------------------------
# Workload statistics
def test_statistics_shapes_and_conservation(workload, model):
    stats = model.statistics(workload)
    assert stats.n_cores == len(workload.traces)
    for cs in stats.cores:
        n_classes, n_sets, n_buckets = cs.counts.shape
        assert n_classes == 3
        assert cs.write_counts.shape == cs.counts.shape
        # every warm access is counted exactly once across classes
        assert cs.counts.sum() > 0
        # write counts are a subset of counts
        assert np.all(cs.write_counts <= cs.counts + 1e-9)
        # footprint blocks partition across classes too
        assert cs.blocks.sum() > 0


def test_statistics_cached_per_workload(workload, model):
    first = model.statistics(workload)
    second = model.statistics(workload)
    assert first is second  # same (threshold, reach, passes) key


def test_statistics_reach_depends_on_policy(workload, model):
    ca = model.statistics(workload, PolicyDescriptor.of("ca", cpth=58))
    tap = model.statistics(workload, PolicyDescriptor.of("tap"))
    # LHybrid/TAP classify from SRAM-part residency only: a narrower
    # observation window, so strictly fewer READ/WRITE-classified blocks.
    assert ca is not tap
    ca_classified = sum(
        cs.blocks[(CLASS_READ, CLASS_WRITE), :].sum() for cs in ca.cores
    )
    tap_classified = sum(
        cs.blocks[(CLASS_READ, CLASS_WRITE), :].sum() for cs in tap.cores
    )
    assert tap_classified < ca_classified


# ----------------------------------------------------------------------
# Water-filling
def test_apportion_proportional_when_unconstrained():
    share = _apportion(100.0, np.array([3.0, 1.0]), np.array([1e9, 1e9]))
    assert share == pytest.approx([75.0, 25.0])


def test_apportion_caps_at_demand_and_refills():
    share = _apportion(100.0, np.array([3.0, 1.0]), np.array([10.0, 1e9]))
    # core 0 is demand-capped at 10; the slack flows to core 1
    assert share == pytest.approx([10.0, 90.0])


def test_apportion_total_conserved():
    share = _apportion(64.0, np.array([1.0, 2.0, 5.0]),
                       np.array([30.0, 30.0, 30.0]))
    assert share.sum() == pytest.approx(64.0)
    assert np.all(share <= 30.0 + 1e-9)


# ----------------------------------------------------------------------
# Model estimates
def test_estimate_basic_sanity(workload, model):
    est = model.estimate(workload, PolicyDescriptor.of("bh"))
    assert 0.0 < est.mean_ipc < 4.0
    assert 0.0 <= est.llc_hit_rate <= 1.0
    assert est.nvm_write_rate > 0
    assert est.lifetime_seconds > 0
    assert est.elected_cpth is None
    assert len(est.ipcs) == len(workload.traces)


def test_sram_only_policy_writes_nothing_to_nvm(workload):
    config = SMOKE.system(sram_ways=4, nvm_ways=12)
    model = AnalyticalModel(config)
    est = model.estimate(workload, PolicyDescriptor.of("sram"))
    # "sram" is the SRAM-only baseline: no NVM routing, but the global
    # LRU spans both parts in the engine, so the model mirrors bh here.
    assert est.nvm_write_rate >= 0


def test_compression_reduces_nvm_bytes(workload, model):
    bh = model.estimate(workload, PolicyDescriptor.of("bh"))
    bh_cp = model.estimate(workload, PolicyDescriptor.of("bh_cp"))
    # Identical insertion behaviour; compression only shrinks wear bytes.
    assert bh_cp.nvm_write_rate < bh.nvm_write_rate
    assert bh_cp.llc_hit_rate == pytest.approx(bh.llc_hit_rate)


def test_read_routing_cuts_write_traffic(workload, model):
    ca = model.estimate(workload, PolicyDescriptor.of("ca", cpth=58))
    ca_rwr = model.estimate(workload, PolicyDescriptor.of("ca_rwr", cpth=58))
    # RWR keeps write-reused blocks out of NVM: fewer NVM bytes.
    assert ca_rwr.nvm_write_rate < ca.nvm_write_rate


def test_frame_granularity_shortens_lifetime(workload, model):
    desc_byte = PolicyDescriptor.of("bh_cp")    # byte-granularity disable
    desc_frame = PolicyDescriptor.of("bh")      # frame-granularity disable
    rate = 1e6
    assert (model._lifetime_seconds(desc_frame, rate)
            < model._lifetime_seconds(desc_byte, rate))


def test_cp_sd_elects_from_candidate_ladder(workload, model):
    est = model.estimate(workload, PolicyDescriptor.of("cp_sd"))
    assert est.elected_cpth in SMOKE.system().dueling.cpth_candidates


def test_cp_sd_th_trades_hits_for_writes(workload, model):
    # An extreme write weight must never elect a *larger* CP_th than
    # the pure hit-maximising rule.
    max_hits = model.estimate(workload, PolicyDescriptor.of("cp_sd"))
    thrifty = model.estimate(
        workload, PolicyDescriptor.of("cp_sd_th", th=1.0, tw=1000.0))
    assert thrifty.elected_cpth <= max_hits.elected_cpth


def test_estimate_record_is_schema_valid(workload):
    record = estimate_record(SMOKE.system(), workload,
                             PolicyDescriptor.of("ca_rwr", cpth=58))
    record.validate()
    payload = record.to_json()
    assert payload["kind"] == "analytical"
    assert payload["metrics"]["analytical.mean_ipc"] > 0
    assert payload["meta"]["policy"]["name"] == "ca_rwr"


def test_estimates_are_deterministic(workload, model):
    a = model.estimate(workload, PolicyDescriptor.of("cp_sd"))
    b = model.estimate(workload, PolicyDescriptor.of("cp_sd"))
    assert a.mean_ipc == b.mean_ipc
    assert a.nvm_write_rate == b.nvm_write_rate
    assert a.elected_cpth == b.elected_cpth


# ----------------------------------------------------------------------
# The accuracy contract against the committed reference
@pytest.fixture(scope="module")
def reference():
    document = load_reference(DEFAULT_REFERENCE)
    if document is None:
        pytest.skip(f"no committed reference at {DEFAULT_REFERENCE}")
    return document


def test_reference_covers_the_matrix(reference):
    assert reference["scale"] == "smoke"
    policies = {c["policy"] for c in reference["cases"]}
    assert policies == {d.name for d in REFERENCE_POLICIES}
    mixes = {c["mix"] for c in reference["cases"]}
    assert mixes == set(SMOKE.mixes)


def test_validation_within_documented_tolerances(reference):
    report = validate_against_reference(reference, SMOKE)
    means = report.mean_errors()
    for metric, bound in TOLERANCES.items():
        assert means[metric] <= bound, (
            f"{metric} mean error {means[metric]:.1%} exceeds the "
            f"documented {bound:.0%} tolerance"
        )
    assert report.ok(TOLERANCES)
    assert "ok" in report.summary()


def test_validation_table_renders(reference):
    report = validate_against_reference(reference, SMOKE)
    table = validation_table(report)
    assert "| policy | mix | metric |" in table
    assert "mean error" in table
