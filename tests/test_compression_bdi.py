"""Unit and property-based tests for the BDI compressor."""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionResult
from repro.compression.bdi import (
    BDICompressor,
    DEFAULT_COMPRESSOR,
    compressed_size,
    signed_bytes_needed,
)
from repro.compression.encodings import BLOCK_SIZE

bdi = BDICompressor()


def roundtrip(block: bytes) -> CompressionResult:
    result = bdi.compress(block)
    assert bdi.decompress(result) == block
    return result


# ----------------------------------------------------------------------
# deterministic cases
# ----------------------------------------------------------------------
def test_zero_block():
    result = roundtrip(bytes(64))
    assert result.encoding.name == "ZERO"
    assert result.size == 1


def test_repeated_8byte_value():
    block = (0xDEADBEEFCAFEF00D).to_bytes(8, "little") * 8
    result = roundtrip(block)
    assert result.encoding.name == "REP8"
    assert result.size == 8


def test_base8_delta1():
    base = 1 << 40
    values = [base + d for d in (0, 1, -5, 100, 127, -128, 3, 7)]
    block = b"".join(v.to_bytes(8, "little") for v in values)
    result = roundtrip(block)
    assert result.encoding.name == "B8D1"
    assert result.size == 16


def test_base8_delta4():
    base = 1 << 50
    deltas = (0, 1 << 30, -(1 << 31), 5, -9, 1 << 20, 3, 2**31 - 1)
    block = b"".join(((base + d) & (2**64 - 1)).to_bytes(8, "little") for d in deltas)
    result = roundtrip(block)
    assert result.encoding.name == "B8D4"
    assert result.size == 37


def test_base4_delta1_preferred_over_base8():
    """Sixteen nearby 4-byte values: B4D1 (20 B) beats B8D2 (23 B)."""
    base = 0x40000000
    rng = random.Random(1)
    values = [base + rng.randint(-50, 50) for _ in range(16)]
    block = b"".join(v.to_bytes(4, "little") for v in values)
    result = roundtrip(block)
    assert result.encoding.name == "B4D1"
    assert result.size == 20


def test_base2_delta1():
    rng = random.Random(7)
    base = 0x4000
    values = [base] + [base + rng.randint(-120, 120) for _ in range(31)]
    block = b"".join(v.to_bytes(2, "little") for v in values)
    result = roundtrip(block)
    # 34 bytes (B2D1) unless a cheaper family also applies
    assert result.size <= 34


def test_incompressible_random_block():
    rng = random.Random(42)
    block = bytes(rng.getrandbits(8) for _ in range(64))
    result = roundtrip(block)
    assert result.encoding.name == "UNCOMPRESSED"
    assert result.size == 64


def test_wrong_block_size_rejected():
    with pytest.raises(ValueError):
        bdi.compress(b"\x00" * 63)
    with pytest.raises(ValueError):
        bdi.compress(b"\x00" * 65)


def test_default_compressor_singleton():
    assert compressed_size(bytes(64)) == 1
    assert DEFAULT_COMPRESSOR.compress(bytes(64)).encoding.name == "ZERO"


def test_payload_length_matches_encoding():
    base = 1 << 33
    block = b"".join((base + i).to_bytes(8, "little") for i in range(8))
    result = bdi.compress(block)
    assert len(result.payload) == result.size


# ----------------------------------------------------------------------
# signed_bytes_needed
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "delta,expected",
    [
        (0, 1),
        (127, 1),
        (128, 2),
        (-128, 1),
        (-129, 2),
        (32767, 2),
        (32768, 3),
        (-32768, 2),
        (2**31 - 1, 4),
        (-(2**31), 4),
    ],
)
def test_signed_bytes_needed(delta, expected):
    assert signed_bytes_needed(delta) == expected


@given(st.integers(min_value=-(2**62), max_value=2**62))
def test_signed_bytes_needed_roundtrips(delta):
    n = signed_bytes_needed(delta)
    assert delta.to_bytes(n, "little", signed=True)
    if n > 1:
        with pytest.raises(OverflowError):
            delta.to_bytes(n - 1, "little", signed=True)


# ----------------------------------------------------------------------
# property-based round-trips
# ----------------------------------------------------------------------
@given(st.binary(min_size=64, max_size=64))
@settings(max_examples=300)
def test_roundtrip_arbitrary_blocks(block):
    result = bdi.compress(block)
    assert bdi.decompress(result) == block
    assert 1 <= result.size <= BLOCK_SIZE


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.lists(st.integers(min_value=-128, max_value=127), min_size=7, max_size=7),
)
@settings(max_examples=200)
def test_roundtrip_delta1_family(base, deltas):
    mask = 2**64 - 1
    values = [base] + [(base + d) & mask for d in deltas]
    block = b"".join(v.to_bytes(8, "little") for v in values)
    result = bdi.compress(block)
    assert bdi.decompress(result) == block
    assert result.size <= 34  # at worst B2D1/B8D2-level for this family


@given(st.binary(min_size=64, max_size=64))
@settings(max_examples=200)
def test_compression_never_worse_than_uncompressed(block):
    assert bdi.compress(block).size <= BLOCK_SIZE


@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_all_equal_words_compress_tiny(word):
    block = word.to_bytes(2, "little") * 32
    result = bdi.compress(block)
    assert result.size <= 8  # ZERO or REP8
    assert bdi.decompress(result) == block
