"""On-disk trace cache, compressed-size sidecars, scaling-bench units.

The invariant under test throughout: caching layers (mmap-backed disk
hits, preloaded size sidecars, shared workloads) may change *how fast*
a workload materialises, never *what* the engine computes from it.
"""

import struct

import pytest

from repro.workloads.cache import (
    SIZES_VERSION,
    TRACE_CACHE_ENV,
    SidecarError,
    load_or_materialize,
    load_sizes_sidecar,
    save_sizes_sidecar,
    sizes_sidecar_path,
    trace_cache_dir,
    trace_cache_key,
)
from repro.workloads.profiles import profile

PROFILE = profile("mcf17").scaled(1 / 32)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "trace_cache"
    monkeypatch.setenv(TRACE_CACHE_ENV, str(directory))
    return directory


# ----------------------------------------------------------------------
# disk cache hits via the mmap loader

def test_disk_hit_equals_generated(cache_dir):
    generated = load_or_materialize(PROFILE, 0, 0, 300)   # miss: generates
    assert cache_dir.exists()
    cached = load_or_materialize(PROFILE, 0, 0, 300)      # hit: mmap load
    assert cached.records == generated.records
    assert cached.replay_columns() == generated.replay_columns()


def test_corrupt_cache_entry_regenerates(cache_dir):
    generated = load_or_materialize(PROFILE, 0, 0, 50)
    path = cache_dir / f"{trace_cache_key(PROFILE, 0, 0, 50)}.trc"
    assert path.exists()
    path.write_bytes(path.read_bytes()[:-7])              # torn write
    recovered = load_or_materialize(PROFILE, 0, 0, 50)
    assert recovered.records == generated.records


def test_cache_disabled_without_env(tmp_path, monkeypatch):
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    assert trace_cache_dir() is None
    trace = load_or_materialize(PROFILE, 0, 0, 40)
    assert len(trace) == 40


# ----------------------------------------------------------------------
# compressed-size sidecars

def test_sizes_sidecar_roundtrip(cache_dir):
    entries = {0x1000: (22, 36), 0x40: (64, 72), 0x2000: (8, 14)}
    save_sizes_sidecar(PROFILE, 1, 0, 100, entries)
    loaded = load_sizes_sidecar(PROFILE, 1, 0, 100)
    assert loaded == entries


def test_sizes_sidecar_bytes_are_order_independent(cache_dir):
    entries = {3: (1, 2), 1: (3, 4), 2: (5, 6)}
    save_sizes_sidecar(PROFILE, 0, 0, 10, entries)
    path = sizes_sidecar_path(cache_dir, PROFILE, 0, 0, 10)
    first = path.read_bytes()
    save_sizes_sidecar(PROFILE, 0, 0, 10, dict(reversed(entries.items())))
    assert path.read_bytes() == first


def test_sizes_sidecar_missing_or_disabled(cache_dir, monkeypatch):
    assert load_sizes_sidecar(PROFILE, 0, 0, 999) is None  # missing
    monkeypatch.delenv(TRACE_CACHE_ENV)
    save_sizes_sidecar(PROFILE, 0, 0, 10, {1: (2, 3)})     # no-op
    assert load_sizes_sidecar(PROFILE, 0, 0, 10) is None


def test_sizes_sidecar_rejects_structural_corruption(cache_dir):
    save_sizes_sidecar(PROFILE, 0, 0, 10, {1: (2, 3), 4: (5, 6)})
    path = sizes_sidecar_path(cache_dir, PROFILE, 0, 0, 10)
    good = path.read_bytes()  # a REPROBLB envelope around REPROSZC bytes

    corruptions = [
        b"WRONGMAG" + good[8:],   # clobbered envelope magic -> legacy
                                  # parse sees garbage, not REPROSZC
        good[:-4],                # torn tail -> envelope length mismatch
        good[:10],                # short header
        good[:-2] + bytes([good[-2] ^ 0x40, good[-1]]),  # bit rot
    ]
    for bad in corruptions:
        path.write_bytes(bad)
        with pytest.raises(SidecarError):
            load_sizes_sidecar(PROFILE, 0, 0, 10)
        # corruption is evidence: the bad bytes move to quarantine/
        # (with a reason record) rather than being read again
        assert not path.exists()
        quarantined = list((cache_dir / "quarantine").glob("*.sizes*"))
        assert quarantined
        path.write_bytes(good)  # restore for the next round

    # A legacy (pre-envelope) sidecar with a stale version is rejected.
    inner = struct.pack("<8sII", b"REPROSZC", SIZES_VERSION + 1, 0)
    path.write_bytes(inner)
    with pytest.raises(SidecarError):
        load_sizes_sidecar(PROFILE, 0, 0, 10)

    path.write_bytes(good)                                 # intact again
    assert load_sizes_sidecar(PROFILE, 0, 0, 10) == {1: (2, 3), 4: (5, 6)}


def test_sidecar_preload_is_observationally_identical(cache_dir):
    """A workload whose sizes came from a sidecar reports the same
    (csize, ecb) for every address as one that drew them."""
    from repro.engine import Workload
    from repro.workloads.mixes import mix_profiles

    profiles = [p.scaled(1 / 32) for p in mix_profiles("mix1")]
    first = Workload(profiles, seed=0, trace_records_per_core=2_000)
    # the first build wrote sidecars; the second must preload them
    second = Workload(profiles, seed=0, trace_records_per_core=2_000)
    sidecars = list(cache_dir.glob("*.sizes"))
    assert len(sidecars) == len(profiles)
    for trace in first.traces:
        for addr in set(trace.addrs):
            assert first.data_model.size_fn(addr) == second.data_model.size_fn(addr)


def test_sidecar_never_changes_simulation_results(cache_dir):
    from repro.bench.golden import simulation_digest
    from repro.core import make_policy
    from repro.engine import Simulation, Workload
    from repro.experiments.common import SMOKE
    from repro.workloads.mixes import mix_profiles

    profiles = [p.scaled(SMOKE.factor) for p in mix_profiles("mix1")]
    records = SMOKE.trace_records_per_core
    epoch = SMOKE.system().dueling.epoch_cycles

    def digest():
        workload = Workload(profiles, seed=0, trace_records_per_core=records)
        sim = Simulation(SMOKE.system(), make_policy("ca_rwr"), workload)
        return simulation_digest(sim.run(epoch, 0))

    cold = digest()    # generates traces, draws sizes, writes sidecars
    warm = digest()    # mmap trace hit + sidecar preload
    assert cold == warm


# ----------------------------------------------------------------------
# bench_cells units (the scaling bench's task matrix)

def test_bench_cells_enumeration_and_determinism():
    from repro.experiments import ALL_EXPERIMENT_NAMES, EXPERIMENT_NAMES
    from repro.experiments.bench_cells import (
        BENCH_CELL_POLICIES,
        enumerate_bench_cell_units,
    )
    from repro.experiments.campaign_tasks import run_campaign_task
    from repro.experiments.common import SMOKE
    from repro.harness import dump_json

    units = enumerate_bench_cell_units(SMOKE)
    assert len(units) == 2 * len(BENCH_CELL_POLICIES)
    # registered for campaigns, excluded from the default experiment set
    assert "bench_cells" in ALL_EXPERIMENT_NAMES
    assert "bench_cells" not in EXPERIMENT_NAMES

    one = dump_json(run_campaign_task("bench_cells", units[0], "smoke"))
    two = dump_json(run_campaign_task("bench_cells", units[0], "smoke"))
    assert one == two, "bench cell results must be byte-stable"


def test_parse_jobs_spec():
    import os

    from repro.bench.parallel import _parse_jobs_spec

    assert _parse_jobs_spec("1,4,2,4") == [1, 2, 4]
    auto = _parse_jobs_spec("auto")
    assert 1 in auto and max(1, os.cpu_count() or 1) in auto
    for bad in ("", "0", "x", "1,-2"):
        with pytest.raises(ValueError):
            _parse_jobs_spec(bad)
