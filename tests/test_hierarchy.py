"""Integration tests for the non-inclusive multi-core hierarchy."""

import pytest

from repro.cache.block import ReuseClass
from repro.cache.hierarchy import Level, MemoryHierarchy
from repro.config import (
    CacheGeometry,
    CoreConfig,
    HybridGeometry,
    SystemConfig,
)
from repro.core import make_policy


def tiny_system(n_cores=2, l1_sets=2, l2_sets=4, llc_sets=8):
    return SystemConfig(
        cores=CoreConfig(n_cores=n_cores),
        l1=CacheGeometry(l1_sets * 2 * 64, 2),
        l2=CacheGeometry(l2_sets * 4 * 64, 4),
        llc=HybridGeometry(n_sets=llc_sets, sram_ways=2, nvm_ways=4, n_banks=2),
    )


def make_hierarchy(policy_name="bh_cp", size_fn=None, **kw):
    config = tiny_system(**kw)
    return MemoryHierarchy(config, make_policy(policy_name), size_fn=size_fn)


def test_cold_miss_goes_to_memory_not_llc():
    h = make_hierarchy()
    outcome = h.access(0, 100, is_write=False)
    assert outcome.level == Level.MEMORY
    # non-inclusive: memory fills go straight to L1/L2, never the LLC
    assert not h.llc.contains(100)
    assert h.l1[0].contains(100) and h.l2[0].contains(100)
    assert h.stats.memory_reads == 1


def test_l1_then_l2_hits():
    h = make_hierarchy()
    h.access(0, 100, False)
    assert h.access(0, 100, False).level == Level.L1
    # push 100 out of tiny L1 within its set (stride = l1 sets = 2)
    h.access(0, 102, False)
    h.access(0, 104, False)
    assert h.access(0, 100, False).level == Level.L2


def test_l2_eviction_fills_llc():
    h = make_hierarchy()
    # walk enough same-L2-set addresses to force L2 evictions
    addrs = [100 + i * 4 for i in range(8)]  # same L2 set (4 sets)
    for a in addrs:
        h.access(0, a, False)
    assert h.llc.stats.fills > 0
    # the LLC victim of the L2 is one of the early addresses
    assert any(h.llc.contains(a) for a in addrs[:4])


def test_llc_hit_after_refetch():
    h = make_hierarchy()
    addrs = [100 + i * 4 for i in range(8)]
    for a in addrs:
        h.access(0, a, False)
    # find a block now resident only in the LLC
    resident = [a for a in addrs if h.llc.contains(a) and not h.l2[0].contains(a)]
    assert resident
    outcome = h.access(0, resident[0], False)
    assert outcome.level in (Level.LLC_SRAM, Level.LLC_NVM)
    assert h.meta.get(resident[0]).reuse is ReuseClass.READ


def test_store_upgrade_invalidates_llc_copy():
    h = make_hierarchy()
    addrs = [100 + i * 4 for i in range(8)]
    for a in addrs:
        h.access(0, a, False)
    resident = [a for a in addrs if h.llc.contains(a)]
    target = resident[0]
    h.access(0, target, True)  # store: GetX or upgrade must invalidate
    assert not h.llc.contains(target)
    assert h.meta.get(target).reuse is ReuseClass.WRITE


def test_getx_peer_invalidation():
    h = make_hierarchy()
    h.access(0, 100, False)  # core 0 reads
    assert h.l2[0].contains(100)
    h.access(1, 100, True)  # core 1 writes the shared block
    assert not h.l1[0].contains(100)
    assert not h.l2[0].contains(100)
    assert h.stats.coherence_invalidations == 1


def test_gets_peer_transfer_keeps_owner_copy():
    h = make_hierarchy()
    h.access(0, 100, False)
    outcome = h.access(1, 100, False)
    assert outcome.level == Level.PEER
    assert h.l2[0].contains(100)  # owner keeps its copy
    assert h.l2[1].contains(100)
    assert h.stats.memory_reads == 1  # no second memory fetch


def test_peer_dirty_forwarding_on_getx():
    h = make_hierarchy()
    h.access(0, 100, True)  # core 0 owns it dirty
    h.access(1, 100, True)  # core 1 steals with GetX
    assert h.l1[1].is_dirty(100) or h.l2[1].is_dirty(100)
    assert not h.l2[0].contains(100)


def test_meta_dropped_when_block_leaves_hierarchy():
    size_fn = lambda addr: (64, 64)
    h = make_hierarchy(size_fn=size_fn)
    # Evict from both L2 and LLC by sweeping one L2 set + LLC sets
    addrs = [100 + i * 4 for i in range(64)]
    for a in addrs:
        h.access(0, a, False)
    gone = [
        a
        for a in addrs
        if not h.llc.contains(a)
        and not h.l2[0].contains(a)
        and not h.l1[0].contains(a)
    ]
    assert gone
    dropped = [a for a in gone if h.meta.get(a) is None]
    assert dropped  # eviction to memory garbage-collects tags


def test_reset_stats_keeps_contents():
    h = make_hierarchy()
    h.access(0, 100, False)
    h.reset_stats()
    assert h.stats.llc.accesses == 0
    assert h.l1[0].contains(100)
    assert h.llc.wear.total_bytes_written() == 0


def test_block_never_in_two_llc_ways():
    """Invariant check across a random-ish access storm."""
    h = make_hierarchy()
    import random

    rng = random.Random(3)
    for _ in range(3000):
        core = rng.randrange(2)
        addr = (core << 28) | rng.randrange(256)
        h.access(core, addr, rng.random() < 0.3)
    for cs in h.llc.sets:
        assert len(set(cs.way_of.values())) == len(cs.way_of)
        for addr, way in cs.way_of.items():
            assert cs.tags[way] == addr
