"""Result-cache tests: keying, defect tolerance, campaign integration.

The contract under test (ISSUE 4): a completed campaign unit may be
served from the content-addressed result cache only when *every*
input that shapes it — experiment, unit dict, scale, code fingerprint
— matches; served results are byte-identical to computed ones; any
corrupt or stale entry is silently recomputed, never trusted and
never fatal.
"""

import json
from pathlib import Path

import pytest

from repro.harness import CampaignSettings, run_campaign
from repro.memo.fingerprint import (
    EMBEDDED_GOLDEN_DIGESTS,
    MEMO_SCHEMA,
    code_fingerprint,
)
from repro.memo.results import ResultCache, result_cache_key

GOLDENS_PATH = Path(__file__).parent / "goldens" / "determinism.json"


def test_fingerprint_tracks_committed_goldens():
    """The embedded digest literal must equal the committed goldens.

    The fingerprint is the staleness guard of every cache key: if the
    engine changes behaviour, the golden digests change, this test
    forces the literal to be updated, and every old cache entry stops
    matching.  An out-of-date literal would let stale entries serve.
    """
    committed = json.loads(GOLDENS_PATH.read_text())
    assert EMBEDDED_GOLDEN_DIGESTS == committed


def test_fingerprint_is_stable_and_schema_versioned():
    assert code_fingerprint() == code_fingerprint()
    assert MEMO_SCHEMA.startswith("repro-memo/")


def test_result_cache_key_sensitivity():
    base = dict(
        experiment="tables",
        unit={"policy": "cp_sd", "mix": "mix1", "seed": 0},
        scale="smoke",
    )
    key = result_cache_key(**base)
    assert key != result_cache_key(**{**base, "experiment": "figures"})
    assert key != result_cache_key(**{**base, "scale": "default"})
    assert key != result_cache_key(
        **{**base, "unit": {**base["unit"], "policy": "bh"}}
    )
    assert key != result_cache_key(
        **{**base, "unit": {**base["unit"], "mix": "mix4"}}
    )
    assert key != result_cache_key(
        **{**base, "unit": {**base["unit"], "seed": 1}}
    )
    # A code change (different fingerprint) invalidates everything.
    assert key != result_cache_key(**base, fingerprint="stale" * 8)
    # Key order in the unit dict must not matter (canonical JSON).
    reordered = {"seed": 0, "mix": "mix1", "policy": "cp_sd"}
    assert key == result_cache_key(**{**base, "unit": reordered})


def _valid_payload(task_id="t1"):
    """A worker envelope around a minimal current-schema RunRecord."""
    from repro.metrics import RunRecord

    record = RunRecord(
        kind="unit",
        meta={"experiment": "tables"},
        metrics={"llc.gets": 1},
    )
    return {"status": "ok", "task_id": task_id, "result": record.to_json()}


def test_result_cache_roundtrip_and_defect_tolerance(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = "ab" * 32
    payload = _valid_payload()

    assert cache.get(key) is None  # empty cache, no directory yet
    assert cache.put(key, payload)
    assert cache.get(key) == payload
    assert cache.get(key, task_id="t1") == payload

    # A hand-renamed entry must serve a miss, not a wrong result.
    assert cache.get(key, task_id="other") is None

    # Corruption is a silent miss: truncated JSON, non-dict, bad status.
    cache.path_for(key).write_bytes(b"\x00garbage{")
    assert cache.get(key) is None
    cache.path_for(key).write_text("[1, 2, 3]")
    assert cache.get(key) is None
    cache.path_for(key).write_text('{"status": "error", "task_id": "t1"}')
    assert cache.get(key) is None

    # Unserialisable payloads fail the put, not the campaign.
    assert not cache.put(key, {"status": "ok", "bad": object()})


def test_stale_record_shapes_are_recomputed_not_served(tmp_path):
    """Entries whose stored record drifted from the schema are misses.

    Simulates the silent-drift failure mode: a cache written by an
    older library whose record shape differs from today's — renamed
    metric keys, an old schema tag, extra top-level fields.  All must
    read as *stale* (miss -> recompute), never be served as-is.
    """
    cache = ResultCache(tmp_path / "cache")
    key = "cd" * 32
    assert cache.put(key, _valid_payload())
    assert cache.get(key) is not None

    def corrupt(mutate):
        payload = _valid_payload()
        mutate(payload["result"])
        cache.path_for(key).write_text(json.dumps(payload))
        return cache.get(key)

    # Hand-renamed metric key (e.g. a pre-registry snapshot field).
    assert corrupt(
        lambda r: r.update(metrics={"llc.access_count": 1})
    ) is None
    # Old/unknown schema version tag.
    assert corrupt(lambda r: r.update(schema="repro-run/0")) is None
    # Extra top-level field from a newer writer.
    assert corrupt(lambda r: r.update(extra={"x": 1})) is None
    # Result that is not a record at all (the pre-spine payload shape).
    payload = _valid_payload()
    payload["result"] = {"x": 1}
    cache.path_for(key).write_text(json.dumps(payload))
    assert cache.get(key) is None

    # And a pristine entry still serves after all that.
    assert cache.put(key, _valid_payload())
    assert cache.get(key) == _valid_payload()


FAST = CampaignSettings(jobs=2, task_timeout=60, retries=2, backoff_base=0.01)


def _result_bytes(directory) -> dict:
    return {
        p.name: p.read_bytes()
        for p in (Path(directory) / "results").glob("*.json")
    }


def _cached_settings(cache_dir) -> CampaignSettings:
    return CampaignSettings(
        jobs=2,
        task_timeout=60,
        retries=2,
        backoff_base=0.01,
        result_cache_dir=str(cache_dir),
    )


@pytest.fixture(scope="module")
def cached_campaign_pair(tmp_path_factory):
    """Two `tables` campaigns sharing one result cache, cold then warm."""
    base = tmp_path_factory.mktemp("memo")
    settings = _cached_settings(base / "result_cache")
    cold = run_campaign(
        base / "cold", scale="smoke", experiments=["tables"], settings=settings
    )
    warm = run_campaign(
        base / "warm", scale="smoke", experiments=["tables"], settings=settings
    )
    return base, cold, warm


def test_second_campaign_is_served_from_cache(cached_campaign_pair):
    base, cold, warm = cached_campaign_pair
    assert cold.ok and cold.completed == 5 and cold.cache_hits == 0
    assert warm.ok and warm.completed == 5 and warm.cache_hits == 5
    assert _result_bytes(base / "cold") == _result_bytes(base / "warm")
    # Cache hits never dispatch a worker, so they record no duration.
    assert len(cold.durations) == 5
    assert len(warm.durations) == 0


def test_cache_hit_campaign_passes_resume_verification(cached_campaign_pair):
    """A cache-served campaign must still checkpoint/verify like a
    computed one: resuming it skips everything as verified-complete."""
    base, _, _ = cached_campaign_pair
    resumed = run_campaign(base / "warm", resume=True, settings=FAST)
    assert resumed.ok and resumed.completed == 0 and resumed.skipped == 5


def test_corrupt_cache_entries_are_recomputed(cached_campaign_pair, tmp_path):
    base, _, _ = cached_campaign_pair
    cache_dir = base / "result_cache"
    entries = sorted(cache_dir.glob("*.json"))
    assert len(entries) == 5
    for entry in entries:
        entry.write_bytes(b"not json at all")

    settings = _cached_settings(cache_dir)
    report = run_campaign(
        tmp_path / "after_corruption",
        scale="smoke",
        experiments=["tables"],
        settings=settings,
    )
    assert report.ok and report.completed == 5
    assert report.cache_hits == 0  # every corrupt entry fell back to compute
    assert _result_bytes(tmp_path / "after_corruption") == _result_bytes(
        base / "cold"
    )
    # ... and the recompute repaired the cache in passing.
    repaired = run_campaign(
        tmp_path / "repaired",
        scale="smoke",
        experiments=["tables"],
        settings=settings,
    )
    assert repaired.ok and repaired.cache_hits == 5


def test_stale_fingerprint_entries_never_match(cached_campaign_pair, tmp_path):
    """Entries keyed by another code version are invisible: the live
    key embeds the live fingerprint, so lookup simply misses."""
    base, _, _ = cached_campaign_pair
    stale_dir = tmp_path / "stale_cache"
    stale_dir.mkdir()
    live_cache = base / "result_cache"
    for entry in live_cache.glob("*.json"):
        payload = json.loads(entry.read_text())["payload"]  # blob envelope
        unit = dict(payload["unit"])
        stale_key = result_cache_key(
            payload["experiment"], unit, payload["scale"],
            fingerprint="0" * 64,
        )
        live_key = result_cache_key(
            payload["experiment"], unit, payload["scale"]
        )
        assert stale_key != live_key
        (stale_dir / f"{stale_key}.json").write_text(entry.read_text())

    report = run_campaign(
        tmp_path / "stale_run",
        scale="smoke",
        experiments=["tables"],
        settings=_cached_settings(stale_dir),
    )
    assert report.ok and report.completed == 5
    assert report.cache_hits == 0


def test_disabled_cache_never_reads_or_writes(tmp_path):
    cache_dir = tmp_path / "cache"
    settings = CampaignSettings(
        jobs=2,
        task_timeout=60,
        retries=2,
        backoff_base=0.01,
        use_result_cache=False,
        result_cache_dir=str(cache_dir),
    )
    report = run_campaign(
        tmp_path / "uncached",
        scale="smoke",
        experiments=["tables"],
        settings=settings,
    )
    assert report.ok and report.cache_hits == 0
    assert not cache_dir.exists()
