"""The crash-consistent storage layer: envelopes, faults, quarantine.

Covers the three fsio pillars in isolation (the campaign/cache tests
exercise them end-to-end): the checksummed ``repro-blob/1`` envelope
detects every defect class with a stable taxonomy token; the
deterministic fault injector is a pure function of its inputs; and
corrupt artefacts move to ``quarantine/`` with structured reason
records instead of being deleted or re-served.
"""

import json

import pytest

from repro.fsio import (
    DISK_CHAOS_KINDS,
    DISK_FAULT_KINDS,
    HEALTH,
    BlobError,
    DiskFaultConfig,
    FaultInjector,
    OneShotFault,
    atomic_write_bytes,
    injected_faults,
    is_binary_blob,
    is_blob_payload,
    quarantine_file,
    read_bytes,
    unwrap_bytes,
    unwrap_json,
    wrap_bytes,
    wrap_json,
)
from repro.fsio.quarantine import load_reason


@pytest.fixture(autouse=True)
def _reset_health():
    HEALTH.reset()
    injected_faults(clear=True)
    yield
    HEALTH.reset()


# ----------------------------------------------------------------------
# JSON envelope

def test_json_envelope_roundtrip_and_passthrough():
    payload = {"b": [1, 2], "a": "x"}
    envelope = wrap_json(payload, "repro-test/1")
    assert is_blob_payload(envelope)
    assert unwrap_json(envelope) == payload
    assert unwrap_json(envelope, schema="repro-test/1") == payload
    # legacy documents that never were envelopes pass through unchanged
    assert unwrap_json(payload) == payload
    assert not is_blob_payload(payload)


def test_json_envelope_checksum_is_layout_stable():
    """length/sha cover the canonical rendering, so pretty-printing the
    envelope (what dump_json does) cannot invalidate it."""
    envelope = wrap_json({"k": 3.5}, "repro-test/1")
    reparsed = json.loads(json.dumps(envelope, indent=2, sort_keys=True))
    assert unwrap_json(reparsed) == {"k": 3.5}


def test_json_envelope_defect_taxonomy():
    envelope = wrap_json({"value": 12345}, "repro-test/1")

    flipped = json.loads(json.dumps(envelope).replace("12345", "12346"))
    with pytest.raises(BlobError) as exc:
        unwrap_json(flipped, path="x.json")
    assert exc.value.defect == "checksum-mismatch"
    assert HEALTH.checksum_failures == 1

    grown = dict(envelope, payload={"value": 12345, "extra": 1})
    with pytest.raises(BlobError) as exc:
        unwrap_json(grown)
    assert exc.value.defect == "length-mismatch"

    with pytest.raises(BlobError) as exc:
        unwrap_json(envelope, schema="repro-other/1")
    assert exc.value.defect == "schema-mismatch"

    no_schema = {k: v for k, v in envelope.items() if k != "schema"}
    with pytest.raises(BlobError) as exc:
        unwrap_json(no_schema)
    assert exc.value.defect == "malformed-envelope"


# ----------------------------------------------------------------------
# binary envelope

def test_binary_envelope_roundtrip_and_defects():
    blob = wrap_bytes(b"\x00\x01payload", "repro-test/1")
    assert is_binary_blob(blob)
    schema, payload = unwrap_bytes(blob)
    assert (schema, payload) == ("repro-test/1", b"\x00\x01payload")

    with pytest.raises(BlobError) as exc:
        unwrap_bytes(blob[:10])
    assert exc.value.defect == "truncated"
    with pytest.raises(BlobError) as exc:
        unwrap_bytes(blob[:-2])
    assert exc.value.defect == "length-mismatch"
    rotted = blob[:-1] + bytes([blob[-1] ^ 0x01])
    with pytest.raises(BlobError) as exc:
        unwrap_bytes(rotted)
    assert exc.value.defect == "checksum-mismatch"
    with pytest.raises(BlobError) as exc:
        unwrap_bytes(blob, schema="repro-other/1")
    assert exc.value.defect == "schema-mismatch"
    with pytest.raises(BlobError) as exc:
        unwrap_bytes(b"NOTABLOB" + blob[8:])
    assert exc.value.defect == "malformed-envelope"


# ----------------------------------------------------------------------
# atomic writes + injected faults

def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "artefact.json"
    atomic_write_bytes(path, b"first")
    atomic_write_bytes(path, b"second")
    assert path.read_bytes() == b"second"
    assert [p.name for p in tmp_path.iterdir()] == ["artefact.json"]


def test_fault_decisions_are_deterministic_and_op_scoped():
    config = DiskFaultConfig(seed=7, p=0.5)
    plans = [config.decide("a/b/result.json", "write", n) for n in range(50)]
    again = [config.decide("other/dir/result.json", "write", n) for n in range(50)]
    # pure in (seed, basename, op, attempt): directory is irrelevant
    assert [p.kind if p else None for p in plans] == [
        p.kind if p else None for p in again
    ]
    assert any(p is not None for p in plans)
    assert any(p is None for p in plans)
    # write-kind config never fires on reads
    assert all(
        config.decide("result.json", "read", n) is None for n in range(50)
    )
    for plan in filter(None, plans):
        assert plan.kind in DISK_CHAOS_KINDS


def test_fault_config_rejects_bad_values():
    with pytest.raises(ValueError):
        DiskFaultConfig(seed=0, p=1.5)
    with pytest.raises(ValueError):
        DiskFaultConfig(seed=0, p=0.5, kinds=("disk-explode",))
    assert set(DISK_CHAOS_KINDS) < set(DISK_FAULT_KINDS)


def test_injected_torn_write_is_caught_by_envelope(tmp_path):
    path = tmp_path / "result.json"
    from repro.fsio.durable import dump_json

    data = dump_json(wrap_json({"value": 42}, "repro-test/1"))
    with OneShotFault("disk-torn", path) as fault:
        atomic_write_bytes(path, data)
    assert fault.fired
    assert HEALTH.faults_injected == 1
    torn = path.read_bytes()
    assert 0 < len(torn) < len(data)
    # a torn envelope can never unwrap cleanly
    with pytest.raises((BlobError, ValueError)):
        unwrap_json(json.loads(torn.decode()), path=path)
    # the retry (injector gone) lands the full artefact
    atomic_write_bytes(path, data)
    assert unwrap_json(json.loads(path.read_text())) == {"value": 42}


def test_injected_flip_keeps_json_valid_but_fails_checksum(tmp_path):
    path = tmp_path / "result.json"
    from repro.fsio.durable import dump_json

    data = dump_json(wrap_json({"value": 1234567}, "repro-test/1"))
    with OneShotFault("disk-flip", path):
        atomic_write_bytes(path, data)
    flipped = json.loads(path.read_text())  # still parses!
    assert is_blob_payload(flipped)
    with pytest.raises(BlobError) as exc:
        unwrap_json(flipped, path=path)
    assert exc.value.defect == "checksum-mismatch"


def test_injected_enospc_and_read_faults(tmp_path):
    path = tmp_path / "artefact.bin"
    with OneShotFault("disk-enospc", path):
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"doomed")
    assert not path.exists(), "ENOSPC must not leave partial bytes"

    atomic_write_bytes(path, b"0123456789")
    with OneShotFault("disk-eio", path):
        with pytest.raises(OSError):
            read_bytes(path)
    with OneShotFault("disk-short-read", path, cut=4):
        assert read_bytes(path) == b"0123"
    assert read_bytes(path) == b"0123456789"

    log = injected_faults()
    assert [f["kind"] for f in log] == [
        "disk-enospc", "disk-eio", "disk-short-read"
    ]


def test_fault_injector_retries_draw_fresh_decisions(tmp_path):
    """A FaultInjector advances its per-file attempt counter, so with
    p < 1 a retried write eventually lands (the convergence property
    the campaign relies on)."""
    # seed 0 fires ENOSPC on attempts 0-2 and clears on attempt 3
    config = DiskFaultConfig(seed=0, p=0.7, kinds=("disk-enospc",))
    path = tmp_path / "retried.json"
    with FaultInjector(config):
        for attempt in range(40):
            try:
                atomic_write_bytes(path, b"payload")
                break
            except OSError:
                continue
        else:
            pytest.fail("40 retries at p=0.7 should include a clean draw")
    assert path.read_bytes() == b"payload"
    assert HEALTH.faults_injected > 0


# ----------------------------------------------------------------------
# quarantine

def test_quarantine_moves_file_with_reason_record(tmp_path):
    victim = tmp_path / "bad.json"
    victim.write_bytes(b"rotten")
    moved = quarantine_file(victim, "checksum mismatch", "unit-test",
                            root=tmp_path)
    assert not victim.exists()
    assert moved == tmp_path / "quarantine" / "bad.json"
    assert moved.read_bytes() == b"rotten"
    reason = load_reason(moved.parent / "bad.json.reason.json")
    assert reason["artifact"].endswith("bad.json")
    assert reason["category"] == "unit-test"
    assert reason["reason"] == "checksum mismatch"
    assert HEALTH.quarantined == 1

    # a second victim with the same name never clobbers the evidence
    victim.write_bytes(b"rotten again")
    moved2 = quarantine_file(victim, "still bad", "unit-test", root=tmp_path)
    assert moved2.name == "bad.json.1"
    assert moved.read_bytes() == b"rotten"
