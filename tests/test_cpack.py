"""Tests for the C-PACK comparator compressor."""

import random
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.cpack import CPackCompressor
from repro.compression.encodings import BLOCK_SIZE, ENCODING_SIZES

cpack = CPackCompressor()


def test_zero_block_tiny():
    result = cpack.compress(bytes(64))
    assert result.size <= 8


def test_repeated_word_uses_dictionary():
    block = struct.pack("<16I", *([0xDEADBEEF] * 16))
    # first word uncompressed, rest full dictionary matches
    assert cpack.compress(block).size < 24


def test_small_bytes_compress():
    block = struct.pack("<16I", *(range(1, 17)))
    assert cpack.compress(block).size < BLOCK_SIZE


def test_random_block_incompressible():
    rng = random.Random(4)
    block = bytes(rng.getrandbits(8) for _ in range(64))
    assert cpack.compress(block).size == BLOCK_SIZE


def test_near_match_words():
    base = 0x12345600
    block = struct.pack("<16I", *[base + i for i in range(16)])
    # 3-byte dictionary matches after the first word
    assert cpack.compress(block).size < 40


def test_sizes_on_ladder():
    rng = random.Random(5)
    for _ in range(60):
        words = [rng.choice([0, 7, 0xABCD0000 + rng.randrange(256),
                             rng.getrandbits(32)]) for _ in range(16)]
        size = cpack.compress(struct.pack("<16I", *words)).size
        assert size in ENCODING_SIZES


@given(st.binary(min_size=64, max_size=64))
@settings(max_examples=150)
def test_cpack_roundtrip(block):
    result = cpack.compress(block)
    assert cpack.decompress(result) == block
    assert 1 <= result.size <= BLOCK_SIZE
