"""Tests for the system configuration (Table IV encoding)."""

import pytest

from repro.config import (
    BLOCK_SIZE,
    CacheGeometry,
    EnduranceConfig,
    HybridGeometry,
    LatencyConfig,
    SetDuelingConfig,
    SystemConfig,
    paper_system,
)


def test_block_size():
    assert BLOCK_SIZE == 64


def test_cache_geometry_derived_values():
    geo = CacheGeometry(128 * 1024, 16)
    assert geo.n_sets == 128
    assert geo.set_index_bits == 7


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheGeometry(100, 3)  # not divisible
    with pytest.raises(ValueError):
        CacheGeometry(3 * 64 * 2, 2)  # 3 sets: not a power of two


def test_hybrid_geometry_defaults_match_table4():
    geo = HybridGeometry()
    assert geo.sram_ways == 4
    assert geo.nvm_ways == 12
    assert geo.total_ways == 16
    assert geo.n_banks == 4
    assert geo.nvm_bytes == geo.n_sets * 12 * 64
    assert geo.sets_per_bank * geo.n_banks == geo.n_sets


def test_hybrid_geometry_validation():
    with pytest.raises(ValueError):
        HybridGeometry(n_sets=100)
    with pytest.raises(ValueError):
        HybridGeometry(n_sets=4, n_banks=8)
    with pytest.raises(ValueError):
        HybridGeometry(sram_ways=0, nvm_ways=0)


def test_latency_defaults_match_table4():
    lat = LatencyConfig()
    assert lat.l1_hit == 3
    assert lat.llc_sram_load == 28
    assert lat.llc_nvm_load == 32
    assert lat.llc_nvm_extra == 2
    assert lat.llc_nvm_total_load == 34
    assert lat.llc_write == 20
    assert lat.cpu_freq_hz == 3.5e9


def test_nvm_latency_scaling_only_d_array():
    """Fig. 11b: x1.5 scales the 8-cycle D-array -> 32 becomes 36."""
    lat = LatencyConfig().scaled_nvm(1.5)
    assert lat.llc_nvm_load == 36
    assert lat.llc_sram_load == 28  # untouched


def test_endurance_defaults():
    endurance = EnduranceConfig()
    assert endurance.mean == 1e10
    assert endurance.cv == 0.2
    assert endurance.sigma == pytest.approx(2e9)


def test_dueling_defaults_match_paper():
    dueling = SetDuelingConfig()
    assert dueling.cpth_candidates == (30, 37, 44, 51, 58, 64)
    assert dueling.leader_groups == 32
    assert dueling.epoch_cycles == 2_000_000  # Sec. IV-C best epoch
    tuned = dueling.with_th(4.0)
    assert tuned.hit_loss_pct == 4.0 and tuned.write_gain_pct == 5.0


def test_system_knob_helpers():
    cfg = SystemConfig()
    assert cfg.with_llc(sram_ways=3, nvm_ways=13).llc.total_ways == 16
    assert cfg.with_l2_kib(256).l2.size_bytes == 256 * 1024
    assert cfg.with_cv(0.25).endurance.cv == 0.25
    assert cfg.with_nvm_latency_factor(1.5).latency.llc_nvm_load == 36


def test_paper_system_builder():
    cfg = paper_system(n_sets=512, sram_ways=3, nvm_ways=13, cv=0.25,
                       l2_kib=256, nvm_latency_factor=1.5)
    assert cfg.llc.n_sets == 512
    assert cfg.llc.sram_ways == 3
    assert cfg.endurance.cv == 0.25
    assert cfg.l2.size_bytes == 256 * 1024
    assert cfg.latency.llc_nvm_load == 36
