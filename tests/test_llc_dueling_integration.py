"""Integration of CP_SD's Set Dueling with the live LLC."""

import pytest

from repro.cache.block import MetadataTable
from repro.cache.cacheset import NVM, SRAM
from repro.cache.llc import HybridLLC
from repro.config import HybridGeometry, SetDuelingConfig, SystemConfig
from repro.core import make_policy


def make_llc(n_sets=64, size=30):
    config = SystemConfig(
        llc=HybridGeometry(n_sets=n_sets, sram_ways=2, nvm_ways=4, n_banks=2),
        dueling=SetDuelingConfig(),
    )
    policy = make_policy("cp_sd")
    from repro.compression.encodings import ecb_size

    llc = HybridLLC(config, policy, size_fn=lambda addr: (size, ecb_size(size)))
    return llc, policy, MetadataTable()


def test_leader_sets_use_their_own_threshold():
    llc, policy, _meta = make_llc()
    ctrl = policy.controller
    assert ctrl is not None
    # leader of candidate 0 (CP_th=30) vs leader of candidate 5 (64)
    assert policy.cpth_for_set(0) == 30
    assert policy.cpth_for_set(5) == 64
    assert policy.cpth_for_set(10) == ctrl.current_winner


def test_leader_placement_differs_by_threshold():
    """A 44-byte block goes to NVM in a CP_th=58 leader set but to SRAM
    in a CP_th=30 leader set."""
    llc, policy, meta = make_llc(size=44)
    # set 4 is the leader of candidate 51; set 0 of candidate 30
    addr_low = 0    # maps to set 0 (CP_th=30): 44 > 30 -> SRAM
    addr_high = 4   # maps to set 4 (CP_th=51): 44 <= 51 -> NVM
    llc.fill_from_l2(addr_low, False, meta)
    llc.fill_from_l2(addr_high, False, meta)
    s0, s4 = llc.set_of(addr_low), llc.set_of(addr_high)
    assert s0.part_of(s0.find(addr_low)) == SRAM
    assert s4.part_of(s4.find(addr_high)) == NVM


def test_hits_and_writes_feed_the_controller():
    llc, policy, meta = make_llc()
    ctrl = policy.controller
    # fill + hit in leader set 2 (candidate 44)
    llc.fill_from_l2(2, False, meta)           # set 2, small -> NVM write
    assert ctrl.writes[2] > 0
    llc.request(2, is_getx=False, meta_table=meta)
    assert ctrl.hits[2] == 1
    # follower set activity does not pollute the samplers
    before = list(ctrl.hits)
    llc.fill_from_l2(40, False, meta)          # set 40 (40 % 32 = 8): follower
    llc.request(40, False, meta)
    assert ctrl.hits == before


def test_end_epoch_changes_followers():
    llc, policy, meta = make_llc()
    ctrl = policy.controller
    ctrl.hits[0] = 99  # make CP_th=30 the winner
    llc.end_epoch()
    assert ctrl.current_winner == 30
    assert policy.cpth_for_set(40) == 30  # follower adopted it
    assert policy.cpth_for_set(5) == 64   # leader unchanged


def test_th_variant_considers_writes():
    config = SystemConfig(
        llc=HybridGeometry(n_sets=64, sram_ways=2, nvm_ways=4, n_banks=2)
    )
    policy = make_policy("cp_sd_th", th=8.0, tw=5.0)
    llc = HybridLLC(config, policy, size_fn=lambda addr: (30, 32))
    ctrl = policy.controller
    ctrl.hits[:] = [98, 99, 100, 100, 100, 100]
    ctrl.writes[:] = [10, 50, 100, 100, 100, 100]
    llc.end_epoch()
    # Eq. (1): CP_th=30 keeps >92% of hits and cuts writes by >5%
    assert ctrl.current_winner == 30
