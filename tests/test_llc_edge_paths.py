"""Edge-path tests for the LLC: dead parts, failed migrations, mixes
of granularities and geometries."""

import pytest

from repro.cache.block import MetadataTable, ReuseClass
from repro.cache.cacheset import NVM, SRAM
from repro.cache.llc import HybridLLC
from repro.compression.encodings import ecb_size
from repro.config import HybridGeometry, SystemConfig
from repro.core import make_policy


def make_llc(policy_name="ca_rwr", n_sets=2, sram=1, nvm=2, size=30, **kw):
    config = SystemConfig(
        llc=HybridGeometry(n_sets=n_sets, sram_ways=sram, nvm_ways=nvm, n_banks=1)
    )
    policy = make_policy(policy_name, **kw)
    size_fn = (lambda addr: (size, ecb_size(size))) if policy.compressed else None
    return HybridLLC(config, policy, size_fn=size_fn), MetadataTable()


def fill(llc, meta, addr, dirty=False):
    llc.fill_from_l2(addr, dirty, meta)


def test_migration_fails_when_nvm_dead_victim_goes_to_memory():
    llc, meta = make_llc(size=64)  # incompressible: non-reused -> SRAM
    for w in range(2):
        llc.faultmap.disable_frame(0, w)
    # resident read-reused block in the single SRAM way of set 0
    fill(llc, meta, 0, dirty=True)
    llc.request(0, is_getx=False, meta_table=meta)
    assert meta.get(0).reuse is ReuseClass.WRITE or meta.get(0).reuse is ReuseClass.READ
    cs = llc.set_of(0)
    cs.reuse[cs.find(0)] = ReuseClass.READ  # force the migration path
    # displacing fill: migration to NVM impossible -> dirty writeback
    before = llc.stats.writebacks_to_memory
    fill(llc, meta, 2)  # same set (2 sets -> addr 2 maps to set 0)
    assert not llc.contains(0)
    assert llc.stats.writebacks_to_memory == before + 1
    assert llc.stats.migrations_to_nvm == 0


def test_gets_hit_on_dirty_copy_keeps_ownership():
    llc, meta = make_llc()
    fill(llc, meta, 0, dirty=True)
    result = llc.request(0, is_getx=False, meta_table=meta)
    assert result.hit and result.dirty and not result.invalidated
    cs = llc.set_of(0)
    assert cs.dirty[cs.find(0)]  # LLC stays the owner (O state)
    assert meta.get(0).reuse is ReuseClass.WRITE  # dirty hit classifies WRITE


def test_bh_with_every_frame_dead_bypasses():
    llc, meta = make_llc(policy_name="bh", sram=0, nvm=2)
    for w in range(2):
        llc.faultmap.disable_frame(0, w)
        llc.faultmap.disable_frame(1, w)
    fill(llc, meta, 0, dirty=True)
    assert llc.stats.bypasses == 1
    assert llc.stats.writebacks_to_memory == 1


def test_sram_policy_on_hybrid_geometry_ignores_nvm():
    llc, meta = make_llc(policy_name="sram", sram=1, nvm=2)
    for addr in (0, 2, 4):
        fill(llc, meta, addr)
    cs = llc.set_of(0)
    assert cs.occupancy(SRAM) == 1
    assert cs.occupancy(NVM) == 0
    assert llc.stats.nvm_writes == 0


def test_partial_capacity_prefers_fitting_invalid_frame():
    llc, meta = make_llc(size=44)  # ecb 46
    llc.faultmap.set_capacity(0, 0, 40)  # NVM way 0 cannot hold it
    fill(llc, meta, 0)
    cs = llc.set_of(0)
    way = cs.find(0)
    assert cs.part_of(way) == NVM
    assert cs.nvm_way(way) == 1  # skipped the 40-byte frame


def test_update_in_place_charges_resident_ecb():
    llc, meta = make_llc(size=30)  # ecb 32
    fill(llc, meta, 0, dirty=False)
    nvm_bytes = llc.stats.nvm_bytes_written
    fill(llc, meta, 0, dirty=True)  # in-place dirty update
    assert llc.stats.nvm_bytes_written == nvm_bytes + 32


def test_getx_miss_counts():
    llc, meta = make_llc()
    result = llc.request(5, is_getx=True, meta_table=meta)
    assert not result.hit
    assert llc.stats.getx == 1 and llc.stats.getx_hits == 0


def test_eviction_of_clean_block_is_silent_to_memory():
    llc, meta = make_llc(policy_name="bh", sram=1, nvm=1)
    fill(llc, meta, 0, dirty=False)
    fill(llc, meta, 2, dirty=False)
    fill(llc, meta, 4, dirty=False)  # evicts the LRU clean block
    assert llc.stats.evictions >= 1
    assert llc.stats.writebacks_to_memory == 0
