"""Property-based stress tests of hierarchy-wide invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import (
    CacheGeometry,
    CoreConfig,
    HybridGeometry,
    SystemConfig,
)
from repro.core import make_policy


def tiny_config(n_cores=2):
    return SystemConfig(
        cores=CoreConfig(n_cores=n_cores),
        l1=CacheGeometry(2 * 2 * 64, 2),
        l2=CacheGeometry(4 * 4 * 64, 4),
        llc=HybridGeometry(n_sets=8, sram_ways=2, nvm_ways=4, n_banks=2),
    )


def check_invariants(h: MemoryHierarchy) -> None:
    llc = h.llc
    # 1. a block is never resident in two LLC ways
    for cs in llc.sets:
        assert len(set(cs.way_of.values())) == len(cs.way_of)
        for addr, way in cs.way_of.items():
            assert cs.tags[way] == addr
        # 2. recency is a permutation of the valid ways
        valid = [w for w in range(cs.total_ways) if cs.tags[w] is not None]
        assert sorted(cs.recency) == sorted(valid)
        # 3. resident blocks fit their frames
        for way in range(cs.sram_ways, cs.total_ways):
            if cs.tags[way] is not None:
                assert cs.ecb[way] <= llc.capacity_of(cs, way)
    # 4. hit counters are consistent
    llc_stats = llc.stats
    assert llc_stats.gets_hits <= llc_stats.gets
    assert llc_stats.getx_hits <= llc_stats.getx
    assert llc_stats.hits_sram + llc_stats.hits_nvm == llc_stats.hits
    assert llc_stats.upgrade_hits <= llc_stats.upgrades


POLICY_STRATEGY = st.sampled_from(
    ["bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd"]
)


@given(
    policy_name=POLICY_STRATEGY,
    seed=st.integers(0, 2**16),
    n_ops=st.integers(200, 800),
    addr_space=st.integers(16, 96),
    write_prob=st.floats(0.0, 0.8),
)
@settings(max_examples=30, deadline=None)
def test_invariants_hold_under_access_storm(
    policy_name, seed, n_ops, addr_space, write_prob
):
    config = tiny_config()
    size_fn = lambda addr: ((addr % 4) * 16 + 10, (addr % 4) * 16 + 12)
    h = MemoryHierarchy(config, make_policy(policy_name), size_fn=size_fn)
    rng = random.Random(seed)
    for _ in range(n_ops):
        core = rng.randrange(2)
        shared = rng.random() < 0.2  # some sharing to exercise snoops
        addr = rng.randrange(addr_space) if shared else (
            (core << 28) | rng.randrange(addr_space)
        )
        h.access(core, addr, rng.random() < write_prob)
    check_invariants(h)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_invariants_hold_with_aging_between_bursts(seed):
    """Capacities shrink mid-run; reconcile keeps residents legal."""
    import numpy as np

    config = tiny_config()
    size_fn = lambda addr: (30, 32)
    h = MemoryHierarchy(config, make_policy("cp_sd"), size_fn=size_fn)
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    for _round in range(4):
        for _ in range(300):
            core = rng.randrange(2)
            addr = (core << 28) | rng.randrange(64)
            h.access(core, addr, rng.random() < 0.3)
        caps = np_rng.integers(0, 65, size=(8, 4))
        h.llc.faultmap.load_capacities(caps)
        h.llc.reconcile_faults()
        check_invariants(h)


def _nonzero_masks(masks):
    return {addr: mask for addr, mask in masks.items() if mask}


@given(
    policy_name=POLICY_STRATEGY,
    seed=st.integers(0, 2**16),
    n_ops=st.integers(300, 900),
    addr_space=st.integers(8, 64),
    write_prob=st.floats(0.0, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_sharer_index_matches_brute_force(
    policy_name, seed, n_ops, addr_space, write_prob
):
    """The O(1) directory index never drifts from the cache contents.

    Heavy sharing plus a high write probability exercises every index
    transition: fills into L1/L2, silent and dirty L2 evictions, GetX
    revocation of peer copies, and LLC evictions to memory (the tiny
    LLC overflows constantly).  After the storm — and periodically
    during it — the incrementally maintained masks must equal a
    brute-force rescan of the private caches.
    """
    config = tiny_config(n_cores=3)
    size_fn = lambda addr: ((addr % 4) * 16 + 10, (addr % 4) * 16 + 12)
    h = MemoryHierarchy(config, make_policy(policy_name), size_fn=size_fn)
    rng = random.Random(seed)

    def check():
        l1_oracle, l2_oracle = h.rebuild_sharer_index()
        assert _nonzero_masks(h._sharer_l1) == l1_oracle
        assert _nonzero_masks(h._sharer_l2) == l2_oracle
        for addr in set(l1_oracle) | set(l2_oracle):
            assert h.sharer_masks(addr) == (
                l1_oracle.get(addr, 0), l2_oracle.get(addr, 0)
            )

    for op in range(n_ops):
        core = rng.randrange(3)
        shared = rng.random() < 0.5  # high contention: GetX revocations
        addr = rng.randrange(addr_space) if shared else (
            (core << 28) | rng.randrange(addr_space)
        )
        h.access(core, addr, rng.random() < write_prob)
        if op % 97 == 96:
            check()
    check()
    check_invariants(h)


def test_single_core_system():
    config = SystemConfig(
        cores=CoreConfig(n_cores=1),
        l1=CacheGeometry(2 * 2 * 64, 2),
        l2=CacheGeometry(4 * 4 * 64, 4),
        llc=HybridGeometry(n_sets=4, sram_ways=1, nvm_ways=3, n_banks=1),
    )
    h = MemoryHierarchy(config, make_policy("cp_sd"))
    for addr in range(100):
        h.access(0, addr, addr % 3 == 0)
    check_invariants(h)
    assert h.stats.core(0).accesses == 100


def test_eight_core_system():
    config = SystemConfig(
        cores=CoreConfig(n_cores=8),
        l1=CacheGeometry(2 * 2 * 64, 2),
        l2=CacheGeometry(4 * 4 * 64, 4),
        llc=HybridGeometry(n_sets=16, sram_ways=4, nvm_ways=12, n_banks=4),
    )
    h = MemoryHierarchy(config, make_policy("lhybrid"))
    rng = random.Random(1)
    for _ in range(2000):
        core = rng.randrange(8)
        h.access(core, (core << 28) | rng.randrange(128), rng.random() < 0.2)
    check_invariants(h)
    assert all(h.stats.core(c).accesses > 0 for c in range(8))
