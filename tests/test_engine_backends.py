"""Engine-backend contract tests: selection, fallback, byte-identity.

The backend interface (``repro.engine_backends``) promises that the
choice of execution strategy is *unobservable* in the results: every
backend replays the same burst-64 heap schedule and produces the same
statistics, epoch records, IPCs and post-run cache state.  These tests
pin that promise three ways:

* the committed golden digests must come out of the ``vectorized``
  backend unchanged (the same gate ``scripts/ci.sh`` runs);
* snapshots must round-trip *across* backends — warm up under one,
  restore and finish under the other, still byte-identical;
* a hypothesis sweep drives random short windows (crossing epoch and
  warmup boundaries mid-burst) through both backends and compares the
  full ``RunRecord`` payload plus the exported array state.
"""

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.golden import (
    GOLDEN_EPOCHS,
    GOLDEN_POLICIES,
    GOLDEN_WARMUP_EPOCHS,
    compute_golden_digests,
    simulation_digest,
)
from repro.config import (
    DEFAULT_ENGINE_BACKEND,
    REPRO_BACKEND_ENV,
    resolve_backend_name,
)
from repro.cache.cacheset import NVM, SRAM
from repro.core import make_policy
from repro.core.policy import InsertionPolicy
from repro.engine import Simulation, Workload
from repro.engine_backends import (
    EngineBackend,
    ReferenceBackend,
    VectorizedBackend,
    backend_names,
    make_backend,
)
from repro.experiments.common import SMOKE
from repro.workloads.mixes import mix_profiles

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "determinism.json").read_text()
)

BACKENDS = ("reference", "vectorized")


def small_workload(mix="mix1", records=4000, seed=0):
    profiles = [p.scaled(1 / 32) for p in mix_profiles(mix)]
    return Workload(profiles, seed=seed, trace_records_per_core=records)


def make_sim(policy_name, backend, records=4000, seed=0, **policy_kwargs):
    return Simulation(
        SMOKE.system(),
        make_policy(policy_name, **policy_kwargs),
        small_workload(records=records, seed=seed),
        backend=backend,
    )


# ----------------------------------------------------------------------
# selection and registry
# ----------------------------------------------------------------------
def test_registry_lists_builtin_backends():
    names = backend_names()
    assert "reference" in names and "vectorized" in names


def test_make_backend_rejects_unknown_names():
    sim = make_sim("bh", None, records=100)
    with pytest.raises(KeyError, match="reference"):
        make_backend("simd-gpu", sim)


def test_simulation_rejects_unknown_backend():
    with pytest.raises(KeyError):
        make_sim("bh", "no-such-backend", records=100)


def test_resolution_chain(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    assert resolve_backend_name() == DEFAULT_ENGINE_BACKEND == "reference"
    monkeypatch.setenv(REPRO_BACKEND_ENV, "vectorized")
    assert resolve_backend_name() == "vectorized"
    # An explicit argument beats the environment.
    assert resolve_backend_name("reference") == "reference"


def test_env_selects_backend_for_simulation(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "vectorized")
    sim = make_sim("bh", None, records=100)
    assert sim.backend_name == "vectorized"
    assert isinstance(sim._backend, VectorizedBackend)


def test_default_backend_is_reference(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    sim = make_sim("bh", None, records=100)
    assert sim.backend_name == "reference"
    assert isinstance(sim._backend, ReferenceBackend)
    assert isinstance(sim._backend, EngineBackend)


# ----------------------------------------------------------------------
# byte-identity against the committed goldens
# ----------------------------------------------------------------------
def test_vectorized_backend_matches_committed_goldens():
    computed = compute_golden_digests(backend="vectorized")
    mismatches = {
        policy: (GOLDENS.get(policy), digest)
        for policy, digest in computed.items()
        if GOLDENS.get(policy) != digest
    }
    assert not mismatches, (
        "vectorized backend diverged from the committed goldens "
        f"(policy -> (committed, computed)): {mismatches}"
    )


def test_phase_timings_are_reported():
    for backend in BACKENDS:
        sim = make_sim("ca_rwr", backend, records=2000)
        epoch = sim.config.dueling.epoch_cycles
        sim.run(cycles=epoch * 1.5, warmup_cycles=epoch * 0.5)
        timings = sim.last_phase_timings
        assert timings["records"] > 0
        assert timings["total_s"] >= 0.0
        assert timings["access_path_s"] >= 0.0
        assert timings["epoch_bookkeeping_s"] >= 0.0
        assert "fallback" not in timings, backend


# ----------------------------------------------------------------------
# scalar fallback on unrecognised policies
# ----------------------------------------------------------------------
class _OpaquePolicy(InsertionPolicy):
    """A policy type the vectorized kernel has never heard of."""

    name = "opaque-test-policy"

    def placement(self, cache_set, ctx):
        return (NVM, SRAM)  # an order the kernel's dispatch can't guess


def _opaque_run(backend):
    sim = Simulation(
        SMOKE.system(),
        _OpaquePolicy(),
        small_workload(records=2000),
        backend=backend,
    )
    epoch = sim.config.dueling.epoch_cycles
    result = sim.run(cycles=epoch * 1.5, warmup_cycles=epoch * 0.5)
    return sim, result


def test_unknown_policy_falls_back_to_reference():
    ref_sim, ref_result = _opaque_run("reference")
    vec_sim, vec_result = _opaque_run("vectorized")
    assert vec_sim.last_phase_timings.get("fallback") == 1.0
    assert simulation_digest(vec_result) == simulation_digest(ref_result)


# ----------------------------------------------------------------------
# snapshots round-trip across backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("warm_backend,finish_backend",
                         [("reference", "vectorized"),
                          ("vectorized", "reference")])
@pytest.mark.parametrize("policy_name", GOLDEN_POLICIES)
def test_snapshot_round_trips_across_backends(
    policy_name, warm_backend, finish_backend
):
    """Warm up under one backend, finish under the other — still golden."""
    from repro.bench.golden import (
        GOLDEN_RECORDS_PER_CORE,
        GOLDEN_SCALE_FACTOR,
        GOLDEN_SEED,
        GOLDEN_MIX,
    )

    def golden_workload():
        profiles = [
            p.scaled(GOLDEN_SCALE_FACTOR) for p in mix_profiles(GOLDEN_MIX)
        ]
        return Workload(
            profiles, seed=GOLDEN_SEED,
            trace_records_per_core=GOLDEN_RECORDS_PER_CORE,
        )

    config = SMOKE.system()
    epoch = config.dueling.epoch_cycles
    warmup = epoch * GOLDEN_WARMUP_EPOCHS
    total = epoch * (GOLDEN_WARMUP_EPOCHS + GOLDEN_EPOCHS)

    warm = Simulation(
        config, make_policy(policy_name), golden_workload(),
        backend=warm_backend,
    )
    prefix = warm.run_until(warmup, warmup_until=warmup)
    snap = warm.snapshot()

    finish = Simulation(
        config, make_policy(policy_name), golden_workload(),
        backend=finish_backend,
    )
    finish.restore(snap)
    result = finish.run_until(total, warmup_until=warmup)
    result.epochs[:0] = [dataclasses.replace(e) for e in prefix.epochs]
    assert simulation_digest(result) == GOLDENS[policy_name]


# ----------------------------------------------------------------------
# hypothesis sweep: random windows through both backends (satellite 3)
# ----------------------------------------------------------------------
@given(
    policy_name=st.sampled_from(
        ["bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd"]
    ),
    seed=st.integers(0, 2**16),
    records=st.integers(500, 3000),
    warmup_epochs=st.floats(0.0, 1.0),
    measure_epochs=st.floats(0.25, 2.0),
)
@settings(max_examples=12, deadline=None)
def test_backends_agree_on_random_windows(
    policy_name, seed, records, warmup_epochs, measure_epochs
):
    """Random (policy, seed, window) → identical records and state.

    Fractional epoch counts land the warmup and epoch boundaries in
    the middle of bursts, which is exactly where a batched kernel can
    get the boundary cut wrong; the full RunRecord payload and the
    exported per-way array state must still agree bit-for-bit.
    """
    import numpy as np

    outcomes = {}
    for backend in BACKENDS:
        sim = make_sim(policy_name, backend, records=records, seed=seed)
        epoch = sim.config.dueling.epoch_cycles
        result = sim.run(
            cycles=epoch * (warmup_epochs + measure_epochs),
            warmup_cycles=epoch * warmup_epochs,
        )
        record = result.to_run_record(
            meta={"policy": policy_name}, policy=sim.policy
        )
        outcomes[backend] = (
            record.to_json(),
            sim.hierarchy.llc.export_state(),
            sim._cursors,
        )
    ref_payload, ref_state, ref_cursors = outcomes["reference"]
    vec_payload, vec_state, vec_cursors = outcomes["vectorized"]
    assert vec_payload == ref_payload
    assert vec_cursors == ref_cursors
    assert sorted(vec_state) == sorted(ref_state)
    for field in ref_state:
        assert np.array_equal(vec_state[field], ref_state[field]), field
