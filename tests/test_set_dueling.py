"""Tests for the Set Dueling controller and election rules (Sec. IV-C/D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SetDuelingConfig
from repro.core.set_dueling import (
    DuelingController,
    HitWriteTradeoffRule,
    MaxHitsRule,
)

CANDIDATES = (30, 37, 44, 51, 58, 64)


def controller(n_sets=64, rule=None, **kw):
    return DuelingController(SetDuelingConfig(**kw), n_sets, rule=rule)


# ----------------------------------------------------------------------
def test_leader_assignment_pattern():
    ctrl = controller(n_sets=64)
    # set i is a leader of candidate (i % 32) when that slot exists
    assert ctrl.slot_of(0) == 0
    assert ctrl.slot_of(5) == 5
    assert ctrl.slot_of(6) == -1  # only 6 candidates: slots 0..5
    assert ctrl.slot_of(32) == 0
    assert ctrl.is_leader(33) and not ctrl.is_leader(40)


def test_leader_group_sizes_match_paper():
    """Every candidate owns N/32 sets (Sec. IV-C)."""
    n_sets = 1024
    ctrl = controller(n_sets=n_sets)
    counts = {}
    for s in range(n_sets):
        slot = ctrl.slot_of(s)
        counts[slot] = counts.get(slot, 0) + 1
    for k in range(len(CANDIDATES)):
        assert counts[k] == n_sets // 32


def test_leader_sets_keep_fixed_cpth():
    ctrl = controller()
    assert ctrl.cpth_for_set(0) == 30
    assert ctrl.cpth_for_set(5) == 64
    ctrl.hits[0] = 100  # make 30 win
    ctrl.end_epoch()
    assert ctrl.cpth_for_set(0) == 30  # leaders never change
    assert ctrl.cpth_for_set(6) == 30  # followers adopt the winner


def test_followers_start_permissive():
    ctrl = controller()
    assert ctrl.cpth_for_set(7) == 64


def test_max_hits_election_and_reset():
    ctrl = controller()
    ctrl.record_hit(2)   # candidate 44
    ctrl.record_hit(2)
    ctrl.record_hit(1)   # candidate 37
    winner = ctrl.end_epoch()
    assert winner == 44
    assert ctrl.current_winner == 44
    assert ctrl.hits == [0] * 6 and ctrl.writes == [0] * 6
    assert ctrl.winner_history == [44]
    assert ctrl.epochs_elapsed == 1


def test_followers_do_not_record():
    ctrl = controller()
    ctrl.record_hit(6)            # follower set
    ctrl.record_nvm_write(7, 64)  # follower set
    assert sum(ctrl.hits) == 0 and sum(ctrl.writes) == 0


def test_max_hits_tie_prefers_smaller_cpth():
    rule = MaxHitsRule()
    assert rule.elect(CANDIDATES, [5, 5, 0, 0, 0, 5], [0] * 6) == 0


# ----------------------------------------------------------------------
def test_tradeoff_rule_accepts_cheaper_candidate():
    """Eq. (1): smallest CP_th with H(j) > H(i)(1-Th) and W(j) < W(i)(1-Tw)."""
    rule = HitWriteTradeoffRule(hit_loss_pct=4.0, write_gain_pct=5.0)
    hits = [97, 98, 99, 99, 100, 100]
    writes = [10, 20, 40, 60, 80, 100]
    # best by hits is index 4 (100 hits, ties break to smaller cpth).
    # index 0: 97 > 100*0.96=96 and 10 < 80*0.95 -> accepted
    assert rule.elect(CANDIDATES, hits, writes) == 0


def test_tradeoff_rule_rejects_too_costly_hits():
    rule = HitWriteTradeoffRule(hit_loss_pct=2.0, write_gain_pct=5.0)
    hits = [90, 99, 100, 100, 100, 100]
    writes = [10, 99, 100, 100, 100, 100]
    # 90 <= 100*0.98: index 0 rejected; index 1 write cut only 1% -> rejected
    assert rule.elect(CANDIDATES, hits, writes) == 2


def test_tradeoff_rule_th0_requires_strictly_more_hits():
    rule = HitWriteTradeoffRule(hit_loss_pct=0.0, write_gain_pct=5.0)
    hits = [100, 100, 100, 100, 100, 100]
    writes = [50, 60, 70, 80, 90, 100]
    # H(j) > H(i) is impossible on a tie; max-hits tie-break picks 0 anyway
    assert rule.elect(CANDIDATES, hits, writes) == 0


def test_tradeoff_rule_falls_back_to_best():
    rule = HitWriteTradeoffRule(hit_loss_pct=4.0, write_gain_pct=5.0)
    hits = [10, 10, 10, 10, 10, 100]
    writes = [100, 100, 100, 100, 100, 100]
    assert rule.elect(CANDIDATES, hits, writes) == 5


# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        DuelingController(SetDuelingConfig(cpth_candidates=()), 64)
    with pytest.raises(ValueError):
        DuelingController(
            SetDuelingConfig(cpth_candidates=tuple(range(40)), leader_groups=32), 64
        )


@given(
    st.lists(st.integers(0, 1000), min_size=6, max_size=6),
    st.lists(st.integers(0, 10_000), min_size=6, max_size=6),
    st.floats(min_value=0, max_value=10),
    st.floats(min_value=0, max_value=10),
)
@settings(max_examples=200)
def test_tradeoff_rule_never_picks_worse_writes_for_fewer_hits(
    hits, writes, th, tw
):
    """Property: the elected candidate either is the max-hits one, or
    strictly cuts writes while keeping hits above the floor."""
    rule = HitWriteTradeoffRule(th, tw)
    best = MaxHitsRule().elect(CANDIDATES, hits, writes)
    chosen = rule.elect(CANDIDATES, hits, writes)
    if chosen != best:
        assert hits[chosen] > hits[best] * (1 - th / 100)
        assert writes[chosen] < writes[best] * (1 - tw / 100)
