"""Tests for endurance sampling and wear tracking."""

import numpy as np
import pytest

from repro.config import EnduranceConfig
from repro.nvm.endurance import (
    expected_min_endurance,
    frame_endurance,
    sample_byte_endurance,
)
from repro.nvm.wear import GlobalWearCounter, WearTracker


def test_sample_shape_and_sorting():
    cfg = EnduranceConfig(mean=1e6, cv=0.2, seed=1)
    draws = sample_byte_endurance(cfg, 100)
    assert draws.shape == (100, 64)
    assert (np.diff(draws, axis=1) >= 0).all()


def test_sample_statistics_match_config():
    cfg = EnduranceConfig(mean=1e6, cv=0.2, seed=2)
    draws = sample_byte_endurance(cfg, 2000, sort=False)
    assert draws.mean() == pytest.approx(1e6, rel=0.01)
    assert draws.std() == pytest.approx(2e5, rel=0.05)


def test_sample_deterministic_per_seed():
    cfg = EnduranceConfig(seed=7)
    a = sample_byte_endurance(cfg, 10)
    b = sample_byte_endurance(cfg, 10)
    assert (a == b).all()
    c = sample_byte_endurance(cfg, 10, seed_offset=1)
    assert not (a == c).all()


def test_sample_clipped_at_minimum():
    cfg = EnduranceConfig(mean=1e6, cv=2.0, min_fraction=0.01, seed=3)
    draws = sample_byte_endurance(cfg, 500)
    assert draws.min() >= 0.01 * 1e6


def test_sample_rejects_empty():
    with pytest.raises(ValueError):
        sample_byte_endurance(EnduranceConfig(), 0)


def test_frame_endurance_is_min():
    cfg = EnduranceConfig(seed=4)
    draws = sample_byte_endurance(cfg, 50)
    mins = frame_endurance(draws)
    assert (mins == draws[:, 0]).all()  # sorted ascending


def test_expected_min_endurance_below_mean():
    cfg = EnduranceConfig(mean=1e10, cv=0.2)
    est = expected_min_endurance(cfg)
    assert est < 1e10
    # min of 64 draws sits roughly 2.2-2.5 sigma below the mean
    assert 1e10 - 2.6 * 2e9 < est < 1e10 - 2.0 * 2e9


# ----------------------------------------------------------------------
def test_wear_tracker_accumulates():
    wt = WearTracker(4, 2)
    wt.record_write(0, 0, 30)
    wt.record_write(0, 0, 34)
    wt.record_write(3, 1, 64)
    assert wt.bytes_written[0, 0] == 64
    assert wt.writes[0, 0] == 2
    assert wt.total_bytes_written() == 128
    assert wt.total_writes() == 3


def test_wear_tracker_rates():
    wt = WearTracker(1, 1)
    wt.record_write(0, 0, 100)
    assert wt.rates(4.0)[0, 0] == pytest.approx(25.0)
    with pytest.raises(ValueError):
        wt.rates(0.0)


def test_wear_tracker_reset():
    wt = WearTracker(2, 2)
    wt.record_write(1, 1, 10)
    wt.reset()
    assert wt.total_bytes_written() == 0
    assert wt.total_writes() == 0


# ----------------------------------------------------------------------
def test_global_wear_counter_rotates():
    counter = GlobalWearCounter(block_size=8, advance_period_writes=10)
    assert counter.start_position() == 0
    counter.tick(9)
    assert counter.value == 0
    counter.tick(1)
    assert counter.value == 1
    counter.tick(85)
    assert counter.value == (1 + 8) % 8


def test_global_wear_counter_wraps_block_size():
    counter = GlobalWearCounter(block_size=4, advance_period_writes=1)
    counter.tick(10)
    assert counter.value == 10 % 4


def test_global_wear_counter_validation():
    with pytest.raises(ValueError):
        GlobalWearCounter(advance_period_writes=0)
