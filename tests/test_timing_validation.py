"""Validation of the analytical timing model's directional behaviour.

The absolute IPC of the analytical core is a modelling choice; what
the reproduction depends on is that IPC responds *in the right
direction and proportionately* to the quantities the insertion
policies change.  These tests pin those responses.
"""

from dataclasses import replace

import pytest

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments.common import SMOKE


def run_with(config, mix="mix1", policy="bh", epochs=4, warm=2):
    sim = Simulation(config, make_policy(policy), SMOKE.workload(mix))
    epoch = config.dueling.epoch_cycles
    return sim.run(cycles=epochs * epoch, warmup_cycles=warm * epoch)


def test_ipc_decreases_with_memory_latency():
    base_cfg = SMOKE.system()
    slow_cfg = replace(base_cfg, latency=replace(base_cfg.latency, memory=500))
    fast = run_with(base_cfg)
    slow = run_with(slow_cfg)
    assert slow.mean_ipc < fast.mean_ipc


def test_ipc_decreases_with_nvm_latency():
    base_cfg = SMOKE.system()
    slow_cfg = SMOKE.system(nvm_latency_factor=3.0)
    fast = run_with(base_cfg, policy="cp_sd")
    slow = run_with(slow_cfg, policy="cp_sd")
    assert slow.mean_ipc <= fast.mean_ipc


def test_ipc_increases_with_mlp():
    base_cfg = SMOKE.system()
    wide_cfg = replace(base_cfg, cores=replace(base_cfg.cores, mlp=16.0))
    narrow = run_with(replace(base_cfg, cores=replace(base_cfg.cores, mlp=2.0)))
    wide = run_with(wide_cfg)
    assert wide.mean_ipc > narrow.mean_ipc


def test_higher_hit_rate_gives_higher_ipc():
    """Across the policy spectrum, IPC orders with LLC hit rate."""
    config = SMOKE.system()
    results = {
        name: run_with(config, policy=name, epochs=8, warm=5)
        for name in ("bh", "lhybrid", "tap")
    }
    ordered = sorted(results.values(), key=lambda r: r.hit_rate)
    ipcs = [r.mean_ipc for r in ordered]
    assert ipcs == sorted(ipcs)


def test_base_cpi_bounds_ipc():
    config = SMOKE.system()
    res = run_with(config)
    assert res.mean_ipc <= 1.0 / config.cores.base_cpi + 1e-9
