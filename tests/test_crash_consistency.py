"""Kill-at-every-write-offset crash consistency.

The storage contract under test: however many bytes of a write
actually reached the disk before the crash, no reader ever observes a
*partial* record — every artefact class either validates completely or
is rejected (and the layer above degrades: re-run the task, recompute
the cache entry, rebuild the manifest from the results that do
verify).  The harness tears the write at **every byte offset** via the
fault injector's exact-cut mode, so there is no lucky boundary.
"""

import json

import pytest

from repro.fsio import OneShotFault
from repro.harness import (
    RESULT_SCHEMA,
    CorruptResultError,
    load_result,
    verify_result,
    write_json_atomic,
)

PAYLOAD = {
    "status": "ok",
    "task_id": "tables/table=table1",
    "result": {
        "schema": "repro-run/1",
        "kind": "unit",
        "meta": {"seed": 3, "llc_accesses": 4415},
        "metrics": {},
        "values": {},
        "events": [],
    },
}


def _full_bytes(tmp_path):
    path = tmp_path / "reference.json"
    write_json_atomic(path, PAYLOAD, schema=RESULT_SCHEMA)
    return path.read_bytes()


def test_checkpoint_read_never_yields_partial_record(tmp_path):
    data = _full_bytes(tmp_path)
    path = tmp_path / "result.json"
    for cut in range(len(data) + 1):
        # tear the write at exactly `cut` bytes, through the injector
        with OneShotFault("disk-torn", path, cut=cut) as fault:
            write_json_atomic(path, PAYLOAD, schema=RESULT_SCHEMA)
        assert fault.fired
        assert path.read_bytes() == data[:cut]
        try:
            payload = load_result(path)
        except CorruptResultError:
            continue  # rejected: the crash is visible, nothing served
        # the only acceptable success is the COMPLETE record (a cut in
        # trailing whitespace still holds the full checksummed payload)
        assert payload == PAYLOAD, f"partial record served at offset {cut}"
    # after the final clean rewrite, verification passes end-to-end
    write_json_atomic(path, PAYLOAD, schema=RESULT_SCHEMA)
    verified, _sha = verify_result(path, PAYLOAD["task_id"])
    assert verified == PAYLOAD


def test_result_cache_read_never_yields_partial_record(tmp_path):
    from repro.memo.results import ResultCache

    cache = ResultCache(tmp_path / "cache")
    key = "cd" * 32
    assert cache.put(
        key, PAYLOAD, annotations={"fingerprint": "f" * 64, "task_id": "t"}
    )
    entry = cache.path_for(key)
    data = entry.read_bytes()
    served = cache.get(key)
    assert served == PAYLOAD

    for cut in range(len(data) + 1):
        entry.parent.mkdir(exist_ok=True)
        entry.write_bytes(data[:cut])
        got = cache.get(key)
        # a miss (quarantined or rejected) or the complete payload —
        # never a truncated or mangled record
        assert got is None or got == PAYLOAD, f"partial served at {cut}"
    # the recompute path repairs the entry under the same key
    assert cache.put(key, PAYLOAD)
    assert cache.get(key) == PAYLOAD


@pytest.mark.slow
def test_manifest_truncation_resumes_from_valid_records(tmp_path):
    """A torn manifest write must not lose the campaign: resume
    quarantines the bad manifest and rebuilds COMPLETE entries from
    the results that verify."""
    from repro.harness import (
        COMPLETE,
        CampaignManifest,
        CampaignSettings,
        run_campaign,
    )

    directory = tmp_path / "campaign"
    report = run_campaign(
        directory,
        scale="smoke",
        experiments=["tables"],
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=2, backoff_base=0.01
        ),
    )
    assert report.ok and report.completed == 5
    manifest_path = directory / "campaign.json"
    good = manifest_path.read_bytes()

    # tear at a spread of offsets (every byte would re-verify 5 results
    # hundreds of times for no extra coverage)
    for cut in list(range(0, len(good), 211)) + [len(good) - 1]:
        manifest_path.write_bytes(good[:cut])
        try:
            recovered = CampaignManifest.load(directory, recover=True)
        except Exception as exc:  # noqa: BLE001 - the assert explains
            pytest.fail(f"recovery failed at offset {cut}: {exc}")
        assert len(recovered.tasks) == 5
        assert all(
            e.status == COMPLETE for e in recovered.tasks.values()
        ), f"offset {cut}"
        for task_id in recovered.tasks:
            assert recovered.verified_complete(task_id)
    # recovery rewrote a valid manifest; a resume skips everything
    resumed = run_campaign(
        directory,
        resume=True,
        settings=CampaignSettings(
            jobs=2, task_timeout=60, retries=2, backoff_base=0.01
        ),
    )
    assert resumed.ok and resumed.skipped == 5 and resumed.completed == 0
