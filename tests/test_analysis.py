"""Tests for the analysis utilities (curves, charts, claims)."""

import pytest

from repro.analysis import (
    Curve,
    LIFETIME_CLAIMS,
    ascii_chart,
    average_curves,
    check_claims,
    lifetime_table,
    normalise,
    resample_capacity,
    resample_ipc,
    time_grid,
)
from repro.forecast import ForecastPoint, ForecastResult


def forecast(label="p", scale=1.0):
    points = [
        ForecastPoint(0.0, 1.0, 2.0 * scale, 0.8, 10.0),
        ForecastPoint(50.0, 0.8, 1.8 * scale, 0.7, 10.0),
        ForecastPoint(100.0, 0.5, 1.5 * scale, 0.6, 10.0),
    ]
    return ForecastResult(policy=label, points=points, reached_stop=True,
                          horizon_seconds=100.0)


def test_time_grid_spans_horizon():
    grid = time_grid([forecast()], points=5)
    assert grid == [0.0, 25.0, 50.0, 75.0, 100.0]
    with pytest.raises(ValueError):
        time_grid([forecast()], points=1)


def test_resample_ipc_step_semantics():
    grid = [0.0, 25.0, 50.0, 75.0, 100.0]
    curve = resample_ipc(forecast(), grid)
    assert curve.values == [2.0, 2.0, 1.8, 1.8, 1.5]


def test_resample_capacity():
    grid = [0.0, 60.0, 100.0]
    curve = resample_capacity(forecast(), grid)
    assert curve.values == [1.0, 0.8, 0.5]


def test_average_and_normalise():
    grid = [0.0, 50.0, 100.0]
    a = resample_ipc(forecast(scale=1.0), grid)
    b = resample_ipc(forecast(scale=2.0), grid)
    mean = average_curves("mean", [a, b])
    assert mean.values[0] == pytest.approx(3.0)
    unit = normalise(mean, 3.0)
    assert unit.values[0] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        average_curves("x", [])
    with pytest.raises(ValueError):
        normalise(mean, 0.0)


def test_curve_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Curve("x", [0.0, 1.0], [1.0])


def test_ascii_chart_renders():
    grid = time_grid([forecast()], points=10)
    curves = [resample_ipc(forecast("bh"), grid), resample_ipc(forecast("sd", 1.1), grid)]
    text = ascii_chart(curves, width=40, height=8)
    assert "0=bh" in text and "1=sd" in text
    assert "months" in text
    assert len(text.splitlines()) == 8 + 3
    assert ascii_chart([]) == "(no curves)"


def test_lifetime_table_normalises_to_first():
    rows = lifetime_table({"bh": forecast("bh"), "sd": forecast("sd")})
    assert rows[0]["lifetime_ratio"] == 1.0
    assert rows[1]["policy"] == "sd"


# ----------------------------------------------------------------------
def test_claims_all_pass_on_paper_numbers():
    """Feeding the paper's own numbers must satisfy every claim."""
    measurements = {
        "ipc_upper": 1.0,
        "ipc_bh": 0.99,
        "ipc_bh_cp": 0.99,
        "ipc_lhybrid": 0.99 * 0.888,
        "ipc_tap": 0.99 * 0.85,
        "ipc_cp_sd": 0.967,
        "life_bh": 1.0,
        "life_bh_cp": 4.8,
        "life_lhybrid": 19.7,
        "life_tap": 39.0,
        "life_cp_sd": 16.8,
        "life_cp_sd_th4": 16.8 * 1.28,
        "life_cp_sd_th8": 16.8 * 1.44,
    }
    results = check_claims(measurements)
    assert len(results) == len(LIFETIME_CLAIMS)
    failures = [r for r in results if not r["ok"]]
    assert not failures, failures


def test_claims_flag_missing_measurements():
    results = check_claims({})
    assert all(not r["ok"] for r in results)
    assert all(r["measured"] is None for r in results)


def test_claims_detect_violations():
    measurements = {
        "ipc_upper": 1.0,
        "ipc_cp_sd": 0.5,  # way below the SRAM bound
    }
    results = {r["claim"]: r for r in check_claims(measurements)}
    assert not results["cp_sd_near_sram_performance"]["ok"]
