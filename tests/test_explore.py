"""Tests for the successive-halving design-space explorer."""

import json

import pytest

from repro.experiments.common import SMOKE
from repro.explore import (
    KILL_AFTER_ENV,
    META_NAME,
    DesignPoint,
    Evaluation,
    ExploreError,
    ExploreKilled,
    ExploreSettings,
    ExploreSpace,
    pareto_front,
    run_explore,
    rung_plan,
)
from repro.fsio.durable import unwrap_json
from repro.metrics.record import RunRecord


# ----------------------------------------------------------------------
# Design space
def test_default_space_exceeds_1000_points():
    space = ExploreSpace.default()
    assert len(space) >= 1000
    keys = [p.key() for p in space.points]
    assert len(set(keys)) == len(keys)  # no duplicate configurations


def test_tiny_space_covers_every_policy_kind():
    space = ExploreSpace.tiny()
    policies = {p.policy for p in space.points}
    assert {"bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr",
            "cp_sd", "cp_sd_th"} <= policies


def test_design_point_roundtrips_through_json():
    point = DesignPoint.of("cp_sd_th", th=4.0, tw=5.0,
                           sram_ways=8, nvm_ways=8, cv=0.3)
    assert DesignPoint.from_json(point.to_json()) == point


def test_unknown_space_name_raises():
    with pytest.raises(KeyError, match="tiny"):
        ExploreSpace.by_name("tinny")


# ----------------------------------------------------------------------
# Scoring machinery
def _ev(ipc, life):
    return Evaluation(point=DesignPoint.of("bh"), mean_ipc=ipc,
                      llc_hit_rate=0.5, nvm_write_rate=1.0,
                      lifetime_seconds=life)


def test_pareto_front_drops_dominated_points():
    best_ipc = _ev(1.0, 10.0)
    best_life = _ev(0.5, 100.0)
    dominated = _ev(0.4, 5.0)
    front = pareto_front([best_ipc, best_life, dominated])
    assert best_ipc in front and best_life in front
    assert dominated not in front


def test_rung_plan_grows_fidelity():
    plan = rung_plan(SMOKE, seed=0)
    assert plan[0] == [("mix1", 0)]
    assert set(plan[1]) == {("mix1", 0), ("mix4", 0)}
    assert len(plan[-1]) == 2 * len(SMOKE.mixes)  # second seed


def test_settings_reject_bad_values():
    with pytest.raises(ExploreError):
        ExploreSettings(eta=1)
    with pytest.raises(ExploreError):
        ExploreSettings(objective="fastest")
    with pytest.raises(ExploreError):
        ExploreSettings(confirm=0)


# ----------------------------------------------------------------------
# End-to-end on the tiny space (one exploration shared by the checks)
@pytest.fixture(scope="module")
def exploration(tmp_path_factory):
    out = tmp_path_factory.mktemp("explore") / "run"
    settings = ExploreSettings(space="tiny", confirm=4)
    result = run_explore(SMOKE, out, settings)
    return out, settings, result


def test_explore_artifacts_are_checksummed_envelopes(exploration):
    out, _settings, result = exploration
    for name, schema in (
        (META_NAME, "repro-explore-meta/1"),
        ("rung_0.json", "repro-explore-rung/1"),
        ("confirm.json", "repro-explore-confirm/1"),
        ("frontier.json", "repro-explore-frontier/1"),
    ):
        payload = unwrap_json(json.loads((out / name).read_text()),
                              schema=schema, path=out / name)
        assert payload  # checksum + schema verified by unwrap_json


def test_every_evaluation_is_a_valid_run_record(exploration):
    out, _settings, _result = exploration
    for name in ("rung_0.json", "rung_1.json", "rung_2.json",
                 "confirm.json"):
        payload = unwrap_json(json.loads((out / name).read_text()))
        assert payload["evaluations"]
        for evaluation in payload["evaluations"]:
            for raw in evaluation["records"]:
                RunRecord.from_json(raw)  # raises SchemaError if invalid
    frontier = unwrap_json(json.loads((out / "frontier.json").read_text()))
    summary = RunRecord.from_json(frontier["summary_record"])
    assert summary.kind == "explore"
    assert summary.metrics["explore.points_total"] == 12


def test_confirm_tier_simulates_fewer_instructions(exploration):
    _out, settings, result = exploration
    assert len(result.confirmed) == settings.confirm
    assert result.simulated_instructions > 0
    assert result.instruction_speedup == pytest.approx(
        result.n_points / settings.confirm)


def test_frontier_points_are_non_dominated(exploration):
    _out, _settings, result = exploration
    assert result.frontier
    for a in result.frontier:
        assert not any(
            b.mean_ipc >= a.mean_ipc
            and b.lifetime_seconds >= a.lifetime_seconds
            and (b.mean_ipc > a.mean_ipc
                 or b.lifetime_seconds > a.lifetime_seconds)
            for b in result.confirmed
        )


def test_explore_is_deterministic(exploration, tmp_path):
    _out, settings, result = exploration
    again = run_explore(SMOKE, tmp_path / "again", settings)
    assert [e.point.key() for e in again.confirmed] == [
        e.point.key() for e in result.confirmed]
    assert [e.point.key() for e in again.frontier] == [
        e.point.key() for e in result.frontier]
    assert again.simulated_instructions == result.simulated_instructions


def test_meta_mismatch_refuses_to_resume(exploration, tmp_path):
    out, _settings, _result = exploration
    other = ExploreSettings(space="tiny", confirm=4, objective="performance")
    with pytest.raises(ExploreError, match="different exploration"):
        run_explore(SMOKE, out, other, resume=True)


# ----------------------------------------------------------------------
# Kill-and-resume
@pytest.mark.parametrize("stage", ["rung:0", "rung:1", "confirm"])
def test_kill_then_resume_recovers(tmp_path, monkeypatch, stage):
    out = tmp_path / "killed"
    settings = ExploreSettings(space="tiny", confirm=4)
    monkeypatch.setenv(KILL_AFTER_ENV, stage)
    with pytest.raises(ExploreKilled):
        run_explore(SMOKE, out, settings)
    monkeypatch.delenv(KILL_AFTER_ENV)
    # the artefact the kill followed is durably on disk
    marker = "confirm.json" if stage == "confirm" else (
        f"rung_{stage.split(':')[1]}.json")
    assert (out / marker).exists()
    assert not (out / "frontier.json").exists()

    result = run_explore(SMOKE, out, settings, resume=True)
    assert (out / "frontier.json").exists()
    assert result.frontier
    assert result.instruction_speedup == pytest.approx(
        result.n_points / settings.confirm)


def test_resume_reuses_completed_rungs(tmp_path, monkeypatch):
    out = tmp_path / "resumable"
    settings = ExploreSettings(space="tiny", confirm=4)
    monkeypatch.setenv(KILL_AFTER_ENV, "rung:1")
    with pytest.raises(ExploreKilled):
        run_explore(SMOKE, out, settings)
    monkeypatch.delenv(KILL_AFTER_ENV)

    before = {p.name: p.stat().st_mtime_ns
              for p in out.glob("rung_*.json")}
    run_explore(SMOKE, out, settings, resume=True)
    for name in ("rung_0.json", "rung_1.json"):
        assert out.joinpath(name).stat().st_mtime_ns == before[name], (
            f"{name} was rewritten on resume instead of being reused")


def test_corrupt_rung_is_recomputed_not_trusted(tmp_path, monkeypatch):
    out = tmp_path / "corrupt"
    settings = ExploreSettings(space="tiny", confirm=4)
    monkeypatch.setenv(KILL_AFTER_ENV, "rung:1")
    with pytest.raises(ExploreKilled):
        run_explore(SMOKE, out, settings)
    monkeypatch.delenv(KILL_AFTER_ENV)

    victim = out / "rung_1.json"
    victim.write_text(victim.read_text()[:-40])  # truncate the envelope
    result = run_explore(SMOKE, out, settings, resume=True)
    assert result.frontier
    # the corrupt checkpoint was rewritten as a valid envelope
    unwrap_json(json.loads(victim.read_text()), path=victim)


# ----------------------------------------------------------------------
# Doctor integration
def test_doctor_audits_explore_directories(exploration):
    from repro.fsio.doctor import run_doctor

    out, _settings, _result = exploration
    report = run_doctor([out])
    assert report.ok
    assert any("frontier.json" in c for c in report.checked)


def test_doctor_flags_missing_rung_and_corrupt_record(tmp_path, monkeypatch):
    from repro.fsio.doctor import run_doctor

    out = tmp_path / "damaged"
    settings = ExploreSettings(space="tiny", confirm=4)
    run_explore(SMOKE, out, settings)
    (out / "rung_0.json").unlink()

    report = run_doctor([out])
    assert not report.ok
    taxonomy = report.taxonomy()
    assert taxonomy.get("explore-rung/missing-artefact") == 1
