"""Bench suite: document schema, baseline gate verdicts, CLI exit code."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    STATUS_IMPROVEMENT,
    STATUS_MISSING_BASELINE,
    STATUS_OK,
    STATUS_REGRESSION,
    BenchMatrix,
    compare_benches,
    load_bench,
    run_bench,
    write_bench,
)
from repro.experiments.common import SMOKE


def _document(geomean, cases=(), label="t"):
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "geomean_mcycles_per_s": geomean,
        "cases": [
            {"policy": p, "mix": m, "mcycles_per_s": v} for p, m, v in cases
        ],
    }


# ----------------------------------------------------------------------
# real run: schema of the canonical artefact
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def bench_document():
    matrix = BenchMatrix(
        policies=("bh",), mixes=("mix1",), epochs=0.5, warmup_epochs=0.25
    )
    return run_bench(SMOKE, matrix=matrix, label="unittest")


def test_run_bench_document_schema(bench_document):
    doc = bench_document
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["label"] == "unittest"
    assert doc["scale"] == "smoke"
    assert doc["matrix"]["policies"] == ["bh"]
    assert doc["workload_build"]["records"] > 0
    assert doc["raw_replay"]["records_per_s"] > 0
    assert len(doc["cases"]) == 1
    case = doc["cases"][0]
    assert case["policy"] == "bh" and case["mix"] == "mix1"
    assert case["mcycles_per_s"] > 0
    assert doc["geomean_mcycles_per_s"] == case["mcycles_per_s"]


def test_write_bench_roundtrip(bench_document, tmp_path):
    path = write_bench(bench_document, tmp_path)
    assert path.name == "BENCH_unittest.json"
    # On disk: a checksummed repro-blob/1 envelope around the versioned
    # RunRecord, document embedded verbatim with the geomean surfaced
    # as a registered metric.
    on_disk = json.loads(path.read_text())
    assert on_disk["format"] == "repro-blob/1"
    assert on_disk["schema"] == "repro-bench-artifact/1"
    record = on_disk["payload"]
    assert record["schema"] == "repro-run/1"
    assert record["kind"] == "bench"
    assert record["values"]["document"] == bench_document
    assert record["metrics"]["bench.geomean_mcycles_per_s"] == (
        bench_document["geomean_mcycles_per_s"]
    )
    # load_bench unwraps back to the timing document ...
    assert load_bench(path) == bench_document
    assert load_bench(tmp_path / "BENCH_absent.json") is None
    # ... and still reads a legacy raw document.
    legacy = tmp_path / "BENCH_legacy.json"
    legacy.write_text(json.dumps(bench_document))
    assert load_bench(legacy) == bench_document


# ----------------------------------------------------------------------
# baseline gate verdicts (synthetic documents)
# ----------------------------------------------------------------------

def test_compare_missing_baseline():
    comparison = compare_benches(_document(1.0), None)
    assert comparison.status == STATUS_MISSING_BASELINE
    assert comparison.ok
    assert "no baseline" in comparison.summary()


def test_compare_improvement():
    current = _document(2.0, [("bh", "mix1", 2.0)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    comparison = compare_benches(current, baseline, threshold=0.10)
    assert comparison.status == STATUS_IMPROVEMENT
    assert comparison.ok
    assert comparison.geomean_ratio == pytest.approx(2.0)
    assert comparison.cases[0].ratio == pytest.approx(2.0)


def test_compare_regression_not_ok():
    current = _document(0.8, [("bh", "mix1", 0.8)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    comparison = compare_benches(current, baseline, threshold=0.10)
    assert comparison.status == STATUS_REGRESSION
    assert not comparison.ok


def test_compare_within_threshold_band():
    comparison = compare_benches(
        _document(0.95), _document(1.0), threshold=0.10
    )
    assert comparison.status == STATUS_OK
    assert comparison.ok


def test_compare_reports_cases_missing_from_baseline():
    current = _document(1.0, [("bh", "mix1", 1.0), ("tap", "mix4", 1.0)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    comparison = compare_benches(current, baseline)
    assert comparison.missing_cases == ["tap/mix4"]
    assert len(comparison.cases) == 1


def test_compare_rejects_bad_threshold():
    with pytest.raises(ValueError):
        compare_benches(_document(1.0), _document(1.0), threshold=0.0)


# ----------------------------------------------------------------------
# CLI gate: regression beyond threshold exits non-zero
# ----------------------------------------------------------------------

def test_cli_bench_regression_exits_nonzero(bench_document, tmp_path):
    from repro.cli import main

    measured = bench_document["geomean_mcycles_per_s"]
    inflated = _document(
        measured * 10, [("bh", "mix1", measured * 10)], label="base"
    )
    baseline_path = tmp_path / "BENCH_base.json"
    baseline_path.write_text(json.dumps(inflated))
    argv = [
        "bench", "--scale", "smoke", "--policies", "bh", "--mixes", "mix1",
        "--epochs", "0.5", "--warmup-epochs", "0.25",
        "--out", str(tmp_path), "--label", "gate",
        "--baseline", str(baseline_path),
    ]
    assert main(argv) == 1
    # the artefact is still written even when the gate fails
    assert (tmp_path / "BENCH_gate.json").exists()
    # against a slower baseline the same run passes (improvement);
    # a deliberately tiny value keeps this immune to timing noise
    slower = tmp_path / "BENCH_slower.json"
    slower.write_text(json.dumps(_document(
        measured / 10, [("bh", "mix1", measured / 10)], label="slower"
    )))
    assert main(argv[:-1] + [str(slower)]) == 0


# ----------------------------------------------------------------------
# phase-delta table and host-mismatch warnings in the comparison
# ----------------------------------------------------------------------

def _phases(replay, access, epoch):
    return {
        "trace_replay_est_s": replay,
        "access_path_s": access,
        "epoch_bookkeeping_s": epoch,
    }


def test_compare_reports_phase_deltas():
    current = _document(1.0, [("bh", "mix1", 1.0)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    current["phase_breakdown"] = _phases(1.0, 4.0, 0.5)
    baseline["phase_breakdown"] = _phases(1.0, 2.0, 0.5)
    comparison = compare_benches(current, baseline)
    by_phase = {p.phase: p for p in comparison.phases}
    assert by_phase["access_path"].ratio == pytest.approx(2.0)
    assert by_phase["trace_replay_est"].ratio == pytest.approx(1.0)
    assert by_phase["epoch_bookkeeping"].baseline_seconds == 0.5


def test_compare_without_breakdowns_has_no_phase_rows():
    comparison = compare_benches(
        _document(1.0, [("bh", "mix1", 1.0)]),
        _document(1.0, [("bh", "mix1", 1.0)]),
    )
    assert comparison.phases == []


def _host(cpu_count=8, platform="Linux-x86_64"):
    return {"platform": platform, "machine": "x86_64", "cpu_count": cpu_count}


def test_compare_warns_on_host_mismatch():
    current = _document(1.0, [("bh", "mix1", 1.0)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    current["host"] = _host(cpu_count=16)
    baseline["host"] = _host(cpu_count=4)
    comparison = compare_benches(current, baseline)
    assert len(comparison.host_warnings) == 1
    assert "cpu_count" in comparison.host_warnings[0]
    # a warning, never a gate
    assert comparison.ok


def test_compare_same_host_no_warning():
    current = _document(1.0, [("bh", "mix1", 1.0)])
    baseline = _document(1.0, [("bh", "mix1", 1.0)])
    current["host"] = _host()
    baseline["host"] = _host()
    assert compare_benches(current, baseline).host_warnings == []


def test_run_bench_document_carries_host_metadata(bench_document):
    host = bench_document["host"]
    assert host["cpu_count"] >= 1
    assert host["platform"]


def test_cli_bench_prints_phase_deltas_and_host_warning(
    bench_document, tmp_path, capsys
):
    from repro.cli import main

    measured = bench_document["geomean_mcycles_per_s"]
    baseline = _document(
        measured, [("bh", "mix1", measured)], label="base"
    )
    baseline["phase_breakdown"] = _phases(1.0, 1.0, 1.0)
    baseline["host"] = {"platform": "OtherOS", "machine": "arm64",
                        "cpu_count": 1}
    baseline_path = tmp_path / "BENCH_base.json"
    baseline_path.write_text(json.dumps(baseline))
    main([
        "bench", "--scale", "smoke", "--policies", "bh", "--mixes", "mix1",
        "--epochs", "0.5", "--warmup-epochs", "0.25",
        "--out", str(tmp_path), "--label", "detail",
        "--baseline", str(baseline_path), "--threshold", "0.99",
    ])
    out = capsys.readouterr().out
    assert "phase breakdown (current vs baseline):" in out
    assert "access_path" in out
    assert "WARNING: host mismatch" in out
