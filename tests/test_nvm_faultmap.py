"""Tests for the byte-level fault map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.faultmap import FaultMap


def test_initial_state_fully_alive():
    fm = FaultMap(8, 4)
    assert fm.effective_capacity_fraction() == 1.0
    assert fm.alive_bytes() == 8 * 4 * 64
    assert fm.capacity(0, 0) == 64
    assert not fm.is_frame_dead(0, 0)


def test_kill_bytes_reduces_capacity():
    fm = FaultMap(4, 2)
    assert fm.kill_bytes(1, 1, 3) == 61
    assert fm.capacity(1, 1) == 61
    assert fm.alive_bytes() == 4 * 2 * 64 - 3


def test_kill_bytes_clamps_at_zero():
    fm = FaultMap(2, 1)
    assert fm.kill_bytes(0, 0, 100) == 0
    assert fm.is_frame_dead(0, 0)


def test_frame_granularity_any_fault_kills_frame():
    fm = FaultMap(4, 2, granularity="frame")
    fm.kill_bytes(0, 0, 1)
    assert fm.capacity(0, 0) == 0
    assert fm.dead_frame_fraction() == pytest.approx(1 / 8)


def test_byte_granularity_keeps_partial_frames():
    fm = FaultMap(4, 2, granularity="byte")
    fm.kill_bytes(0, 0, 1)
    assert fm.capacity(0, 0) == 63


def test_set_capacity_validation():
    fm = FaultMap(2, 2)
    with pytest.raises(ValueError):
        fm.set_capacity(0, 0, 65)
    with pytest.raises(ValueError):
        fm.set_capacity(0, 0, -1)


def test_load_capacities_bulk_update():
    fm = FaultMap(2, 3)
    caps = np.array([[64, 30, 0], [10, 64, 64]])
    fm.load_capacities(caps)
    assert fm.capacity(0, 1) == 30
    assert fm.capacity(1, 0) == 10
    assert fm.alive_bytes() == caps.sum()


def test_load_capacities_frame_granularity_quantises():
    fm = FaultMap(1, 3, granularity="frame")
    fm.load_capacities(np.array([[64, 63, 0]]))
    assert list(fm.capacities[0]) == [64, 0, 0]


def test_load_capacities_shape_mismatch():
    fm = FaultMap(2, 2)
    with pytest.raises(ValueError):
        fm.load_capacities(np.zeros((3, 2)))


def test_byte_mask_matches_capacity():
    fm = FaultMap(4, 4)
    fm.set_capacity(2, 1, 40)
    mask = fm.byte_mask(2, 1)
    assert mask.sum() == 40
    # deterministic without an explicit rng
    assert (mask == fm.byte_mask(2, 1)).all()


def test_clone_is_independent():
    fm = FaultMap(2, 2)
    other = fm.clone()
    fm.kill_bytes(0, 0, 10)
    assert other.capacity(0, 0) == 64


def test_iter_frames_covers_all():
    fm = FaultMap(3, 2)
    frames = list(fm.iter_frames())
    assert len(frames) == 6
    assert all(cap == 64 for _s, _w, cap in frames)


def test_bad_granularity_rejected():
    with pytest.raises(ValueError):
        FaultMap(2, 2, granularity="bit")


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=15),
    st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_capacity_fraction_invariant(n_sets, extra_ways, caps):
    """Effective capacity always equals sum(capacities)/total."""
    nvm_ways = 1 + extra_ways
    fm = FaultMap(n_sets, nvm_ways)
    rng = np.random.default_rng(0)
    for cap in caps:
        s = int(rng.integers(0, n_sets))
        w = int(rng.integers(0, nvm_ways))
        fm.set_capacity(s, w, cap)
    assert fm.effective_capacity_fraction() == pytest.approx(
        fm.capacities.sum() / (n_sets * nvm_ways * 64)
    )
    assert 0.0 <= fm.effective_capacity_fraction() <= 1.0
