"""Integration: every policy runs a real mix and behaves sanely.

These are the cross-module tests backing the paper's qualitative
orderings at tiny scale: NVM-aware policies write (far) fewer NVM
bytes than BH; compression-aware policies keep BH-level hit rates;
conservative policies pay with hit rate.
"""

import pytest

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments.common import SMOKE

POLICY_NAMES = ("bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd", "cp_sd_th")


@pytest.fixture(scope="module")
def results():
    scale = SMOKE
    config = scale.system()
    workload = scale.workload("mix1")
    epoch = config.dueling.epoch_cycles
    out = {}
    for name in POLICY_NAMES:
        sim = Simulation(config, make_policy(name), scale.workload("mix1"))
        out[name] = sim.run(cycles=14 * epoch, warmup_cycles=10 * epoch)
    return out


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_runs_and_counts_are_consistent(results, name):
    res = results[name]
    llc = res.stats.llc
    assert res.mean_ipc > 0
    assert llc.accesses > 0
    assert 0 <= llc.hit_rate <= 1
    assert llc.fills_sram + llc.fills_nvm <= llc.fills + llc.migrations_to_nvm
    assert llc.nvm_bytes_written >= 0
    if not make_policy(name).compressed:
        # uncompressed policies write whole frames
        if llc.nvm_writes:
            assert llc.nvm_bytes_written == 64 * llc.nvm_writes


def test_nvm_aware_policies_write_less_than_bh(results):
    bh_bytes = results["bh"].stats.llc.nvm_bytes_written
    for name in ("lhybrid", "tap", "cp_sd", "cp_sd_th"):
        assert results[name].stats.llc.nvm_bytes_written < bh_bytes


def test_conservative_policies_trade_hit_rate(results):
    assert results["lhybrid"].hit_rate < results["bh"].hit_rate
    assert results["tap"].hit_rate <= results["lhybrid"].hit_rate + 0.05


def test_cp_sd_keeps_bh_level_performance(results):
    assert results["cp_sd"].mean_ipc > 0.9 * results["bh"].mean_ipc
    assert results["cp_sd"].mean_ipc > results["lhybrid"].mean_ipc


def test_compression_reduces_bytes_at_equal_traffic(results):
    bh = results["bh"].stats.llc
    bh_cp = results["bh_cp"].stats.llc
    assert bh_cp.nvm_bytes_written < bh.nvm_bytes_written
    assert bh_cp.hit_rate == pytest.approx(bh.hit_rate, abs=0.05)


def test_sram_bounds_bracket_hybrids(results):
    scale = SMOKE
    epoch = scale.system().dueling.epoch_cycles

    def bound(ways):
        config = scale.system(sram_ways=ways, nvm_ways=0)
        sim = Simulation(config, make_policy("sram"), scale.workload("mix1"))
        return sim.run(cycles=14 * epoch, warmup_cycles=10 * epoch).mean_ipc

    upper, lower = bound(16), bound(4)
    assert lower < upper
    assert results["bh"].mean_ipc <= upper * 1.02
    assert results["lhybrid"].mean_ipc >= lower * 0.9
