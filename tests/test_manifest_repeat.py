"""Tests for run manifests and multi-seed repetition."""

import pytest

from repro.core import make_policy
from repro.engine import Workload
from repro.experiments.common import SMOKE
from repro.experiments.repeat import (
    policy_metric_fn,
    run_with_seeds,
    significant_difference,
)
from repro.manifest import (
    build_manifest,
    describe_policy,
    describe_workload,
    load_manifest,
    save_manifest,
)


def test_describe_policy_captures_tunables():
    info = describe_policy(make_policy("ca_rwr", cpth=37, migrate_on_eviction=False))
    assert info["name"] == "ca_rwr"
    assert info["cpth"] == 37
    assert info["migrate_on_eviction"] is False
    info = describe_policy(make_policy("cp_sd_th", th=8.0))
    assert info["th"] == 8.0
    assert "dueling" in info and info["dueling"]["leader_groups"] == 32


def test_manifest_roundtrip(tmp_path):
    scale = SMOKE
    config = scale.system()
    workload = scale.workload("mix1", seed=3)
    manifest = build_manifest(
        config, make_policy("cp_sd"), workload, extra={"note": "unit test"}
    )
    assert manifest["workload"]["seed"] == 3
    assert manifest["workload"]["apps"] == list(
        __import__("repro.workloads.mixes", fromlist=["MIXES"]).MIXES["mix1"]
    )
    assert manifest["system"]["llc"]["n_sets"] == config.llc.n_sets
    path = tmp_path / "run.json"
    save_manifest(manifest, path)
    assert load_manifest(path) == manifest


def test_describe_workload():
    workload = SMOKE.workload("mix4", seed=1)
    info = describe_workload(workload)
    assert len(info["apps"]) == 4
    assert info["trace_records_per_core"] == len(workload.traces[0])


# ----------------------------------------------------------------------
def test_run_with_seeds_statistics():
    stats = run_with_seeds(lambda s: {"x": float(s), "y": 2.0}, seeds=[1, 2, 3])
    assert stats["x"]["mean"] == pytest.approx(2.0)
    assert stats["x"]["min"] == 1.0 and stats["x"]["max"] == 3.0
    assert stats["x"]["n"] == 3
    assert stats["y"]["std"] == 0.0


def test_run_with_seeds_requires_seeds():
    with pytest.raises(ValueError):
        run_with_seeds(lambda s: {}, seeds=[])


def test_significant_difference():
    a = {"mean": 1.0, "std": 0.1}
    b = {"mean": 2.0, "std": 0.1}
    c = {"mean": 1.1, "std": 0.2}
    assert significant_difference(a, b)
    assert not significant_difference(a, c)


@pytest.mark.slow
def test_policy_metric_fn_end_to_end():
    fn = policy_metric_fn(SMOKE, "bh", "mix1", warmup_epochs=2, measure_epochs=1)
    stats = run_with_seeds(fn, seeds=[0, 1])
    assert stats["ipc"]["mean"] > 0
    assert stats["nvm_bytes"]["mean"] > 0
