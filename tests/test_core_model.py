"""Tests for the analytical core model."""

import pytest

from repro.cache.hierarchy import Level
from repro.cache.stats import CoreStats
from repro.config import CoreConfig, LatencyConfig
from repro.timing.core_model import AnalyticalCore


def make_core(mlp=2.0, base_cpi=0.5):
    return AnalyticalCore(
        0, CoreConfig(n_cores=1, base_cpi=base_cpi, mlp=mlp), LatencyConfig()
    )


def test_l1_hit_costs_only_base_cpi():
    core = make_core()
    t = core.account(10, Level.L1)
    assert t == pytest.approx(11 * 0.5)
    assert core.instructions == 11


def test_miss_penalties_scaled_by_mlp():
    lat = LatencyConfig()
    core = make_core(mlp=2.0)
    t = core.account(0, Level.MEMORY)
    assert t == pytest.approx(0.5 + lat.memory / 2.0)


def test_levels_ordered_by_cost():
    costs = {}
    for level in Level:
        core = make_core()
        costs[level] = core.account(0, level)
    assert costs[Level.L1] < costs[Level.L2]
    assert costs[Level.L2] < costs[Level.LLC_SRAM]
    assert costs[Level.LLC_SRAM] < costs[Level.LLC_NVM]
    assert costs[Level.LLC_NVM] < costs[Level.MEMORY]


def test_nvm_charges_rearrangement_and_decompression():
    lat = LatencyConfig()
    core = make_core(mlp=1.0)
    t_sram = make_core(mlp=1.0).account(0, Level.LLC_SRAM)
    t_nvm = core.account(0, Level.LLC_NVM)
    assert t_nvm - t_sram == pytest.approx(
        lat.llc_nvm_total_load - lat.llc_sram_load
    )


def test_ipc_accumulates():
    core = make_core()
    for _ in range(100):
        core.account(9, Level.L1)
    assert core.ipc == pytest.approx(1 / 0.5)
    stats = CoreStats()
    core.export(stats)
    assert stats.instructions == 1000
    assert stats.ipc == pytest.approx(core.ipc)


def test_reset():
    core = make_core()
    core.account(5, Level.MEMORY)
    core.reset()
    assert core.cycles == 0.0 and core.instructions == 0
