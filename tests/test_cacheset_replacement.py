"""Tests for the LLC set structure and the (fit-)LRU helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import ReuseClass
from repro.cache.cacheset import NVM, SRAM, CacheSet
from repro.cache.replacement import (
    fit_lru_victim,
    lru_victim,
    mru_victim_where,
    usable_invalid_way,
)


def make_set(sram=4, nvm=12):
    return CacheSet(0, sram, nvm)


def fill_way(cs, way, addr, dirty=False, csize=64, ecb=64, reuse=ReuseClass.NONE):
    cs.insert(way, addr, dirty, csize, ecb, reuse)


def test_part_mapping():
    cs = make_set(4, 12)
    assert cs.part_of(0) == SRAM
    assert cs.part_of(3) == SRAM
    assert cs.part_of(4) == NVM
    assert cs.part_of(15) == NVM
    assert cs.nvm_way(4) == 0
    assert cs.nvm_way(15) == 11
    with pytest.raises(ValueError):
        cs.nvm_way(2)


def test_insert_find_evict():
    cs = make_set()
    fill_way(cs, 5, addr=100, dirty=True, csize=30, ecb=32, reuse=ReuseClass.READ)
    assert cs.find(100) == 5
    addr, dirty, csize, reuse = cs.evict(5)
    assert (addr, dirty, csize, reuse) == (100, True, 30, ReuseClass.READ)
    assert cs.find(100) is None
    assert cs.recency == []


def test_double_insert_rejected():
    cs = make_set()
    fill_way(cs, 0, 1)
    with pytest.raises(ValueError):
        fill_way(cs, 0, 2)


def test_evict_empty_rejected():
    cs = make_set()
    with pytest.raises(ValueError):
        cs.evict(0)


def test_touch_moves_to_mru():
    cs = make_set()
    fill_way(cs, 0, 10)
    fill_way(cs, 1, 11)
    fill_way(cs, 2, 12)
    cs.touch(0)
    assert cs.recency == [1, 2, 0]
    cs.touch(0)  # already MRU: no change
    assert cs.recency == [1, 2, 0]


def test_lru_victim_respects_subset():
    cs = make_set(2, 2)
    for way, addr in enumerate((10, 11, 12, 13)):
        fill_way(cs, way, addr)
    assert lru_victim(cs, range(0, 2)) == 0
    assert lru_victim(cs, range(2, 4)) == 2
    cs.touch(0)
    assert lru_victim(cs, range(0, 2)) == 1
    assert lru_victim(cs, []) is None


def test_fit_lru_skips_small_frames():
    cs = make_set(0, 4)
    capacities = {0: 64, 1: 20, 2: 40, 3: 64}
    for way in range(4):
        fill_way(cs, way, 100 + way)

    def cap(cache_set, way):
        return capacities[way]

    # LRU order is 0,1,2,3; a 32-byte block skips way 1 (20 B)
    assert fit_lru_victim(cs, range(4), 32, cap) == 0
    cs.touch(0)
    assert fit_lru_victim(cs, range(4), 32, cap) == 2
    # nothing can hold 65 bytes
    assert fit_lru_victim(cs, range(4), 65, cap) is None


def test_usable_invalid_way_fit_aware():
    cs = make_set(0, 3)
    capacities = {0: 10, 1: 30, 2: 64}

    def cap(cache_set, way):
        return capacities[way]

    assert usable_invalid_way(cs, NVM, 25, cap) == 1
    fill_way(cs, 1, 50)
    assert usable_invalid_way(cs, NVM, 25, cap) == 2
    assert usable_invalid_way(cs, NVM, 65, cap) is None


def test_mru_victim_where():
    cs = make_set(4, 0)
    fill_way(cs, 0, 10, reuse=ReuseClass.READ)
    fill_way(cs, 1, 11, reuse=ReuseClass.NONE)
    fill_way(cs, 2, 12, reuse=ReuseClass.READ)
    fill_way(cs, 3, 13, reuse=ReuseClass.WRITE)
    # most recent read-reused block is way 2
    way = mru_victim_where(cs, range(4), lambda w: cs.reuse[w] is ReuseClass.READ)
    assert way == 2
    assert (
        mru_victim_where(cs, range(4), lambda w: cs.csize[w] == 1) is None
    )


def test_occupancy_per_part():
    cs = make_set(2, 2)
    fill_way(cs, 0, 1)
    fill_way(cs, 3, 2)
    assert cs.occupancy(SRAM) == 1
    assert cs.occupancy(NVM) == 1
    assert cs.invalid_way(SRAM) == 1
    assert cs.invalid_way(NVM) == 2


@given(st.lists(st.integers(0, 30), min_size=1, max_size=120))
@settings(max_examples=80, deadline=None)
def test_recency_is_permutation_of_valid_ways(addr_stream):
    """Property: recency always lists exactly the valid ways, once."""
    cs = make_set(2, 2)
    for addr in addr_stream:
        way = cs.find(addr)
        if way is not None:
            cs.touch(way)
            continue
        way = cs.invalid_way(SRAM)
        if way is None:
            way = cs.invalid_way(NVM)
        if way is None:
            way = lru_victim(cs, range(cs.total_ways))
            cs.evict(way)
        cs.insert(way, addr, False, 64, 64, ReuseClass.NONE)
    valid = [w for w in range(cs.total_ways) if cs.tags[w] is not None]
    assert sorted(cs.recency) == sorted(valid)
    assert len(cs.way_of) == len(valid)
    # a block is never resident in two ways
    assert len(set(cs.way_of.values())) == len(cs.way_of)


class ShadowLRU:
    """The pre-PR-4 list recency model: remove/append on a plain list.

    The linked-list implementation in :class:`CacheSet` must be
    observationally identical to this — same LRU→MRU sequence after
    any interleaving of inserts, touches and evicts.
    """

    def __init__(self):
        self.order = []

    def insert(self, way):
        self.order.append(way)

    def touch(self, way):
        if self.order and self.order[-1] == way:
            return
        self.order.remove(way)
        self.order.append(way)

    def evict(self, way):
        self.order.remove(way)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "evict"]),
                  st.integers(0, 15)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=120, deadline=None)
def test_linked_list_recency_matches_shadow_list(ops):
    """Property: DLL recency == plain-list recency on any op sequence."""
    cs = make_set(4, 12)
    shadow = ShadowLRU()
    next_addr = 1
    for op, way in ops:
        resident = cs.tags[way] is not None
        if op == "insert" and not resident:
            fill_way(cs, way, next_addr)
            shadow.insert(way)
            next_addr += 1
        elif op == "touch" and resident:
            cs.touch(way)
            shadow.touch(way)
        elif op == "evict" and resident:
            cs.evict(way)
            shadow.evict(way)
        assert cs.recency == shadow.order
        assert cs.lru_order() == shadow.order


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "evict"]), st.integers(0, 7)),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=120, deadline=None)
def test_invalid_way_and_occupancy_match_scan(ops):
    """Property: counter-backed early-outs == a full scan of the tags."""
    cs = make_set(4, 4)
    next_addr = 1
    for op, way in ops:
        resident = cs.tags[way] is not None
        if op == "insert" and not resident:
            fill_way(cs, way, next_addr)
            next_addr += 1
        elif op == "evict" and resident:
            cs.evict(way)
        for part, ways in (
            (SRAM, range(0, cs.sram_ways)),
            (NVM, range(cs.sram_ways, cs.total_ways)),
        ):
            invalid = [w for w in ways if cs.tags[w] is None]
            assert cs.invalid_way(part) == (invalid[0] if invalid else None)
            assert cs.occupancy(part) == len(ways) - len(invalid)
