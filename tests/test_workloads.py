"""Tests for profiles, trace generation, mixes and the data model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.encodings import BLOCK_SIZE
from repro.workloads import (
    APP_NAMES,
    MIXES,
    AppTraceGenerator,
    DataModel,
    MaterializedTrace,
    PROFILES,
    make_comp_weights,
    materialize,
    mix_profiles,
    profile,
)
from repro.workloads.trace import CORE_ADDR_SHIFT


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------
def test_all_twenty_apps_defined():
    assert len(PROFILES) == 20


def test_mixes_match_table5():
    assert len(MIXES) == 10
    for apps in MIXES.values():
        assert len(apps) == 4
        for app in apps:
            assert app in PROFILES


def test_mix_profiles_resolution():
    profs = mix_profiles("mix1")
    assert [p.name for p in profs] == list(MIXES["mix1"])
    with pytest.raises(KeyError):
        mix_profiles("mix99")


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        profile("doom3")


def test_fig2_anchors():
    """xz17/milc06 incompressible; GemsFDTD06/zeusmp06 compressible."""
    assert profile("xz17").incompressible_fraction == 1.0
    assert profile("milc06").incompressible_fraction == 1.0
    assert profile("GemsFDTD06").incompressible_fraction < 0.1
    assert profile("zeusmp06").incompressible_fraction < 0.1


def test_library_average_compressibility():
    """Sec. II-B: on average 78 % compressible (49 HCR / 29 LCR)."""
    hcr = sum(p.hcr_fraction for p in PROFILES.values()) / len(PROFILES)
    lcr = sum(p.lcr_fraction for p in PROFILES.values()) / len(PROFILES)
    assert 0.42 <= hcr <= 0.56
    assert 0.20 <= lcr <= 0.36


def test_comp_weights_validation():
    with pytest.raises(ValueError):
        make_comp_weights(0.8, 0.5)
    weights = make_comp_weights(0.5, 0.3)
    assert abs(sum(w for _s, w in weights) - 1.0) < 1e-9
    assert any(s == BLOCK_SIZE for s, _w in weights)


def test_profile_scaling_preserves_ratios():
    prof = profile("zeusmp06")
    scaled = prof.scaled(1 / 16)
    assert scaled.loop_blocks == max(64, round(prof.loop_blocks / 16))
    assert scaled.comp_weights == prof.comp_weights
    assert scaled.gap_mean == prof.gap_mean
    assert scaled.footprint_blocks >= scaled.phased_region_blocks
    assert prof.scaled(1.0) is prof
    with pytest.raises(ValueError):
        prof.scaled(0)


def test_hot_region_properties():
    prof = profile("zeusmp06")
    assert prof.hot_region_blocks == prof.n_phases * (
        prof.loop_blocks + prof.scan_blocks + prof.rw_blocks
    )
    assert 0 < prof.hot_traffic_fraction < 1


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def test_generator_deterministic():
    prof = profile("mcf17").scaled(1 / 16)
    gen_a = AppTraceGenerator(prof, 1, seed=5)
    a = [next(gen_a) for _ in range(50)]
    gen_b = AppTraceGenerator(prof, 1, seed=5)
    b = [next(gen_b) for _ in range(50)]
    assert a == b
    gen_c = AppTraceGenerator(prof, 1, seed=6)
    c = [next(gen_c) for _ in range(50)]
    assert a != c


def test_generator_addresses_in_core_slice():
    prof = profile("lbm17").scaled(1 / 16)
    gen = AppTraceGenerator(prof, core_id=2, seed=0)
    for _ in range(2000):
        record = next(gen)
        assert record.addr >> CORE_ADDR_SHIFT == 2
        offset = record.addr & ((1 << CORE_ADDR_SHIFT) - 1)
        assert offset < prof.footprint_blocks


def test_generator_write_fraction_sane():
    prof = profile("lbm17").scaled(1 / 16)  # write-streaming app
    gen = AppTraceGenerator(prof, 0, seed=1)
    writes = sum(1 for _ in range(5000) if next(gen).is_write)
    assert 0.05 < writes / 5000 < 0.6


def test_generator_phases_shift_loop_region():
    prof = profile("zeusmp06").scaled(1 / 16)
    gen = AppTraceGenerator(prof, 0, seed=2)
    seen_loop_bases = set()
    for _ in range(prof.phase_accesses * prof.n_phases + 10):
        record = next(gen)
        offset = record.addr & ((1 << CORE_ADDR_SHIFT) - 1)
        if offset < prof.n_phases * prof.loop_blocks:
            seen_loop_bases.add(offset // prof.loop_blocks)
    assert len(seen_loop_bases) == prof.n_phases  # all phase slots used


def test_gap_distribution_mean():
    prof = profile("gobmk06").scaled(1 / 16)  # gap_mean 28
    gen = AppTraceGenerator(prof, 0, seed=3)
    gaps = [next(gen).gap for _ in range(6000)]
    mean = sum(gaps) / len(gaps)
    assert 0.7 * prof.gap_mean < mean < 1.3 * prof.gap_mean


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def test_materialize_and_cycle():
    prof = profile("astar06").scaled(1 / 16)
    trace = materialize(AppTraceGenerator(prof, 0, seed=0), 100)
    assert len(trace) == 100
    player = trace.player()
    first_pass = [next(player) for _ in range(100)]
    second_pass = [next(player) for _ in range(100)]
    assert first_pass == second_pass == trace.records


def test_trace_stats():
    prof = profile("astar06").scaled(1 / 16)
    trace = materialize(AppTraceGenerator(prof, 0, seed=0), 500)
    assert 0 < trace.footprint() <= 500
    assert 0.0 <= trace.write_fraction() <= 1.0


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        MaterializedTrace([])


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
def test_data_model_deterministic_sizes():
    profs = mix_profiles("mix1")
    m1 = DataModel(profs, seed=9)
    m2 = DataModel(profs, seed=9)
    for addr in (0, 5, (1 << CORE_ADDR_SHIFT) | 3):
        assert m1.size_fn(addr) == m2.size_fn(addr)


def test_data_model_respects_incompressible_apps():
    m = DataModel([profile("xz17")], seed=0)
    for addr in range(200):
        csize, ecb = m.size_fn(addr)
        assert csize == BLOCK_SIZE and ecb == BLOCK_SIZE


def test_data_model_block_bytes_compress_to_assigned_size():
    from repro.compression.bdi import DEFAULT_COMPRESSOR

    m = DataModel(mix_profiles("mix1"), seed=0)
    for addr in list(range(10)) + [(1 << CORE_ADDR_SHIFT) | 7]:
        csize, _ = m.size_fn(addr)
        block = m.block_bytes(addr)
        assert DEFAULT_COMPRESSOR.compress(block).size == csize


def test_data_model_hot_region_more_compressible():
    """Structured regions must compress at least as well as streams."""
    prof = profile("leslie3d06").scaled(1 / 16)
    m = DataModel([prof], seed=1)
    hot = [m.compressed_size(o) for o in range(0, 200)]
    cold_base = prof.phased_region_blocks + 10
    cold = [m.compressed_size(cold_base + o) for o in range(0, 200)]
    frac_comp_hot = sum(1 for s in hot if s < 64) / len(hot)
    frac_comp_cold = sum(1 for s in cold if s < 64) / len(cold)
    assert frac_comp_hot >= frac_comp_cold


def test_data_model_aggregate_matches_profile():
    """Traffic-weighted compressibility stays on the Fig. 2 split."""
    prof = profile("soplex06").scaled(1 / 16)
    m = DataModel([prof], seed=2)
    gen = AppTraceGenerator(prof, 0, seed=2)
    n = 4000
    compressible = sum(
        1 for _ in range(n) if m.compressed_size(next(gen).addr) < 64
    )
    target = 1.0 - prof.incompressible_fraction
    assert abs(compressible / n - target) < 0.1


def test_data_model_rejects_unknown_core():
    m = DataModel([profile("xz17")], seed=0)
    with pytest.raises(ValueError):
        m.size_fn(1 << CORE_ADDR_SHIFT)


def test_data_model_requires_profiles():
    with pytest.raises(ValueError):
        DataModel([])
