"""Fig. 11c — equal-storage comparison: CP_SD_Th8 with 12/11/10 NVM
ways against LHybrid with 12 (frame-disabling needs no byte fault map).

Expected shape: dropping NVM ways costs CP_SD_Th8 some IPC and
lifetime, but even with 10 ways (5.2 % *less* storage than LHybrid)
its IPC remains clearly above LHybrid's.
"""

from repro.experiments import format_records, get_scale, run_fig11c_equal_cost

from _bench_common import emit, run_once


def test_fig11c_equal_cost(benchmark):
    scale = get_scale()
    rows = run_once(
        benchmark, lambda: run_fig11c_equal_cost(scale, mixes=scale.mixes[:2])
    )
    emit("fig11c_equal_cost", format_records(rows, "Fig. 11c: equal-storage designs"))
    by = {r["config"]: r for r in rows}
    # fewer NVM ways => (weakly) lower IPC for the CP_SD design
    assert by["cp_sd_th8 10w"]["ipc"] <= by["cp_sd_th8 12w"]["ipc"] + 0.02
    # even the cheapest CP_SD_Th8 outperforms LHybrid's IPC
    assert by["cp_sd_th8 10w"]["ipc"] > by["lhybrid 12w"]["ipc"]
