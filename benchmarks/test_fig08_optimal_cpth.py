"""Fig. 8 — distribution of the hit-optimal CP_th per epoch.

Expected shape: at 100 % capacity the big thresholds (58/64) win most
epochs but a non-trivial share prefers smaller values; as the NVM
capacity decays towards 50 %, the optimum shifts to smaller
thresholds; the distribution varies strongly across mixes.
"""

from repro.experiments import format_table, get_scale, run_fig8a, run_fig8b

from _bench_common import emit, run_once


def _rows(dists):
    if not dists:
        return "(no data)"
    cpths = sorted(dists[0].shares)
    headers = ["config"] + [str(c) for c in cpths]
    rows = [[d.label] + [d.shares[c] for c in cpths] for d in dists]
    return headers, rows


def test_fig8a_optimal_cpth_vs_capacity(benchmark):
    scale = get_scale()
    capacities = (100, 80, 60, 50)
    dists = run_once(
        benchmark,
        lambda: run_fig8a(scale, capacities_pct=capacities, mixes=scale.mixes[:2]),
    )
    headers, rows = _rows(dists)
    emit(
        "fig8a_optimal_cpth_vs_capacity",
        format_table(headers, rows, "Fig. 8a: share of epochs each CP_th wins"),
    )
    by = {d.label: d for d in dists}
    # smaller thresholds win more often as capacity decays
    assert by["50%"].share_below(58) >= by["100%"].share_below(58)
    for d in dists:
        assert abs(sum(d.shares.values()) - 1.0) < 1e-6


def test_fig8b_optimal_cpth_per_mix(benchmark):
    scale = get_scale()
    dists = run_once(benchmark, lambda: run_fig8b(scale, mixes=scale.mixes[:3]))
    headers, rows = _rows(dists)
    emit(
        "fig8b_optimal_cpth_per_mix",
        format_table(headers, rows, "Fig. 8b: per-mix winner distribution (100% cap)"),
    )
    for d in dists:
        assert abs(sum(d.shares.values()) - 1.0) < 1e-6
