"""Figs. 1 and 10a — IPC vs lifetime forecast for all policies.

The flagship result.  Expected shape:

* BH matches the 16-way SRAM upper bound initially (minus NVM latency)
  but has the shortest lifetime;
* BH_CP keeps BH's IPC and stretches lifetime ~5x;
* LHybrid loses ~11 % IPC for ~20x BH lifetime; TAP is below LHybrid's
  IPC (even more conservative);
* CP_SD keeps within a few % of BH's IPC at >=10x BH lifetime;
* CP_SD_Th4 / Th8 trade ~1-2 % IPC for progressively more lifetime.
"""

from repro.analysis import check_claims, measurements_from_study
from repro.experiments import format_records, get_scale, run_lifetime_study

from _bench_common import emit, run_once


def test_fig1_10a_performance_vs_lifetime(benchmark):
    scale = get_scale()
    study = run_once(
        benchmark, lambda: run_lifetime_study(scale, label="fig10a")
    )
    rows = study.rows()
    for row in rows:
        row["ipc_vs_bh"] = row["ipc"] / study.initial_ipc("bh")
    claims = check_claims(measurements_from_study(study))
    emit(
        "fig01_10a_lifetime",
        format_records(rows, "Figs. 1/10a: performance vs lifetime")
        + f"\nupper bound (16w SRAM) IPC: {study.upper_bound_ipc:.3f}"
        + f"\nlower bound (4w SRAM) IPC:  {study.lower_bound_ipc:.3f}\n\n"
        + format_records(claims, "Paper claims vs measured (shape bands)"),
    )
    life = {r["policy"]: r["lifetime_x_bh"] for r in rows}
    ipc = {r["policy"]: r["ipc_vs_bh"] for r in rows}

    # --- performance ordering ---
    assert ipc["bh_cp"] > 0.97  # compression alone does not cost IPC
    assert ipc["cp_sd"] > 0.93  # CP_SD near BH (paper: 96.7 %)
    assert ipc["lhybrid"] < 0.97  # the conservative SOTA loses IPC
    assert ipc["tap"] <= ipc["lhybrid"] + 0.02
    assert ipc["cp_sd"] > ipc["lhybrid"]  # the headline claim
    # bounds bracket the hybrid configurations
    assert study.upper_bound_ipc >= study.initial_ipc("bh") * 0.98
    assert study.lower_bound_ipc < study.initial_ipc("cp_sd")

    # --- lifetime ordering ---
    assert life["bh_cp"] > 1.5  # compression alone extends lifetime
    assert life["lhybrid"] > 5.0  # conservative insertion: much longer
    assert life["cp_sd"] > 3.0  # CP_SD far beyond BH (paper: 16.8x)
    assert life["cp_sd_th4"] > life["cp_sd"] * 0.95
    assert life["cp_sd_th8"] > life["cp_sd"]  # Th knob buys lifetime
