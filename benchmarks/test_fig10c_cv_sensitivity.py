"""Fig. 10c — sensitivity to endurance variability (cv 0.20 -> 0.25).

Expected shape: higher manufacturing variability drastically shortens
*frame-disabling* lifetimes (BH, LHybrid — first faults arrive much
earlier and each kills a whole frame) while *byte-disabling* designs
barely move (a single early byte death costs 1/64 of a frame).
"""

from repro.experiments import format_records, get_scale, run_lifetime_study

from _bench_common import emit, run_once

_POLICIES = (
    ("bh", "bh", {}),
    ("bh_cp", "bh_cp", {}),
    ("lhybrid", "lhybrid", {}),
    ("cp_sd", "cp_sd", {}),
)


def _study():
    scale = get_scale()
    mixes = scale.mixes[:2]
    base = run_lifetime_study(
        scale, label="cv=0.20", mixes=mixes, policies=_POLICIES, with_bounds=False
    )
    high = run_lifetime_study(
        scale, label="cv=0.25", mixes=mixes, policies=_POLICIES, cv=0.25,
        with_bounds=False,
    )
    return base, high


def test_fig10c_cv_sensitivity(benchmark):
    base, high = run_once(benchmark, _study)
    records = []
    for key in base.forecasts:
        l20, l25 = base.lifetime_months(key), high.lifetime_months(key)
        records.append(
            {
                "policy": key,
                "life_mo_cv20": l20,
                "life_mo_cv25": l25,
                "retained": l25 / l20 if l20 else None,
            }
        )
    emit(
        "fig10c_cv_sensitivity",
        format_records(records, "Fig. 10c: lifetime vs endurance cv"),
    )
    by = {r["policy"]: r for r in records}
    # frame-disabling suffers much more than byte-disabling
    assert by["bh"]["retained"] < by["bh_cp"]["retained"]
    assert by["lhybrid"]["retained"] < by["cp_sd"]["retained"] + 0.05
    # byte-disabling retains most of its lifetime
    assert by["cp_sd"]["retained"] > 0.75
