"""LLC energy comparison (Sec. I/II motivation; TAP's original claim).

Expected shape: the hybrid LLC leaks a fraction of the iso-capacity
SRAM design; BH spends the most NVM write energy; NVM-aware insertion
cuts it by an order of magnitude; compression reduces energy per
write; LHybrid/TAP minimise LLC energy at the cost of IPC.
"""

from repro.experiments import format_records, get_scale, run_energy_study

from _bench_common import emit, run_once


def test_energy_comparison(benchmark):
    scale = get_scale()
    rows = run_once(benchmark, lambda: run_energy_study(scale))
    emit("energy_comparison", format_records(rows, "LLC energy by policy (nJ)"))
    by = {r["policy"]: r for r in rows}
    # hybrid leakage is a fraction of the 16-way SRAM LLC's
    assert by["bh"]["llc_leakage_nj"] < 0.5 * by["sram16 (bound)"]["llc_leakage_nj"]
    # NVM-aware insertion slashes NVM write energy
    assert by["lhybrid"]["nvm_write_nj"] < 0.2 * by["bh"]["nvm_write_nj"]
    assert by["tap"]["nvm_write_nj"] <= by["lhybrid"]["nvm_write_nj"] * 1.6
    # compression alone reduces write energy at identical traffic
    assert by["bh_cp"]["nvm_write_nj"] < 0.8 * by["bh"]["nvm_write_nj"]
    # CP_SD cuts total LLC energy vs the naive hybrid baseline
    assert by["cp_sd"]["llc_total_nj"] < by["bh"]["llc_total_nj"]
