"""Fig. 10b — sensitivity to the SRAM/NVM way split (3/13 vs 4/12).

Expected shape: shrinking SRAM to 3 ways slightly lowers IPC for the
CP_SD-based policies and slightly lengthens lifetime (less read-reuse
detection => fewer NVM insertions); BH is barely affected.
"""

from repro.experiments import (
    SENSITIVITY_POLICIES,
    format_records,
    get_scale,
    run_lifetime_study,
)

from _bench_common import emit, run_once


def _study():
    scale = get_scale()
    mixes = scale.mixes[:2]
    base = run_lifetime_study(
        scale, label="4/12", mixes=mixes, policies=SENSITIVITY_POLICIES,
        with_bounds=False,
    )
    skewed = run_lifetime_study(
        scale, label="3/13", mixes=mixes, policies=SENSITIVITY_POLICIES,
        sram_ways=3, nvm_ways=13, with_bounds=False,
    )
    return base, skewed


def test_fig10b_way_split(benchmark):
    base, skewed = run_once(benchmark, _study)
    records = []
    for key in base.forecasts:
        records.append(
            {
                "policy": key,
                "ipc_4_12": base.initial_ipc(key),
                "ipc_3_13": skewed.initial_ipc(key),
                "life_mo_4_12": base.lifetime_months(key),
                "life_mo_3_13": skewed.lifetime_months(key),
            }
        )
    emit("fig10b_way_split", format_records(records, "Fig. 10b: 3/13 vs 4/12 ways"))
    by = {r["policy"]: r for r in records}
    # BH is nearly untouched by the SRAM/NVM proportion
    assert abs(by["bh"]["ipc_3_13"] / by["bh"]["ipc_4_12"] - 1.0) < 0.05
    # CP_SD loses only a little performance with one less SRAM way
    assert by["cp_sd"]["ipc_3_13"] > 0.90 * by["cp_sd"]["ipc_4_12"]
