"""Table I — modified-BDI compression encodings.

Regenerates the encoding table from the live compressor and verifies
the sizes by compressing synthesised blocks of every class.
"""

import random

from repro.compression.bdi import DEFAULT_COMPRESSOR
from repro.compression.patterns import PatternLibrary
from repro.experiments import format_records, table1_rows

from _bench_common import emit, run_once


def _verify_all_encodings():
    rows = table1_rows()
    lib = PatternLibrary(seed=17, pool_size=2)
    verified = []
    for row in rows:
        size = row["size"]
        block = lib.block_for_size(size)
        measured = DEFAULT_COMPRESSOR.compress(block).size
        verified.append({**row, "measured": measured})
    return verified


def test_table1_encodings(benchmark):
    rows = run_once(benchmark, _verify_all_encodings)
    emit("table1_encodings", format_records(rows, "Table I: modified-BDI encodings"))
    assert all(r["measured"] == r["size"] for r in rows)
    b8_sizes = [r["size"] for r in rows if str(r["encoding"]).startswith("B8D")]
    assert b8_sizes == [16, 23, 30, 37, 44, 51, 58]
