"""Table II — CA_RWR placement rules, queried from the live policy."""

from repro.experiments import format_records, table2_rows

from _bench_common import emit, run_once


def test_table2_placement_rules(benchmark):
    rows = run_once(benchmark, table2_rows)
    emit("table2_carwr_rules", format_records(rows, "Table II: CA_RWR placement"))
    by = {(r["reuse"], r["compressed_size"].startswith("small")): r for r in rows}
    # read-reused -> NVM regardless of size
    assert by[("read", True)]["target"] == "NVM"
    assert by[("read", False)]["target"] == "NVM"
    # write-reused -> SRAM regardless of size
    assert by[("write", True)]["target"] == "SRAM"
    assert by[("write", False)]["target"] == "SRAM"
    # non-reused -> by compressed size
    assert by[("none", True)]["target"] == "NVM"
    assert by[("none", False)]["target"] == "SRAM"
