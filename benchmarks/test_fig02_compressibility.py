"""Fig. 2 — per-application block compressibility classification.

Expected shape: ~78 % of blocks compressible on average (49 % HCR,
29 % LCR); GemsFDTD06/zeusmp06 almost fully compressible; xz17/milc06
fully incompressible.
"""

from repro.experiments import format_records, run_fig2

from _bench_common import emit, run_once


def test_fig2_compressibility(benchmark):
    rows = run_once(benchmark, lambda: run_fig2(n_blocks=384))
    records = [
        {
            "app": r.app,
            "hcr": r.hcr,
            "lcr": r.lcr,
            "incompressible": r.incompressible,
        }
        for r in rows
    ]
    emit(
        "fig2_compressibility",
        format_records(records, "Fig. 2: block compressibility per application"),
    )
    by = {r.app: r for r in rows}
    # xz17 and milc06 are 100% incompressible (Sec. IV-A)
    assert by["xz17"].incompressible == 1.0
    assert by["milc06"].incompressible == 1.0
    # GemsFDTD06 and zeusmp06 almost fully compressible
    assert by["GemsFDTD06"].compressible > 0.9
    assert by["zeusmp06"].compressible > 0.9
    # library average ~ 49% HCR / 29% LCR / 22% incompressible
    avg = by["average"]
    assert 0.40 <= avg.hcr <= 0.60
    assert 0.18 <= avg.lcr <= 0.40
    assert 0.12 <= avg.incompressible <= 0.32
