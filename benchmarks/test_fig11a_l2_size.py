"""Fig. 11a — sensitivity to L2 size (128 KB -> 256 KB).

Expected shape: a larger L2 raises IPC for everyone and filters write
traffic from the LLC, lengthening most policies' lifetimes; LHybrid is
the exception (more SRAM residency => more loop-blocks detected =>
more NVM insertions), so its lifetime does not improve.
"""

from repro.experiments import (
    SENSITIVITY_POLICIES,
    format_records,
    get_scale,
    run_lifetime_study,
)

from _bench_common import emit, run_once


def _study():
    scale = get_scale()
    mixes = scale.mixes[:2]
    base = run_lifetime_study(
        scale, label="L2=128K", mixes=mixes, policies=SENSITIVITY_POLICIES,
        with_bounds=False,
    )
    big = run_lifetime_study(
        scale, label="L2=256K", mixes=mixes, policies=SENSITIVITY_POLICIES,
        l2_kib=256, with_bounds=False,
    )
    return base, big


def test_fig11a_l2_size(benchmark):
    base, big = run_once(benchmark, _study)
    records = []
    for key in base.forecasts:
        records.append(
            {
                "policy": key,
                "ipc_128k": base.initial_ipc(key),
                "ipc_256k": big.initial_ipc(key),
                "life_mo_128k": base.lifetime_months(key),
                "life_mo_256k": big.lifetime_months(key),
            }
        )
    emit("fig11a_l2_size", format_records(records, "Fig. 11a: L2 128K vs 256K"))
    by = {r["policy"]: r for r in records}
    # a bigger L2 improves overall performance
    assert by["bh"]["ipc_256k"] > by["bh"]["ipc_128k"]
    assert by["cp_sd"]["ipc_256k"] > by["cp_sd"]["ipc_128k"]
    # and filters LLC write traffic for the write-heavy baseline
    assert by["bh"]["life_mo_256k"] > by["bh"]["life_mo_128k"] * 0.95
