"""Fig. 7 — normalised NVM bytes written vs CP_th for CA and CA_RWR.

Expected shape: bytes written grow steeply with CP_th (between ~5 %
and ~80 % of BH); CA_RWR writes significantly less than CA at high
thresholds; CP_SD writes less than CA_RWR at CP_th = 58/64 while
keeping their hit rate.
"""

from repro.experiments import format_records

from _bench_common import emit, run_once
from test_fig06_hit_rate_sweep import sweep


def test_fig7_bytes_written_vs_cpth(benchmark):
    result = run_once(benchmark, sweep)
    records = [
        {
            "cpth": c,
            "ca_bytes_norm": result.ca_bytes[c],
            "ca_rwr_bytes_norm": result.ca_rwr_bytes[c],
        }
        for c in result.cpth_values
    ] + [{"cpth": "CP_SD", "ca_bytes_norm": None, "ca_rwr_bytes_norm": result.cp_sd_bytes}]
    emit(
        "fig7_bytes_written_sweep",
        format_records(records, "Fig. 7: NVM bytes written vs CP_th (normalised to BH)"),
    )
    low, high = result.cpth_values[0], result.cpth_values[-1]
    # more permissive thresholds write more NVM bytes
    assert result.ca_bytes[high] > result.ca_bytes[low]
    assert result.ca_rwr_bytes[high] > result.ca_rwr_bytes[low]
    # everything writes less than BH
    assert all(v < 1.0 for v in result.ca_bytes.values())
    # reuse steering cuts writes vs CA at the permissive end
    assert result.ca_rwr_bytes[high] < result.ca_bytes[high]
    # CP_SD writes fewer bytes than CA_RWR at CP_th = 64
    assert result.cp_sd_bytes < result.ca_rwr_bytes[high]
