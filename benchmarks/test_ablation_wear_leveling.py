"""Wear-leveling strategy ablation (Sec. II-A: "any other mechanism
could be used") — drives the real rearrangement circuitry.

Expected shape: without leveling the low bytes of every frame absorb
several times their fair share of writes; the paper's global counter —
and any other rotation — is near-perfectly even, and no strategy ever
writes a faulty byte.
"""

from repro.experiments import format_records, run_wear_leveling_study

from _bench_common import emit, run_once


def test_ablation_wear_leveling(benchmark):
    rows = run_once(benchmark, lambda: run_wear_leveling_study(n_writes=4096))
    emit(
        "ablation_wear_leveling",
        format_records(rows, "Ablation: intra-frame wear-leveling strategies"),
    )
    by = {r["strategy"]: r for r in rows}
    assert by["none"]["imbalance"] > 1.5
    for name in ("global_counter", "per_frame", "hashed"):
        assert by[name]["imbalance"] < 1.3
        assert by[name]["imbalance"] < by["none"]["imbalance"]
    # the rearrangement circuitry never touches dead bytes
    assert all(r["dead_bytes_written"] == 0 for r in rows)
