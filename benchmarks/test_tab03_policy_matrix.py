"""Table III — taxonomy of the evaluated insertion policies."""

from repro.experiments import format_records, table3_rows

from _bench_common import emit, run_once


def test_table3_policy_matrix(benchmark):
    rows = run_once(benchmark, table3_rows)
    emit("table3_policy_matrix", format_records(rows, "Table III: tested policies"))
    by = {r["name"].split("cp_sd_th")[0] or "cp_sd_th": r for r in rows}
    assert by["bh"] == {
        "name": "bh", "disabling": "frame", "compression": "no", "nvm_aware": "no",
    }
    assert by["bh_cp"]["disabling"] == "byte"
    assert by["bh_cp"]["compression"] == "yes"
    assert by["lhybrid"]["nvm_aware"] == "yes"
    assert by["lhybrid"]["disabling"] == "frame"
    assert by["cp_sd"] == {
        "name": "cp_sd", "disabling": "byte", "compression": "yes", "nvm_aware": "yes",
    }
