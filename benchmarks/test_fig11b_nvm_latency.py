"""Fig. 11b — sensitivity to NVM read latency (x1.5 on the D-array).

Expected shape: policies that insert aggressively into NVM (CP_SD*)
lose slightly more IPC than conservative ones, but nothing drastic —
the hybrid design's conclusions are latency-robust.
"""

from repro.experiments import (
    SENSITIVITY_POLICIES,
    format_records,
    get_scale,
    run_lifetime_study,
)

from _bench_common import emit, run_once


def _study():
    scale = get_scale()
    mixes = scale.mixes[:2]
    base = run_lifetime_study(
        scale, label="lat x1.0", mixes=mixes, policies=SENSITIVITY_POLICIES,
        with_bounds=False,
    )
    slow = run_lifetime_study(
        scale, label="lat x1.5", mixes=mixes, policies=SENSITIVITY_POLICIES,
        nvm_latency_factor=1.5, with_bounds=False,
    )
    return base, slow


def test_fig11b_nvm_latency(benchmark):
    base, slow = run_once(benchmark, _study)
    records = []
    for key in base.forecasts:
        ratio = slow.initial_ipc(key) / base.initial_ipc(key)
        records.append(
            {
                "policy": key,
                "ipc_x1.0": base.initial_ipc(key),
                "ipc_x1.5": slow.initial_ipc(key),
                "ratio": ratio,
            }
        )
    emit("fig11b_nvm_latency", format_records(records, "Fig. 11b: NVM latency x1.5"))
    by = {r["policy"]: r for r in records}
    # the extra latency costs at most a few percent IPC
    for r in records:
        assert r["ratio"] > 0.93
    # NVM-heavy CP_SD is affected at least as much as conservative LHybrid
    assert by["cp_sd"]["ratio"] <= by["lhybrid"]["ratio"] + 0.02
