"""Shared helpers for the figure/table benchmarks.

Every benchmark reproduces one table or figure of the paper: it runs
the corresponding experiment once (``benchmark.pedantic`` with a
single round — these are macro-experiments, not micro-benchmarks),
prints the reproduced rows/series and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  Scale is selected with the ``REPRO_SCALE`` environment
variable (smoke / default / full / paper).
"""

from __future__ import annotations

import os
from pathlib import Path

#: Artefacts are kept per scale so smoke/default/paper runs coexist.
RESULTS_DIR = (
    Path(__file__).resolve().parent
    / "results"
    / os.environ.get("REPRO_SCALE", "default")
)


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn):
    """Run a macro-experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
