"""Ablation benches for the paper's inline design claims.

* Sec. IV-C: the Set-Dueling epoch length has a broad optimum around
  the paper's 2M-cycle choice;
* Sec. IV-B: migrating read-reused SRAM victims to NVM helps hit rate;
* Sec. II-B: the policies work under a different compressor (FPC).
"""

from repro.experiments import (
    format_records,
    get_scale,
    run_compressor_ablation,
    run_epoch_size_sweep,
    run_migration_ablation,
)

from _bench_common import emit, run_once


def test_ablation_epoch_size(benchmark):
    scale = get_scale()
    rows = run_once(
        benchmark,
        lambda: run_epoch_size_sweep(scale, multipliers=(0.25, 1.0, 4.0)),
    )
    emit(
        "ablation_epoch_size",
        format_records(rows, "Ablation: Set-Dueling epoch length (Sec. IV-C)"),
    )
    by = {r["epoch_multiplier"]: r for r in rows}
    # the paper's epoch choice performs within a few % of the best
    assert by[1.0]["hits_norm"] > 0.93


def test_ablation_migration(benchmark):
    scale = get_scale()
    rows = run_once(benchmark, lambda: run_migration_ablation(scale))
    emit(
        "ablation_migration",
        format_records(rows, "Ablation: SRAM->NVM migration (Sec. IV-B)"),
    )
    by = {r["migration"]: r for r in rows}
    assert by["on"]["migrations"] > 0
    assert by["off"]["migrations"] == 0
    # migration must not cost hits (it preserves read-reused blocks)
    assert by["on"]["hits"] >= by["off"]["hits"] * 0.97


def test_ablation_compressor(benchmark):
    scale = get_scale()
    rows = run_once(benchmark, lambda: run_compressor_ablation(scale))
    emit(
        "ablation_compressor",
        format_records(rows, "Ablation: modified BDI vs FPC (Sec. II-B)"),
    )
    by = {r["compressor"]: r for r in rows}
    # orthogonality: CP_SD remains functional and close under FPC
    assert by["fpc"]["hits"] > 0.7 * by["bdi"]["hits"]
    assert by["fpc"]["ipc"] > 0.85 * by["bdi"]["ipc"]
