"""Fig. 6 — normalised LLC hit rate vs CP_th for CA and CA_RWR.

Expected shape: CA's hit rate is lowest for small thresholds and
peaks around CP_th = 58/64; CA_RWR >= CA for small thresholds; CP_SD
matches the best fixed threshold.
"""

import pytest

from repro.experiments import format_records, get_scale, run_cpth_sweep

from _bench_common import emit, run_once

_CACHE = {}


def sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = run_cpth_sweep(get_scale())
    return _CACHE["sweep"]


def test_fig6_hit_rate_vs_cpth(benchmark):
    result = run_once(benchmark, sweep)
    records = [
        {
            "cpth": c,
            "ca_hits_norm": result.ca_hit[c],
            "ca_rwr_hits_norm": result.ca_rwr_hit[c],
        }
        for c in result.cpth_values
    ] + [{"cpth": "CP_SD", "ca_hits_norm": None, "ca_rwr_hits_norm": result.cp_sd_hit}]
    emit(
        "fig6_hit_rate_sweep",
        format_records(records, "Fig. 6: LLC hits vs CP_th (normalised to BH)"),
    )
    low = result.cpth_values[0]
    best_ca = max(result.ca_hit.values())
    # hit rate improves as the threshold admits more blocks into NVM
    assert max(result.ca_hit[c] for c in (51, 58, 64)) > result.ca_hit[low]
    # the peak is near the top of the ladder (58 or 64)
    assert max(result.ca_hit, key=lambda c: result.ca_hit[c]) >= 51
    # CP_SD reaches the best fixed threshold's hit count (within noise)
    assert result.cp_sd_hit >= 0.9 * best_ca
    # CA_RWR does not collapse for small thresholds the way CA does
    assert result.ca_rwr_hit[low] >= result.ca_hit[low] * 0.95
