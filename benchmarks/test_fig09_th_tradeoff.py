"""Fig. 9 — CP_SD_Th hit/write trade-off vs Th and NVM capacity.

Expected shape: raising Th reduces NVM bytes written much faster than
it reduces hits, and relative write savings grow at lower capacity.
"""

from repro.experiments import format_records, get_scale, run_fig9

from _bench_common import emit, run_once


def test_fig9_th_tradeoff(benchmark):
    scale = get_scale()
    points = run_once(
        benchmark,
        lambda: run_fig9(
            scale,
            th_values=(0.0, 4.0, 8.0),
            capacities_pct=(100, 80),
            mixes=scale.mixes[:2],
        ),
    )
    records = [
        {
            "capacity": f"{p.capacity_pct}%",
            "Th": p.th,
            "hits_norm": p.hits_norm,
            "nvm_bytes_norm": p.nvm_bytes_norm,
        }
        for p in points
    ]
    emit(
        "fig9_th_tradeoff",
        format_records(records, "Fig. 9: hits vs NVM bytes (normalised to BH@100%)"),
    )
    by = {(p.capacity_pct, p.th): p for p in points}
    for pct in (100, 80):
        th0, th8 = by[(pct, 0.0)], by[(pct, 8.0)]
        # Th=8 must not cost more hits than it saves writes
        hit_drop = max(0.0, 1.0 - th8.hits_norm / max(th0.hits_norm, 1e-9))
        write_drop = 1.0 - th8.nvm_bytes_norm / max(th0.nvm_bytes_norm, 1e-9)
        assert write_drop >= hit_drop
        assert hit_drop < 0.10  # the rule only sacrifices a few % of hits
