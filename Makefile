# Convenience targets; scripts/ci.sh is the canonical gate.

.PHONY: ci test bench bench-parallel bench-memo bench-backend \
	explore bench-explore serve-smoke bench-service

ci:
	scripts/ci.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Full engine bench against the committed baseline.
bench:
	PYTHONPATH=src python -m repro bench --scale smoke \
		--baseline benchmarks/results/BENCH_engine.json

# Vectorized-backend bench: full matrix, diffed cross-backend against
# the committed reference artefact (the ratio is the backend speedup;
# the committed BENCH_vectorized.json records 1.5x over BENCH_engine,
# 3.0x over the seed BENCH_baseline).  Regression beyond the
# threshold exits non-zero.
bench-backend:
	PYTHONPATH=src python -m repro bench --scale smoke \
		--backend vectorized --repeats 5 --out $$(mktemp -d) \
		--baseline benchmarks/results/BENCH_engine.json \
		--cross-backend --threshold 0.25

# Campaign scaling bench (pool vs isolated, jobs sweep).
bench-parallel:
	PYTHONPATH=src python -m repro bench --jobs auto

# Full design-space sweep: 1008 configurations through the analytical
# screening tier, the 16 survivors confirmed with real simulations,
# (IPC, lifetime) Pareto frontier printed at the end.
explore:
	PYTHONPATH=src python -m repro --scale smoke explore \
		--out $$(mktemp -d)/explore

# Explorer leverage bench: times the full sweep, gates the measured
# simulated-instruction saving at 50x over exhaustive simulation, and
# writes BENCH_explore.json (the committed artefact records 63x).
bench-explore:
	PYTHONPATH=src python -m repro bench --explore --scale smoke \
		--out $$(mktemp -d)

# Service-mode smoke: a 2-shard local service runs a submitted grid
# while one shard is killed mid-flight; the job must finish zero-loss,
# byte-identical to a single-pool run, resume from the durable
# manifest, and the service root must audit clean.  Same leg
# scripts/ci.sh runs.
serve-smoke:
	scripts/ci.sh --skip-tests --skip-bench --skip-memo --skip-schema \
		--skip-durability --skip-backend --skip-analytical

# Sharded-dispatch scaling bench: single-pool reference vs 1- and
# 2-shard local fleets, byte-identity asserted per fleet size, gated
# against the committed BENCH_service.json (the >= 1.8x floor at two
# shards is enforced only on multi-core hosts; single-core runs are
# stamped degenerate and gate on byte-identity alone).
bench-service:
	PYTHONPATH=src python -m repro bench --service --scale smoke \
		--out $$(mktemp -d) \
		--baseline benchmarks/results/BENCH_service.json

# Memoization bench: cold vs cache-served campaign (verified
# byte-identical) + snapshot warm-start, gated against the committed
# artefact.  Wall-clock ratios of the tiny warm pass are noisy, hence
# the generous threshold; correctness is asserted inside the bench.
bench-memo:
	PYTHONPATH=src python -m repro bench --memo --scale smoke \
		--out $$(mktemp -d) \
		--baseline benchmarks/results/BENCH_memo.json --threshold 0.5
