# Convenience targets; scripts/ci.sh is the canonical gate.

.PHONY: ci test bench bench-parallel

ci:
	scripts/ci.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Full engine bench against the committed baseline.
bench:
	PYTHONPATH=src python -m repro bench --scale smoke \
		--baseline benchmarks/results/BENCH_engine.json

# Campaign scaling bench (pool vs isolated, jobs sweep).
bench-parallel:
	PYTHONPATH=src python -m repro bench --jobs auto
