#!/usr/bin/env bash
# Tier-1 CI gate: the full test suite plus a fast performance smoke.
#
# Usage: scripts/ci.sh
#   [--skip-tests|--skip-bench|--skip-memo|--skip-schema|--skip-durability|
#    --skip-backend|--skip-analytical|--skip-service|--skip-workloads]
#
# The bench leg runs a *reduced* matrix (3 policies x 1 mix, smoke
# scale, best-of-3) against the committed full-matrix baseline —
# `compare_benches` scores the geomean of *matched* per-case ratios,
# so the skipped cells do not skew the verdict.  A geomean regression
# beyond the threshold exits non-zero.  The reduced matrix keeps this
# leg well under two minutes; the full matrix remains available via
# `python -m repro bench` directly.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TESTS=1
RUN_BENCH=1
RUN_MEMO=1
RUN_SCHEMA=1
RUN_DURABILITY=1
RUN_BACKEND=1
RUN_ANALYTICAL=1
RUN_SERVICE=1
RUN_WORKLOADS=1
for arg in "$@"; do
  case "$arg" in
    --skip-tests) RUN_TESTS=0 ;;
    --skip-bench) RUN_BENCH=0 ;;
    --skip-memo) RUN_MEMO=0 ;;
    --skip-schema) RUN_SCHEMA=0 ;;
    --skip-durability) RUN_DURABILITY=0 ;;
    --skip-backend) RUN_BACKEND=0 ;;
    --skip-analytical) RUN_ANALYTICAL=0 ;;
    --skip-service) RUN_SERVICE=0 ;;
    --skip-workloads) RUN_WORKLOADS=0 ;;
    *) echo "ci.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

if [[ "$RUN_TESTS" == 1 ]]; then
  echo "== ci: tier-1 test suite =="
  python -m pytest -x -q
fi

if [[ "$RUN_SCHEMA" == 1 ]]; then
  echo "== ci: artefact schema consistency =="
  # Every committed BENCH_*.json and the golden digests must validate
  # against the *current* RunRecord schema and metric registry, so a
  # metric rename or schema bump can never silently orphan artefacts.
  python -m repro export --check
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== ci: bench regression smoke (reduced matrix) =="
  BENCH_OUT="$(mktemp -d)"
  trap 'rm -rf "$BENCH_OUT"' EXIT
  python -m repro bench \
    --scale smoke \
    --label ci_smoke \
    --policies bh,ca_rwr,cp_sd \
    --mixes mix1 \
    --repeats 3 \
    --out "$BENCH_OUT" \
    --baseline benchmarks/results/BENCH_engine.json \
    --threshold 0.25
fi

if [[ "$RUN_BACKEND" == 1 ]]; then
  echo "== ci: engine backend equivalence =="
  # Every registered backend must reproduce the committed golden
  # digests bit-for-bit — the admissibility proof for the vectorized
  # kernel (docs/architecture.md, Engine backends).  Computed in one
  # process so a divergence reports which backend and policy drifted.
  python - <<'PY'
import json, sys
from repro.bench.golden import compute_golden_digests
from repro.engine_backends import backend_names

committed = json.load(open("tests/goldens/determinism.json"))
failures = []
for backend in backend_names():
    computed = compute_golden_digests(backend=backend)
    for policy, digest in computed.items():
        if committed.get(policy) != digest:
            failures.append((backend, policy, digest))
    print(f"backend {backend}: {len(computed)} golden digests match")
if failures:
    for backend, policy, digest in failures:
        print(f"FAIL: {backend}/{policy} computed {digest}", file=sys.stderr)
    sys.exit(1)
PY
  # The vectorized backend must also hold its speed advantage: a
  # reduced-matrix run diffed against the committed reference-backend
  # artefact (explicitly cross-backend — that ratio IS the speedup).
  BACKEND_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "$BACKEND_OUT"' EXIT
  python -m repro bench \
    --scale smoke \
    --backend vectorized \
    --label ci_vectorized \
    --policies bh,ca_rwr,cp_sd \
    --mixes mix1 \
    --repeats 3 \
    --out "$BACKEND_OUT" \
    --baseline benchmarks/results/BENCH_engine.json \
    --cross-backend \
    --threshold 0.25
fi

if [[ "$RUN_MEMO" == 1 ]]; then
  echo "== ci: memoization correctness smoke =="
  # `bench --memo` runs a reduced campaign twice against one result
  # cache and *raises* unless the second pass is served entirely from
  # cache with byte-identical results (and the snapshot warm-start is
  # digest-identical) — so this leg is a correctness gate, not a
  # timing one; no baseline comparison needed here.
  MEMO_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "${BACKEND_OUT:-}" "$MEMO_OUT"' EXIT
  python -m repro bench --memo --scale smoke --out "$MEMO_OUT"
fi

if [[ "$RUN_DURABILITY" == 1 ]]; then
  echo "== ci: storage durability under disk-fault chaos =="
  # A short campaign with disk-level chaos (torn result writes and
  # payload bit flips at p=0.3, inside the workers) must lose zero
  # tasks — every defect is caught by the envelope checksums and
  # retried — and the surviving artefacts must pass a strict
  # post-mortem audit (corrupt ones sit quarantined with reason
  # records, which the doctor skips by design).
  DURA_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "${BACKEND_OUT:-}" "${MEMO_OUT:-}" "$DURA_OUT"' EXIT
  python -m repro campaign \
    --scale smoke \
    --out "$DURA_OUT/campaign" \
    --experiments tables \
    --chaos p=0.3,kinds=disk-torn,disk-flip \
    --retries 8 \
    --timeout 120 \
    --backoff 0.05 \
    --jobs 2
  python -m repro doctor --strict "$DURA_OUT/campaign"
  # ... and the committed artefacts audit clean too.
  python -m repro doctor --strict
fi

if [[ "$RUN_ANALYTICAL" == 1 ]]; then
  echo "== ci: analytical estimator accuracy gate =="
  # Re-estimate every case of the committed reference matrix and fail
  # when any mean error leaves its documented tolerance
  # (docs/analytical_validation.md) — the contract that licenses the
  # explorer's screening tier.
  python -m repro --scale smoke analytical

  echo "== ci: explorer smoke (tiny grid, kill-and-resume) =="
  # A tiny-grid sweep with a crash injected right after rung 1's
  # durable write must abort, leave the rung artefact on disk, and
  # complete under --resume without recomputing finished rungs; the
  # resulting directory must pass a strict doctor audit.
  EXPLORE_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "${BACKEND_OUT:-}" "${MEMO_OUT:-}" "${DURA_OUT:-}" "$EXPLORE_OUT"' EXIT
  if REPRO_EXPLORE_KILL_AFTER="rung:1" python -m repro --scale smoke explore \
      --out "$EXPLORE_OUT/run" --space tiny --confirm 4 >/dev/null 2>&1; then
    echo "FAIL: injected kill after rung 1 did not abort the sweep" >&2
    exit 1
  fi
  if [[ ! -f "$EXPLORE_OUT/run/rung_1.json" ]]; then
    echo "FAIL: rung_1.json not durable at the kill point" >&2
    exit 1
  fi
  python -m repro --scale smoke explore --resume "$EXPLORE_OUT/run" \
    --space tiny --confirm 4
  if [[ ! -f "$EXPLORE_OUT/run/frontier.json" ]]; then
    echo "FAIL: resume did not produce frontier.json" >&2
    exit 1
  fi
  python -m repro doctor --strict "$EXPLORE_OUT/run"
fi

if [[ "$RUN_SERVICE" == 1 ]]; then
  echo "== ci: service mode (2 shards, mid-flight shard kill) =="
  # A two-subprocess-shard service executes a tiny submitted grid while
  # one shard is rigged to die mid-task.  The job must finish with zero
  # unit loss (the dead shard's work requeues to the survivor), the
  # merged results must be byte-identical to an unsharded reference
  # run, a post-restart resume must serve every unit from the durable
  # manifest, and the whole service root must pass a strict audit.
  SERVICE_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "${BACKEND_OUT:-}" "${MEMO_OUT:-}" "${DURA_OUT:-}" "${EXPLORE_OUT:-}" "$SERVICE_OUT"' EXIT
  python - "$SERVICE_OUT" <<'PY'
import hashlib
import sys
from pathlib import Path

from repro.harness import CampaignSettings, run_campaign
from repro.service.client import ServiceClient
from repro.service.server import DONE, ServiceServer
from repro.service.shard import KILL_AT_ENV, LocalShardSet

root = Path(sys.argv[1])


def digest(directory):
    h = hashlib.sha256()
    results = sorted((directory / "results").glob("*.json"))
    for path in results:
        h.update(path.name.encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest(), len(results)


# Unsharded reference run of the same grid.
report = run_campaign(
    root / "reference",
    scale="smoke",
    experiments=("tables",),
    settings=CampaignSettings(jobs=1, retries=0),
)
assert report.ok, "reference run failed"
ref_digest, ref_count = digest(root / "reference")

# Shard 1 exits mid-flight: right after announcing its second unit.
with LocalShardSet(
    2, root / "fleet", extra_env=[None, {KILL_AT_ENV: "start:2"}]
) as fleet:
    server = ServiceServer(root / "service", shards=fleet.endpoints)
    server.start()
    try:
        client = ServiceClient(server.endpoint)
        job_id = client.submit(experiments=["tables"], scale="smoke")
        record = client.watch(job_id, timeout=600.0)
    finally:
        server.stop()
assert record["status"] == DONE, record
job_report = record["report"]
assert job_report["failed"] == 0, job_report
assert job_report["shard_deaths"] == 1, job_report
job_dir = root / "service" / "jobs" / job_id / "campaign"
job_digest, job_count = digest(job_dir)
assert (job_count, job_digest) == (ref_count, ref_digest), (
    "sharded results diverged from the single-pool reference"
)

# A fresh server over the same root resumes the job: every unit is
# served from the durable campaign manifest, nothing recomputes.
server = ServiceServer(root / "service")
server.start()
try:
    client = ServiceClient(server.endpoint)
    client.resume(job_id)
    record = client.watch(job_id, timeout=600.0)
finally:
    server.stop()
assert record["status"] == DONE, record
assert record["report"]["skipped"] == job_report["total"], record["report"]
assert record["report"]["completed"] == 0, record["report"]
print(
    f"service job {job_id}: {job_report['completed']} units, "
    f"{job_report['shard_deaths']} shard death, byte-identical to "
    "reference, resume served all units from the manifest"
)
PY
  python -m repro doctor --strict "$SERVICE_OUT/service"
fi

if [[ "$RUN_WORKLOADS" == 1 ]]; then
  echo "== ci: workload registry completeness + golden byte-identity =="
  # Three gates.  (1) Registry byte-identity: the golden window built
  # *through the registry* must reproduce the committed pre-registry
  # digests under every engine backend — the proof that the synthetic
  # family is the old construction, not a re-implementation of it.
  # (2) Registry completeness: every registered family's first target
  # must describe itself, build at a tiny scale, and run one short
  # simulation to a schema-valid RunRecord stamped with its family.
  # (3) External round trip: the committed interchange fixture imports
  # and simulates through the same path users take.
  python - <<'PY'
import json, sys
from repro.bench.golden import compute_golden_digests
from repro.engine_backends import backend_names

committed = json.load(open("tests/goldens/determinism.json"))
failures = []
for backend in backend_names():
    computed = compute_golden_digests(backend=backend, via_registry=True)
    for policy, digest in computed.items():
        if committed.get(policy) != digest:
            failures.append((backend, policy, digest))
    print(f"registry/{backend}: {len(computed)} golden digests match")
if failures:
    for backend, policy, digest in failures:
        print(f"FAIL: registry/{backend}/{policy} computed {digest}",
              file=sys.stderr)
    sys.exit(1)
PY
  WORKLOADS_OUT="$(mktemp -d)"
  trap 'rm -rf "${BENCH_OUT:-}" "${BACKEND_OUT:-}" "${MEMO_OUT:-}" "${DURA_OUT:-}" "${EXPLORE_OUT:-}" "${SERVICE_OUT:-}" "$WORKLOADS_OUT"' EXIT
  REPRO_EXTERNAL_WORKLOADS="$WORKLOADS_OUT/external" python - <<'PY'
from dataclasses import replace

from repro.core import make_policy
from repro.engine import Simulation
from repro.experiments.common import SMOKE
from repro.manifest import describe_workload
from repro.metrics import RunRecord
from repro.workloads.external import import_trace
from repro.workloads.registry import build_workload, family_names, get_family

import_trace("tests/fixtures/external_fixture.csv", "ci_fixture", cores=4)

tiny = replace(SMOKE, trace_records_per_core=3_000)
config = tiny.system()
epoch = config.dueling.epoch_cycles
for name in family_names():
    family = get_family(name)
    targets = family.targets()
    assert targets, f"family {name!r} registered no targets"
    target = targets[0]
    spec = family.target_spec(target)
    workload = build_workload(spec.ref, scale=tiny)
    assert workload.family == name, (name, workload.family)
    policy = make_policy("bh")
    sim = Simulation(config, policy, workload)
    result = sim.run(cycles=epoch, warmup_cycles=epoch * 0.25)
    record = RunRecord.from_simulation(
        result,
        meta={"workload": describe_workload(workload)},
        policy=policy,
    )
    record.validate()
    payload = record.to_json()
    meta = RunRecord.from_json(payload).meta["workload"]  # schema round-trip
    assert meta.get("family") == name, meta
    print(f"family {name}: {spec.ref} built, simulated, "
          f"RunRecord family stamp ok")
PY
  # ... and the CLI surface end to end: import -> list -> simulate ->
  # campaign (one unit) -> export, all over the committed fixture.
  export REPRO_EXTERNAL_WORKLOADS="$WORKLOADS_OUT/external"
  python -m repro workloads --family external | grep -q "external:ci_fixture"
  python -m repro --scale smoke simulate \
    --mix external:ci_fixture --policy bh --epochs 1 --warmup-epochs 0.5
  python -m repro --scale smoke campaign \
    --out "$WORKLOADS_OUT/campaign" \
    --experiments fig6 \
    --workloads external:ci_fixture,datacenter:kv_read \
    --jobs 2 \
    --timeout 300
  python -m repro export --format jsonl "$WORKLOADS_OUT/campaign" \
    | grep -Eq '"workload_family": ?"external"'
  unset REPRO_EXTERNAL_WORKLOADS
fi

echo "== ci: OK =="
