"""C-PACK — dictionary-based comparator compressor (Chen et al.).

A second alternative compressor (besides FPC) demonstrating that the
insertion policies are compressor-agnostic (Sec. II-B).  This is a
word-level C-PACK: each 32-bit word is encoded against a small FIFO
dictionary of recently seen words with the classic pattern set:

====== =============================== ============
code   pattern                          payload bits
====== =============================== ============
``zzzz`` all-zero word                  2
``xxxx`` uncompressed word              2 + 32
``mmmm`` full dictionary match          6  (2 + 4-bit index)
``mmxx`` high-half match                6 + 16
``mmmx`` 3-byte match                   6 + 8
``zzzx`` zero-extended byte             2 + 8
====== =============================== ============

As with FPC, the reported size is rounded up to the nearest modified-
BDI ladder size so downstream fit-LRU / CP_th machinery can consume it
unchanged; the payload keeps the raw block (bit-exact packing is not
needed by any consumer).
"""

from __future__ import annotations

import struct
from typing import List

from .base import CompressionResult, Compressor
from .encodings import BLOCK_SIZE, ENCODING_SIZES, UNCOMPRESSED, best_fit_encoding

_DICT_SIZE = 16


def _word_cost_bits(word: int, dictionary: List[int]) -> int:
    """Bits to encode one word; updates the FIFO dictionary."""
    if word == 0:
        return 2
    if word <= 0xFF:
        return 2 + 8  # zero-extended byte
    cost = 2 + 32  # uncompressed fallback
    for entry in dictionary:
        if entry == word:
            cost = 6
            break
        if (entry ^ word) <= 0xFF:
            cost = min(cost, 6 + 8)   # 3-byte match
        elif (entry ^ word) <= 0xFFFF:
            cost = min(cost, 6 + 16)  # high-half match
    if word not in dictionary:
        dictionary.append(word)
        if len(dictionary) > _DICT_SIZE:
            dictionary.pop(0)
    return cost


class CPackCompressor(Compressor):
    """Dictionary-based C-PACK, quantised to the Table I ladder."""

    name = "cpack"

    def compress(self, block: bytes) -> CompressionResult:
        self.check_block(block)
        words = struct.unpack("<16I", block)
        dictionary: List[int] = []
        bits = sum(_word_cost_bits(w, dictionary) for w in words)
        raw_size = (bits + 7) // 8
        if raw_size >= BLOCK_SIZE:
            return CompressionResult(UNCOMPRESSED, block)
        encoding = None
        for size in ENCODING_SIZES:
            if size >= raw_size:
                encoding = best_fit_encoding(size)
                if encoding is not None and encoding.size >= raw_size:
                    break
        if encoding is None or encoding.size >= BLOCK_SIZE:
            return CompressionResult(UNCOMPRESSED, block)
        return CompressionResult(encoding, block)

    def decompress(self, result: CompressionResult) -> bytes:
        # compress() always keeps the raw block as the payload.
        return result.payload
