"""Modified Base-Delta-Immediate compressor (Sec. II-B, Table I).

The block is interpreted as eight 8-byte, sixteen 4-byte, or
thirty-two 2-byte little-endian values.  The first value is the base;
the remaining values are stored as signed deltas against it.  Unlike
the original BDI proposal, low-compression-ratio encodings
(B8D5..B8D7, B4D3) are kept: on a byte-fault-tolerant NVM they let
frames with a few dead bytes hold almost-incompressible blocks.

Payload layout for a BnDk encoding::

    [ base : n bytes | flags : 1 byte | deltas : (64/n - 1) * k bytes ]

ZERO stores a single zero byte, REP8 the repeated 8-byte value, and
UNCOMPRESSED the raw block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import CompressionResult, Compressor
from .encodings import (
    ALL_ENCODINGS,
    BLOCK_SIZE,
    REP8,
    UNCOMPRESSED,
    ZERO,
    Encoding,
)

_ZERO_BLOCK = bytes(BLOCK_SIZE)

#: BnDk encodings grouped by base size, keyed by delta size.
_FAMILIES: Dict[int, Dict[int, Encoding]] = {}
for _enc in ALL_ENCODINGS:
    if _enc.base_bytes and _enc.delta_bytes:
        _FAMILIES.setdefault(_enc.base_bytes, {})[_enc.delta_bytes] = _enc

_MAX_DELTA = {base: max(family) for base, family in _FAMILIES.items()}


def signed_bytes_needed(delta: int) -> int:
    """Bytes needed to store ``delta`` as a signed little-endian int."""
    if delta >= 0:
        bits = delta.bit_length() + 1
    else:
        bits = (-delta - 1).bit_length() + 1
    return max(1, (bits + 7) // 8)


def _unpack(block: bytes, width: int) -> List[int]:
    return [
        int.from_bytes(block[i : i + width], "little")
        for i in range(0, BLOCK_SIZE, width)
    ]


def _signed_delta(value: int, base: int, base_bytes: int) -> int:
    """Two's-complement delta, as the hardware subtractor computes it.

    The difference wraps modulo the value width, and the minimal signed
    representative is stored — so e.g. 0x...FFFF against base 0 is a
    one-byte delta of -1, matching the original BDI arithmetic.
    """
    bits = 8 * base_bytes
    delta = (value - base) & ((1 << bits) - 1)
    if delta >= 1 << (bits - 1):
        delta -= 1 << bits
    return delta


def _family_delta_width(block: bytes, base_bytes: int) -> Optional[Tuple[int, int]]:
    """Smallest delta width usable for a base family, or None.

    Returns ``(base_value, delta_bytes)``; deltas are signed wrapped
    differences against the first value of the block.
    """
    values = _unpack(block, base_bytes)
    base = values[0]
    width = 1
    limit = _MAX_DELTA[base_bytes]
    for value in values[1:]:
        needed = signed_bytes_needed(_signed_delta(value, base, base_bytes))
        if needed > width:
            if needed > limit:
                return None
            width = needed
    return base, width


class BDICompressor(Compressor):
    """The paper's modified BDI compressor (1-2 cycle decompression)."""

    name = "bdi"

    def compress(self, block: bytes) -> CompressionResult:
        self.check_block(block)
        if block == _ZERO_BLOCK:
            return CompressionResult(ZERO, b"\x00")

        first8 = block[:8]
        if block == first8 * 8:
            return CompressionResult(REP8, first8)

        best: Optional[Tuple[Encoding, int, int]] = None
        for base_bytes in sorted(_FAMILIES):
            fit = _family_delta_width(block, base_bytes)
            if fit is None:
                continue
            base, width = fit
            encoding = _FAMILIES[base_bytes][width]
            if best is None or encoding.size < best[0].size:
                best = (encoding, base, width)

        if best is None or best[0].size >= BLOCK_SIZE:
            return CompressionResult(UNCOMPRESSED, block)

        encoding, base, width = best
        payload = self._pack(block, encoding, base, width)
        return CompressionResult(encoding, payload)

    @staticmethod
    def _pack(block: bytes, encoding: Encoding, base: int, width: int) -> bytes:
        parts = [base.to_bytes(encoding.base_bytes, "little"), b"\x00"]
        values = _unpack(block, encoding.base_bytes)
        for value in values[1:]:
            delta = _signed_delta(value, base, encoding.base_bytes)
            parts.append(delta.to_bytes(width, "little", signed=True))
        payload = b"".join(parts)
        assert len(payload) == encoding.size, (len(payload), encoding)
        return payload

    def decompress(self, result: CompressionResult) -> bytes:
        encoding = result.encoding
        payload = result.payload
        if encoding is ZERO or encoding.name == "ZERO":
            return _ZERO_BLOCK
        if encoding.name == "REP8":
            return payload * 8
        if encoding.name == "UNCOMPRESSED":
            return payload

        base_bytes, delta_bytes = encoding.base_bytes, encoding.delta_bytes
        base = int.from_bytes(payload[:base_bytes], "little")
        mask = (1 << (8 * base_bytes)) - 1
        out = [base.to_bytes(base_bytes, "little")]
        offset = base_bytes + 1
        for _ in range(encoding.n_values - 1):
            delta = int.from_bytes(
                payload[offset : offset + delta_bytes], "little", signed=True
            )
            out.append(((base + delta) & mask).to_bytes(base_bytes, "little"))
            offset += delta_bytes
        block = b"".join(out)
        assert len(block) == BLOCK_SIZE
        return block


#: Module-level singleton; the compressor is stateless.
DEFAULT_COMPRESSOR = BDICompressor()


def compressed_size(block: bytes) -> int:
    """Convenience: compressed size of a block under the default BDI."""
    return DEFAULT_COMPRESSOR.compress(block).size
