"""Block compression substrate: modified BDI (Table I), FPC, patterns."""

from .base import CompressionResult, Compressor
from .bdi import BDICompressor, DEFAULT_COMPRESSOR, compressed_size
from .encodings import (
    ALL_ENCODINGS,
    BLOCK_SIZE,
    CPTH_LADDER,
    ECB_OVERHEAD_BYTES,
    ENCODING_SIZES,
    ENCODINGS_BY_CE,
    ENCODINGS_BY_NAME,
    HCR_LIMIT,
    Encoding,
    best_fit_encoding,
    classify,
    ecb_size,
)
from .cpack import CPackCompressor
from .fpc import FPCCompressor
from .patterns import PatternLibrary, incompressible_block, rep8_block, zero_block

__all__ = [
    "ALL_ENCODINGS",
    "BDICompressor",
    "BLOCK_SIZE",
    "CPTH_LADDER",
    "CPackCompressor",
    "CompressionResult",
    "Compressor",
    "DEFAULT_COMPRESSOR",
    "ECB_OVERHEAD_BYTES",
    "ENCODING_SIZES",
    "ENCODINGS_BY_CE",
    "ENCODINGS_BY_NAME",
    "Encoding",
    "FPCCompressor",
    "HCR_LIMIT",
    "PatternLibrary",
    "best_fit_encoding",
    "classify",
    "compressed_size",
    "ecb_size",
    "incompressible_block",
    "rep8_block",
    "zero_block",
]
