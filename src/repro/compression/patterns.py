"""Synthetic 64-byte data patterns with controlled compressibility.

The workload generator (``repro.workloads``) needs cache-block payloads
whose modified-BDI compressed size matches a target drawn from each
application's compressibility profile (Fig. 2).  This module produces
such blocks and verifies them against the real compressor, so the rest
of the system always operates on genuinely compressed data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .base import CompressionResult
from .bdi import DEFAULT_COMPRESSOR, signed_bytes_needed
from .encodings import ALL_ENCODINGS, BLOCK_SIZE, Encoding


def zero_block() -> bytes:
    return bytes(BLOCK_SIZE)


def rep8_block(rng: random.Random) -> bytes:
    value = rng.getrandbits(64) | (1 << 63)  # non-zero, not delta-friendly
    return value.to_bytes(8, "little") * 8


def incompressible_block(rng: random.Random) -> bytes:
    """Random data; random 8-byte values essentially never share a base."""
    for _ in range(64):
        block = rng.getrandbits(BLOCK_SIZE * 8).to_bytes(BLOCK_SIZE, "little")
        if DEFAULT_COMPRESSOR.compress(block).size >= BLOCK_SIZE:
            return block
    raise RuntimeError("could not generate an incompressible block")


def _signed_range(width: int) -> Tuple[int, int]:
    half = 1 << (8 * width - 1)
    return -half, half - 1


def base_delta_block(rng: random.Random, encoding: Encoding) -> bytes:
    """A block that needs exactly ``encoding`` (a BnDk) to compress."""
    base_bytes, delta_bytes = encoding.base_bytes, encoding.delta_bytes
    lo, hi = _signed_range(delta_bytes)
    # Base far from zero so 4/2-byte reinterpretations do not collapse.
    base = rng.getrandbits(8 * base_bytes - 1) | (1 << (8 * base_bytes - 2))
    values = [base]
    n_values = encoding.n_values
    pin = rng.randrange(1, n_values)  # one delta forced to need full width
    for i in range(1, n_values):
        if i == pin:
            delta = rng.choice((lo, hi))
        else:
            delta = rng.randint(lo, hi)
        if signed_bytes_needed(delta) > delta_bytes:
            delta = hi
        values.append((base + delta) & ((1 << (8 * base_bytes)) - 1))
    return b"".join(v.to_bytes(base_bytes, "little") for v in values)


class PatternLibrary:
    """Pre-verified pool of blocks per target compressed size.

    ``block_for_size`` returns a block whose BDI compressed size equals
    the requested target (one of the encoding sizes); results are
    compressed once and cached, so consumers can fetch both the payload
    and its :class:`CompressionResult` cheaply.
    """

    def __init__(self, seed: int = 0, pool_size: int = 32) -> None:
        self._rng = random.Random(seed)
        self._pool_size = pool_size
        self._pools: Dict[int, List[bytes]] = {}
        self._results: Dict[bytes, CompressionResult] = {}
        self._by_size: Dict[int, List[Encoding]] = {}
        for enc in ALL_ENCODINGS:
            self._by_size.setdefault(enc.size, []).append(enc)

    @property
    def available_sizes(self) -> Sequence[int]:
        return sorted(self._by_size)

    def _generate(self, size: int) -> bytes:
        encodings = self._by_size.get(size)
        if not encodings:
            raise ValueError(f"no encoding with compressed size {size}")
        for _ in range(128):
            enc = self._rng.choice(encodings)
            if enc.name == "ZERO":
                block = zero_block()
            elif enc.name == "REP8":
                block = rep8_block(self._rng)
            elif enc.name == "UNCOMPRESSED":
                block = incompressible_block(self._rng)
            else:
                block = base_delta_block(self._rng, enc)
            result = DEFAULT_COMPRESSOR.compress(block)
            if result.size == size:
                self._results[block] = result
                return block
        raise RuntimeError(f"could not synthesise a block of size {size}")

    def block_for_size(self, size: int, choice: Optional[int] = None) -> bytes:
        """A block compressing to exactly ``size`` bytes.

        ``choice`` selects deterministically within the pool; omit it
        for round-robin variety.
        """
        pool = self._pools.get(size)
        if pool is None:
            pool = [self._generate(size) for _ in range(self._pool_size)]
            self._pools[size] = pool
        if choice is None:
            choice = self._rng.randrange(len(pool))
        return pool[choice % len(pool)]

    def compression_of(self, block: bytes) -> CompressionResult:
        """Cached compression result for a block from this library."""
        result = self._results.get(block)
        if result is None:
            result = DEFAULT_COMPRESSOR.compress(block)
            self._results[block] = result
        return result
