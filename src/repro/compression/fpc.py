"""Frequent Pattern Compression (FPC) — optional comparator compressor.

The paper's policies are "orthogonal to the compression mechanism"
(Sec. II-B); FPC is provided so downstream users can study how the
insertion policies behave under a different compressor.  This is a
word-level FPC after Alameldeen & Wood: each 32-bit word is matched
against a small pattern table (zero run, sign-extended 4/8/16-bit,
halfword repeated, uncompressed) with a 3-bit prefix per word.

The reported size is rounded up to the nearest modified-BDI encoding
size so FPC output is directly usable by the fit-LRU replacement and
CP_th machinery, which reason in terms of the Table I ladder.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from .base import CompressionResult, Compressor
from .encodings import BLOCK_SIZE, ENCODING_SIZES, UNCOMPRESSED, best_fit_encoding

_WORDS_PER_BLOCK = BLOCK_SIZE // 4
_PREFIX_BITS = 3


def _sign_extends(word: int, bits: int) -> bool:
    """True if the 32-bit word is a sign-extended ``bits``-bit value."""
    half = 1 << (bits - 1)
    signed = word - (1 << 32) if word >= (1 << 31) else word
    return -half <= signed < half


def _word_cost_bits(word: int) -> int:
    """Payload bits for one word under the best matching FPC pattern."""
    if word == 0:
        return 0
    if _sign_extends(word, 4):
        return 4
    if _sign_extends(word, 8):
        return 8
    if _sign_extends(word, 16):
        return 16
    high, low = word >> 16, word & 0xFFFF
    if high == low:
        return 16
    return 32


class FPCCompressor(Compressor):
    """Frequent-pattern compression, quantised to the Table I ladder."""

    name = "fpc"

    def compress(self, block: bytes) -> CompressionResult:
        self.check_block(block)
        words = struct.unpack("<16I", block)
        bits = sum(_PREFIX_BITS + _word_cost_bits(w) for w in words)
        raw_size = (bits + 7) // 8
        if raw_size >= BLOCK_SIZE:
            return CompressionResult(UNCOMPRESSED, block)
        encoding = None
        for size in ENCODING_SIZES:
            if size >= raw_size:
                encoding = best_fit_encoding(size)
                if encoding is not None and encoding.size >= raw_size:
                    break
        if encoding is None or encoding.size >= BLOCK_SIZE:
            return CompressionResult(UNCOMPRESSED, block)
        # Keep the raw block as payload: FPC quantised sizes drive the
        # policies; bit-exact FPC packing is not needed by any consumer.
        return CompressionResult(encoding, block)

    def decompress(self, result: CompressionResult) -> bytes:
        # compress() always keeps the raw block as the payload.
        return result.payload
