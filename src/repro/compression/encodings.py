"""Modified Base-Delta-Immediate compression encodings (Table I).

The paper uses a *modified* BDI [36] that, unlike the original, keeps
the low-compression-ratio (LCR) encodings: on a byte-fault-tolerant NVM
even a block that shrinks by just a few bytes can be stored in a frame
with a few dead bytes (Sec. II-B).

Table I in the available text is garbled, so the encoding set is
reconstructed from the constraints the paper states explicitly:

* the ``CP_th`` ladder swept in Sec. IV is {30, 37, 44, 51, 58, 64};
* HCR blocks are those with compressed size <= 37 B, LCR blocks those
  above 37 B (Sec. II-B);
* "compression encodings B8D7 and above (<= 58B)" fit a 64-B frame
  with one dead byte (Sec. III-B).

Sizes below follow ``base + 1 flag byte + n_deltas * delta_bytes``
(the first value of the block doubles as the base, so a 64-B block of
eight 8-B values stores 7 deltas).  This yields exactly the published
ladder for the base-8 family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

BLOCK_SIZE = 64

#: Blocks with compressed size <= HCR_LIMIT are high-compression-ratio
#: (HCR); larger-but-compressible blocks are low-compression-ratio
#: (LCR).  Sec. II-B fixes the boundary at 37 bytes.
HCR_LIMIT = 37

#: Metadata appended to the compressed block: 4-bit compression
#: encoding + 11-bit SECDED, rounded up to whole bytes (Sec. III-B1).
ECB_OVERHEAD_BYTES = 2


@dataclass(frozen=True)
class Encoding:
    """One compression encoding (CE): a (base size, delta size) pair."""

    name: str
    ce: int            # 4-bit CE identifier stored with the block
    base_bytes: int    # 0 for special encodings (ZERO / UNCOMPRESSED)
    delta_bytes: int
    size: int          # compressed size in bytes

    @property
    def n_values(self) -> int:
        """Number of machine values the 64-B block is split into."""
        if self.base_bytes == 0:
            return 0
        return BLOCK_SIZE // self.base_bytes

    @property
    def is_hcr(self) -> bool:
        return self.size <= HCR_LIMIT

    @property
    def is_compressed(self) -> bool:
        return self.size < BLOCK_SIZE


def _bdi_size(base: int, delta: int) -> int:
    """base value + 1 flag byte + one delta per remaining value."""
    n_values = BLOCK_SIZE // base
    return base + 1 + (n_values - 1) * delta


ZERO = Encoding("ZERO", 0, 0, 0, 1)
REP8 = Encoding("REP8", 1, 8, 0, 8)
B8D1 = Encoding("B8D1", 2, 8, 1, _bdi_size(8, 1))    # 16
B8D2 = Encoding("B8D2", 3, 8, 2, _bdi_size(8, 2))    # 23
B8D3 = Encoding("B8D3", 4, 8, 3, _bdi_size(8, 3))    # 30
B8D4 = Encoding("B8D4", 5, 8, 4, _bdi_size(8, 4))    # 37
B8D5 = Encoding("B8D5", 6, 8, 5, _bdi_size(8, 5))    # 44
B8D6 = Encoding("B8D6", 7, 8, 6, _bdi_size(8, 6))    # 51
B8D7 = Encoding("B8D7", 8, 8, 7, _bdi_size(8, 7))    # 58
B4D1 = Encoding("B4D1", 9, 4, 1, _bdi_size(4, 1))    # 20
B4D2 = Encoding("B4D2", 10, 4, 2, _bdi_size(4, 2))   # 35
B4D3 = Encoding("B4D3", 11, 4, 3, _bdi_size(4, 3))   # 50
B2D1 = Encoding("B2D1", 12, 2, 1, _bdi_size(2, 1))   # 34
UNCOMPRESSED = Encoding("UNCOMPRESSED", 15, 0, 0, BLOCK_SIZE)

#: All encodings the compressor may emit, in preference order for equal
#: sizes (earlier wins ties).
ALL_ENCODINGS: Tuple[Encoding, ...] = (
    ZERO,
    REP8,
    B8D1,
    B8D2,
    B8D3,
    B8D4,
    B8D5,
    B8D6,
    B8D7,
    B4D1,
    B4D2,
    B4D3,
    B2D1,
    UNCOMPRESSED,
)

ENCODINGS_BY_NAME: Dict[str, Encoding] = {e.name: e for e in ALL_ENCODINGS}
ENCODINGS_BY_CE: Dict[int, Encoding] = {e.ce: e for e in ALL_ENCODINGS}

#: The distinct compressed sizes the encoding set can produce, sorted.
ENCODING_SIZES: Tuple[int, ...] = tuple(sorted({e.size for e in ALL_ENCODINGS}))

#: The CP_th candidate ladder the paper sweeps (Sec. IV-C).
CPTH_LADDER: Tuple[int, ...] = (30, 37, 44, 51, 58, 64)


def ecb_size(compressed_size: int) -> int:
    """Size of the extended compressed block written to an NVM frame.

    ECB = compressed block + CE + SECDED metadata, never larger than an
    uncompressed frame (an uncompressed block's metadata lives in the
    tag array, as in the baselines).
    """
    if not 0 <= compressed_size <= BLOCK_SIZE:
        raise ValueError(f"bad compressed size {compressed_size}")
    if compressed_size >= BLOCK_SIZE:
        return BLOCK_SIZE
    return min(BLOCK_SIZE, compressed_size + ECB_OVERHEAD_BYTES)


def classify(compressed_size: int) -> str:
    """Classify a block as ``hcr``, ``lcr`` or ``incompressible``."""
    if compressed_size >= BLOCK_SIZE:
        return "incompressible"
    if compressed_size <= HCR_LIMIT:
        return "hcr"
    return "lcr"


def best_fit_encoding(max_size: int) -> Optional[Encoding]:
    """Largest (least compressed) encoding whose size is <= ``max_size``."""
    best = None
    for enc in ALL_ENCODINGS:
        if enc.size <= max_size and (best is None or enc.size > best.size):
            best = enc
    return best
