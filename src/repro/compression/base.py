"""Compressor interface shared by the BDI and FPC implementations.

The insertion policies only ever consume a :class:`CompressionResult`
(encoding + size), so any compressor that satisfies the properties of
Sec. II-B (low decompression latency, wide coverage) can be plugged in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .encodings import BLOCK_SIZE, Encoding, classify, ecb_size


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one 64-byte block."""

    encoding: Encoding
    payload: bytes

    @property
    def size(self) -> int:
        """Compressed size in bytes (what the CP_th threshold sees)."""
        return self.encoding.size

    @property
    def ecb_size(self) -> int:
        """Bytes actually written to an NVM frame (payload + CE + SECDED)."""
        return ecb_size(self.encoding.size)

    @property
    def compression_class(self) -> str:
        return classify(self.encoding.size)

    @property
    def is_compressed(self) -> bool:
        return self.encoding.is_compressed


class Compressor(abc.ABC):
    """A block compressor: 64 bytes in, a CompressionResult out."""

    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, block: bytes) -> CompressionResult:
        """Compress one BLOCK_SIZE-byte block."""

    @abc.abstractmethod
    def decompress(self, result: CompressionResult) -> bytes:
        """Invert :meth:`compress`, returning the original 64 bytes."""

    @staticmethod
    def check_block(block: bytes) -> None:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"expected {BLOCK_SIZE}-byte block, got {len(block)}")
