"""The vectorized backend: numpy batch-replay over the scalar schedule.

The burst-64 heap schedule is *observable* (it decides where warmup and
epoch boundaries cut the access stream), so a byte-identical backend
must replicate it exactly.  What this backend changes is everything
around the schedule:

* **Timing columns are vectorized.**  The per-record charge
  ``gap * base_cpi + base_cpi`` and ``gap + 1`` are precomputed for the
  whole trace in one numpy pass per core and consumed as plain-float /
  plain-int lists (``float64`` elementwise ops are IEEE-identical to
  CPython's scalar arithmetic, and ``tolist()`` round-trips exactly).
* **The access path is fused.**  ``MemoryHierarchy.access_level``, both
  private fill paths and ``HybridLLC._insert`` are transliterated into
  one closure so a burst runs without per-record method dispatch,
  ``FillContext`` allocation, or virtual policy calls.
* **Policy decisions are devirtualised.**  The built-in policies'
  ``placement`` / ``choose_victim`` / hook bodies are inlined behind an
  exact-type dispatch; an unknown policy type delegates the entire run
  to :class:`~repro.engine_backends.reference.ReferenceBackend`
  (fallback is a performance decision, never a semantic one).

All *state* stays on the canonical objects: LLC counters are hoisted
into one working list ``L`` (flushed back at every structural boundary
and at run end), wear/fault rows are mutated through the canonical
row lists (whose identity ``WearTracker.reset`` preserves), and
``coherence_invalidations`` is deliberately *not* hoisted — GetX
snoops run through the canonical ``_snoop_peers`` so shared-address
workloads stay exact.  Byte-identity is pinned by the committed golden
digests (``tests/goldens/determinism.json``) and the cross-backend
property tests.
"""

from __future__ import annotations

import gc
import heapq
import time
from dataclasses import fields as _dc_fields
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..cache.block import BlockMeta, ReuseClass
from ..cache.cacheset import NVM, SRAM
from ..cache.stats import LLCStats
from ..core.policy import GLOBAL
from .base import EngineBackend, register_backend
from .reference import ReferenceBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import SimulationResult

_WRITE = ReuseClass.WRITE
_READ = ReuseClass.READ
_NONE = ReuseClass.NONE

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)
_NVM_ONLY = (NVM,)
_GLOBAL_ONLY = (GLOBAL,)

#: LLC counter layout of the working list ``L`` — dataclass field order,
#: so ``flush`` reproduces the canonical object attribute-for-attribute.
_LLC_FIELDS: Tuple[str, ...] = tuple(f.name for f in _dc_fields(LLCStats))

I_GETS = _LLC_FIELDS.index("gets")
I_GETX = _LLC_FIELDS.index("getx")
I_GETS_HITS = _LLC_FIELDS.index("gets_hits")
I_GETX_HITS = _LLC_FIELDS.index("getx_hits")
I_UPGRADES = _LLC_FIELDS.index("upgrades")
I_UPGRADE_HITS = _LLC_FIELDS.index("upgrade_hits")
I_HITS_SRAM = _LLC_FIELDS.index("hits_sram")
I_HITS_NVM = _LLC_FIELDS.index("hits_nvm")
I_FILLS = _LLC_FIELDS.index("fills")
I_FILLS_SRAM = _LLC_FIELDS.index("fills_sram")
I_FILLS_NVM = _LLC_FIELDS.index("fills_nvm")
I_BYPASSES = _LLC_FIELDS.index("bypasses")
I_UPDATES = _LLC_FIELDS.index("updates_in_place")
I_SILENT = _LLC_FIELDS.index("silent_drops")
I_MIGRATIONS = _LLC_FIELDS.index("migrations_to_nvm")
I_EVICTIONS = _LLC_FIELDS.index("evictions")
I_WRITEBACKS = _LLC_FIELDS.index("writebacks_to_memory")
I_NVM_WRITES = _LLC_FIELDS.index("nvm_writes")
I_NVM_BYTES = _LLC_FIELDS.index("nvm_bytes_written")
I_SRAM_WRITES = _LLC_FIELDS.index("sram_writes")

# Policy dispatch kinds (exact-type; subclasses the kernel does not
# know fall through to the reference delegate).
PK_STATIC = 0   # bh / bh_cp / sram: constant placement, no hooks
PK_CA = 1       # ca: constant CP_th split, no hooks
PK_CARWR = 2    # ca_rwr: reuse steering + SRAM->NVM migration
PK_CPSD = 3     # cp_sd / cp_sd_th: leader-slot CP_th + duel counters
PK_LHYB = 4     # lhybrid: loop-block steering + MRU-LB victim in SRAM
PK_TAP = 5      # tap: thrashing table + clean-thrash steering


def _classify_policy(policy) -> Optional[Tuple[int, Optional[Tuple[int, ...]]]]:
    """(kind, static placement) for a policy the kernel can inline."""
    from ..core.bh import BHPolicy
    from ..core.bh_cp import BHCPPolicy
    from ..core.ca import CAPolicy
    from ..core.ca_rwr import CARWRPolicy
    from ..core.cp_sd import CPSDPolicy
    from ..core.cp_sd_th import CPSDThPolicy
    from ..core.lhybrid import LHybridPolicy
    from ..core.sram import SRAMOnlyPolicy
    from ..core.tap import TAPPolicy

    t = type(policy)
    if t is BHPolicy or t is BHCPPolicy:
        return PK_STATIC, _GLOBAL_ONLY
    if t is SRAMOnlyPolicy:
        return PK_STATIC, _SRAM_ONLY
    if t is CAPolicy:
        return PK_CA, None
    if t is CARWRPolicy:
        return PK_CARWR, None
    if t is CPSDPolicy or t is CPSDThPolicy:
        return PK_CPSD, None
    if t is LHybridPolicy:
        return PK_LHYB, None
    if t is TAPPolicy:
        return PK_TAP, None
    return None


@register_backend("vectorized")
class VectorizedBackend(EngineBackend):
    """Numpy batch-replay kernel; byte-identical to ``reference``."""

    name = "vectorized"

    def __init__(self, sim) -> None:
        super().__init__(sim)
        # Timing columns depend only on the immutable trace columns and
        # base_cpi, so they survive snapshot/restore; everything that
        # hangs off mutable objects is re-hoisted per run.
        self._tds: Optional[List[List[float]]] = None
        self._gis: Optional[List[List[int]]] = None
        self._prepare_s = 0.0
        self._delegate: Optional[ReferenceBackend] = None

    # ------------------------------------------------------------------
    def _prepare_columns(self) -> None:
        perf = time.perf_counter
        t0 = perf()
        tds: List[List[float]] = []
        gis: List[List[int]] = []
        for core, (gaps, _addrs, _writes) in zip(self.sim.cores, self.sim._columns):
            base_cpi = core.base_cpi
            g = np.asarray(gaps, dtype=np.float64)
            # Same two IEEE ops, same order, as the scalar
            # ``gap * base_cpi + base_cpi`` — bit-identical per element.
            tds.append((g * base_cpi + base_cpi).tolist())
            gis.append((np.asarray(gaps, dtype=np.int64) + 1).tolist())
        self._tds = tds
        self._gis = gis
        self._prepare_s = perf() - t0

    # ------------------------------------------------------------------
    def run(
        self,
        end_cycle: float,
        warmup_until: float,
        record_epochs: bool,
    ) -> "SimulationResult":
        dispatch = _classify_policy(self.sim.policy)
        if dispatch is None:
            # Unknown policy type: the whole run falls back to the
            # scalar loop (semantics first; see the base contract).
            if self._delegate is None:
                self._delegate = ReferenceBackend(self.sim)
            result = self._delegate.run(end_cycle, warmup_until, record_epochs)
            self.last_phase_timings = dict(self._delegate.last_phase_timings)
            self.last_phase_timings["prepare_s"] = 0.0
            self.last_phase_timings["fallback"] = 1.0
            return result
        if self._tds is None:
            self._prepare_columns()
        return self._kernel(end_cycle, warmup_until, record_epochs, dispatch)

    # ------------------------------------------------------------------
    def _kernel(
        self,
        cycles: float,
        warmup_cycles: float,
        record_epochs: bool,
        dispatch: Tuple[int, Optional[Tuple[int, ...]]],
    ) -> "SimulationResult":
        sim = self.sim
        from ..engine import EpochRecord, SimulationResult

        pk, static_parts = dispatch
        hierarchy = sim.hierarchy
        cores = sim.cores
        policy = sim.policy
        epoch_cycles = sim.config.dueling.epoch_cycles
        epochs: List[EpochRecord] = []
        epoch_snap = hierarchy.stats.llc.snapshot()
        start = min(core.cycles for core in cores)
        next_epoch = sim._next_epoch
        epoch_index = sim._epoch_index
        warmed = warmup_cycles <= start
        if warmed:
            hierarchy.reset_stats()
            epoch_snap = hierarchy.stats.llc.snapshot()
        base_instr = [core.instructions for core in cores]
        base_cycles = [core.cycles for core in cores]

        # ---- hoisted canonical state (identities stable within a run;
        # everything re-resolved per run so snapshot/restore stays free)
        llc = hierarchy.llc
        sets = llc.sets
        set_mask = llc._set_mask
        sram_ways = llc.geom.sram_ways
        total_ways = llc.geom.total_ways
        sentinel = total_ways
        block_size = llc.block_size
        frows = llc.faultmap.rows
        wear_bytes = llc.wear._bytes_rows     # reset() zeroes in place
        wear_writes = llc.wear._writes_rows
        meta_table = hierarchy.meta._table
        sharer_l1 = hierarchy._sharer_l1
        sharer_l2 = hierarchy._sharer_l2
        snoop_peers = hierarchy._snoop_peers  # canonical: keeps
        # coherence_invalidations and shared-address behaviour exact.
        hier_l1 = hierarchy.l1
        hier_l2 = hierarchy.l2
        l1_sets = hierarchy._l1_sets
        l2_sets = hierarchy._l2_sets
        l1_mask = hierarchy._l1_mask
        l2_mask = hierarchy._l2_mask
        l1_ways = hierarchy._l1_ways
        l2_ways = hierarchy._l2_ways
        compressed = llc._compressed and llc._size_fn is not None
        size_fn = llc._size_fn
        # Fast path for the (preloaded) size memo of the workload's data
        # model; an empty dict degrades to calling size_fn, which is the
        # canonical behaviour for custom size functions.
        sizes_memo = {}
        dm = sim.workload.data_model
        if compressed and getattr(size_fn, "__self__", None) is dm:
            sizes_memo = dm._sizes

        # ---- policy state (re-hoisted after every boundary: dueling
        # elections replace the counter lists, TAP decay replaces the
        # hit table)
        cpth_const = 0
        migrate_flag = False
        cand: Tuple[int, ...] = ()
        slot_of_set: List[int] = []
        duel_hits: List[int] = []
        duel_writes: List[int] = []
        follower_cpth = 0
        tap_counts = {}
        tap_threshold = 0
        tap_capacity = 0
        controller = None
        if pk == PK_CA or pk == PK_CARWR:
            cpth_const = policy.cpth
        if pk == PK_CARWR:
            migrate_flag = policy.migrate_on_eviction
        elif pk == PK_CPSD:
            migrate_flag = policy.migrate_on_eviction
            controller = policy.controller
            cand = controller.candidates
            slot_of_set = controller._slot_of_set
            duel_hits = controller.hits
            duel_writes = controller.writes
            follower_cpth = cand[controller.winner_index]
        elif pk == PK_LHYB:
            migrate_flag = True
        elif pk == PK_TAP:
            tap_counts = policy._hit_counts
            tap_threshold = policy.hit_threshold
            tap_capacity = policy.table_capacity
        is_cpsd = pk == PK_CPSD
        is_tap = pk == PK_TAP
        has_handler = migrate_flag or pk == PK_LHYB

        # ---- hoisted LLC counters (flushed at boundaries and run end)
        llc_stats = llc.stats
        L = [getattr(llc_stats, name) for name in _LLC_FIELDS]
        memory_reads = hierarchy.stats.memory_reads

        def flush_stats():
            s = llc.stats
            for i, name in enumerate(_LLC_FIELDS):
                setattr(s, name, L[i])
            hierarchy.stats.memory_reads = memory_reads

        # ---- fused LLC helpers (transliterations; see module docstring)
        def kernel_upgrade(core, addr):
            # MemoryHierarchy._upgrade = llc.upgrade + unconditional
            # snoop (pre-checked with the sharer masks, which is what
            # _snoop_peers does first anyway).
            si = addr & set_mask
            cs = sets[si]
            L[I_UPGRADES] += 1
            way = cs.way_of.get(addr)
            if way is not None:
                L[I_UPGRADE_HITS] += 1
                # classify_llc_hit(addr, is_getx=True, ...): always WRITE
                meta = meta_table.get(addr)
                if meta is None:
                    meta = BlockMeta()
                    meta_table[addr] = meta
                meta.llc_hits += 1
                meta.reuse = _WRITE
                cs.evict(way)
            if (sharer_l1.get(addr, 0) | sharer_l2.get(addr, 0)) & ~(1 << core):
                snoop_peers(core, addr)

        def pick_parts(si, addr, dirty, csize, reuse):
            # Inlined ``placement`` of the dispatched policy.
            if pk == PK_STATIC:
                return static_parts
            if pk == PK_LHYB:
                return _NVM_FIRST if reuse is _READ else _SRAM_ONLY
            if pk == PK_TAP:
                if not dirty and tap_counts.get(addr, 0) > tap_threshold:
                    return _NVM_FIRST
                return _SRAM_ONLY
            if pk != PK_CA:  # ca_rwr / cp_sd reuse steering
                if reuse is _READ:
                    return _NVM_FIRST
                if reuse is _WRITE:
                    return _SRAM_ONLY
            if is_cpsd:
                slot = slot_of_set[si]
                cpth = cand[slot] if slot >= 0 else follower_cpth
            else:
                cpth = cpth_const
            return _NVM_FIRST if csize <= cpth else _SRAM_ONLY

        def kernel_insert(cs, addr, dirty, csize, ecb, reuse, parts, migrating):
            # HybridLLC._insert, with policy calls devirtualised and the
            # SRAM-eviction migration recursing instead of re-entering
            # the canonical path.
            si = cs.index
            tags = cs.tags
            sram_fits = block_size >= ecb
            for part in parts:
                way = None
                if part != NVM and sram_fits and cs.free_sram:
                    for w in range(sram_ways):
                        if tags[w] is None:
                            way = w
                            break
                if way is None and part != SRAM and cs.free_nvm:
                    row = frows[si]
                    for w in range(sram_ways, total_ways):
                        if tags[w] is None and row[w - sram_ways] >= ecb:
                            way = w
                            break
                if way is None:
                    if pk == PK_LHYB and part == SRAM:
                        # LHybrid: most recent loop-block, else SRAM LRU.
                        reuse_l = cs.reuse
                        prv = cs.rec_prev
                        w = prv[sentinel]
                        while w != sentinel:
                            if w < sram_ways and reuse_l[w] is _READ:
                                way = w
                                break
                            w = prv[w]
                        if way is None:
                            nxt = cs.rec_next
                            w = nxt[sentinel]
                            while w != sentinel:
                                if w < sram_ways:
                                    way = w
                                    break
                                w = nxt[w]
                    else:
                        # Default (fit-)LRU walk, restricted to the part.
                        nxt = cs.rec_next
                        w = nxt[sentinel]
                        if part == SRAM:
                            while w != sentinel:
                                if w < sram_ways:
                                    way = w
                                    break
                                w = nxt[w]
                        elif part == GLOBAL:
                            row = frows[si]
                            while w != sentinel:
                                cap = (
                                    block_size if w < sram_ways
                                    else row[w - sram_ways]
                                )
                                if cap >= ecb:
                                    way = w
                                    break
                                w = nxt[w]
                        else:
                            row = frows[si]
                            while w != sentinel:
                                if w >= sram_ways and row[w - sram_ways] >= ecb:
                                    way = w
                                    break
                                w = nxt[w]
                    if way is None:
                        continue
                v_addr = tags[way]
                if v_addr is not None:
                    dirty_l = cs.dirty
                    v_dirty = dirty_l[way]
                    v_in_sram = way < sram_ways
                    migrate_victim = v_in_sram and not migrating and has_handler
                    if migrate_victim:
                        v_csize = cs.csize[way]
                        v_reuse = cs.reuse[way]
                    tags[way] = None
                    dirty_l[way] = False
                    cs.csize[way] = 0
                    cs.ecb[way] = 0
                    cs.reuse[way] = _NONE
                    prv = cs.rec_prev
                    nxt = cs.rec_next
                    before, after = prv[way], nxt[way]
                    nxt[before] = after
                    prv[after] = before
                    del cs.way_of[v_addr]
                    if v_in_sram:
                        cs.free_sram += 1
                    else:
                        cs.free_nvm += 1
                    L[I_EVICTIONS] += 1
                    consumed = False
                    if migrate_victim:
                        # handle_sram_eviction: migrate READ-reused
                        # victims (ca_rwr ablation knob respected).
                        if v_reuse is _READ and migrate_flag:
                            e = sizes_memo.get(v_addr)
                            if e is not None:
                                mcsize, mecb = e
                            elif compressed:
                                mcsize, mecb = size_fn(v_addr)
                            else:
                                mcsize = mecb = block_size
                            consumed = kernel_insert(
                                cs, v_addr, v_dirty, mcsize, mecb,
                                v_reuse, _NVM_ONLY, True,
                            )
                    if not consumed:
                        if v_dirty:
                            L[I_WRITEBACKS] += 1
                        # on_block_to_memory (metadata GC) inlined.
                        if v_addr not in sharer_l1 and v_addr not in sharer_l2:
                            meta_table.pop(v_addr, None)
                tags[way] = addr
                cs.dirty[way] = dirty
                cs.csize[way] = csize
                cs.ecb[way] = ecb
                cs.reuse[way] = reuse
                prv = cs.rec_prev
                nxt = cs.rec_next
                mru = prv[sentinel]
                nxt[mru] = way
                prv[way] = mru
                nxt[way] = sentinel
                prv[sentinel] = way
                cs.way_of[addr] = way
                if way < sram_ways:
                    cs.free_sram -= 1
                    L[I_SRAM_WRITES] += 1
                    L[I_FILLS_SRAM] += 1
                else:
                    cs.free_nvm -= 1
                    nw = way - sram_ways
                    wear_bytes[si][nw] += ecb
                    wear_writes[si][nw] += 1
                    L[I_NVM_WRITES] += 1
                    L[I_NVM_BYTES] += ecb
                    if is_cpsd:
                        slot = slot_of_set[si]
                        if slot >= 0:
                            duel_writes[slot] += ecb
                    L[I_FILLS_NVM] += 1
                if migrating:
                    L[I_MIGRATIONS] += 1
                return True
            if migrating:
                return False
            L[I_BYPASSES] += 1
            if dirty:
                L[I_WRITEBACKS] += 1
            if addr not in sharer_l1 and addr not in sharer_l2:
                meta_table.pop(addr, None)
            return False

        def spill_to_llc(v_addr, v_dirty):
            # HybridLLC.fill_from_l2: resident update / silent drop /
            # fresh insert.
            si = v_addr & set_mask
            cs = sets[si]
            way = cs.way_of.get(v_addr)
            if way is not None:
                if v_dirty:
                    cs.dirty[way] = True
                    # _charge_write inlined.
                    if way < sram_ways:
                        L[I_SRAM_WRITES] += 1
                    else:
                        n = cs.ecb[way]
                        nw = way - sram_ways
                        wear_bytes[si][nw] += n
                        wear_writes[si][nw] += 1
                        L[I_NVM_WRITES] += 1
                        L[I_NVM_BYTES] += n
                        if is_cpsd:
                            slot = slot_of_set[si]
                            if slot >= 0:
                                duel_writes[slot] += n
                    L[I_UPDATES] += 1
                else:
                    L[I_SILENT] += 1
                nxt = cs.rec_next
                if nxt[way] != sentinel:
                    prv = cs.rec_prev
                    before, after = prv[way], nxt[way]
                    nxt[before] = after
                    prv[after] = before
                    mru = prv[sentinel]
                    nxt[mru] = way
                    prv[way] = mru
                    nxt[way] = sentinel
                    prv[sentinel] = way
                return
            meta = meta_table.get(v_addr)
            reuse = meta.reuse if meta is not None else _NONE
            e = sizes_memo.get(v_addr)
            if e is not None:
                csize, ecb = e
            elif compressed:
                csize, ecb = size_fn(v_addr)
            else:
                csize = ecb = block_size
            L[I_FILLS] += 1
            kernel_insert(
                cs, v_addr, v_dirty, csize, ecb, reuse,
                pick_parts(si, v_addr, v_dirty, csize, reuse), False,
            )

        def fill_l2(core, addr, dirty):
            entries = l2_sets[core][addr & l2_mask]
            bit = 1 << core
            sharer_l2[addr] = sharer_l2.get(addr, 0) | bit
            if addr in entries:
                entries[addr] = entries.pop(addr) or dirty
                return
            if len(entries) >= l2_ways:
                v_addr = next(iter(entries))
                v_dirty = entries.pop(v_addr)
                entries[addr] = dirty
                mask = sharer_l2[v_addr] & ~bit
                if mask:
                    sharer_l2[v_addr] = mask
                else:
                    del sharer_l2[v_addr]
                spill_to_llc(v_addr, v_dirty)
                return
            entries[addr] = dirty

        def fill_l1(core, addr, dirty):
            entries = l1_sets[core][addr & l1_mask]
            bit = 1 << core
            sharer_l1[addr] = sharer_l1.get(addr, 0) | bit
            if addr in entries:
                entries[addr] = entries.pop(addr) or dirty
                return
            if len(entries) >= l1_ways:
                v_addr = next(iter(entries))
                v_dirty = entries.pop(v_addr)
                entries[addr] = dirty
                mask = sharer_l1[v_addr] & ~bit
                if mask:
                    sharer_l1[v_addr] = mask
                else:
                    del sharer_l1[v_addr]
                l2e = l2_sets[core][v_addr & l2_mask]
                if v_addr in l2e:
                    if v_dirty:
                        l2e[v_addr] = True
                else:
                    fill_l2(core, v_addr, v_dirty)
                return
            entries[addr] = dirty

        # ---- main loop: same burst-64 heap schedule as the reference
        burst = 64
        columns = sim._columns
        cursors = sim._cursors
        tds = self._tds
        gis = self._gis
        heap = [(core.cycles, core_id) for core_id, core in enumerate(cores)]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        perf = time.perf_counter
        epoch_s = 0.0
        records_done = 0
        t_run = perf()
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                now, core_id = heappop(heap)
                if (not warmed and now >= warmup_cycles) or now >= next_epoch:
                    # Structural boundary: flush the hoisted counters so
                    # the canonical bookkeeping sees exact state, run it,
                    # then re-hoist whatever it replaced.
                    t0 = perf()
                    flush_stats()
                    if not warmed and now >= warmup_cycles:
                        hierarchy.reset_stats()
                        llc_stats = llc.stats
                        L = [0] * len(_LLC_FIELDS)
                        memory_reads = 0
                        epoch_snap = llc_stats.snapshot()
                        for i, core in enumerate(cores):
                            base_instr[i] = core.instructions
                            base_cycles[i] = core.cycles
                        warmed = True
                    while now >= next_epoch:
                        llc_stats = llc.stats
                        delta = llc_stats.delta_since(epoch_snap)
                        winner = policy.current_cpth()
                        hierarchy.end_epoch()
                        if record_epochs:
                            epochs.append(
                                EpochRecord(
                                    index=epoch_index,
                                    end_cycle=next_epoch,
                                    hits=delta["gets_hits"] + delta["getx_hits"],
                                    nvm_bytes_written=delta["nvm_bytes_written"],
                                    winner_cpth=winner,
                                    after_warmup=(
                                        warmed and next_epoch > warmup_cycles
                                    ),
                                )
                            )
                        epoch_snap = llc_stats.snapshot()
                        epoch_index += 1
                        next_epoch += epoch_cycles
                    # end_epoch replaces the dueling counter lists and
                    # (every decay period) TAP's hit table.
                    if is_cpsd:
                        duel_hits = controller.hits
                        duel_writes = controller.writes
                        follower_cpth = cand[controller.winner_index]
                    elif is_tap:
                        tap_counts = policy._hit_counts
                    epoch_s += perf() - t0
                if now >= cycles:
                    continue  # this core is done; drain the rest
                stop_at = min(cycles, next_epoch)
                if not warmed:
                    stop_at = min(stop_at, warmup_cycles)
                core = cores[core_id]
                addrs = columns[core_id][1]
                writes = columns[core_id][2]
                td = tds[core_id]
                gi = gis[core_id]
                n_records = len(addrs)
                cursor = cursors[core_id]
                penalty = core._penalty
                instructions = core.instructions
                new_time = core.cycles
                l1_sets_c = l1_sets[core_id]
                l2_sets_c = l2_sets[core_id]
                # Per-level counters are batched per burst (boundaries
                # only fall between bursts, so nothing reads the
                # canonical objects mid-burst): locals in the loop,
                # one attribute update each at the end.
                n_l1h = n_l2h = n_llch = n_mem = 0
                i = -1
                for i in range(burst):
                    idx = cursor
                    cursor += 1
                    if cursor == n_records:
                        cursor = 0
                    addr = addrs[idx]
                    is_write = writes[idx]
                    # ---- fused access path (access_level transliterated)
                    entries = l1_sets_c[addr & l1_mask]
                    if addr in entries:
                        was_dirty = entries.pop(addr)
                        entries[addr] = was_dirty or is_write
                        n_l1h += 1
                        if is_write and not was_dirty:
                            kernel_upgrade(core_id, addr)
                        level = 0  # L1
                    else:
                        l2_entries = l2_sets_c[addr & l2_mask]
                        if addr in l2_entries:
                            was_dirty = l2_entries.pop(addr)
                            l2_entries[addr] = was_dirty
                            n_l2h += 1
                            if is_write and not was_dirty:
                                kernel_upgrade(core_id, addr)
                            fill_l1(core_id, addr, is_write)
                            level = 1  # L2
                        else:
                            # ---- LLC (GetS/GetX at the directory home)
                            si = addr & set_mask
                            cs = sets[si]
                            wayof = cs.way_of
                            way = wayof.get(addr)
                            if is_write:
                                L[I_GETX] += 1
                            else:
                                L[I_GETS] += 1
                            if way is not None:
                                copy_dirty = cs.dirty[way]
                                meta = meta_table.get(addr)
                                if meta is None:
                                    meta = BlockMeta()
                                    meta_table[addr] = meta
                                meta.llc_hits += 1
                                if is_write or copy_dirty:
                                    meta.reuse = _WRITE
                                elif meta.reuse is not _WRITE:
                                    meta.reuse = _READ
                                cs.reuse[way] = meta.reuse
                                in_sram = way < sram_ways
                                if in_sram:
                                    L[I_HITS_SRAM] += 1
                                    level = 2  # LLC_SRAM
                                else:
                                    L[I_HITS_NVM] += 1
                                    level = 3  # LLC_NVM
                                # on_hit hook (runs before any
                                # invalidate, as in the canonical path).
                                if is_cpsd:
                                    slot = slot_of_set[si]
                                    if slot >= 0:
                                        duel_hits[slot] += 1
                                elif is_tap:
                                    count = tap_counts.get(addr, 0)
                                    if count < 15:
                                        if (
                                            len(tap_counts) >= tap_capacity
                                            and addr not in tap_counts
                                        ):
                                            tap_counts.clear()
                                        tap_counts[addr] = count + 1
                                if is_write:
                                    L[I_GETX_HITS] += 1
                                    # invalidate-on-hit
                                    cs.tags[way] = None
                                    cs.dirty[way] = False
                                    cs.csize[way] = 0
                                    cs.ecb[way] = 0
                                    cs.reuse[way] = _NONE
                                    prv = cs.rec_prev
                                    nxt = cs.rec_next
                                    before, after = prv[way], nxt[way]
                                    nxt[before] = after
                                    prv[after] = before
                                    del wayof[addr]
                                    if in_sram:
                                        cs.free_sram += 1
                                    else:
                                        cs.free_nvm += 1
                                    others = (
                                        sharer_l1.get(addr, 0)
                                        | sharer_l2.get(addr, 0)
                                    ) & ~(1 << core_id)
                                    peer_dirty = (
                                        snoop_peers(core_id, addr)
                                        if others else None
                                    )
                                    l2_dirty = copy_dirty or bool(peer_dirty)
                                else:
                                    L[I_GETS_HITS] += 1
                                    nxt = cs.rec_next
                                    if nxt[way] != sentinel:
                                        prv = cs.rec_prev
                                        before, after = prv[way], nxt[way]
                                        nxt[before] = after
                                        prv[after] = before
                                        mru = prv[sentinel]
                                        nxt[mru] = way
                                        prv[way] = mru
                                        nxt[way] = sentinel
                                        prv[sentinel] = way
                                    l2_dirty = False
                                n_llch += 1
                            else:
                                l2_dirty = False
                                level = 5  # MEMORY
                                if is_write:
                                    others = (
                                        sharer_l1.get(addr, 0)
                                        | sharer_l2.get(addr, 0)
                                    ) & ~(1 << core_id)
                                    peer_dirty = (
                                        snoop_peers(core_id, addr)
                                        if others else None
                                    )
                                    if peer_dirty is not None:
                                        l2_dirty = peer_dirty
                                        level = 4  # PEER
                                elif sharer_l2.get(addr, 0) & ~(1 << core_id):
                                    level = 4  # PEER
                                if level == 5:
                                    n_mem += 1
                            # ---- L2 fill
                            entries = l2_sets_c[addr & l2_mask]
                            bit = 1 << core_id
                            sharer_l2[addr] = sharer_l2.get(addr, 0) | bit
                            if addr in entries:
                                entries[addr] = entries.pop(addr) or l2_dirty
                            elif len(entries) >= l2_ways:
                                v_addr = next(iter(entries))
                                v_dirty = entries.pop(v_addr)
                                entries[addr] = l2_dirty
                                mask = sharer_l2[v_addr] & ~bit
                                if mask:
                                    sharer_l2[v_addr] = mask
                                else:
                                    del sharer_l2[v_addr]
                                spill_to_llc(v_addr, v_dirty)
                            else:
                                entries[addr] = l2_dirty
                            # ---- L1 fill
                            entries = l1_sets_c[addr & l1_mask]
                            sharer_l1[addr] = sharer_l1.get(addr, 0) | bit
                            if addr in entries:
                                entries[addr] = entries.pop(addr) or is_write
                            elif len(entries) >= l1_ways:
                                v_addr = next(iter(entries))
                                v_dirty = entries.pop(v_addr)
                                entries[addr] = is_write
                                mask = sharer_l1[v_addr] & ~bit
                                if mask:
                                    sharer_l1[v_addr] = mask
                                else:
                                    del sharer_l1[v_addr]
                                l2e = l2_sets_c[v_addr & l2_mask]
                                if v_addr in l2e:
                                    if v_dirty:
                                        l2e[v_addr] = True
                                else:
                                    fill_l2(core_id, v_addr, v_dirty)
                            else:
                                entries[addr] = is_write
                            if level == 5 and addr not in meta_table:
                                meta_table[addr] = BlockMeta()
                    instructions += gi[idx]
                    new_time += td[idx]
                    new_time += penalty[level]
                    if new_time >= stop_at:
                        break
                n_total = i + 1
                records_done += n_total
                core_stats = hierarchy._core_stats[core_id]
                core_stats.accesses += n_total
                if n_l1h:
                    core_stats.l1_hits += n_l1h
                if n_l2h:
                    core_stats.l2_hits += n_l2h
                if n_llch:
                    core_stats.llc_hits += n_llch
                if n_mem:
                    core_stats.memory_accesses += n_mem
                    memory_reads += n_mem
                l1c = hier_l1[core_id]
                l1c.hits += n_l1h
                l1c.misses += n_total - n_l1h
                l2c = hier_l2[core_id]
                l2c.hits += n_l2h
                l2c.misses += n_total - n_l1h - n_l2h
                cursors[core_id] = cursor
                core.instructions = instructions
                core.cycles = new_time
                heappush(heap, (new_time, core_id))
        finally:
            if gc_was_enabled:
                gc.enable()

        flush_stats()
        total_s = perf() - t_run
        self.last_phase_timings = {
            "total_s": total_s,
            "epoch_bookkeeping_s": epoch_s,
            "access_path_s": total_s - epoch_s,
            "records": records_done,
            "prepare_s": self._prepare_s,
        }
        self._prepare_s = 0.0  # charged to the first run only
        sim._next_epoch = next_epoch
        sim._epoch_index = epoch_index
        ipcs = []
        for i, core in enumerate(cores):
            d_instr = core.instructions - base_instr[i]
            d_cycles = core.cycles - base_cycles[i]
            ipcs.append(d_instr / d_cycles if d_cycles else 0.0)
            core.export(hierarchy.stats.core(i))

        measured = cycles - warmup_cycles
        return SimulationResult(
            stats=hierarchy.stats,
            epochs=epochs,
            cycles=measured,
            seconds=measured / sim.config.latency.cpu_freq_hz,
            ipcs=ipcs,
        )
