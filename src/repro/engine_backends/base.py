"""The engine-backend interface and registry.

A backend owns the innermost simulation loop — everything between
"cores are at these clocks, traces at these cursors" and "the window
ended, here is the :class:`~repro.engine.SimulationResult`".  All
*state* stays on the canonical objects (``Simulation.hierarchy``,
``Simulation.cores``, ``Simulation._cursors``, the epoch schedule):
backends may cache derived read-only data (precomputed timing columns,
parallel views of per-set arrays) but must leave every observable
object exactly as the ``reference`` loop would, because

* the committed golden digests (``tests/goldens/determinism.json``)
  must match under every backend, and
* :meth:`Simulation.snapshot` / :meth:`restore` deep-copy the canonical
  objects directly, so snapshots taken under one backend must restore
  and continue byte-identically under another.

The contract, precisely:

* ``run(sim, end_cycle, warmup_until, record_epochs)`` advances the
  simulation to the absolute global cycle ``end_cycle`` and returns
  the measured-window result — semantics of the historical
  ``Simulation._run``;
* after ``run`` returns, the hierarchy, cores, cursors and epoch
  schedule hold the same values (``==`` and, for floats, bit-for-bit)
  the reference loop would leave;
* backends may fall back to scalar/canonical code paths at any point
  (structural events: epoch boundaries, set-dueling elections, warmup
  stat resets, unknown policies, shared-address workloads) — fallback
  is a performance decision, never a semantic one;
* ``last_phase_timings`` exposes a wall-clock breakdown of the last
  ``run`` for the bench's per-phase report; it is telemetry only and
  must never feed back into simulation state.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Tuple

from ..config import DEFAULT_ENGINE_BACKEND, resolve_backend_name

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import Simulation, SimulationResult


class EngineBackend(abc.ABC):
    """One strategy for driving the simulation loop."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: Wall-clock breakdown of the most recent :meth:`run` —
        #: ``{"total_s", "epoch_bookkeeping_s", "access_path_s",
        #: "records"}`` plus backend-specific extras.
        self.last_phase_timings: Dict[str, float] = {}

    @abc.abstractmethod
    def run(
        self,
        end_cycle: float,
        warmup_until: float,
        record_epochs: bool,
    ) -> "SimulationResult":
        """Advance to absolute ``end_cycle``; see the module contract."""


BackendFactory = Callable[["Simulation"], EngineBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Class decorator adding a backend to the global registry."""

    def deco(factory: BackendFactory) -> BackendFactory:
        if name in _REGISTRY:
            raise ValueError(f"duplicate backend name {name!r}")
        _REGISTRY[name] = factory
        return factory

    return deco


def make_backend(name: str, sim: "Simulation") -> EngineBackend:
    """Instantiate a registered backend for one simulation."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown engine backend {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(sim)


def backend_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


__all__ = [
    "DEFAULT_ENGINE_BACKEND",
    "EngineBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "resolve_backend_name",
]
