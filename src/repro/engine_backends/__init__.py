"""Pluggable engine backends (see ``docs/architecture.md``).

Importing this package registers the built-in backends:

* ``reference`` — the scalar burst loop (the semantic definition);
* ``vectorized`` — numpy batch-replay kernel, byte-identical by the
  golden-digest contract.
"""

from .base import (
    DEFAULT_ENGINE_BACKEND,
    EngineBackend,
    backend_names,
    make_backend,
    register_backend,
    resolve_backend_name,
)
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

__all__ = [
    "DEFAULT_ENGINE_BACKEND",
    "EngineBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "resolve_backend_name",
]
