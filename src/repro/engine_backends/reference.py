"""The reference backend: the historical ``Simulation._run`` loop.

This is the semantic definition of the engine — the scalar burst-64
heap-interleaved loop that every other backend must reproduce
bit-for-bit (see :mod:`repro.engine_backends.base` for the contract).
The body is the PR-2 hot path moved out of :class:`Simulation`
verbatim; the only additions are telemetry (the per-phase wall-clock
breakdown the bench reports), which never touches simulation state.
"""

from __future__ import annotations

import gc
import heapq
import time
from typing import TYPE_CHECKING, List

from .base import EngineBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import SimulationResult


@register_backend("reference")
class ReferenceBackend(EngineBackend):
    """Scalar burst loop; selected by default."""

    name = "reference"

    def run(
        self,
        end_cycle: float,
        warmup_until: float,
        record_epochs: bool,
    ) -> "SimulationResult":
        sim = self.sim
        from ..engine import EpochRecord, SimulationResult

        cycles = end_cycle
        warmup_cycles = warmup_until
        hierarchy = sim.hierarchy
        cores = sim.cores
        epoch_cycles = sim.config.dueling.epoch_cycles
        epochs: List[EpochRecord] = []
        epoch_snap = hierarchy.stats.llc.snapshot()
        start = min(core.cycles for core in cores)
        next_epoch = sim._next_epoch
        epoch_index = sim._epoch_index
        warmed = warmup_cycles <= start
        if warmed:
            hierarchy.reset_stats()
            epoch_snap = hierarchy.stats.llc.snapshot()
        base_instr = [core.instructions for core in cores]
        base_cycles = [core.cycles for core in cores]

        # Cores are interleaved through a min-heap, but advanced in short
        # bursts: strict per-access global ordering costs a heap
        # operation per access for no modelling benefit (the mixes share
        # no data), while bursts keep cores within ~a thousand cycles of
        # each other — far finer than the 2M-cycle epoch granularity.
        #
        # The burst body is the simulator's innermost loop.  It indexes
        # the trace columns directly and inlines AnalyticalCore.account
        # (same two float additions, so timing is bit-identical) to
        # avoid per-record generator resumption and method dispatch.
        burst = 64
        access_level = hierarchy.access_level
        columns = sim._columns
        cursors = sim._cursors
        heap = [(core.cycles, core_id) for core_id, core in enumerate(cores)]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        perf = time.perf_counter
        epoch_s = 0.0
        records_done = 0
        t_run = perf()
        # The loop allocates short-lived acyclic objects (heap tuples,
        # fill contexts) at a rate that keeps the cyclic GC's gen-0
        # scanning busy for nothing — refcounting already frees them.
        # Pause collection for the duration of the loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                now, core_id = heappop(heap)
                if (not warmed and now >= warmup_cycles) or now >= next_epoch:
                    # Structural boundary bookkeeping — rare, so timing
                    # it exactly costs one comparison per burst.
                    t0 = perf()
                    if not warmed and now >= warmup_cycles:
                        hierarchy.reset_stats()
                        epoch_snap = hierarchy.stats.llc.snapshot()
                        for i, core in enumerate(cores):
                            base_instr[i] = core.instructions
                            base_cycles[i] = core.cycles
                        warmed = True
                    while now >= next_epoch:
                        llc_stats = hierarchy.stats.llc
                        delta = llc_stats.delta_since(epoch_snap)
                        winner = sim.policy.current_cpth()  # CP_th this epoch
                        hierarchy.end_epoch()
                        if record_epochs:
                            epochs.append(
                                EpochRecord(
                                    index=epoch_index,
                                    end_cycle=next_epoch,
                                    hits=delta["gets_hits"] + delta["getx_hits"],
                                    nvm_bytes_written=delta["nvm_bytes_written"],
                                    winner_cpth=winner,
                                    after_warmup=warmed and next_epoch > warmup_cycles,
                                )
                            )
                        epoch_snap = llc_stats.snapshot()
                        epoch_index += 1
                        next_epoch += epoch_cycles
                    epoch_s += perf() - t0
                if now >= cycles:
                    continue  # this core is done; drain the rest
                # Burst: stop early at the next epoch/warmup/end boundary
                # so boundary processing stays accurate.
                stop_at = min(cycles, next_epoch)
                if not warmed:
                    stop_at = min(stop_at, warmup_cycles)
                core = cores[core_id]
                gaps, addrs, writes = columns[core_id]
                n_records = len(addrs)
                cursor = cursors[core_id]
                base_cpi = core.base_cpi
                penalty = core._penalty
                instructions = core.instructions
                new_time = core.cycles
                i = -1
                for i in range(burst):
                    gap = gaps[cursor]
                    addr = addrs[cursor]
                    is_write = writes[cursor]
                    cursor += 1
                    if cursor == n_records:
                        cursor = 0
                    level = access_level(core_id, addr, is_write)
                    instructions += gap + 1
                    new_time += gap * base_cpi + base_cpi
                    new_time += penalty[level]
                    if new_time >= stop_at:
                        break
                records_done += i + 1
                cursors[core_id] = cursor
                core.instructions = instructions
                core.cycles = new_time
                heappush(heap, (new_time, core_id))
        finally:
            if gc_was_enabled:
                gc.enable()

        total_s = perf() - t_run
        self.last_phase_timings = {
            "total_s": total_s,
            "epoch_bookkeeping_s": epoch_s,
            "access_path_s": total_s - epoch_s,
            "records": records_done,
        }
        sim._next_epoch = next_epoch
        sim._epoch_index = epoch_index
        ipcs = []
        for i, core in enumerate(cores):
            d_instr = core.instructions - base_instr[i]
            d_cycles = core.cycles - base_cycles[i]
            ipcs.append(d_instr / d_cycles if d_cycles else 0.0)
            core.export(hierarchy.stats.core(i))

        measured = cycles - warmup_cycles
        return SimulationResult(
            stats=hierarchy.stats,
            epochs=epochs,
            cycles=measured,
            seconds=measured / sim.config.latency.cpu_freq_hz,
            ipcs=ipcs,
        )
