"""Closed-form estimator for hybrid-LLC insertion policies.

Given a :class:`~repro.analytical.stats.WorkloadStatistics` and a
:class:`PolicyDescriptor`, :class:`AnalyticalModel` predicts the four
quantities the paper's evaluation revolves around — IPC, LLC hit
ratio, NVM write rate and projected lifetime — without simulating.

The model follows the engine's actual mechanics:

* the LLC is **spill-filled**: blocks enter on L2 evictions, hits keep
  residency, so an access hits the LLC iff its stack distance ``rd``
  satisfies ``C_priv <= rd < C_priv + Cap_part / q_part`` where
  ``q_part`` is the footprint fraction of blocks the policy routes to
  that part (LRU stack theory on the class-filtered stream);
* shared capacity is apportioned per core in proportion to its
  LLC-visible traffic per cycle (a short fixpoint, since access rates
  depend on the hit ratios being computed);
* NVM bytes = fresh inserts of missed blocks (ECB bytes for
  compressed policies, 64 for frame-granularity ones) + in-place
  dirty updates of NVM-resident blocks;
* IPC mirrors :class:`repro.timing.core_model.AnalyticalCore`'s
  charging rule exactly, with the predicted per-level hit fractions;
* CP_SD / CP_SD_Th are modelled as their election rule applied to the
  per-candidate estimates — the same ``MaxHitsRule`` /
  ``HitWriteTradeoffRule`` objects the simulator's controller uses.

Estimates are wrapped in schema-valid ``repro-run/1`` RunRecords
(kind ``analytical``) so the explorer's screening tier flows through
the same metrics spine as real simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..core.set_dueling import HitWriteTradeoffRule, MaxHitsRule
from ..metrics.record import RunRecord
from ..metrics.registry import register_metric
from .stats import CLASS_NONE, CLASS_READ, CLASS_WRITE, WorkloadStatistics, workload_statistics

register_metric("analytical", "mean_ipc", "instructions/cycle",
                "Predicted arithmetic-mean IPC across cores",
                aggregation="last")
register_metric("analytical", "llc_hit_rate", "ratio",
                "Predicted LLC hit ratio (hits / LLC accesses)",
                aggregation="last")
register_metric("analytical", "nvm_write_rate", "bytes/s",
                "Predicted NVM write bandwidth", aggregation="last")
register_metric("analytical", "lifetime_seconds", "s",
                "Projected time until the NVM part reaches 50% capacity",
                aggregation="last")
register_metric("analytical", "elected_cpth", "bytes",
                "CP_th the modelled election rule settles on "
                "(null for fixed policies)", aggregation="last")

#: Fraction of read-reused traffic TAP's hit-count filter qualifies as
#: thrash-safe per unit of hit threshold (calibrated against cp/tap
#: simulation records at smoke scale).
TAP_QUALIFY_BASE = 0.5

#: Policies that move read-reused SRAM victims into NVM on eviction.
_MIGRATING = ("ca_rwr", "cp_sd", "cp_sd_th", "lhybrid", "tap")

#: NVM bytes charged per clean SRAM hit on a not-yet-qualified block —
#: the eventual migration of the block it marks read-reused (plus, for
#: LHybrid/TAP, the NVM re-inserts its qualification unlocks).
#: Calibrated against the committed validation matrix.
MIGRATION_RATE = 1.0

#: Fixpoint iterations for the share/rate loop; the loop contracts
#: fast (shares move < 1% after the third pass).
_FIXPOINT_ITERATIONS = 4


def _apportion(total: float, weights: np.ndarray,
               demand: np.ndarray) -> np.ndarray:
    """Water-fill ``total`` capacity over cores ∝ ``weights``, capping
    each core at its ``demand`` (a core cannot occupy more frames than
    its footprint needs — LRU hands the slack to whoever reuses it)."""
    n = len(weights)
    share = np.zeros(n)
    active = (weights > 0) & (demand > 0)
    remaining = float(total)
    for _ in range(n + 1):
        if remaining <= 1e-12 or not active.any():
            break
        wsum = weights[active].sum()
        alloc = np.where(active, remaining * weights / wsum, 0.0)
        take = np.minimum(alloc, demand - share)
        share += take
        remaining -= take.sum()
        active &= share < demand - 1e-9
    return share


def _policy_class(name: str):
    """The registered policy class (importing repro.core registers all)."""
    from ..core import policy as _policy_mod  # noqa: F401
    from .. import core as _core  # noqa: F401 — triggers registration

    return _policy_mod._REGISTRY[name]


@dataclass(frozen=True)
class PolicyDescriptor:
    """A policy's insertion rules, as data the model can interpret."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "PolicyDescriptor":
        return cls(name=name, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"

    def make(self, config: SystemConfig):
        """Instantiate the real policy (the explorer's confirm tier)."""
        from ..core import make_policy

        kwargs = self.kwargs
        if self.name in ("cp_sd", "cp_sd_th"):
            kwargs.setdefault("dueling", config.dueling)
        return make_policy(self.name, **kwargs)


@dataclass
class AnalyticalEstimate:
    """The model's prediction for one (config, policy, workload)."""

    mean_ipc: float
    llc_hit_rate: float
    nvm_write_rate: float     # bytes/s
    lifetime_seconds: float
    elected_cpth: Optional[int] = None
    ipcs: List[float] = field(default_factory=list)
    details: Dict[str, float] = field(default_factory=dict)

    def to_run_record(self, meta: Optional[Mapping[str, Any]] = None) -> RunRecord:
        record = RunRecord(kind="analytical", meta=dict(meta or {}))
        record.metrics["analytical.mean_ipc"] = float(self.mean_ipc)
        record.metrics["analytical.llc_hit_rate"] = float(self.llc_hit_rate)
        record.metrics["analytical.nvm_write_rate"] = float(self.nvm_write_rate)
        record.metrics["analytical.lifetime_seconds"] = float(self.lifetime_seconds)
        record.metrics["analytical.elected_cpth"] = (
            None if self.elected_cpth is None else int(self.elected_cpth)
        )
        record.values["ipcs"] = [float(v) for v in self.ipcs]
        record.values["details"] = {k: float(v) for k, v in self.details.items()}
        return record


@dataclass
class _PartOutcome:
    """Per-core per-iteration bookkeeping of one evaluation pass."""

    hits_sram: np.ndarray     # (n_cores,) fraction of all accesses
    hits_nvm: np.ndarray
    visible: np.ndarray       # LLC-visible fraction of all accesses
    l2_hits: np.ndarray
    nvm_bytes_per_access: np.ndarray
    cpa: np.ndarray           # cycles per access
    gap1: np.ndarray          # instructions per access


class AnalyticalModel:
    """Closed-form evaluator bound to one :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        geom = config.llc
        block = geom.block_size
        self.l1_blocks = config.l1.size_bytes // block
        self.l2_blocks = config.l2.size_bytes // block
        self.priv_blocks = self.l1_blocks + self.l2_blocks
        self.sram_blocks = geom.n_sets * geom.sram_ways
        self.nvm_blocks = geom.n_sets * geom.nvm_ways
        self.nvm_bytes = geom.nvm_bytes

    # ------------------------------------------------------------------
    def statistics(self, workload,
                   policy: Optional[PolicyDescriptor] = None) -> WorkloadStatistics:
        """Workload statistics with the policy's classification reach.

        LHybrid/TAP only classify reuse a block demonstrates from the
        SRAM part (qualification happens before any NVM residency);
        the CA family observes reuse anywhere in the cache.
        """
        n_cores = max(1, self.config.cores.n_cores)
        reach = (self.sram_blocks + self.nvm_blocks) // n_cores
        if policy is not None and policy.name in ("lhybrid", "tap"):
            reach = self.sram_blocks // n_cores
        return workload_statistics(workload, self.priv_blocks, max(1, reach))

    # ------------------------------------------------------------------
    def _routing(self, policy: PolicyDescriptor, core_stats, cpth: Optional[int]):
        """NVM routing weight per (class, size) cell, or None for a
        single global-LRU part spanning both technologies."""
        name = policy.name
        params = policy.kwargs
        sizes = core_stats.sizes
        n_classes, n_sizes = core_stats.cold.shape
        if name in ("bh", "bh_cp", "sram"):
            return None
        w = np.zeros((n_classes, n_sizes))
        if name == "ca":
            w[:, sizes <= (cpth if cpth is not None else params.get("cpth", 58))] = 1.0
            return w
        if name in ("ca_rwr", "cp_sd", "cp_sd_th"):
            th = cpth if cpth is not None else params.get("cpth", 58)
            w[CLASS_READ, :] = 1.0
            w[CLASS_NONE, sizes <= th] = 1.0
            return w
        if name == "lhybrid":
            w[CLASS_READ, :] = 1.0
            return w
        if name == "tap":
            hit_threshold = int(params.get("hit_threshold", 1))
            w[CLASS_READ, :] = TAP_QUALIFY_BASE ** hit_threshold
            return w
        raise ValueError(f"no analytical routing for policy {name!r}")

    def _compressed(self, policy: PolicyDescriptor) -> bool:
        return bool(getattr(_policy_class(policy.name), "compressed", True))

    def _granularity(self, policy: PolicyDescriptor) -> str:
        return str(getattr(_policy_class(policy.name), "granularity", "byte"))

    # ------------------------------------------------------------------
    def _pass(self, stats: WorkloadStatistics, policy: PolicyDescriptor,
              cpth: Optional[int], rates: np.ndarray) -> _PartOutcome:
        """One evaluation pass at fixed per-core access rates."""
        cfg = self.config
        lat = cfg.latency
        mlp = cfg.cores.mlp
        n = stats.n_cores
        compressed = self._compressed(policy)

        hits_sram = np.zeros(n)
        hits_nvm = np.zeros(n)
        visible = np.zeros(n)
        l2_hits = np.zeros(n)
        nvm_bpa = np.zeros(n)
        gap1 = np.zeros(n)
        cpa = np.zeros(n)

        # A frame holds exactly one block regardless of csize (the
        # engine compacts *wear bytes*, not capacity), so part
        # capacity is its frame count.
        block = cfg.llc.block_size

        per_core = []
        for c, cs in enumerate(stats.cores):
            total = cs.counts.sum() + cs.cold.sum()
            below_priv = cs.below(cs.counts, self.priv_blocks)
            vis_cells = cs.counts.sum(axis=-1) - below_priv + cs.cold
            w = self._routing(policy, cs, cpth)
            # write probability of a spill, per cell
            warm = cs.counts.sum(axis=-1)
            wwarm = cs.write_counts.sum(axis=-1)
            dirty = np.divide(wwarm, warm, out=np.zeros_like(warm), where=warm > 0)
            # A write hit (GetX / clean-private upgrade) invalidates the
            # LLC copy, so the next reuse of a write-reused block misses
            # and re-inserts: discount its hits by its write probability.
            inval = np.ones_like(dirty)
            inval[CLASS_WRITE, :] = 1.0 - dirty[CLASS_WRITE, :]
            per_core.append((cs, total, below_priv, vis_cells, w, dirty, inval))
            visible[c] = vis_cells.sum() / total

        def part_capacity(part_frames: float, pws) -> np.ndarray:
            """Per-core capacity (in frames) of one technology part:
            frames are water-filled ∝ routed LLC-visible traffic,
            capped at each core's routed-footprint demand."""
            demand = np.zeros(n)
            weights = np.zeros(n)
            for c, (cs, total, _bp, vis_cells, _w, _d, _i) in enumerate(per_core):
                pw = pws[c]
                demand[c] = (pw * cs.blocks).sum()
                weights[c] = (vis_cells * pw).sum() / total * rates[c]
            return _apportion(part_frames, weights, demand)

        if per_core[0][4] is None:
            caps_global = part_capacity(
                self.sram_blocks + self.nvm_blocks,
                [np.ones_like(pc[3]) for pc in per_core])
        else:
            caps_by_part = {
                "sram": part_capacity(self.sram_blocks,
                                      [1.0 - pc[4] for pc in per_core]),
                "nvm": part_capacity(self.nvm_blocks,
                                     [pc[4] for pc in per_core]),
            }

        for c, (cs, total, below_priv, vis_cells, w, dirty, inval) in enumerate(per_core):
            ecb = cs.ecbs if compressed else np.full_like(cs.ecbs, block)
            h1 = cs.below(cs.counts, self.l1_blocks).sum() / total
            h12 = below_priv.sum() / total
            l2_hits[c] = h12 - h1
            blocks_total = cs.blocks.sum()

            if w is None:
                # One global LRU over all ways; SRAM/NVM split follows
                # the way ratio (insertion at the global LRU way lands
                # uniformly across technologies).
                cap = caps_global[c]
                hi = cs.below(cs.counts, self.priv_blocks + cap)
                hits_cells = (hi - below_priv) * inval
                hits_total = hits_cells.sum() / total
                nvm_frac = (
                    self.nvm_blocks / (self.sram_blocks + self.nvm_blocks)
                    if (self.sram_blocks + self.nvm_blocks) else 0.0
                )
                hits_sram[c] = hits_total * (1.0 - nvm_frac)
                hits_nvm[c] = hits_total * nvm_frac
                miss_cells = vis_cells - hits_cells
                inserts = (miss_cells * ecb[None, :]).sum() * nvm_frac
                updates = (hits_cells * dirty * ecb[None, :]).sum() * nvm_frac
                nvm_bpa[c] = (inserts + updates) / total
            else:
                mig_bytes = 0.0
                for part in ("sram", "nvm"):
                    pw = w if part == "nvm" else (1.0 - w)
                    cap = caps_by_part[part][c]
                    q = (pw * cs.blocks).sum() / blocks_total if blocks_total else 0.0
                    if cap <= 0 or q <= 0:
                        hits_cells = np.zeros_like(vis_cells)
                    else:
                        hi = cs.below(cs.counts, self.priv_blocks + cap / q)
                        hits_cells = (hi - below_priv) * pw * inval
                    ht = hits_cells.sum() / total
                    miss_cells = vis_cells * pw - hits_cells
                    if part == "nvm":
                        hits_nvm[c] = ht
                        inserts = (miss_cells * ecb[None, :]).sum()
                        updates = (hits_cells * dirty * ecb[None, :]).sum()
                        nvm_bpa[c] = (inserts + updates + mig_bytes) / total
                    else:
                        hits_sram[c] = ht
                        if policy.name in _MIGRATING:
                            # A clean hit on an unqualified SRAM block
                            # marks it read-reused; its eventual
                            # eviction migrates it into NVM.
                            clean = hits_cells * (1.0 - dirty)
                            mig_bytes = MIGRATION_RATE * (
                                clean[(CLASS_NONE, CLASS_READ), :]
                                * ecb[None, :]
                            ).sum()

            gap1[c] = cs.gap_mean + 1.0
            miss = visible[c] - hits_sram[c] - hits_nvm[c]
            cpa[c] = (
                gap1[c] * cfg.cores.base_cpi
                + l2_hits[c] * lat.l2_hit / mlp
                + hits_sram[c] * lat.llc_sram_load / mlp
                + hits_nvm[c] * lat.llc_nvm_total_load / mlp
                + miss * lat.memory / mlp
            )

        return _PartOutcome(hits_sram, hits_nvm, visible, l2_hits,
                            nvm_bpa, cpa, gap1)

    def _evaluate(self, stats: WorkloadStatistics, policy: PolicyDescriptor,
                  cpth: Optional[int]) -> Tuple[_PartOutcome, np.ndarray]:
        cfg = self.config
        n = stats.n_cores
        rates = np.full(n, 1.0 / ((np.mean(
            [cs.gap_mean for cs in stats.cores]) + 1.0) * cfg.cores.base_cpi))
        outcome = None
        for _ in range(_FIXPOINT_ITERATIONS):
            outcome = self._pass(stats, policy, cpth, rates)
            rates = 1.0 / outcome.cpa
        return outcome, rates

    # ------------------------------------------------------------------
    def _lifetime_seconds(self, policy: PolicyDescriptor,
                          write_rate: float) -> float:
        """Time until the NVM part degrades to 50% capacity.

        Uniform wear leveling spreads the byte-write rate over the
        whole part; under byte disabling half the bytes are dead when
        per-byte wear reaches the *median* endurance (= the mean of
        the normal draw), while frame disabling loses a frame at its
        weakest byte — the median min-of-64 draw, ``mean - 2.25 sigma``.
        """
        if write_rate <= 0 or self.nvm_bytes <= 0:
            return float("inf")
        end = self.config.endurance
        if self._granularity(policy) == "frame":
            eff = max(end.min_fraction, 1.0 - 2.25 * end.cv) * end.mean
        else:
            eff = end.mean
        return eff * self.nvm_bytes / write_rate

    # ------------------------------------------------------------------
    def estimate(self, workload, policy: PolicyDescriptor) -> AnalyticalEstimate:
        """Predict (IPC, hit ratio, NVM write rate, lifetime)."""
        stats = self.statistics(workload, policy)
        cfg = self.config

        elected: Optional[int] = None
        if policy.name in ("cp_sd", "cp_sd_th"):
            candidates = sorted(cfg.dueling.cpth_candidates)
            raw: List[Tuple[float, float]] = []
            outcomes = []
            for cand in candidates:
                outcome, rates = self._evaluate(stats, policy, cand)
                hits = ((outcome.hits_sram + outcome.hits_nvm) * rates).sum()
                writes = (outcome.nvm_bytes_per_access * rates).sum()
                raw.append((hits, writes))
                outcomes.append((outcome, rates))
            # Leader sets sample 1/leader_groups of the traffic, so the
            # controller cannot resolve sub-percent hit differences;
            # quantising to that resolution reproduces its tie-breaks
            # (equal hits -> the smaller, write-cheaper threshold).
            h_scale = max(h for h, _w in raw) or 1.0
            w_scale = max(w for _h, w in raw) or 1.0
            hits_by = [int(round(400 * h / h_scale)) for h, _w in raw]
            writes_by = [int(round(400 * w / w_scale)) for _h, w in raw]
            if policy.name == "cp_sd":
                rule = MaxHitsRule()
            else:
                params = policy.kwargs
                rule = HitWriteTradeoffRule(
                    float(params.get("th", cfg.dueling.hit_loss_pct)),
                    float(params.get("tw", cfg.dueling.write_gain_pct)),
                )
            k = rule.elect(candidates, hits_by, writes_by)
            elected = candidates[k]
            outcome, rates = outcomes[k]
        else:
            cpth = policy.kwargs.get("cpth")
            outcome, rates = self._evaluate(stats, policy, cpth)
            if policy.name == "ca":
                elected = int(policy.kwargs.get("cpth", 58))

        ipcs = list(outcome.gap1 / outcome.cpa)
        visible_rate = (outcome.visible * rates).sum()
        hits_rate = ((outcome.hits_sram + outcome.hits_nvm) * rates).sum()
        hit_rate = hits_rate / visible_rate if visible_rate > 0 else 0.0
        bytes_per_cycle = (outcome.nvm_bytes_per_access * rates).sum()
        write_rate = bytes_per_cycle * cfg.latency.cpu_freq_hz
        return AnalyticalEstimate(
            mean_ipc=float(np.mean(ipcs)),
            llc_hit_rate=float(hit_rate),
            nvm_write_rate=float(write_rate),
            lifetime_seconds=float(self._lifetime_seconds(policy, write_rate)),
            elected_cpth=elected,
            ipcs=[float(v) for v in ipcs],
            details={
                "hits_sram": float(outcome.hits_sram.sum()),
                "hits_nvm": float(outcome.hits_nvm.sum()),
                "llc_visible": float(outcome.visible.sum()),
                "bytes_per_cycle": float(bytes_per_cycle),
            },
        )


def estimate_record(
    config: SystemConfig,
    workload,
    policy: PolicyDescriptor,
    meta: Optional[Mapping[str, Any]] = None,
) -> RunRecord:
    """One analytical evaluation as a schema-valid RunRecord."""
    from ..manifest import describe_workload

    model = AnalyticalModel(config)
    estimate = model.estimate(workload, policy)
    base = {
        "policy": {"name": policy.name, **policy.kwargs},
        "workload": describe_workload(workload),
        "estimator": "analytical/1",
    }
    base.update(meta or {})
    return estimate.to_run_record(meta=base)
