"""Workload statistics for the analytical estimator.

Everything the closed-form model needs is extracted here, once per
workload, from the already-materialised traces and the compressed-size
sidecar the workload cache persists:

* a **reuse-distance histogram** per core (Mattson stack distances,
  computed with a Fenwick tree in O(N log N)), bucketed geometrically
  and jointly classified by

* **reuse class** — the address-level approximation of the LLC's
  READ/WRITE/NONE reuse metadata (an address whose beyond-L2 reuse
  repeats is READ-reused, WRITE-reused if it is ever written), and

* **compressed size** — the (csize, ECB) the data model assigns the
  address, traffic-weighted.

Traces replay cyclically, so distances are measured over two
concatenated passes: pass-1 first touches are genuine cold misses
while pass-2 records the wrapped steady-state distances a multi-epoch
simulation spends most of its time in.

The result is cached on the workload instance (keyed by the reuse
threshold), so a sweep evaluating thousands of policies pays the
extraction exactly once per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

#: Reuse classes (mirrors repro.cache.block.ReuseClass semantics).
CLASS_NONE, CLASS_READ, CLASS_WRITE = 0, 1, 2
N_CLASSES = 3

#: Geometric reuse-distance bucket ratio: 4 buckets per octave keeps
#: capacity interpolation within a few percent of exact distances.
_BUCKETS_PER_OCTAVE = 4

_STATS_CACHE_ATTR = "_analytical_stats_cache"


def _bucket_edges(max_rd: int) -> np.ndarray:
    """Sorted unique lower bucket bounds covering 1 .. max_rd."""
    edges = {0}
    k = 0
    while True:
        e = int(round(2.0 ** (k / _BUCKETS_PER_OCTAVE)))
        edges.add(e)
        if e > max_rd:
            break
        k += 1
    return np.array(sorted(edges), dtype=np.float64)


def _reuse_distances(addrs: Sequence[int], passes: int = 2) -> np.ndarray:
    """Stack (reuse) distance of every access over ``passes`` cyclic
    replays of the trace; first touches get -1 (cold).

    Classic Fenwick-tree Mattson algorithm: positions of *last*
    occurrences are marked in a BIT, the distance of an access is the
    number of marked positions since its previous occurrence.
    """
    n = len(addrs)
    total = n * passes
    tree = [0] * (total + 1)
    last_pos: Dict[int, int] = {}
    out = np.empty(total, dtype=np.float64)

    for i in range(total):
        addr = addrs[i % n]
        prev = last_pos.get(addr)
        if prev is None:
            out[i] = -1.0
        else:
            # distinct addresses touched strictly between prev and i
            acc = 0
            j = i
            while j > 0:
                acc += tree[j]
                j -= j & -j
            j = prev + 1
            while j > 0:
                acc -= tree[j]
                j -= j & -j
            out[i] = float(acc)
            # unmark the previous occurrence
            j = prev + 1
            while j <= total:
                tree[j] -= 1
                j += j & -j
        # mark this occurrence as the newest
        j = i + 1
        while j <= total:
            tree[j] += 1
            j += j & -j
        last_pos[addr] = i
    return out


@dataclass
class CoreStatistics:
    """One core's joint (reuse-distance x class x csize) histogram."""

    core: int
    n_accesses: int          # histogram mass (trace records x passes)
    gap_mean: float
    write_fraction: float
    footprint_blocks: int
    edges: np.ndarray        # (B,) bucket lower bounds, ascending
    counts: np.ndarray       # (N_CLASSES, S, B) access counts
    write_counts: np.ndarray  # same shape, write accesses only
    cold: np.ndarray         # (N_CLASSES, S) first-touch accesses
    blocks: np.ndarray       # (N_CLASSES, S) distinct addresses per cell
    sizes: np.ndarray        # (S,) distinct compressed sizes
    ecbs: np.ndarray         # (S,) ECB bytes charged per size

    # ------------------------------------------------------------------
    def below(self, counts: np.ndarray, capacity: float) -> np.ndarray:
        """Per-cell traffic with reuse distance < ``capacity`` blocks.

        ``counts`` is any (..., B) view of the histogram; the
        straddled bucket is linearly interpolated.
        """
        edges = self.edges
        if capacity <= edges[0]:
            return np.zeros(counts.shape[:-1])
        idx = int(np.searchsorted(edges, capacity, side="right")) - 1
        full = counts[..., :idx].sum(axis=-1)
        if idx + 1 < len(edges):
            lo, hi = edges[idx], edges[idx + 1]
            frac = (capacity - lo) / (hi - lo)
            return full + counts[..., idx] * frac
        return full + counts[..., idx]

    def hit_fraction(self, capacity_blocks: float) -> float:
        """P(reuse distance < capacity) over all traffic (cold = miss)."""
        total = self.counts.sum() + self.cold.sum()
        if total <= 0:
            return 0.0
        return float(self.below(self.counts, capacity_blocks).sum() / total)


@dataclass
class WorkloadStatistics:
    """Per-core statistics of one workload (see module docstring)."""

    cores: List[CoreStatistics]
    reuse_threshold_blocks: int
    reach_blocks: int
    passes: int
    #: The workload family these statistics were extracted from
    #: (provenance: estimator validation reports group by family).
    family: str = "synthetic"

    @property
    def n_cores(self) -> int:
        return len(self.cores)


def _extract_core(
    trace, data_model, core: int, reuse_threshold: int, reach: int,
    passes: int, rds: np.ndarray,
) -> CoreStatistics:
    gaps, addrs, writes = trace.replay_columns()
    n = len(addrs)

    addr_arr = np.asarray(addrs, dtype=np.int64)
    write_arr = np.asarray(writes, dtype=bool)
    addr_rep = np.tile(addr_arr, passes)
    write_rep = np.tile(write_arr, passes)

    # -- address-level reuse classification ---------------------------
    # The LLC can only classify reuse it *observes*: a block acquires
    # READ/WRITE metadata on an LLC hit, which needs its reuse
    # distance to land beyond the private caches but within the LLC's
    # reach.  Reuse that stays private (rd < threshold) or overshoots
    # the reach misses and teaches the LLC nothing — those addresses
    # keep inserting as NONE.  WRITE if the block is ever written
    # (dirty spills / GetX hits mark it), READ otherwise.
    uniq, inv = np.unique(addr_rep, return_inverse=True)
    observable = (rds >= reuse_threshold) & (rds < reuse_threshold + reach)
    vis_count = np.bincount(inv, weights=observable.astype(np.float64),
                            minlength=len(uniq))
    written = np.bincount(inv, weights=write_rep.astype(np.float64),
                          minlength=len(uniq)) > 0
    addr_class = np.full(len(uniq), CLASS_NONE, dtype=np.int64)
    reused = vis_count >= 1
    addr_class[reused & written] = CLASS_WRITE
    addr_class[reused & ~written] = CLASS_READ

    # -- compressed sizes ---------------------------------------------
    size_fn = data_model.size_fn
    pairs = [size_fn(int(a)) for a in uniq]
    csize_of = np.array([p[0] for p in pairs], dtype=np.int64)
    ecb_of = np.array([p[1] for p in pairs], dtype=np.int64)
    sizes, size_inv = np.unique(csize_of, return_inverse=True)
    ecbs = np.zeros(len(sizes), dtype=np.int64)
    ecbs[size_inv] = ecb_of

    # -- joint histogram ----------------------------------------------
    edges = _bucket_edges(max(1, n))
    n_buckets = len(edges)
    cls = addr_class[inv]
    sz = size_inv[inv]
    cold = rds < 0
    bucket = np.searchsorted(edges, rds, side="right") - 1
    key = (cls * len(sizes) + sz) * n_buckets + np.clip(bucket, 0, None)

    warm = ~cold
    counts = np.bincount(
        key[warm], minlength=N_CLASSES * len(sizes) * n_buckets
    ).reshape(N_CLASSES, len(sizes), n_buckets).astype(np.float64)
    write_counts = np.bincount(
        key[warm & write_rep], minlength=N_CLASSES * len(sizes) * n_buckets
    ).reshape(N_CLASSES, len(sizes), n_buckets).astype(np.float64)
    cold_key = cls[cold] * len(sizes) + sz[cold]
    cold_counts = np.bincount(
        cold_key, minlength=N_CLASSES * len(sizes)
    ).reshape(N_CLASSES, len(sizes)).astype(np.float64)
    block_key = addr_class * len(sizes) + size_inv
    block_counts = np.bincount(
        block_key, minlength=N_CLASSES * len(sizes)
    ).reshape(N_CLASSES, len(sizes)).astype(np.float64)

    return CoreStatistics(
        core=core,
        n_accesses=n * passes,
        gap_mean=float(np.mean(np.asarray(gaps, dtype=np.float64))),
        write_fraction=float(write_arr.mean()),
        footprint_blocks=len(uniq),
        edges=edges,
        counts=counts,
        write_counts=write_counts,
        cold=cold_counts,
        blocks=block_counts,
        sizes=sizes,
        ecbs=ecbs,
    )


def workload_statistics(
    workload, reuse_threshold_blocks: int, reach_blocks: int,
    passes: int = 2,
) -> WorkloadStatistics:
    """Extract (or recall) the analytical statistics of a workload.

    ``reuse_threshold_blocks`` is the private-cache capacity in blocks
    (L1 + L2): reuse below it never reaches the LLC.  ``reach_blocks``
    is how far beyond that the LLC can observe (and hence classify)
    reuse — the capacity a policy lets *unqualified* blocks occupy,
    which is why LHybrid/TAP classify through an SRAM-sized window
    while the CA family sees the whole cache.  Cached per workload
    instance and parameter tuple — sweeps pay the O(N log N)
    extraction once per variant.
    """
    cache: Dict[Tuple[int, ...], Any]
    cache = getattr(workload, _STATS_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(workload, _STATS_CACHE_ATTR, cache)
    key = (int(reuse_threshold_blocks), int(reach_blocks), int(passes))
    stats = cache.get(key)
    if stats is None:
        # The O(N log N) distance computation dominates extraction and
        # is independent of the classification window — memo it per
        # (core, passes) so reach variants share one Fenwick pass.
        core_rds: List[np.ndarray] = []
        for core, trace in enumerate(workload.traces):
            rd_key = ("rd", core, int(passes))
            rds = cache.get(rd_key)
            if rds is None:
                _g, addrs, _w = trace.replay_columns()
                rds = _reuse_distances(addrs, passes=passes)
                cache[rd_key] = rds
            core_rds.append(rds)
        stats = WorkloadStatistics(
            cores=[
                _extract_core(trace, workload.data_model, core,
                              reuse_threshold_blocks, reach_blocks,
                              passes, core_rds[core])
                for core, trace in enumerate(workload.traces)
            ],
            reuse_threshold_blocks=int(reuse_threshold_blocks),
            reach_blocks=int(reach_blocks),
            passes=int(passes),
            family=getattr(workload, "family", "synthetic"),
        )
        cache[key] = stats
    return stats
