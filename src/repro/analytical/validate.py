"""Accuracy contract: analytical estimates vs committed RunRecords.

The estimator is only trustworthy as a screening tier if its error
against real simulation is known and bounded.  This module

* **generates** the reference: one `run_one` RunRecord per
  (policy, mix) case of the validation matrix, committed as a
  checksummed ``repro-analytical-reference/1`` blob under
  ``benchmarks/results/validation/``;
* **validates**: re-runs the estimator against every committed case
  and reports per-metric mean relative errors;
* **gates**: :data:`TOLERANCES` are the documented bounds — the test
  suite and the ci.sh ``analytical`` leg fail when a mean error
  drifts past them (e.g. after a model or engine change, in which
  case either fix the regression or regenerate + re-commit the
  reference and the docs table together).

Lifetime has no directly simulated counterpart (a run measures
minutes, not years), so its reference value is *derived* from the
measured NVM write rate through the same wear-leveling formula the
estimator uses; its error row therefore mirrors the write-rate error
and is reported for completeness, not separately gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..metrics.record import RunRecord
from .model import AnalyticalModel, PolicyDescriptor

PathLike = Union[str, Path]

REFERENCE_SCHEMA = "repro-analytical-reference/1"

#: Default committed reference location (smoke scale: the one CI runs).
DEFAULT_REFERENCE = Path("benchmarks/results/validation/REFERENCE_smoke.json")

#: The validation matrix: every Table III policy the model interprets.
REFERENCE_POLICIES: Tuple[PolicyDescriptor, ...] = (
    PolicyDescriptor.of("bh"),
    PolicyDescriptor.of("bh_cp"),
    PolicyDescriptor.of("ca", cpth=58),
    PolicyDescriptor.of("ca_rwr", cpth=58),
    PolicyDescriptor.of("lhybrid"),
    PolicyDescriptor.of("tap"),
    PolicyDescriptor.of("cp_sd"),
    PolicyDescriptor.of("cp_sd_th", th=4.0, tw=5.0),
)

#: Documented per-metric error bounds (mean over the matrix).
#: ``mean_ipc`` / ``nvm_write_rate`` are mean |relative| errors;
#: ``llc_hit_rate`` is a mean |absolute| error (the quantity is
#: already a ratio in [0, 1]).  docs/analytical_validation.md holds
#: the committed measured table; tests + scripts/ci.sh enforce these.
TOLERANCES: Dict[str, float] = {
    "mean_ipc": 0.08,
    "llc_hit_rate": 0.10,
    "nvm_write_rate": 0.45,
}


@dataclass
class ValidationRow:
    """One (policy, mix, metric) comparison."""

    policy: str
    mix: str
    metric: str
    predicted: float
    simulated: float

    @property
    def error(self) -> float:
        """|relative| error, except |absolute| for llc_hit_rate."""
        if self.metric == "llc_hit_rate":
            return abs(self.predicted - self.simulated)
        if self.simulated == 0:
            return 0.0 if self.predicted == 0 else float("inf")
        return abs(self.predicted / self.simulated - 1.0)


@dataclass
class ValidationReport:
    """Per-case rows + per-metric aggregate errors."""

    rows: List[ValidationRow] = field(default_factory=list)

    def mean_errors(self) -> Dict[str, float]:
        by_metric: Dict[str, List[float]] = {}
        for row in self.rows:
            by_metric.setdefault(row.metric, []).append(row.error)
        return {m: sum(v) / len(v) for m, v in sorted(by_metric.items())}

    def failures(
        self, tolerances: Mapping[str, float] = TOLERANCES
    ) -> Dict[str, Tuple[float, float]]:
        """Gated metrics outside tolerance: name -> (error, bound)."""
        means = self.mean_errors()
        return {
            m: (means[m], bound)
            for m, bound in tolerances.items()
            if m in means and means[m] > bound
        }

    def ok(self, tolerances: Mapping[str, float] = TOLERANCES) -> bool:
        return not self.failures(tolerances)

    def summary(self, tolerances: Mapping[str, float] = TOLERANCES) -> str:
        parts = []
        means = self.mean_errors()
        for metric, err in means.items():
            bound = tolerances.get(metric)
            mark = ""
            if bound is not None:
                mark = " OK" if err <= bound else f" FAIL(>{bound:.0%})"
            parts.append(f"{metric} {err:.1%}{mark}")
        status = "ok" if self.ok(tolerances) else "FAIL"
        return f"analytical validation {status}: " + ", ".join(parts)


def _sim_metrics(record: RunRecord, model: AnalyticalModel,
                 policy: PolicyDescriptor) -> Dict[str, float]:
    m = record.metrics
    accesses = m["llc.gets"] + m["llc.getx"]
    hits = m["llc.gets_hits"] + m["llc.getx_hits"]
    seconds = m["sim.seconds"] or 0.0
    write_rate = m["llc.nvm_bytes_written"] / seconds if seconds else 0.0
    return {
        "mean_ipc": m["hierarchy.mean_ipc"],
        "llc_hit_rate": hits / accesses if accesses else 0.0,
        "nvm_write_rate": write_rate,
        "lifetime_seconds": model._lifetime_seconds(policy, write_rate),
    }


# ----------------------------------------------------------------------
def generate_reference(
    scale, path: PathLike = DEFAULT_REFERENCE,
    policies: Sequence[PolicyDescriptor] = REFERENCE_POLICIES,
    seed: int = 0,
) -> Dict[str, Any]:
    """Simulate the validation matrix and persist it via fsio."""
    from ..experiments.common import run_one
    from ..fsio.durable import write_blob_json

    cases: List[Dict[str, Any]] = []
    for mix in scale.mixes:
        workload = scale.workload(mix, seed=seed)
        config = scale.system()
        for desc in policies:
            record = run_one(config, desc.make(config), workload,
                             scale.warmup_epochs, scale.phase_epochs)
            cases.append({
                "policy": desc.name,
                "params": desc.kwargs,
                "mix": mix,
                "seed": seed,
                "record": record.to_json(),
            })
    document = {
        "schema": REFERENCE_SCHEMA,
        "scale": scale.name,
        "seed": seed,
        "cases": cases,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    write_blob_json(path, document, schema=REFERENCE_SCHEMA)
    return document


def load_reference(path: PathLike = DEFAULT_REFERENCE) -> Optional[Dict[str, Any]]:
    """Load a committed reference blob, or None if absent."""
    path = Path(path)
    if not path.exists():
        return None
    from ..fsio.durable import unwrap_json

    document = unwrap_json(json.loads(path.read_text()), path=path)
    if document.get("schema") != REFERENCE_SCHEMA:
        raise ValueError(
            f"{path}: expected {REFERENCE_SCHEMA}, got {document.get('schema')!r}"
        )
    return document


def validate_against_reference(
    reference: Mapping[str, Any], scale=None
) -> ValidationReport:
    """Estimate every committed case and diff against its RunRecord."""
    from ..experiments.common import get_scale

    if scale is None:
        scale = get_scale(reference["scale"])
    config = scale.system()
    model = AnalyticalModel(config)
    report = ValidationReport()
    workloads: Dict[Tuple[str, int], Any] = {}
    for case in reference["cases"]:
        desc = PolicyDescriptor.of(case["policy"], **case["params"])
        key = (case["mix"], case["seed"])
        workload = workloads.get(key)
        if workload is None:
            workload = scale.workload(case["mix"], seed=case["seed"])
            workloads[key] = workload
        record = RunRecord.from_json(case["record"])
        sim = _sim_metrics(record, model, desc)
        est = model.estimate(workload, desc)
        predicted = {
            "mean_ipc": est.mean_ipc,
            "llc_hit_rate": est.llc_hit_rate,
            "nvm_write_rate": est.nvm_write_rate,
            "lifetime_seconds": est.lifetime_seconds,
        }
        for metric in ("mean_ipc", "llc_hit_rate", "nvm_write_rate",
                       "lifetime_seconds"):
            report.rows.append(ValidationRow(
                policy=desc.label(),
                mix=case["mix"],
                metric=metric,
                predicted=predicted[metric],
                simulated=sim[metric],
            ))
    return report


def validation_table(report: ValidationReport,
                     tolerances: Mapping[str, float] = TOLERANCES) -> str:
    """The markdown table committed to docs/analytical_validation.md."""
    lines = [
        "| policy | mix | metric | predicted | simulated | error |",
        "|---|---|---|---:|---:|---:|",
    ]
    for row in report.rows:
        lines.append(
            f"| {row.policy} | {row.mix} | {row.metric} "
            f"| {row.predicted:.4g} | {row.simulated:.4g} "
            f"| {row.error:.1%} |"
        )
    lines.append("")
    lines.append("| metric | mean error | tolerance |")
    lines.append("|---|---:|---:|")
    for metric, err in report.mean_errors().items():
        bound = tolerances.get(metric)
        bound_s = f"{bound:.0%}" if bound is not None else "(reported only)"
        lines.append(f"| {metric} | {err:.1%} | {bound_s} |")
    return "\n".join(lines)
