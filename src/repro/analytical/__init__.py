"""Analytical fast-path estimator (ROADMAP item 4).

Closed-form predictions of IPC, LLC hit ratio, NVM write rate and
projected lifetime for any insertion-policy configuration, computed
from workload statistics extracted once per workload — orders of
magnitude cheaper than simulating the configuration.  The estimator
is the screening tier of the design-space explorer
(:mod:`repro.explore`); its accuracy contract against real simulation
RunRecords lives in :mod:`repro.analytical.validate` and is enforced
by tests and the ci.sh ``analytical`` leg.
"""

from .model import (
    AnalyticalEstimate,
    AnalyticalModel,
    PolicyDescriptor,
    estimate_record,
)
from .stats import (
    CLASS_NONE,
    CLASS_READ,
    CLASS_WRITE,
    CoreStatistics,
    WorkloadStatistics,
    workload_statistics,
)
from .validate import (
    TOLERANCES,
    ValidationReport,
    generate_reference,
    load_reference,
    validate_against_reference,
    validation_table,
)

__all__ = [
    "AnalyticalEstimate",
    "AnalyticalModel",
    "PolicyDescriptor",
    "estimate_record",
    "CLASS_NONE",
    "CLASS_READ",
    "CLASS_WRITE",
    "CoreStatistics",
    "WorkloadStatistics",
    "workload_statistics",
    "TOLERANCES",
    "ValidationReport",
    "generate_reference",
    "load_reference",
    "validate_against_reference",
    "validation_table",
]
