"""Run manifests: a JSON record that makes any result re-creatable.

A reproduction is only as good as its provenance.  ``build_manifest``
captures everything that determines a simulation's outcome — the full
system configuration, the policy and its parameters, the workload
composition, seeds, scale and library version — as a plain dict;
``save_manifest``/``load_manifest`` round-trip it through JSON.  Every
benchmark artefact can be regenerated from its manifest alone.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import __version__
from .config import SystemConfig
from .core.policy import InsertionPolicy
from .engine import Workload

PathLike = Union[str, Path]


def _dataclass_dict(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _dataclass_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (list, tuple)):
        return [_dataclass_dict(v) for v in obj]
    return obj


def describe_policy(policy: InsertionPolicy) -> Dict[str, Any]:
    """Name, taxonomy and tunables of a policy instance."""
    info: Dict[str, Any] = dict(policy.taxonomy())
    for attr in ("cpth", "th", "tw", "hit_threshold", "decay_epochs",
                 "migrate_on_eviction"):
        if hasattr(policy, attr):
            info[attr] = getattr(policy, attr)
    if getattr(policy, "dueling_config", None) is not None:
        info["dueling"] = _dataclass_dict(policy.dueling_config)
    return info


def describe_workload(workload: Workload) -> Dict[str, Any]:
    """Apps, seeds and trace dimensions of a workload."""
    return {
        "seed": workload.seed,
        "apps": [p.name for p in workload.profiles],
        "trace_records_per_core": len(workload.traces[0]),
        "footprints_blocks": [p.footprint_blocks for p in workload.profiles],
        "n_phases": [p.n_phases for p in workload.profiles],
    }


def build_manifest(
    config: SystemConfig,
    policy: InsertionPolicy,
    workload: Workload,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The complete provenance record of one run."""
    manifest: Dict[str, Any] = {
        "library": {"name": "repro", "version": __version__},
        "system": _dataclass_dict(config),
        "policy": describe_policy(policy),
        "workload": describe_workload(workload),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def save_manifest(manifest: Dict[str, Any], path: PathLike) -> None:
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def load_manifest(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
