"""Run manifests: a JSON record that makes any result re-creatable.

A reproduction is only as good as its provenance.  ``build_manifest``
captures everything that determines a simulation's outcome — the full
system configuration, the policy and its parameters, the workload
composition, seeds, scale and library version — as a plain dict;
``save_manifest``/``load_manifest`` round-trip it through JSON.  Every
benchmark artefact can be regenerated from its manifest alone.

This module is the *single* home of identity serialisation: the
campaign manifest (:mod:`repro.harness.manifest`), the memo layer
(:mod:`repro.memo.fingerprint`) and the exporters all import
:func:`canonical_json` / :func:`dataclass_dict` / :func:`library_info`
/ ``describe_*`` from here instead of re-deriving field lists.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from . import __version__

if TYPE_CHECKING:  # identity helpers stay import-light for workers
    from .config import SystemConfig
    from .core.policy import InsertionPolicy
    from .engine import Workload

PathLike = Union[str, Path]


def canonical_json(payload: Any) -> str:
    """The repo-wide canonical rendering used for content hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dataclass_dict(obj: Any) -> Any:
    """Recursively render dataclasses (and sequences of them) as dicts."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: dataclass_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (list, tuple)):
        return [dataclass_dict(v) for v in obj]
    return obj


# Deprecated alias: prefer :func:`dataclass_dict`.
_dataclass_dict = dataclass_dict


def library_info() -> Dict[str, str]:
    """The producing library's identity, stamped into every manifest."""
    return {"name": "repro", "version": __version__}


def describe_policy(policy: "InsertionPolicy") -> Dict[str, Any]:
    """Name, taxonomy and tunables of a policy instance."""
    info: Dict[str, Any] = dict(policy.taxonomy())
    for attr in ("cpth", "th", "tw", "hit_threshold", "decay_epochs",
                 "migrate_on_eviction"):
        if hasattr(policy, attr):
            info[attr] = getattr(policy, attr)
    if getattr(policy, "dueling_config", None) is not None:
        info["dueling"] = dataclass_dict(policy.dueling_config)
    return info


def describe_workload(workload: "Workload") -> Dict[str, Any]:
    """Apps, seeds, trace dimensions and producing family of a workload."""
    info: Dict[str, Any] = {
        "seed": workload.seed,
        # pre-registry Workloads (pickled snapshots, direct constructions)
        # may predate the family attribute
        "family": getattr(workload, "family", "synthetic"),
        "apps": [p.name for p in workload.profiles],
        "trace_records_per_core": len(workload.traces[0]),
        "footprints_blocks": [p.footprint_blocks for p in workload.profiles],
        "n_phases": [p.n_phases for p in workload.profiles],
    }
    target = getattr(workload, "target", None)
    if target is not None:
        info["target"] = target
    return info


def build_manifest(
    config: "SystemConfig",
    policy: "InsertionPolicy",
    workload: "Workload",
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The complete provenance record of one run."""
    manifest: Dict[str, Any] = {
        "library": library_info(),
        "system": dataclass_dict(config),
        "policy": describe_policy(policy),
        "workload": describe_workload(workload),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def save_manifest(manifest: Dict[str, Any], path: PathLike) -> None:
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def load_manifest(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
