"""``repro serve``: the standing campaign service.

One server owns one **service root** directory and any number of
clients: ``repro submit`` enqueues a sweep as a *job*, ``repro
status`` inspects the ledger, ``repro watch`` streams the job's event
log live, and Prometheus scrapes ``/metrics`` from the same TCP port
(the listener sniffs the first bytes of each connection — an HTTP
``GET`` gets an HTTP response, everything else speaks the service's
JSON-line protocol).

Service root layout::

    service.announce.json        # endpoint + pid (repro-shard-announce/1)
    ledger.json                  # all jobs (repro-service-ledger/1)
    result_cache/                # shared memo cache, consulted per job
    jobs/<job-id>/
        job.json                 # this job's record (repro-service-job/1)
        events.jsonl             # per-line enveloped event stream
        campaign/                # a normal campaign directory

Each job *is* a campaign: the server enumerates its units through
:class:`~repro.harness.scheduler.CampaignRunner`, which consults the
shared fsio-backed result cache before dispatching anything, and every
unit lifecycle transition is appended to the job's event log (the
scheduler's ``event_sink`` tap) and fanned out to attached watchers.

Jobs execute strictly one at a time on the executor thread — the
parallelism axis is *within* a job (the worker pool or the shard
fleet), not across jobs, so two submitted sweeps never fight for the
same cores.  Every artefact the server writes is a checksummed
``repro.fsio`` envelope audited by ``repro doctor``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..experiments.campaign_tasks import ALL_EXPERIMENT_NAMES
from ..fsio.durable import BlobError, read_bytes, unwrap_json, write_blob_json
from .events import EVENT_LOG_NAME, EventLog, read_events
from .protocol import LineReader, ProtocolError, send_message
from .shard import write_announce

PathLike = Union[str, Path]

JOB_SCHEMA = "repro-service-job/1"
LEDGER_SCHEMA = "repro-service-ledger/1"
LEDGER_NAME = "ledger.json"
JOBS_DIR = "jobs"
ANNOUNCE_NAME = "service.announce.json"
CAMPAIGN_SUBDIR = "campaign"

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)


class ServiceServer:
    """The standing service: listener + executor over one root."""

    def __init__(
        self,
        root: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.root = Path(root)
        self.host = host
        self.port = port
        self.shards = list(shards) if shards else None
        self.jobs = jobs
        self.progress = progress or (lambda message: None)

        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / JOBS_DIR).mkdir(exist_ok=True)

        self._lock = threading.Lock()
        self._events = threading.Condition(self._lock)
        self._ledger: Dict[str, dict] = self._load_ledger()
        self._queue: List[str] = [
            job_id
            for job_id, record in sorted(self._ledger.items())
            if record["status"] == QUEUED
        ]
        # Jobs the server died while running re-queue (resume picks up
        # the completed units from the campaign manifest).
        for job_id, record in sorted(self._ledger.items()):
            if record["status"] == RUNNING:
                record["status"] = QUEUED
                self._queue.append(job_id)
        #: In-memory event buffers watchers replay from; rebuilt from
        #: the on-disk logs at startup so watch-after-restart works.
        self._buffers: Dict[str, List[dict]] = {}
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # ledger persistence
    def _ledger_path(self) -> Path:
        return self.root / LEDGER_NAME

    def _load_ledger(self) -> Dict[str, dict]:
        path = self._ledger_path()
        if not path.exists():
            return {}
        document = json.loads(read_bytes(path).decode("utf-8"))
        payload = unwrap_json(document, schema=LEDGER_SCHEMA, path=path)
        return dict(payload.get("jobs", {}))

    def _save_ledger_locked(self) -> None:
        write_blob_json(
            self._ledger_path(),
            {"jobs": {k: self._ledger[k] for k in sorted(self._ledger)}},
            schema=LEDGER_SCHEMA,
        )

    def _job_dir(self, job_id: str) -> Path:
        return self.root / JOBS_DIR / job_id

    def _save_job_locked(self, job_id: str) -> None:
        write_blob_json(
            self._job_dir(job_id) / "job.json",
            self._ledger[job_id],
            schema=JOB_SCHEMA,
        )
        self._save_ledger_locked()

    # ------------------------------------------------------------------
    # lifecycle
    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> str:
        """Bind, announce, and start the accept + executor threads."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        self.host, self.port = sock.getsockname()[:2]
        self._sock = sock
        write_announce(
            self.root / ANNOUNCE_NAME, "service", self.host, self.port
        )
        for name, target in (
            ("service-accept", self._accept_loop),
            ("service-executor", self._executor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        self.progress(f"service: listening on {self.endpoint} ({self.root})")
        return self.endpoint

    def stop(self) -> None:
        self._stop.set()
        with self._events:
            self._events.notify_all()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=10.0)

    def serve_forever(self) -> None:
        """Blocking convenience for the CLI: start and wait for stop."""
        self.start()
        try:
            while not self._stop.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            self.progress("service: interrupted")
        finally:
            self.stop()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # job execution
    def _next_job_id_locked(self) -> str:
        index = len(self._ledger) + 1
        while f"job-{index:04d}" in self._ledger:  # pragma: no cover
            index += 1
        return f"job-{index:04d}"

    def _submit(
        self,
        experiments: Sequence[str],
        scale: str,
        chaos: Optional[str] = None,
    ) -> str:
        unknown = sorted(set(experiments) - set(ALL_EXPERIMENT_NAMES))
        if unknown:
            raise ValueError(
                f"unknown experiments {unknown}; "
                f"choose from {sorted(ALL_EXPERIMENT_NAMES)}"
            )
        with self._lock:
            job_id = self._next_job_id_locked()
            self._ledger[job_id] = {
                "job_id": job_id,
                "status": QUEUED,
                "experiments": list(experiments),
                "scale": scale,
                "chaos": chaos,
                "shards": self.shards,
                "submitted_ts": round(time.time(), 6),
                "started_ts": None,
                "finished_ts": None,
                "campaign_dir": str(self._job_dir(job_id) / CAMPAIGN_SUBDIR),
                "report": None,
                "error": None,
            }
            self._job_dir(job_id).mkdir(parents=True, exist_ok=True)
            self._save_job_locked(job_id)
            self._queue.append(job_id)
            self._events.notify_all()
        self._emit(job_id, {"event": "job_submitted", "job_id": job_id})
        return job_id

    def _resubmit(self, job_id: str) -> str:
        with self._lock:
            record = self._ledger.get(job_id)
            if record is None:
                raise ValueError(f"no such job {job_id!r}")
            if record["status"] in (QUEUED, RUNNING):
                return job_id  # already pending; resume is a no-op
            record["status"] = QUEUED
            record["error"] = None
            self._save_job_locked(job_id)
            self._queue.append(job_id)
            self._events.notify_all()
        self._emit(job_id, {"event": "job_resubmitted", "job_id": job_id})
        return job_id

    def _emit(self, job_id: str, event: dict) -> None:
        """Buffer one event and wake the watchers (log-side is the
        EventLog the scheduler tap writes through)."""
        with self._events:
            self._buffers.setdefault(job_id, []).append(event)
            self._events.notify_all()

    def _buffer_for(self, job_id: str) -> List[dict]:
        with self._lock:
            buffer = self._buffers.get(job_id)
            if buffer is None:
                # Server restarted since the job ran: rebuild from disk.
                log_path = self._job_dir(job_id) / EVENT_LOG_NAME
                try:
                    buffer = read_events(log_path)
                except (OSError, ValueError):
                    buffer = []
                self._buffers[job_id] = buffer
            return buffer

    def _run_job(self, job_id: str) -> None:
        from ..harness.scheduler import CampaignRunner, CampaignSettings

        with self._lock:
            record = self._ledger[job_id]
            record["status"] = RUNNING
            record["started_ts"] = round(time.time(), 6)
            self._save_job_locked(job_id)
        campaign_dir = Path(self._ledger[job_id]["campaign_dir"])
        resume = (campaign_dir / "campaign.json").exists()
        chaos = None
        if self._ledger[job_id].get("chaos"):
            from ..harness.chaos import parse_chaos_spec

            chaos = parse_chaos_spec(self._ledger[job_id]["chaos"])
        settings_kwargs = dict(
            chaos=chaos,
            shards=self.shards,
            result_cache_dir=str(self.root / "result_cache"),
        )
        if self.jobs is not None:
            settings_kwargs["jobs"] = self.jobs
        log = EventLog(self._job_dir(job_id) / EVENT_LOG_NAME)
        self._emit(
            job_id,
            log.append({"event": "job_started", "job_id": job_id}),
        )
        try:
            runner = CampaignRunner(
                campaign_dir,
                scale=self._ledger[job_id]["scale"],
                experiments=tuple(self._ledger[job_id]["experiments"]),
                settings=CampaignSettings(**settings_kwargs),
                resume=resume,
                progress=lambda message: self.progress(
                    f"{job_id}: {message}"
                ),
            )
            runner.event_sink = lambda event: self._emit(
                job_id, log.append(event)
            )
            report = runner.run()
        except BaseException as exc:
            with self._lock:
                record = self._ledger[job_id]
                record["status"] = FAILED
                record["error"] = f"{type(exc).__name__}: {exc}"
                record["finished_ts"] = round(time.time(), 6)
                self._save_job_locked(job_id)
            self._emit(
                job_id,
                log.append(
                    {
                        "event": "job_failed",
                        "job_id": job_id,
                        "error": self._ledger[job_id]["error"],
                    }
                ),
            )
            log.close()
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return
        with self._lock:
            record = self._ledger[job_id]
            record["status"] = DONE if report.ok else FAILED
            record["finished_ts"] = round(time.time(), 6)
            record["report"] = {
                "total": report.total,
                "completed": report.completed,
                "skipped": report.skipped,
                "retried_attempts": report.retried_attempts,
                "failed": report.failed_count,
                "cache_hits": report.cache_hits,
                "worker_respawns": report.worker_respawns,
                "shard_deaths": report.shard_deaths,
                "shard_walls": dict(report.shard_walls),
                "interrupted": report.interrupted,
            }
            if not report.ok:
                record["error"] = (
                    f"{report.failed_count} tasks failed"
                    if report.failed
                    else "interrupted"
                )
            self._save_job_locked(job_id)
        self._emit(
            job_id,
            log.append(
                {
                    "event": "job_done",
                    "job_id": job_id,
                    "ok": report.ok,
                    "completed": report.completed,
                    "total": report.total,
                }
            ),
        )
        log.close()

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            with self._events:
                while not self._queue and not self._stop.is_set():
                    self._events.wait(timeout=0.2)
                if self._stop.is_set():
                    return
                job_id = self._queue.pop(0)
            try:
                self._run_job(job_id)
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                return
            except Exception as exc:  # pragma: no cover - last resort
                self.progress(f"{job_id}: executor error: {exc}")

    # ------------------------------------------------------------------
    # telemetry
    def metrics_body(self) -> str:
        """Prometheus exposition of every job's health record.

        Built by the *same* ``load_records`` → ``to_prometheus`` path
        ``repro export --format prom`` uses on the same files, so the
        streaming endpoint and the file exporter agree by construction
        (and both are covered by the registry drift check).
        """
        from ..harness.scheduler import HEALTH_RECORD_NAME
        from ..metrics.export import load_records, to_prometheus

        paths = []
        with self._lock:
            job_ids = sorted(self._ledger)
        for job_id in job_ids:
            health = (
                self._job_dir(job_id) / CAMPAIGN_SUBDIR / HEALTH_RECORD_NAME
            )
            if health.exists():
                paths.append(health)
        if not paths:
            return "# no campaign health records yet\n"
        records = load_records(paths)
        for record, path in zip(records, paths):
            record.meta.setdefault("task_id", path.parent.parent.name)
        return to_prometheus(records)

    # ------------------------------------------------------------------
    # the listener
    def _accept_loop(self) -> None:
        assert self._sock is not None
        self._sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during stop()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = LineReader(conn)
            line = reader.readline(timeout=30.0)
            if line is None:
                return
            if line.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                self._serve_http(conn, line, reader)
                return
            try:
                from .protocol import decode_message

                request = decode_message(line)
            except ProtocolError as exc:
                self._send_error(conn, str(exc))
                return
            self._serve_request(conn, reader, request)
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _serve_http(
        self, conn: socket.socket, first_line: bytes, reader: LineReader
    ) -> None:
        """A one-endpoint HTTP server: ``GET /metrics``."""
        # Drain the request headers (until the blank line) politely.
        while True:
            line = reader.readline(timeout=5.0)
            if line is None or line.strip() == b"":
                break
        target = first_line.split(b" ")
        path = target[1].decode("latin-1") if len(target) > 1 else "/"
        if path.split("?", 1)[0] == "/metrics":
            body = self.metrics_body().encode("utf-8")
            status = "200 OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = b"try /metrics\n"
            status = "404 Not Found"
            ctype = "text/plain; charset=utf-8"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            conn.sendall(head + (b"" if first_line.startswith(b"HEAD") else body))
        except OSError:  # pragma: no cover
            pass

    def _send_error(self, conn: socket.socket, detail: str) -> None:
        try:
            send_message(conn, {"type": "error", "detail": detail})
        except OSError:  # pragma: no cover
            pass

    def _job_record(self, job_id: str) -> dict:
        with self._lock:
            record = self._ledger.get(job_id)
            if record is None:
                raise ValueError(f"no such job {job_id!r}")
            return json.loads(json.dumps(record))  # defensive copy

    def _serve_request(
        self, conn: socket.socket, reader: LineReader, request: dict
    ) -> None:
        kind = request["type"]
        try:
            if kind == "submit":
                job_id = self._submit(
                    experiments=request.get("experiments") or ["tables"],
                    scale=request.get("scale") or "smoke",
                    chaos=request.get("chaos"),
                )
                send_message(conn, {"type": "submitted", "job_id": job_id})
            elif kind == "resume":
                job_id = self._resubmit(request["job_id"])
                send_message(conn, {"type": "submitted", "job_id": job_id})
            elif kind == "status":
                job_id = request.get("job_id")
                if job_id:
                    send_message(
                        conn,
                        {"type": "job", "job": self._job_record(job_id)},
                    )
                else:
                    from ..memo.results import ResultCache

                    with self._lock:
                        jobs = [
                            json.loads(json.dumps(self._ledger[key]))
                            for key in sorted(self._ledger)
                        ]
                    cache = ResultCache(self.root / "result_cache")
                    send_message(
                        conn,
                        {
                            "type": "jobs",
                            "jobs": jobs,
                            "result_cache": cache.summary(),
                        },
                    )
            elif kind == "watch":
                self._serve_watch(conn, request)
            elif kind == "metrics":
                send_message(
                    conn, {"type": "metrics", "body": self.metrics_body()}
                )
            elif kind == "shutdown":
                send_message(conn, {"type": "bye"})
                self._stop.set()
                with self._events:
                    self._events.notify_all()
            else:
                self._send_error(conn, f"unknown request type {kind!r}")
        except ValueError as exc:
            self._send_error(conn, str(exc))

    def _serve_watch(self, conn: socket.socket, request: dict) -> None:
        """Stream a job's events live until it reaches a terminal state."""
        job_id = request["job_id"]
        self._job_record(job_id)  # raises on unknown job
        cursor = int(request.get("from_seq") or 0)
        buffer = self._buffer_for(job_id)
        while True:
            with self._events:
                while (
                    len(buffer) <= cursor
                    and self._ledger[job_id]["status"] in (QUEUED, RUNNING)
                    and not self._stop.is_set()
                ):
                    self._events.wait(timeout=0.2)
                pending = buffer[cursor:]
                cursor = len(buffer)
                status = self._ledger[job_id]["status"]
            for event in pending:
                send_message(conn, {"type": "event", "data": event})
            if status not in (QUEUED, RUNNING) or self._stop.is_set():
                send_message(
                    conn, {"type": "watched", "job": self._job_record(job_id)}
                )
                return


def read_ledger(root: PathLike) -> Dict[str, dict]:
    """Load a service root's job ledger (for ``repro doctor``/tests)."""
    path = Path(root) / LEDGER_NAME
    if not path.exists():
        return {}
    document = json.loads(read_bytes(path).decode("utf-8"))
    payload = unwrap_json(document, schema=LEDGER_SCHEMA, path=path)
    if not isinstance(payload, dict) or not isinstance(
        payload.get("jobs"), dict
    ):
        raise BlobError(path, "ledger payload has no jobs mapping",
                        "malformed-envelope")
    return dict(payload["jobs"])
