"""Wire protocol of the campaign service: JSON lines over a socket.

Every connection in the service — controller to shard, client to
server — speaks the same framing: one JSON object per ``\\n``-terminated
line, UTF-8, no newlines inside a message (``json.dumps`` without
``indent`` guarantees that).  The framing is deliberately primitive:
it survives partial reads, needs no length prefix bookkeeping, and a
human can drive a shard with ``nc`` when debugging.

Message vocabulary (the ``type`` field):

controller → shard
    ``run``       — ``{"type": "run", "payloads": ["<json>", ...]}``;
                    each payload is a serialised worker attempt, the
                    exact string :func:`repro.harness.worker.build_payload`
                    produces for the local pool.
    ``exit``      — end this controller session; with ``"shutdown":
                    true`` the shard process terminates instead of
                    accepting the next controller.

shard → controller
    ``hello``     — identity announcement on connect (shard id, pid).
    ``start``     — per-task heartbeat; arms the controller deadline.
    ``done``      — task verdict: ``status`` is ``ok`` or ``error``,
                    ``elapsed`` is in-shard wall seconds.

client → server (see :mod:`~repro.service.server` for semantics)
    ``submit`` / ``status`` / ``jobs`` / ``watch`` / ``resume`` /
    ``metrics`` — one request object, one response object (``watch``
    streams event lines before its terminal response).

The helpers here never interpret messages; they only frame them.
:class:`LineReader` buffers a non-blocking socket so the sharded
dispatcher can drain every complete message a dying shard managed to
flush — a ``done`` that reached the kernel buffer before the process
died still counts, which is what makes kill-at-any-stage lossless.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

#: Cap on one framed message (a batch of task payloads is well under
#: this; anything bigger is a corrupt or hostile peer).
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A peer sent bytes that do not frame or parse as a message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (compact JSON + LF)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a message object."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparsable message line ({exc})") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError(f"message has no type field: {message!r}")
    return message


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Frame and send one message (blocking, whole-message)."""
    sock.sendall(encode_message(message))


def recv_message(
    reader: "LineReader", timeout: Optional[float] = None
) -> Optional[Dict[str, Any]]:
    """Receive the next message, ``None`` on clean EOF.

    Convenience wrapper for blocking callers (shards, clients); the
    dispatcher uses :class:`LineReader` directly under ``select``.
    """
    line = reader.readline(timeout=timeout)
    if line is None:
        return None
    return decode_message(line)


class LineReader:
    """Buffered line reader over a socket, safe for partial reads.

    ``fill()`` performs exactly one ``recv`` and reports liveness —
    the event-driven dispatcher calls it when ``select`` says the
    socket is readable; ``lines()`` then drains every complete message
    buffered so far.  ``readline()`` is the blocking convenience for
    sequential peers.  After EOF the buffered complete lines are still
    served: death never discards delivered messages.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = bytearray()
        self.eof = False

    def fill(self) -> bool:
        """One ``recv``; returns False when the peer has gone away."""
        if self.eof:
            return False
        try:
            chunk = self.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            self.eof = True
            return False
        if not chunk:
            self.eof = True
            return False
        self._buffer.extend(chunk)
        if len(self._buffer) > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"peer sent {len(self._buffer)} bytes with no line break"
            )
        return True

    def lines(self) -> List[bytes]:
        """Every complete line currently buffered (consumed)."""
        out: List[bytes] = []
        while True:
            index = self._buffer.find(b"\n")
            if index < 0:
                return out
            out.append(bytes(self._buffer[:index]))
            del self._buffer[: index + 1]

    def readline(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Block for the next complete line; ``None`` on EOF."""
        while True:
            pending = self.lines()
            if pending:
                # Push any extra lines back is unnecessary: callers of
                # the blocking form consume strictly one line per call,
                # so re-buffer the remainder.
                first, rest = pending[0], pending[1:]
                if rest:
                    keep = b"\n".join(rest) + b"\n"
                    self._buffer[:0] = keep
                return first
            if self.eof:
                return None
            if timeout is not None:
                self.sock.settimeout(timeout)
            try:
                if not self.fill():
                    continue  # loop once more to drain buffered lines
            except socket.timeout:
                raise ProtocolError(
                    f"peer sent nothing for {timeout:g}s"
                ) from None
            finally:
                if timeout is not None:
                    self.sock.settimeout(None)
