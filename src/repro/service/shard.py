"""``repro serve-worker``: a shard process executing campaign payloads.

A shard is a "host" in the service's sense: a long-lived process that
binds a TCP endpoint, announces itself, and executes campaign task
payloads for whichever controller connects.  N shards on N machines
and N shards as subprocesses of one machine are indistinguishable to
the dispatcher — the tests exploit that with :class:`LocalShardSet`.

A shard's lifecycle:

1. bind ``host:port`` (``port=0`` lets the kernel pick — the chosen
   port is what the announce file is *for*);
2. atomically write the announce file, a checksummed
   ``repro-shard-announce/1`` envelope with the endpoint and pid, so
   controllers (and ``repro doctor``) can find and audit it;
3. accept one controller at a time; speak the line protocol:
   ``hello`` out, then for every ``run`` batch a ``start`` heartbeat
   and a ``done`` verdict per payload — the exact contract of the
   local pool's pipe protocol, so the scheduler's deadline, retry and
   zero-loss machinery carries over unchanged;
4. when the controller disconnects, loop back to ``accept`` — a shard
   *outlives* controller sessions, which is what makes ``repro
   submit`` against a standing service work;
5. exit on an ``exit`` message with ``"shutdown": true`` (or a kill).

Execution reuses :func:`repro.harness.worker.run_attempt` verbatim:
chaos injection, result/error envelope writes and the atomic-write
discipline are identical to the local pool, so a sharded campaign's
artefacts are byte-identical to a single-pool run's.

Fault drills use the ``REPRO_SHARD_KILL_AT`` environment variable —
``<stage>:<n>`` hard-kills the shard at its *n*-th (1-based) passage
through ``connect`` (controller accepted), ``run`` (batch received),
``start`` (heartbeat sent; task charged) or ``done`` (verdict sent).
The kill-at-every-stage test walks all of them and asserts the merged
campaign output stays byte-identical with zero lost units.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..fsio.durable import read_bytes, unwrap_json, write_blob_json
from ..harness.chaos import CHAOS_CRASH_EXIT
from ..harness.worker import run_attempt
from .protocol import LineReader, ProtocolError, recv_message, send_message

#: Announce artefact schema: where a shard listens and who it is.
ANNOUNCE_SCHEMA = "repro-shard-announce/1"

#: ``<stage>:<n>`` — hard-kill this shard at its n-th passage through
#: the named stage.  Stages: connect / run / start / done.
KILL_AT_ENV = "REPRO_SHARD_KILL_AT"
KILL_STAGES = ("connect", "run", "start", "done")


def parse_endpoint(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises ``ValueError``."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint {spec!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"endpoint {spec!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ValueError(f"endpoint {spec!r} port out of range")
    return host, port


class _KillSwitch:
    """The deterministic shard assassin behind ``REPRO_SHARD_KILL_AT``."""

    def __init__(self, stage: Optional[str] = None, nth: int = 0):
        self.stage = stage
        self.nth = nth
        self.count = 0

    @classmethod
    def from_env(cls) -> "_KillSwitch":
        spec = os.environ.get(KILL_AT_ENV)
        if not spec:
            return cls()
        stage, sep, nth_text = spec.partition(":")
        if not sep or stage not in KILL_STAGES:
            raise ValueError(
                f"{KILL_AT_ENV}={spec!r}: want <stage>:<n> with stage in "
                f"{'/'.join(KILL_STAGES)}"
            )
        nth = int(nth_text)
        if nth < 1:
            raise ValueError(f"{KILL_AT_ENV}={spec!r}: n must be >= 1")
        return cls(stage, nth)

    def passed(self, stage: str) -> None:
        if stage != self.stage:
            return
        self.count += 1
        if self.count >= self.nth:
            # The same hard death a chaos "crash" injects: no cleanup,
            # no flush beyond what already reached the kernel.
            os._exit(CHAOS_CRASH_EXIT)


def write_announce(
    path: Path, shard_id: str, host: str, port: int
) -> None:
    """Atomically publish this shard's endpoint."""
    write_blob_json(
        path,
        {"shard_id": shard_id, "host": host, "port": port, "pid": os.getpid()},
        schema=ANNOUNCE_SCHEMA,
    )


def read_announce(path: Path) -> dict:
    """Load and integrity-check a shard announce file."""
    document = json.loads(read_bytes(path).decode("utf-8"))
    return unwrap_json(document, schema=ANNOUNCE_SCHEMA, path=path)


def _serve_session(
    conn: socket.socket, reader: LineReader, kill: _KillSwitch
) -> bool:
    """Serve one controller until it leaves; True means shut down."""
    while True:
        try:
            message = recv_message(reader)
        except ProtocolError:
            return False  # garbage peer: drop the session, re-accept
        if message is None:
            return False  # controller went away; outlive it
        kind = message["type"]
        if kind == "exit":
            return bool(message.get("shutdown"))
        if kind == "ping":
            try:
                send_message(conn, {"type": "pong"})
            except OSError:
                return False
            continue
        if kind != "run":
            continue  # future-proofing: unknown types are ignored
        kill.passed("run")
        for payload_json in message.get("payloads", ()):
            payload = json.loads(payload_json)
            started = time.monotonic()
            try:
                send_message(
                    conn,
                    {
                        "type": "start",
                        "task_id": payload["task_id"],
                        "clock": started,
                    },
                )
            except OSError:
                return False
            kill.passed("start")
            ok = run_attempt(payload)
            elapsed = time.monotonic() - started
            try:
                send_message(
                    conn,
                    {
                        "type": "done",
                        "task_id": payload["task_id"],
                        "status": "ok" if ok else "error",
                        "elapsed": elapsed,
                    },
                )
            except OSError:
                return False
            kill.passed("done")


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    announce_path: Optional[Path] = None,
    shard_id: Optional[str] = None,
    progress=None,
) -> None:
    """Run a shard until told to shut down (blocking).

    Binds, announces, then loops ``accept → serve session`` forever:
    a controller disconnecting returns the shard to ``accept``, so one
    standing shard serves any number of campaign runs.
    """
    progress = progress or (lambda message: None)
    kill = _KillSwitch.from_env()
    shard_id = shard_id or f"shard-{os.getpid()}"
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind((host, port))
        sock.listen(8)
        bound_host, bound_port = sock.getsockname()[:2]
        if announce_path is not None:
            write_announce(Path(announce_path), shard_id, bound_host, bound_port)
        progress(f"{shard_id}: serving on {bound_host}:{bound_port}")
        while True:
            conn, peer = sock.accept()
            kill.passed("connect")
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                reader = LineReader(conn)
                try:
                    send_message(
                        conn,
                        {
                            "type": "hello",
                            "shard_id": shard_id,
                            "pid": os.getpid(),
                        },
                    )
                except OSError:
                    continue
                progress(f"{shard_id}: controller {peer[0]}:{peer[1]} connected")
                if _serve_session(conn, reader, kill):
                    progress(f"{shard_id}: shutdown requested")
                    return
                progress(f"{shard_id}: controller left; re-accepting")
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
    finally:
        sock.close()


# ----------------------------------------------------------------------
# local shard fleets (tests, CI, the service bench)


def _repro_pythonpath() -> str:
    """A PYTHONPATH that makes ``-m repro`` importable in a child."""
    src_root = str(Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH")
    if existing and src_root not in existing.split(os.pathsep):
        return os.pathsep.join([src_root, existing])
    return existing or src_root


class LocalShardSet:
    """Spawn and manage N ``serve-worker`` subprocesses on this host.

    The multi-host topology, shrunk to one machine: each shard is a
    real separate process with its own interpreter and caches, found
    through its announce file exactly as a remote shard would be.

    ``extra_env`` optionally carries a per-shard environment overlay —
    the chaos tests use it to arm ``REPRO_SHARD_KILL_AT`` on exactly
    one shard of the fleet.
    """

    def __init__(
        self,
        count: int,
        root: Path,
        extra_env: Optional[Sequence[Optional[Dict[str, str]]]] = None,
        startup_timeout: float = 30.0,
    ):
        if count < 1:
            raise ValueError("a shard set needs at least one shard")
        if extra_env is not None and len(extra_env) != count:
            raise ValueError("extra_env must have one entry per shard")
        self.count = count
        self.root = Path(root)
        self.extra_env = extra_env or [None] * count
        self.startup_timeout = startup_timeout
        self.processes: List[subprocess.Popen] = []
        self.endpoints: List[str] = []
        self.shard_ids: List[str] = []

    def start(self) -> List[str]:
        """Launch the fleet; return ``host:port`` endpoint specs."""
        self.root.mkdir(parents=True, exist_ok=True)
        announce_paths: List[Path] = []
        for index in range(self.count):
            shard_id = f"shard-{index}"
            announce = self.root / f"{shard_id}.announce.json"
            if announce.exists():
                announce.unlink()
            env = dict(os.environ)
            env["PYTHONPATH"] = _repro_pythonpath()
            if self.extra_env[index]:
                env.update(self.extra_env[index])
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "serve-worker",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    "0",
                    "--shard-id",
                    shard_id,
                    "--announce",
                    str(announce),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            self.processes.append(process)
            self.shard_ids.append(shard_id)
            announce_paths.append(announce)
        deadline = time.monotonic() + self.startup_timeout
        for index, announce in enumerate(announce_paths):
            while True:
                if announce.exists():
                    try:
                        record = read_announce(announce)
                    except (ValueError, OSError):
                        pass  # mid-write; retry
                    else:
                        self.endpoints.append(
                            f"{record['host']}:{record['port']}"
                        )
                        break
                if self.processes[index].poll() is not None:
                    self.stop()
                    raise RuntimeError(
                        f"shard-{index} died during startup "
                        f"(exit {self.processes[index].returncode})"
                    )
                if time.monotonic() > deadline:
                    self.stop()
                    raise RuntimeError(
                        f"shard-{index} did not announce within "
                        f"{self.startup_timeout:g}s"
                    )
                time.sleep(0.01)
        return list(self.endpoints)

    def stop(self) -> None:
        """Terminate every shard still running."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=5.0)

    def alive(self) -> List[bool]:
        return [process.poll() is None for process in self.processes]

    def __enter__(self) -> "LocalShardSet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
