"""Campaign-as-a-service: sharded dispatch and streaming telemetry.

This package promotes the campaign harness from a one-host tool into a
service any number of clients can drive:

* :mod:`~repro.service.protocol` — the newline-delimited JSON message
  framing every socket in the service speaks;
* :mod:`~repro.service.shard` — ``repro serve-worker``: a shard
  process that executes campaign task payloads for a controller,
  testable as N subprocesses on one machine;
* :mod:`~repro.service.dispatch` — the :class:`Dispatcher` seam: the
  local pool and isolated modes behind the same interface as the new
  :class:`ShardedDispatcher`, which fans the task graph out across
  shard endpoints with the pool's zero-loss requeue guarantees;
* :mod:`~repro.service.events` — the per-line checksummed JSONL event
  log streamed to ``repro watch`` clients;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  async job API behind ``repro serve`` / ``submit`` / ``status`` /
  ``watch``, plus the Prometheus ``/metrics`` endpoint.

All shards and the server share one artifact store (the campaign
directory tree, the trace cache and the memo result cache), written
exclusively through :mod:`repro.fsio` envelopes so ``repro doctor``
audits service state like any other artefact class.
"""

from .client import ServiceClient, ServiceError
from .dispatch import (
    Dispatcher,
    IsolatedDispatcher,
    LocalPoolDispatcher,
    ShardedDispatcher,
    ShardError,
    make_dispatcher,
)
from .events import EVENT_SCHEMA, EventLog, read_events
from .protocol import ProtocolError, recv_message, send_message
from .server import ServiceServer
from .shard import LocalShardSet, parse_endpoint, serve_worker

__all__ = [
    "Dispatcher",
    "EVENT_SCHEMA",
    "EventLog",
    "IsolatedDispatcher",
    "LocalPoolDispatcher",
    "LocalShardSet",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardError",
    "ShardedDispatcher",
    "make_dispatcher",
    "parse_endpoint",
    "read_events",
    "recv_message",
    "send_message",
    "serve_worker",
]
