"""The service event log: checksummed JSONL, crash-consistent appends.

Per-unit campaign progress (``unit_start`` / ``unit_done`` /
``unit_retry`` / ``unit_failed`` / ``unit_cached``), shard lifecycle
(``shard_up`` / ``shard_dead``) and job lifecycle (``job_submitted`` /
``job_done``) all land here, one line per event, and stream verbatim
to ``repro watch`` clients.

Each line is its *own* ``repro-blob/1`` envelope (schema
``repro-service-event/1``) in canonical compact JSON — so the existing
:func:`~repro.fsio.durable.unwrap_json` machinery validates every line
independently, and the file as a whole needs no rewrite-on-append.
The durability contract is the checkpoint tail-truncation story: an
append interrupted by a crash can tear only the *final* line, which
readers (and ``repro doctor``) treat as a survivable artefact of the
crash; a bad line anywhere *else* is real corruption and an error.

Events are stamped with a monotonically increasing ``seq`` and a wall
timestamp.  Telemetry only — nothing in the zero-loss or byte-identity
guarantees depends on this file existing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..fsio.durable import (
    BlobError,
    is_blob_payload,
    read_bytes,
    unwrap_json,
    wrap_json,
)
from ..manifest import canonical_json

PathLike = Union[str, Path]

EVENT_SCHEMA = "repro-service-event/1"
EVENT_LOG_NAME = "events.jsonl"


class EventLogError(ValueError):
    """A non-tail event-log line failed to parse or validate."""


class EventLog:
    """Append-only, thread-safe, per-line enveloped event sink."""

    def __init__(self, path: PathLike, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        # Continue the sequence across reopens (job resume).
        self._seq = _last_seq(self.path) + 1

    def append(self, event: dict) -> dict:
        """Stamp, wrap, and durably append one event; returns it."""
        with self._lock:
            stamped = dict(event)
            stamped["seq"] = self._seq
            stamped["ts"] = round(time.time(), 6)
            self._seq += 1
            line = canonical_json(wrap_json(stamped, EVENT_SCHEMA))
            self._fh.write(line.encode("utf-8") + b"\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            return stamped

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _last_seq(path: Path) -> int:
    try:
        events = read_events(path)
    except (OSError, EventLogError):
        return -1
    if not events:
        return -1
    return max(int(e.get("seq", -1)) for e in events)


def read_events(
    path: PathLike, strict: bool = False
) -> List[dict]:
    """Every validated event in the log, in append order.

    A defective *final* line is the expected debris of a crash
    mid-append and is dropped (unless ``strict``); a defective line
    anywhere else means the log was corrupted after the fact and
    raises :class:`EventLogError`.
    """
    events, tail_defect = scan_events(path)
    if tail_defect is not None and strict:
        raise EventLogError(tail_defect)
    return events


def scan_events(path: PathLike) -> Tuple[List[dict], Optional[str]]:
    """Parse the log; returns ``(events, tail_defect_or_None)``.

    The doctor's entry point: it wants the events *and* the evidence.
    """
    path = Path(path)
    if not path.exists():
        return [], None
    lines = read_bytes(path).split(b"\n")
    # A well-formed log ends with a newline, leaving one empty tail.
    if lines and lines[-1] == b"":
        lines.pop()
    events: List[dict] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        defect: Optional[str] = None
        try:
            document = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            defect = f"unparsable line ({exc})"
        else:
            if not is_blob_payload(document):
                defect = "line is not a repro-blob envelope"
            else:
                try:
                    payload = unwrap_json(
                        document, schema=EVENT_SCHEMA, path=path
                    )
                except BlobError as exc:
                    defect = exc.reason
        if defect is not None:
            message = f"{path}: event line {index + 1}: {defect}"
            if index == len(lines) - 1:
                return events, message  # survivable torn tail
            raise EventLogError(message)
        events.append(payload)
    return events, None
