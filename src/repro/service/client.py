"""The service client behind ``repro submit`` / ``status`` / ``watch``.

One request, one connection: every call dials the server, sends one
JSON-line request and reads the response(s).  That keeps the client
trivially robust — there is no session state to lose — and matches the
server's thread-per-connection model.  ``watch`` is the only streaming
call: the server holds the connection open and pushes ``event`` lines
until the job reaches a terminal state.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from ..fsio.durable import read_bytes, unwrap_json
from .protocol import LineReader, ProtocolError, recv_message, send_message
from .shard import ANNOUNCE_SCHEMA, parse_endpoint

PathLike = Union[str, Path]


class ServiceError(RuntimeError):
    """The server refused a request or the connection failed."""


def resolve_endpoint(spec: str) -> str:
    """Accept ``host:port`` or a path to a service announce file."""
    path = Path(spec)
    if path.exists():
        document = json.loads(read_bytes(path).decode("utf-8"))
        record = unwrap_json(document, schema=ANNOUNCE_SCHEMA, path=path)
        return f"{record['host']}:{record['port']}"
    parse_endpoint(spec)  # raises ValueError on a malformed spec
    return spec


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, endpoint: str, timeout: float = 30.0):
        self.host, self.port = parse_endpoint(resolve_endpoint(endpoint))
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        return sock

    def _read(self, reader: LineReader, timeout: Optional[float]) -> dict:
        try:
            response = recv_message(reader, timeout=timeout)
        except ProtocolError as exc:
            raise ServiceError(f"service spoke garbage: {exc}") from None
        if response is None:
            raise ServiceError("service closed the connection mid-request")
        if response.get("type") == "error":
            raise ServiceError(response.get("detail") or "request refused")
        return response

    def _request(self, message: dict, expect: str) -> dict:
        sock = self._dial()
        try:
            send_message(sock, message)
            response = self._read(LineReader(sock), self.timeout)
        except OSError as exc:
            raise ServiceError(f"request failed: {exc}") from None
        finally:
            sock.close()
        if response.get("type") != expect:
            raise ServiceError(
                f"unexpected response {response.get('type')!r} "
                f"(wanted {expect!r})"
            )
        return response

    # ------------------------------------------------------------------
    def submit(
        self,
        experiments: Sequence[str] = ("tables",),
        scale: str = "smoke",
        chaos: Optional[str] = None,
    ) -> str:
        """Enqueue a sweep; returns the job id immediately (async)."""
        response = self._request(
            {
                "type": "submit",
                "experiments": list(experiments),
                "scale": scale,
                "chaos": chaos,
            },
            expect="submitted",
        )
        return response["job_id"]

    def resume(self, job_id: str) -> str:
        """Re-queue a finished/failed job (completed units are skipped)."""
        response = self._request(
            {"type": "resume", "job_id": job_id}, expect="submitted"
        )
        return response["job_id"]

    def status(self, job_id: Optional[str] = None):
        """One job record, or every job when ``job_id`` is omitted."""
        if job_id:
            return self._request(
                {"type": "status", "job_id": job_id}, expect="job"
            )["job"]
        return self._request({"type": "status"}, expect="jobs")["jobs"]

    def metrics(self) -> str:
        """The Prometheus exposition body, over the JSON protocol."""
        return self._request({"type": "metrics"}, expect="metrics")["body"]

    def shutdown(self) -> None:
        self._request({"type": "shutdown"}, expect="bye")

    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[dict], None]] = None,
        from_seq: int = 0,
        timeout: Optional[float] = None,
    ) -> dict:
        """Stream a job's events until it finishes; returns the record.

        ``on_event`` receives each event dict as it arrives.  The
        optional ``timeout`` bounds the wait for *each* event, not the
        whole watch — a healthy long job keeps the stream alive with
        its per-unit progress.
        """
        sock = self._dial()
        events_seen: List[dict] = []
        try:
            send_message(
                sock,
                {"type": "watch", "job_id": job_id, "from_seq": from_seq},
            )
            reader = LineReader(sock)
            while True:
                response = self._read(reader, timeout or self.timeout)
                if response.get("type") == "event":
                    event = response.get("data") or {}
                    events_seen.append(event)
                    if on_event is not None:
                        on_event(event)
                    continue
                if response.get("type") == "watched":
                    job = response["job"]
                    job["events_streamed"] = len(events_seen)
                    return job
                raise ServiceError(
                    f"unexpected watch frame {response.get('type')!r}"
                )
        except OSError as exc:
            raise ServiceError(f"watch failed: {exc}") from None
        finally:
            sock.close()
