"""The dispatcher seam: one interface, local pool / isolated / sharded.

:class:`~repro.harness.scheduler.CampaignRunner` owns *what* runs —
task enumeration, retry budgets, checkpointing, manifest truth, the
result cache.  A :class:`Dispatcher` owns only *where* attempts
execute:

* :class:`LocalPoolDispatcher` — the persistent in-process worker
  pool, today's default, delegated verbatim to the runner's proven
  loop;
* :class:`IsolatedDispatcher` — one process per attempt (PR 1 mode),
  likewise delegated;
* :class:`ShardedDispatcher` — fans the same task graph out over N
  shard endpoints (``repro serve-worker`` processes reached over
  sockets, local or remote).

The sharded loop is a line-for-line sibling of the pool loop: the
same ``start``/``done`` contract, the same per-shard deadline arming,
the same settle rules — a dead shard's *started* tasks are charged a
crash attempt and retried, its *unstarted* tasks requeue to survivors
without consuming an attempt.  Completion, verification, caching and
manifest updates all go through the runner's own ``_complete`` /
``_fail_attempt`` helpers, which is why a sharded campaign's results
directory is byte-identical to a single-pool run's.

Every shard outcome is recorded in ``shards.json`` (a checksummed
``repro-shard-manifest/1`` envelope in the campaign directory) and
mirrored into the campaign manifest, so ``repro status`` and ``repro
doctor`` can audit per-shard wall-clock and deaths after the fact.
"""

from __future__ import annotations

import select
import socket
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..harness.errors import CRASH, TIMEOUT, AttemptFailure
from .protocol import (
    LineReader,
    ProtocolError,
    decode_message,
    recv_message,
    send_message,
)
from .shard import parse_endpoint

#: Per-shard outcome roster written to ``<campaign>/shards.json``.
SHARD_MANIFEST_SCHEMA = "repro-shard-manifest/1"
SHARD_MANIFEST_NAME = "shards.json"


class ShardError(RuntimeError):
    """The shard fleet cannot make progress (connect failure or
    every shard lost with work remaining)."""


class Dispatcher(ABC):
    """Executes a prepared task queue for a runner."""

    name = "dispatcher"

    @abstractmethod
    def run(self, runner, queue, report) -> None:
        """Drive ``queue`` to completion, mutating ``report``."""


class LocalPoolDispatcher(Dispatcher):
    """Persistent local worker pool — the historical default."""

    name = "pool"

    def run(self, runner, queue, report) -> None:
        runner._run_pool(queue, report)


class IsolatedDispatcher(Dispatcher):
    """One process per task attempt (``--isolate-tasks``)."""

    name = "isolated"

    def run(self, runner, queue, report) -> None:
        runner._run_isolated(queue, report)


@dataclass
class _Shard:
    """One connected shard and the batch it currently owns."""

    shard_id: str
    endpoint: str
    sock: socket.socket
    reader: LineReader
    pid: Optional[int] = None
    assigned: List = field(default_factory=list)  # of scheduler._PoolTask
    deadline: Optional[float] = None
    connected_at: float = 0.0
    released_at: Optional[float] = None
    tasks_done: int = 0
    busy_seconds: float = 0.0          # sum of in-shard task wall times
    died: Optional[str] = None         # loss reason, None while healthy

    @property
    def idle(self) -> bool:
        return not self.assigned

    def wall_seconds(self, now: float) -> float:
        end = self.released_at if self.released_at is not None else now
        return max(0.0, end - self.connected_at)


class ShardedDispatcher(Dispatcher):
    """Drive the campaign over N ``serve-worker`` endpoints."""

    name = "sharded"

    def __init__(
        self,
        endpoints: Sequence[str],
        connect_timeout: float = 15.0,
    ):
        if not endpoints:
            raise ShardError("sharded dispatch needs at least one endpoint")
        # Validate eagerly so a typo fails before any work is queued.
        for endpoint in endpoints:
            parse_endpoint(endpoint)
        self.endpoints = list(endpoints)
        self.connect_timeout = connect_timeout

    # -- fleet management ----------------------------------------------
    def _connect(self, endpoint: str, index: int) -> _Shard:
        host, port = parse_endpoint(endpoint)
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ShardError(f"cannot reach shard at {endpoint}: {exc}") from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        reader = LineReader(sock)
        try:
            hello = recv_message(reader, timeout=self.connect_timeout)
        except ProtocolError as exc:
            sock.close()
            raise ShardError(f"shard at {endpoint} spoke garbage: {exc}") from None
        if hello is None or hello.get("type") != "hello":
            sock.close()
            raise ShardError(
                f"shard at {endpoint} closed before saying hello"
            )
        return _Shard(
            shard_id=str(hello.get("shard_id") or f"shard-{index}"),
            endpoint=endpoint,
            sock=sock,
            reader=reader,
            pid=hello.get("pid"),
            connected_at=time.monotonic(),
        )

    def _release(self, shard: _Shard, shutdown: bool = False) -> None:
        shard.released_at = time.monotonic()
        try:
            send_message(
                shard.sock, {"type": "exit", "shutdown": bool(shutdown)}
            )
        except OSError:
            pass
        try:
            shard.sock.close()
        except OSError:  # pragma: no cover
            pass

    # -- persistence ----------------------------------------------------
    def _shard_summary(self, fleet: List[_Shard], lost: List[_Shard]) -> dict:
        now = time.monotonic()
        shards = []
        for shard in fleet + lost:
            shards.append(
                {
                    "shard_id": shard.shard_id,
                    "endpoint": shard.endpoint,
                    "pid": shard.pid,
                    "tasks_done": shard.tasks_done,
                    "busy_seconds": round(shard.busy_seconds, 6),
                    "wall_seconds": round(shard.wall_seconds(now), 6),
                    "died": shard.died,
                }
            )
        shards.sort(key=lambda record: record["shard_id"])
        return {
            "shards": shards,
            "total_shards": len(shards),
            "deaths": len(lost),
        }

    def _write_shard_manifest(self, runner, fleet, lost) -> dict:
        from ..fsio.durable import write_blob_json

        summary = self._shard_summary(fleet, lost)
        write_blob_json(
            runner.directory / SHARD_MANIFEST_NAME,
            summary,
            schema=SHARD_MANIFEST_SCHEMA,
        )
        return summary

    # -- per-message settle (the pool's _on_message, dict-framed) -------
    def _on_message(self, runner, shard, message, queue, report) -> None:
        kind = message.get("type")
        if kind == "start":
            task_id = message.get("task_id")
            for item in shard.assigned:
                if item.state.task.task_id == task_id:
                    item.started = True
                    break
            shard.deadline = time.monotonic() + runner.settings.task_timeout
            runner._event(
                "unit_start", task_id=task_id, shard=shard.shard_id
            )
            return
        if kind != "done":  # pragma: no cover - protocol guard
            return
        task_id = message.get("task_id")
        item = next(
            (i for i in shard.assigned if i.state.task.task_id == task_id),
            None,
        )
        if item is None:  # pragma: no cover - protocol guard
            return
        shard.assigned.remove(item)
        shard.deadline = (
            time.monotonic() + runner.settings.task_timeout
            if shard.assigned
            else None
        )
        elapsed = float(message.get("elapsed") or 0.0)
        shard.tasks_done += 1
        shard.busy_seconds += elapsed
        state = item.state
        state.attempts = item.attempt
        state.tries_this_run += 1
        if message.get("status") == "ok":
            failure = runner._complete(state, report, elapsed)
        else:
            failure = runner._error_failure(
                state, item.attempt, "worker task raised"
            )
        if failure is not None:
            requeue = runner._fail_attempt(state, report, failure)
            if requeue is not None:
                queue.append(requeue)

    def _drain(self, runner, shard, queue, report) -> None:
        """Process every complete message this shard has delivered."""
        for line in shard.reader.lines():
            try:
                message = decode_message(line)
            except ProtocolError:
                continue  # torn tail line of a dying shard
            self._on_message(runner, shard, message, queue, report)

    def _lose_shard(
        self, runner, shard, queue, report, kind, detail
    ) -> None:
        """Settle a dead/overdue shard's batch with zero loss.

        Exactly the pool's rules: messages flushed before death are
        honoured first (the drain), then *started* tasks are charged a
        failed attempt and retried, *unstarted* tasks requeue with no
        attempt consumed.
        """
        self._drain(runner, shard, queue, report)
        for item in shard.assigned:
            state = item.state
            if not item.started:
                queue.append(state)
                continue
            state.attempts = item.attempt
            state.tries_this_run += 1
            failure = AttemptFailure(
                state.task.task_id, item.attempt, kind, detail
            )
            requeue = runner._fail_attempt(state, report, failure)
            if requeue is not None:
                queue.append(requeue)
        shard.assigned.clear()
        shard.deadline = None
        shard.died = detail
        shard.released_at = time.monotonic()
        report.shard_deaths += 1
        runner._event(
            "shard_dead", shard=shard.shard_id, reason=detail
        )
        runner.progress(f"shard {shard.shard_id} lost ({detail}); requeued")
        try:
            shard.sock.close()
        except OSError:  # pragma: no cover
            pass

    # -- dispatch -------------------------------------------------------
    def _assign(self, runner, shard, eligible, queue, now) -> None:
        from ..harness.scheduler import _PoolTask

        batch: List[_PoolTask] = []
        payloads: List[str] = []
        while eligible and len(batch) < max(1, runner.settings.batch_size):
            state = eligible.pop(0)
            queue.remove(state)
            attempt = state.attempts + 1
            batch.append(_PoolTask(state=state, attempt=attempt))
            payloads.append(runner._payload(state, attempt))
        try:
            send_message(shard.sock, {"type": "run", "payloads": payloads})
        except OSError:
            # Shard died between accept and first dispatch; requeue
            # untouched — the reaper pass collects the corpse.
            for item in batch:
                queue.append(item.state)
            return
        shard.assigned.extend(batch)
        shard.deadline = now + runner.settings.task_timeout

    def _dispatch(self, runner, fleet, queue, now) -> None:
        eligible = [s for s in queue if s.next_eligible <= now]
        for shard in fleet:
            if not eligible:
                return
            if shard.idle:
                self._assign(runner, shard, eligible, queue, now)

    # -- the loop -------------------------------------------------------
    def run(self, runner, queue, report) -> None:
        fleet: List[_Shard] = [
            self._connect(endpoint, index)
            for index, endpoint in enumerate(self.endpoints)
        ]
        lost: List[_Shard] = []
        runner.progress(
            f"sharded dispatch: {len(fleet)} shards "
            f"({', '.join(s.shard_id for s in fleet)})"
        )
        for shard in fleet:
            runner._event(
                "shard_up",
                shard=shard.shard_id,
                endpoint=shard.endpoint,
                pid=shard.pid,
            )
        self._write_shard_manifest(runner, fleet, lost)
        try:
            while queue or any(s.assigned for s in fleet):
                if runner._stop_requested(report):
                    break
                now = time.monotonic()
                # Overdue shards: drain first — progress that already
                # arrived clears the deadline — then declare the loss.
                for shard in list(fleet):
                    if shard.deadline is None or now < shard.deadline:
                        continue
                    self._drain(runner, shard, queue, report)
                    if (
                        shard.deadline is None
                        or time.monotonic() < shard.deadline
                    ):
                        continue
                    self._lose_shard(
                        runner, shard, queue, report,
                        TIMEOUT,
                        f"exceeded {runner.settings.task_timeout:g}s deadline",
                    )
                    fleet.remove(shard)
                    lost.append(shard)
                if not fleet:
                    remaining = len(queue)
                    self._write_shard_manifest(runner, fleet, lost)
                    raise ShardError(
                        f"all {len(lost)} shards lost with "
                        f"{remaining} tasks incomplete; "
                        f"resume with surviving shards"
                    )
                self._dispatch(runner, fleet, queue, time.monotonic())
                timeout = runner._wait_timeout(
                    queue,
                    [s.deadline for s in fleet if s.deadline is not None],
                    time.monotonic(),
                )
                readable, _, _ = select.select(
                    [s.sock for s in fleet], [], [], timeout
                )
                ready = {id(s.sock): s for s in fleet}
                for sock in readable:
                    shard = ready.get(id(sock))
                    if shard is None:  # pragma: no cover
                        continue
                    alive = True
                    try:
                        alive = shard.reader.fill()
                    except ProtocolError:
                        alive = False
                    self._drain(runner, shard, queue, report)
                    if not alive or shard.reader.eof:
                        self._lose_shard(
                            runner, shard, queue, report,
                            CRASH, "shard connection lost",
                        )
                        fleet.remove(shard)
                        lost.append(shard)
        finally:
            for shard in fleet:
                self._release(shard)
            summary = self._write_shard_manifest(runner, fleet, lost)
            runner.manifest.shards = summary
            runner.manifest.save()
            report.shard_walls = {
                record["shard_id"]: record["wall_seconds"]
                for record in summary["shards"]
            }


def make_dispatcher(settings) -> Dispatcher:
    """Pick the dispatcher a :class:`CampaignSettings` asks for."""
    if getattr(settings, "shards", None):
        return ShardedDispatcher(settings.shards)
    if settings.isolate_tasks:
        return IsolatedDispatcher()
    return LocalPoolDispatcher()
