"""Process-wide storage health counters, registered in the spine.

Every durability event the fsio layer observes — a checksum that
failed, a write that could not complete, an artefact moved to
quarantine, an injected fault firing — bumps a plain ``int`` attribute
here, exactly the declare-once / collect-at-boundaries discipline the
rest of the metrics spine follows.  ``repro doctor`` and the tests
read them; nothing in the hot path ever does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.registry import register_metric

register_metric("storage", "quarantined", "count",
                "Artefacts moved to a quarantine/ directory after failing "
                "an integrity check")
register_metric("storage", "checksum_failures", "count",
                "Envelope payloads whose recorded SHA-256 or length no "
                "longer matched their bytes")
register_metric("storage", "write_failures", "count",
                "Atomic writes that failed (ENOSPC, EIO, permissions) and "
                "were degraded by the owning layer")
register_metric("storage", "read_failures", "count",
                "Artefact reads that failed at the OS level and were "
                "treated as misses")
register_metric("storage", "faults_injected", "count",
                "Disk faults the deterministic injector actually fired "
                "(chaos and test harness use only)")


@dataclass
class StorageHealth:
    """Counters for every durability event the fsio layer observes."""

    quarantined: int = 0
    checksum_failures: int = 0
    write_failures: int = 0
    read_failures: int = 0
    faults_injected: int = 0

    def reset(self) -> None:
        self.quarantined = 0
        self.checksum_failures = 0
        self.write_failures = 0
        self.read_failures = 0
        self.faults_injected = 0


#: The process-wide health ledger (one per worker process).
HEALTH = StorageHealth()
