"""Deterministic filesystem fault injection behind the fsio API.

Sibling of :mod:`repro.harness.chaos`, one layer down: where chaos
decides whether a *task attempt* misbehaves, this decides whether a
single *disk operation* does — a torn write, a short read, ENOSPC,
EIO, or a payload bit flip.  Every decision is a pure function of
``(seed, path, op, attempt)``, so a failing fuzz run is replayable
from its seed alone and the crash-consistency tests can demand a fault
at an exact byte offset.

Nothing in this module touches the filesystem.  It only *plans*
faults; :mod:`~repro.fsio.durable` consults the active injector at its
read/write choke points and executes the plan.  Production code paths
never install an injector — only ``--chaos`` workers and tests do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

DISK_TORN = "disk-torn"
DISK_ENOSPC = "disk-enospc"
DISK_FLIP = "disk-flip"
DISK_SHORT_READ = "disk-short-read"
DISK_EIO = "disk-eio"

#: Kinds selectable through ``--chaos kinds=...`` (write-side faults a
#: campaign must survive end-to-end).
DISK_CHAOS_KINDS: Tuple[str, ...] = (DISK_TORN, DISK_ENOSPC, DISK_FLIP)

#: Every kind the injector understands; the read-side kinds are used
#: directly by tests and the doctor harness.
DISK_FAULT_KINDS: Tuple[str, ...] = DISK_CHAOS_KINDS + (
    DISK_SHORT_READ,
    DISK_EIO,
)

_WRITE_KINDS = frozenset((DISK_TORN, DISK_ENOSPC, DISK_FLIP))
_READ_KINDS = frozenset((DISK_SHORT_READ, DISK_EIO))

_DIGIT_SWAP = bytes.maketrans(b"0123456789", b"9876543210")


@dataclass(frozen=True)
class FaultPlan:
    """A fault the injector decided to fire, plus how to execute it.

    ``digest`` seeds the data-dependent details (where to tear, which
    byte to flip); ``cut`` pins the torn/short boundary to an exact
    offset for the kill-at-every-offset harness.
    """

    kind: str
    digest: bytes
    cut: Optional[int] = None

    def cut_length(self, total: int) -> int:
        """Bytes that survive a torn write / short read of ``total``."""
        if self.cut is not None:
            return max(0, min(total, self.cut))
        if total < 2:
            return 0
        fraction = 0.1 + 0.8 * (
            int.from_bytes(self.digest[:8], "big") / 2**64
        )
        return max(1, min(total - 1, int(total * fraction)))

    def flip(self, data: bytes) -> bytes:
        """Corrupt ``data`` so it stays parseable but fails checksums.

        Swaps one ASCII digit inside the envelope's payload region
        (``d -> 9-d``, never a fixed point), chosen by the plan digest.
        The result is still valid JSON with an intact ``format`` field,
        so only the checksum — not a parse error — can catch it: the
        hardest corruption for a reader to notice.
        """
        start = data.find(b'"payload"')
        start = 0 if start < 0 else start + len(b'"payload"')
        end = data.find(b'"schema"', start)
        if end < 0:
            end = len(data)
        positions = [
            i for i in range(start, end) if 0x30 <= data[i] <= 0x39
        ]
        if not positions:  # no digits in payload: hit anything after it
            positions = [
                i for i in range(start, len(data)) if 0x30 <= data[i] <= 0x39
            ]
        if not positions:
            # Digit-free data: make it unparsable instead.
            return data[:-1] + bytes([data[-1] ^ 0xFF]) if data else data
        target = positions[
            int.from_bytes(self.digest[8:16], "big") % len(positions)
        ]
        mutated = bytearray(data)
        mutated[target] = data[target : target + 1].translate(_DIGIT_SWAP)[0]
        return bytes(mutated)


def _eligible(kinds: Tuple[str, ...], op: str) -> Tuple[str, ...]:
    allowed = _WRITE_KINDS if op == "write" else _READ_KINDS
    return tuple(k for k in kinds if k in allowed)


@dataclass(frozen=True)
class DiskFaultConfig:
    """Probabilistic fault schedule: pure in ``(seed, path, op, attempt)``.

    The draw keys on the file's *basename*, not its absolute path, so a
    schedule replays identically across scratch directories.
    """

    seed: int
    p: float
    kinds: Tuple[str, ...] = DISK_CHAOS_KINDS

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        unknown = [k for k in self.kinds if k not in DISK_FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown disk fault kinds {unknown}; "
                f"known: {', '.join(DISK_FAULT_KINDS)}"
            )

    def decide(
        self, path: PathLike, op: str, attempt: int
    ) -> Optional[FaultPlan]:
        eligible = _eligible(self.kinds, op)
        if not eligible or self.p <= 0.0:
            return None
        key = f"repro-disk:{self.seed}:{Path(path).name}:{op}:{attempt}"
        digest = hashlib.sha256(key.encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        if draw >= self.p:
            return None
        kind = eligible[int.from_bytes(digest[8:12], "big") % len(eligible)]
        return FaultPlan(kind, digest)


class FaultInjector:
    """Installable injector driven by a :class:`DiskFaultConfig`.

    Tracks a per-``(basename, op)`` attempt counter so a retried write
    draws a fresh decision each time — the same convergence property
    task-level chaos has: with p < 1 every artefact eventually lands.
    """

    def __init__(self, config: DiskFaultConfig):
        self.config = config
        self._attempts: Dict[Tuple[str, str], int] = {}

    def plan(self, path: PathLike, op: str) -> Optional[FaultPlan]:
        key = (Path(path).name, op)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        return self.config.decide(path, op, attempt)

    def __enter__(self) -> "FaultInjector":
        _install(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _uninstall(self)


class OneShotFault:
    """Fire ``kind`` exactly once, on the first matching operation.

    This is how chaos workers arm a disk fault for one specific result
    write, and how the crash-consistency harness tears a write at an
    exact offset (``cut=``).  Matching is by basename so callers can
    arm before the final path's directory even exists.
    """

    def __init__(
        self,
        kind: str,
        path: PathLike,
        op: Optional[str] = None,
        digest: Optional[bytes] = None,
        cut: Optional[int] = None,
    ):
        if kind not in DISK_FAULT_KINDS:
            raise ValueError(f"unknown disk fault kind {kind!r}")
        self.kind = kind
        self._name = Path(path).name
        self._op = op or ("write" if kind in _WRITE_KINDS else "read")
        if digest is None:
            digest = hashlib.sha256(
                f"repro-oneshot:{kind}:{self._name}".encode()
            ).digest()
        self._digest = digest
        self._cut = cut
        self.fired = False

    def plan(self, path: PathLike, op: str) -> Optional[FaultPlan]:
        if self.fired or op != self._op or Path(path).name != self._name:
            return None
        self.fired = True
        return FaultPlan(self.kind, self._digest, cut=self._cut)

    def __enter__(self) -> "OneShotFault":
        _install(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _uninstall(self)


# ----------------------------------------------------------------------
# installation (per-process; workers are processes, so no locking)

_ACTIVE: List[object] = []
_FIRED: List[Dict[str, str]] = []


def _install(injector: object) -> None:
    _ACTIVE.append(injector)


def _uninstall(injector: object) -> None:
    if injector in _ACTIVE:
        _ACTIVE.remove(injector)


def active_injector() -> Optional[object]:
    """The innermost installed injector, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def consult(path: PathLike, op: str) -> Optional[FaultPlan]:
    """Ask the installed injectors (innermost first) for a fault plan."""
    for injector in reversed(_ACTIVE):
        plan = injector.plan(path, op)  # type: ignore[attr-defined]
        if plan is not None:
            _FIRED.append(
                {"path": str(path), "op": op, "kind": plan.kind}
            )
            return plan
    return None


def injected_faults(clear: bool = False) -> List[Dict[str, str]]:
    """Faults fired in this process (newest last); optionally reset."""
    fired = list(_FIRED)
    if clear:
        _FIRED.clear()
    return fired
