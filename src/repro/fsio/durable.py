"""Atomic writes and the checksummed ``repro-blob/1`` envelope.

Two primitives everything else builds on:

* :func:`atomic_write_bytes` — serialise to a temporary file in the
  *same directory*, ``fsync`` it, ``os.replace`` over the final path,
  then ``fsync`` the parent directory so the rename survives a power
  cut.  A reader only ever sees the previous complete version or the
  new complete version, never a torn write.
* the **blob envelope** — a versioned wrapper carrying a schema tag,
  the payload's canonical length and its SHA-256, so a reader can
  prove an artefact is the artefact its writer finished, not a prefix
  of it or a bit-rotted sibling.  JSON artefacts use the JSON form::

      {"format": "repro-blob/1", "schema": "<tag>",
       "length": N, "sha256": "<hex>", "payload": {...}}

  where length/sha256 are computed over the *canonical JSON* rendering
  of the payload (sorted keys, compact separators), so they are stable
  under any outer pretty-printing.  Binary artefacts (the ``.sizes``
  sidecars) use a packed header form with the same fields.

Both readers accept **legacy passthrough**: a document that is not an
envelope is returned unchanged (JSON) or flagged (binary), so
artefacts committed before this layer existed keep loading.

All reads and writes consult the active fault injector
(:mod:`~repro.fsio.faults`), which is how ``--chaos`` disk kinds and
the crash-consistency tests reach inside this API.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from ..manifest import canonical_json
from . import faults
from .health import HEALTH

PathLike = Union[str, Path]

BLOB_FORMAT = "repro-blob/1"

#: Binary envelope: magic, version, schema length, payload length,
#: payload SHA-256 (raw digest); schema bytes then payload follow.
_BIN_MAGIC = b"REPROBLB"
_BIN_VERSION = 1
_BIN_HEADER = struct.Struct("<8sHHQ32s")


class BlobError(ValueError):
    """An envelope failed integrity validation.

    ``defect`` is a stable taxonomy token (``truncated``,
    ``checksum-mismatch``, ``length-mismatch``, ``schema-mismatch``,
    ``malformed-envelope``) the doctor's failure report groups by.
    """

    def __init__(self, path: Optional[PathLike], reason: str, defect: str):
        prefix = f"{path}: " if path is not None else ""
        super().__init__(f"{prefix}{reason}")
        self.path = str(path) if path is not None else None
        self.reason = reason
        self.defect = defect


# ----------------------------------------------------------------------
# atomic primitives


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _file_sha256(path: Path) -> str:
    # Routed through the traceio stat-memo so a write immediately
    # primes the hash the checkpoint verifier reads back.  Imported
    # lazily to keep fsio importable without the workloads package
    # mid-initialisation.
    from ..workloads.traceio import file_sha256_cached

    return file_sha256_cached(path)


def atomic_write_bytes(path: PathLike, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; return its hex SHA-256.

    The temporary file carries the writer's PID so concurrent workers
    retrying the same artefact never collide on the tmp name either.
    An active fault injector may tear the write (partial bytes land at
    the final path, non-atomically), flip payload bytes, or raise
    ``ENOSPC`` before anything is written.
    """
    path = Path(path)
    plan = faults.consult(path, "write")
    if plan is not None:
        HEALTH.faults_injected += 1
        if plan.kind == faults.DISK_ENOSPC:
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC (disk fault) writing {path}"
            )
        if plan.kind == faults.DISK_TORN:
            # A torn write: a prefix lands at the final path with no
            # tmp+rename — exactly the failure the envelope must catch.
            torn = data[: plan.cut_length(len(data))]
            with open(path, "wb") as fh:
                fh.write(torn)
            return _file_sha256(path)
        if plan.kind == faults.DISK_FLIP:
            data = plan.flip(data)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed; don't litter
            tmp.unlink()
    _fsync_dir(path.parent)
    return _file_sha256(path)


def durable_replace(tmp: PathLike, path: PathLike) -> None:
    """Commit an already-written temp file: fsync, rename, dir-fsync.

    For writers that stream their own format to a temp file (the trace
    saver) and only need the crash-safe commit step.
    """
    tmp, path = Path(tmp), Path(path)
    with open(tmp, "rb") as fh:
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def dump_json(obj: Any) -> bytes:
    """Canonical pretty JSON (sorted keys, stable layout).

    Determinism matters: a resumed campaign must reproduce the bytes
    of an uninterrupted one, so artefacts must serialise identically
    run-to-run.
    """
    return (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()


def atomic_write_json(path: PathLike, obj: Any) -> str:
    """Atomically write canonical JSON; return the file's SHA-256."""
    return atomic_write_bytes(path, dump_json(obj))


def read_bytes(path: PathLike) -> bytes:
    """Read a file's bytes through the fault-injection point.

    An active injector may shorten the read (a prefix is returned) or
    raise ``EIO``; callers must treat the result as untrusted until an
    envelope validates it.
    """
    path = Path(path)
    plan = faults.consult(path, "read")
    if plan is not None:
        HEALTH.faults_injected += 1
        if plan.kind == faults.DISK_EIO:
            raise OSError(errno.EIO, f"injected EIO (disk fault) reading {path}")
    data = path.read_bytes()
    if plan is not None and plan.kind == faults.DISK_SHORT_READ:
        return data[: plan.cut_length(len(data))]
    return data


# ----------------------------------------------------------------------
# JSON envelope


def payload_bytes(payload: Any) -> bytes:
    """The canonical byte rendering the envelope checksums cover."""
    return canonical_json(payload).encode("utf-8")


def wrap_json(
    payload: Any, schema: str, annotations: Optional[dict] = None
) -> dict:
    """Wrap a JSON-able payload in a checksummed envelope document."""
    blob = payload_bytes(payload)
    envelope = {
        "format": BLOB_FORMAT,
        "schema": schema,
        "length": len(blob),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "payload": payload,
    }
    if annotations:
        envelope["annotations"] = dict(annotations)
    return envelope


def is_blob_payload(data: Any) -> bool:
    """Does this parsed JSON document look like an envelope?"""
    return (
        isinstance(data, dict)
        and data.get("format") == BLOB_FORMAT
        and "payload" in data
    )


def unwrap_json(
    data: Any, schema: Optional[str] = None, path: Optional[PathLike] = None
) -> Any:
    """Validate an envelope document and return its payload.

    A document that is not an envelope at all passes through unchanged
    (legacy artefacts); a document that *claims* to be one must verify
    or :class:`BlobError` is raised (and the checksum-failure counter
    bumped).  ``schema``, when given, must match the recorded tag.
    """
    if not is_blob_payload(data):
        return data
    recorded_schema = data.get("schema")
    if not isinstance(recorded_schema, str) or not recorded_schema:
        raise BlobError(path, "envelope has no schema tag", "malformed-envelope")
    if schema is not None and recorded_schema != schema:
        raise BlobError(
            path,
            f"schema mismatch: {recorded_schema!r} != {schema!r}",
            "schema-mismatch",
        )
    payload = data["payload"]
    blob = payload_bytes(payload)
    length = data.get("length")
    if length != len(blob):
        HEALTH.checksum_failures += 1
        raise BlobError(
            path,
            f"length mismatch: recorded {length}, payload is {len(blob)} bytes",
            "length-mismatch",
        )
    digest = hashlib.sha256(blob).hexdigest()
    if data.get("sha256") != digest:
        HEALTH.checksum_failures += 1
        raise BlobError(
            path,
            f"payload sha256 mismatch: recorded {data.get('sha256')!r}, "
            f"bytes hash to {digest}",
            "checksum-mismatch",
        )
    return payload


def write_blob_json(
    path: PathLike,
    payload: Any,
    schema: str,
    annotations: Optional[dict] = None,
) -> str:
    """Atomically write an envelope-wrapped JSON artefact."""
    return atomic_write_json(path, wrap_json(payload, schema, annotations))


# ----------------------------------------------------------------------
# binary envelope


def wrap_bytes(payload: bytes, schema: str) -> bytes:
    """Wrap raw payload bytes in the packed binary envelope."""
    schema_bytes = schema.encode("utf-8")
    header = _BIN_HEADER.pack(
        _BIN_MAGIC,
        _BIN_VERSION,
        len(schema_bytes),
        len(payload),
        hashlib.sha256(payload).digest(),
    )
    return header + schema_bytes + payload


def is_binary_blob(data: bytes) -> bool:
    return data[: len(_BIN_MAGIC)] == _BIN_MAGIC


def unwrap_bytes(
    data: bytes, schema: Optional[str] = None, path: Optional[PathLike] = None
) -> Tuple[str, bytes]:
    """Validate a binary envelope; return ``(schema, payload)``.

    Unlike the JSON form there is no passthrough here — callers decide
    what a non-envelope byte string means for their format (the sizes
    sidecar loader, for instance, treats it as a legacy sidecar).
    """
    if len(data) < _BIN_HEADER.size:
        raise BlobError(
            path,
            f"truncated envelope header ({len(data)} of "
            f"{_BIN_HEADER.size} bytes)",
            "truncated",
        )
    magic, version, schema_len, length, digest = _BIN_HEADER.unpack_from(data)
    if magic != _BIN_MAGIC:
        raise BlobError(path, "not a repro blob (bad magic)", "malformed-envelope")
    if version != _BIN_VERSION:
        raise BlobError(
            path, f"unsupported envelope version {version}", "malformed-envelope"
        )
    offset = _BIN_HEADER.size
    recorded_schema = data[offset : offset + schema_len].decode(
        "utf-8", errors="replace"
    )
    if schema is not None and recorded_schema != schema:
        raise BlobError(
            path,
            f"schema mismatch: {recorded_schema!r} != {schema!r}",
            "schema-mismatch",
        )
    payload = data[offset + schema_len :]
    if len(payload) != length:
        HEALTH.checksum_failures += 1
        raise BlobError(
            path,
            f"length mismatch: recorded {length}, {len(payload)} bytes present",
            "length-mismatch",
        )
    if hashlib.sha256(payload).digest() != digest:
        HEALTH.checksum_failures += 1
        raise BlobError(path, "payload sha256 mismatch", "checksum-mismatch")
    return recorded_schema, payload
