"""Crash-consistent artifact I/O (the storage reliability floor).

PRs 3-5 made the reproduction deeply stateful on disk — result cache,
warm snapshots, ``.trc``/``.sizes`` caches, checkpoints, manifests,
BENCH artefacts — and a torn write, ENOSPC or bit flip in any of them
could silently poison a resume.  This package is the one place all of
that state flows through:

* :mod:`~repro.fsio.durable` — atomic writes (tmp + fsync + rename +
  parent-dir fsync) and the checksummed ``repro-blob/1`` envelope
  (schema tag + payload length + payload SHA-256) every persisted
  artefact is wrapped in;
* :mod:`~repro.fsio.faults` — a deterministic filesystem fault
  injector in the style of :mod:`repro.harness.chaos` (a pure function
  of ``(seed, path, op, attempt)``) that tears writes, shortens reads,
  and raises ENOSPC/EIO *behind* the fsio API, so every recovery path
  is testable;
* :mod:`~repro.fsio.quarantine` — graceful degradation: detected
  corruption moves the entry into a ``quarantine/`` subdirectory with
  a structured reason record and the owning layer degrades (cache miss
  → recompute, sidecar loss → redraw, checkpoint damage → resume from
  the last valid record) instead of raising;
* :mod:`~repro.fsio.doctor` — the audit behind ``repro doctor``:
  verify every artefact class's envelopes, re-validate RunRecord
  schemas, detect stale fingerprints, report a failure taxonomy.

Per-class health counters live in :mod:`~repro.fsio.health` and are
registered in the metrics spine (``storage.*``).

See ``docs/harness.md`` ("Failure taxonomy & durability").
"""

from .durable import (
    BLOB_FORMAT,
    BlobError,
    atomic_write_bytes,
    atomic_write_json,
    dump_json,
    is_blob_payload,
    is_binary_blob,
    read_bytes,
    unwrap_bytes,
    unwrap_json,
    wrap_bytes,
    wrap_json,
)
from .faults import (
    DISK_CHAOS_KINDS,
    DISK_EIO,
    DISK_ENOSPC,
    DISK_FAULT_KINDS,
    DISK_FLIP,
    DISK_SHORT_READ,
    DISK_TORN,
    DiskFaultConfig,
    FaultInjector,
    OneShotFault,
    active_injector,
    injected_faults,
)
from .health import HEALTH, StorageHealth
from .quarantine import QUARANTINE_DIRNAME, quarantine_file

__all__ = [
    "BLOB_FORMAT",
    "BlobError",
    "DISK_CHAOS_KINDS",
    "DISK_EIO",
    "DISK_ENOSPC",
    "DISK_FAULT_KINDS",
    "DISK_FLIP",
    "DISK_SHORT_READ",
    "DISK_TORN",
    "DiskFaultConfig",
    "FaultInjector",
    "HEALTH",
    "OneShotFault",
    "QUARANTINE_DIRNAME",
    "StorageHealth",
    "active_injector",
    "atomic_write_bytes",
    "atomic_write_json",
    "dump_json",
    "injected_faults",
    "is_binary_blob",
    "is_blob_payload",
    "quarantine_file",
    "read_bytes",
    "unwrap_bytes",
    "unwrap_json",
    "wrap_bytes",
    "wrap_json",
]
