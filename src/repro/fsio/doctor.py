"""``repro doctor``: audit every artefact class the repo persists.

One walk over campaign directories, result/trace caches, bench
artefacts and golden digests, checking each file at the level its
format allows:

* ``repro-blob/1`` envelopes — checksum, declared length, schema tag;
* campaign manifests — envelope plus per-task ``verify_result`` of
  every COMPLETE entry against its recorded sha256;
* result-cache entries — envelope, payload shape, embedded RunRecord
  against the *current* metric registry, and annotation fingerprints
  against the live :func:`~repro.memo.fingerprint.code_fingerprint`
  (a mismatch is *stale*, reported as a warning, never corruption);
* ``.sizes`` sidecars — envelope plus the legacy REPROSZC structure;
* ``.trc`` traces — header magic/version/record-count vs bytes
  present;
* committed goldens — byte-equality with the embedded digest literal.

Findings carry a defect token from the shared taxonomy (``truncated``,
``checksum-mismatch``, ``schema-mismatch``, ``stale-fingerprint``, …)
and a severity: ``error`` findings are corruption, ``warn`` findings
are degraded-but-safe states (stale cache entries, legacy pre-envelope
artefacts stay *valid* and produce no finding at all).  ``--repair``
moves error-class files to the owning ``quarantine/`` with a reason
record; ``--strict`` (the CI leg) exits nonzero on any error finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .durable import (
    BlobError,
    is_binary_blob,
    is_blob_payload,
    unwrap_json,
)
from .quarantine import QUARANTINE_DIRNAME, REASON_SUFFIX, quarantine_file

PathLike = Union[str, Path]

SEVERITY_ERROR = "error"
SEVERITY_WARN = "warn"

ACTION_NONE = "none"
ACTION_QUARANTINED = "quarantined"
ACTION_REPAIR_FAILED = "repair-failed"


@dataclass
class Finding:
    """One defective (or degraded) artefact the audit surfaced."""

    path: str
    category: str       # artefact class: campaign-result, result-cache, ...
    defect: str         # taxonomy token: checksum-mismatch, truncated, ...
    detail: str         # human-readable specifics
    severity: str = SEVERITY_ERROR
    action: str = ACTION_NONE

    def line(self) -> str:
        tag = "FAIL" if self.severity == SEVERITY_ERROR else "warn"
        suffix = f" [{self.action}]" if self.action != ACTION_NONE else ""
        return (
            f"  {tag}: {self.path} ({self.category}/{self.defect}): "
            f"{self.detail}{suffix}"
        )


@dataclass
class DoctorReport:
    """Outcome of one audit: what was checked, what was wrong."""

    findings: List[Finding] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARN]

    @property
    def ok(self) -> bool:
        """No corruption found (warnings do not fail the audit)."""
        return not self.errors

    def taxonomy(self) -> Dict[str, int]:
        """Finding count per ``category/defect`` pair."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = f"{finding.category}/{finding.defect}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        lines = [
            f"doctor {verdict}: {len(self.checked)} artefacts checked, "
            f"{len(self.errors)} corrupt, {len(self.warnings)} warnings"
        ]
        for key, count in sorted(self.taxonomy().items()):
            lines.append(f"  {key}: {count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Envelope-level checks shared by every JSON artefact class.
def _load_json(path: Path) -> Tuple[Optional[Any], Optional[Finding]]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return None, Finding(
            str(path), "artefact", "unreadable", str(exc)
        )
    except ValueError as exc:
        return None, Finding(
            str(path), "artefact", "malformed-envelope",
            f"not JSON ({exc})",
        )
    return data, None


def _category_for_schema(schema: Optional[str]) -> str:
    """Artefact class implied by an envelope's schema tag."""
    mapping = {
        "repro-task-result/1": "campaign-result",
        "repro-task-error/1": "campaign-error",
        "repro-campaign/1": "campaign-manifest",
        "repro-campaign-meta/1": "campaign-meta",
        "repro-result-cache/1": "result-cache",
        "repro-bench-artifact/1": "bench",
        "repro-sizes/1": "sizes-sidecar",
        "repro-quarantine/1": "quarantine-reason",
        "repro-explore-meta/1": "explore-meta",
        "repro-explore-rung/1": "explore-rung",
        "repro-explore-confirm/1": "explore-confirm",
        "repro-explore-frontier/1": "explore-frontier",
        "repro-analytical-reference/1": "analytical-reference",
        "repro-service-event/1": "service-event",
        "repro-service-job/1": "service-job",
        "repro-service-ledger/1": "service-ledger",
        "repro-shard-manifest/1": "shard-manifest",
        "repro-shard-announce/1": "shard-announce",
    }
    return mapping.get(schema or "", "artefact")


def _check_run_record(payload: Any, source: str, category: str) -> List[Finding]:
    """Validate an embedded RunRecord against the current schema."""
    from ..metrics import RunRecord, SchemaError, is_run_record_payload

    candidate = payload
    if isinstance(payload, dict) and not is_run_record_payload(payload):
        candidate = payload.get("result")
    if not is_run_record_payload(candidate):
        return []  # nothing record-shaped to validate at this layer
    try:
        RunRecord.from_json(candidate)
    except SchemaError as exc:
        return [
            Finding(source, category, "schema-mismatch",
                    f"RunRecord fails current schema: {exc}")
        ]
    return []


def _audit_json_file(
    path: Path, category: Optional[str] = None
) -> List[Finding]:
    """Audit one ``*.json`` artefact (enveloped or legacy)."""
    data, finding = _load_json(path)
    if finding is not None:
        if category:
            finding.category = category
        return [finding]
    if not is_blob_payload(data):
        # Legacy pre-envelope artefacts are valid by contract; the only
        # check they support is the RunRecord schema, if they embed one.
        return _check_run_record(data, str(path), category or "artefact")
    schema = data.get("schema") if isinstance(data, dict) else None
    resolved = category or _category_for_schema(schema)
    try:
        payload = unwrap_json(data, path=path)
    except BlobError as exc:
        return [Finding(str(path), resolved, exc.defect, exc.reason)]
    findings = _check_run_record(payload, str(path), resolved)
    if schema == "repro-result-cache/1":
        findings.extend(_check_cache_annotations(path, data))
    return findings


def _check_cache_annotations(path: Path, envelope: dict) -> List[Finding]:
    """Stale-fingerprint detection on result-cache annotations."""
    from ..memo.fingerprint import code_fingerprint

    annotations = envelope.get("annotations")
    if not isinstance(annotations, dict):
        return []
    recorded = annotations.get("fingerprint")
    if recorded is None or recorded == code_fingerprint():
        return []
    return [
        Finding(
            str(path), "result-cache", "stale-fingerprint",
            f"written by code fingerprint {str(recorded)[:12]}…, "
            "current code differs (entry can never be served)",
            severity=SEVERITY_WARN,
        )
    ]


def _audit_sizes_file(path: Path) -> List[Finding]:
    from ..workloads.cache import SidecarError, _parse_sidecar

    try:
        blob = path.read_bytes()
    except OSError as exc:
        return [Finding(str(path), "sizes-sidecar", "unreadable", str(exc))]
    try:
        _parse_sidecar(path, blob)
    except SidecarError as exc:
        defect = "checksum-mismatch" if is_binary_blob(blob) else "truncated"
        # _parse_sidecar reasons already distinguish envelope defects.
        for token in ("truncated", "checksum-mismatch", "length-mismatch",
                      "schema-mismatch", "malformed-envelope"):
            if token in exc.reason:
                defect = token
                break
        return [Finding(str(path), "sizes-sidecar", defect, exc.reason)]
    return []


def _audit_trace_file(path: Path) -> List[Finding]:
    from ..workloads.traceio import TraceFormatError, validate_trace

    try:
        validate_trace(path)
    except TraceFormatError as exc:
        return [Finding(str(path), "trace", "truncated", str(exc))]
    except OSError as exc:
        return [Finding(str(path), "trace", "unreadable", str(exc))]
    return []


def _audit_goldens(path: Path) -> List[Finding]:
    from ..memo.fingerprint import EMBEDDED_GOLDEN_DIGESTS

    data, finding = _load_json(path)
    if finding is not None:
        finding.category = "goldens"
        return [finding]
    if data != EMBEDDED_GOLDEN_DIGESTS:
        return [
            Finding(
                str(path), "goldens", "checksum-mismatch",
                "digests diverge from the embedded literal in "
                "repro.memo.fingerprint",
            )
        ]
    return []


#: Marker file of an exploration directory (see repro.explore).
EXPLORE_META_NAME = "explore.meta.json"


def _audit_explore_file(path: Path, category: str) -> List[Finding]:
    """Audit one explorer artefact: envelope plus every embedded record.

    Rung/confirm artefacts carry one ``repro-run/1`` RunRecord per
    (point, workload) evaluation and the frontier carries a summary
    record; all are validated against the current metric registry so
    ``--strict`` catches drifted explorer output, not just bit rot.
    """
    findings = _audit_json_file(path, category)
    if findings:
        return findings
    data, finding = _load_json(path)
    if finding is not None or not is_blob_payload(data):
        return findings  # legacy/unenveloped: nothing deeper to check
    try:
        payload = unwrap_json(data, path=path)
    except BlobError:
        return findings  # already reported by _audit_json_file
    if not isinstance(payload, dict):
        return findings
    records: List[Any] = []
    for evaluation in payload.get("evaluations", ()):
        if isinstance(evaluation, dict):
            records.extend(evaluation.get("records", ()))
    if payload.get("summary_record") is not None:
        records.append(payload["summary_record"])
    for index, record in enumerate(records):
        findings.extend(
            _check_run_record(record, f"{path}#records[{index}]", category)
        )
    return findings


def _audit_explore(directory: Path, report: DoctorReport) -> List[Finding]:
    """Audit an exploration directory (meta + rungs + confirm + frontier).

    A killed exploration legitimately stops after any durable write —
    missing *later* stages are resumable state, not corruption.  What
    is flagged as an error: a rung present without its predecessor, or
    a frontier without the confirm tier it summarises (a lost
    checkpoint the resume path cannot reconstruct silently).
    """
    findings: List[Finding] = []
    meta_path = directory / EXPLORE_META_NAME
    report.checked.append(str(meta_path))
    findings.extend(_audit_json_file(meta_path, "explore-meta"))

    rung_indices = set()
    for path in sorted(directory.glob("rung_*.json")):
        report.checked.append(str(path))
        findings.extend(_audit_explore_file(path, "explore-rung"))
        suffix = path.stem.rpartition("_")[2]
        if suffix.isdigit():
            rung_indices.add(int(suffix))
    for index in sorted(rung_indices):
        if index > 0 and index - 1 not in rung_indices:
            missing = directory / f"rung_{index - 1}.json"
            findings.append(Finding(
                str(missing), "explore-rung", "missing-artefact",
                f"rung_{index}.json exists but its predecessor is gone "
                "(lost checkpoint; resume would recompute silently)",
            ))

    confirm = directory / "confirm.json"
    if confirm.exists():
        report.checked.append(str(confirm))
        findings.extend(_audit_explore_file(confirm, "explore-confirm"))

    frontier = directory / "frontier.json"
    if frontier.exists():
        report.checked.append(str(frontier))
        findings.extend(_audit_explore_file(frontier, "explore-frontier"))
        if not confirm.exists():
            findings.append(Finding(
                str(confirm), "explore-confirm", "missing-artefact",
                "frontier.json exists without the confirm.json it "
                "summarises",
            ))
    return findings


def _audit_events_log(path: Path, report: DoctorReport) -> List[Finding]:
    """Audit a service event log (per-line enveloped JSONL).

    A defective *final* line is the survivable debris of a crash
    mid-append (warning); a defective line anywhere else is corruption.
    """
    from ..service.events import EventLogError, scan_events

    report.checked.append(str(path))
    try:
        _events, tail_defect = scan_events(path)
    except EventLogError as exc:
        return [
            Finding(str(path), "service-event", "malformed-envelope",
                    str(exc))
        ]
    except OSError as exc:
        return [Finding(str(path), "service-event", "unreadable", str(exc))]
    if tail_defect is not None:
        return [
            Finding(
                str(path), "service-event", "truncated",
                f"{tail_defect} (torn tail: survivable crash debris)",
                severity=SEVERITY_WARN,
            )
        ]
    return []


def _audit_service_job(directory: Path, report: DoctorReport) -> List[Finding]:
    """Audit one ``jobs/<job-id>/`` directory of a service root."""
    from ..harness.manifest import MANIFEST_NAME
    from ..service.events import EVENT_LOG_NAME

    findings: List[Finding] = []
    job_record = directory / "job.json"
    if job_record.exists():
        report.checked.append(str(job_record))
        findings.extend(_audit_json_file(job_record, "service-job"))
    events = directory / EVENT_LOG_NAME
    if events.exists():
        findings.extend(_audit_events_log(events, report))
    campaign = directory / "campaign"
    if (campaign / MANIFEST_NAME).exists():
        findings.extend(_audit_campaign(campaign, report))
    return findings


def _audit_service_root(directory: Path, report: DoctorReport) -> List[Finding]:
    """Audit a ``repro serve`` root: ledger, announce, every job."""
    from ..service.server import ANNOUNCE_NAME, JOBS_DIR, LEDGER_NAME

    findings: List[Finding] = []
    ledger = directory / LEDGER_NAME
    if ledger.exists():
        report.checked.append(str(ledger))
        findings.extend(_audit_json_file(ledger, "service-ledger"))
    announce = directory / ANNOUNCE_NAME
    if announce.exists():
        report.checked.append(str(announce))
        findings.extend(_audit_json_file(announce, "shard-announce"))
    jobs_dir = directory / JOBS_DIR
    if jobs_dir.is_dir():
        for job_dir in sorted(p for p in jobs_dir.iterdir() if p.is_dir()):
            findings.extend(_audit_service_job(job_dir, report))
    cache = directory / "result_cache"
    if cache.is_dir():
        findings.extend(_audit_artefact_dir(cache, report))
    shards = directory / "shards"
    if shards.is_dir():
        findings.extend(_audit_artefact_dir(shards, report))
    return findings


# ----------------------------------------------------------------------
# Directory classes.
def _audit_campaign(directory: Path, report: DoctorReport) -> List[Finding]:
    from ..harness.errors import CampaignConfigError, CorruptResultError
    from ..harness.manifest import (
        COMPLETE,
        MANIFEST_NAME,
        META_NAME,
        CampaignManifest,
    )

    findings: List[Finding] = []
    report.checked.append(str(directory / MANIFEST_NAME))
    try:
        manifest = CampaignManifest.load(directory)
    except CampaignConfigError as exc:
        findings.append(
            Finding(str(directory / MANIFEST_NAME), "campaign-manifest",
                    "malformed-envelope", str(exc))
        )
        return findings

    meta = directory / META_NAME
    if meta.exists():
        report.checked.append(str(meta))
        findings.extend(_audit_json_file(meta, "campaign-meta"))

    from ..harness.checkpoint import verify_result

    for task_id, entry in sorted(manifest.tasks.items()):
        if entry.status != COMPLETE or not entry.result:
            continue
        result_path = directory / entry.result
        report.checked.append(str(result_path))
        try:
            verify_result(result_path, task_id, expected_sha256=entry.sha256)
        except CorruptResultError as exc:
            defect = "checksum-mismatch"
            if "missing" in exc.reason or "unreadable" in exc.reason:
                defect = "unreadable"
            elif "unparsable" in exc.reason or "truncated" in exc.reason:
                defect = "truncated"
            findings.append(
                Finding(str(result_path), "campaign-result", defect,
                        exc.reason)
            )
            continue
        findings.extend(_audit_json_file(result_path, "campaign-result"))

    errors_dir = directory / "errors"
    if errors_dir.is_dir():
        for error_path in sorted(errors_dir.glob("*.json")):
            report.checked.append(str(error_path))
            findings.extend(_audit_json_file(error_path, "campaign-error"))

    # Sharded-run artefacts: the fleet summary and the health record
    # (a repro-run/1 RunRecord, so the registry check applies too).
    from ..harness.scheduler import HEALTH_RECORD_NAME
    from ..service.dispatch import SHARD_MANIFEST_NAME

    for name, category in (
        (SHARD_MANIFEST_NAME, "shard-manifest"),
        (HEALTH_RECORD_NAME, "campaign-health"),
    ):
        extra = directory / name
        if extra.exists():
            report.checked.append(str(extra))
            findings.extend(_audit_json_file(extra, category))

    for sub in ("result_cache", "trace_cache"):
        nested = directory / sub
        if nested.is_dir():
            findings.extend(_audit_artefact_dir(nested, report))
    return findings


def _iter_auditable(directory: Path) -> Iterable[Path]:
    for path in sorted(directory.rglob("*")):
        if not path.is_file():
            continue
        if QUARANTINE_DIRNAME in path.parts:
            continue  # quarantined evidence is known-bad by definition
        if path.name.endswith(REASON_SUFFIX):
            continue
        if ".tmp." in path.name:
            continue  # in-flight atomic writes
        yield path


def _audit_artefact_dir(directory: Path, report: DoctorReport) -> List[Finding]:
    findings: List[Finding] = []
    for path in _iter_auditable(directory):
        if path.suffix == ".json":
            report.checked.append(str(path))
            findings.extend(_audit_json_file(path))
        elif path.suffix == ".sizes":
            report.checked.append(str(path))
            findings.extend(_audit_sizes_file(path))
        elif path.suffix == ".trc":
            report.checked.append(str(path))
            findings.extend(_audit_trace_file(path))
    return findings


def _audit_path(path: Path, report: DoctorReport) -> List[Finding]:
    from ..harness.manifest import MANIFEST_NAME

    if path.is_dir():
        if (path / MANIFEST_NAME).exists():
            return _audit_campaign(path, report)
        if (path / EXPLORE_META_NAME).exists():
            return _audit_explore(path, report)
        from ..service.server import ANNOUNCE_NAME, LEDGER_NAME

        if (path / LEDGER_NAME).exists() or (path / ANNOUNCE_NAME).exists():
            return _audit_service_root(path, report)
        if (path / "job.json").exists() or (path / "events.jsonl").exists():
            return _audit_service_job(path, report)
        return _audit_artefact_dir(path, report)
    if not path.exists():
        return [Finding(str(path), "artefact", "unreadable", "no such file")]
    if path.name == "events.jsonl":
        return _audit_events_log(path, report)
    report.checked.append(str(path))
    if path.name == "determinism.json" and path.parent.name == "goldens":
        return _audit_goldens(path)
    if path.suffix == ".sizes":
        return _audit_sizes_file(path)
    if path.suffix == ".trc":
        return _audit_trace_file(path)
    return _audit_json_file(path)


def default_targets(repo_root: PathLike = ".") -> List[Path]:
    """What a bare ``repro doctor`` audits: the committed artefacts."""
    from ..metrics.export import CHECKED_BENCH_GLOB, CHECKED_GOLDENS

    root = Path(repo_root)
    targets = sorted(root.glob(CHECKED_BENCH_GLOB))
    goldens = root / CHECKED_GOLDENS
    if goldens.exists():
        targets.append(goldens)
    return targets


def run_doctor(
    paths: Sequence[PathLike] = (),
    repo_root: PathLike = ".",
    repair: bool = False,
) -> DoctorReport:
    """Audit ``paths`` (or the committed artefact set when empty).

    With ``repair``, every error-severity finding's file is moved to
    the nearest owning ``quarantine/`` directory with a reason record;
    warnings (stale cache entries) are left in place — they are
    harmless and self-healing.
    """
    # RunRecord validation checks metric names against the registry;
    # load every metric-producing module first, as the exporter does.
    from ..metrics.export import _ensure_registrations

    _ensure_registrations()
    report = DoctorReport()
    targets = [Path(p) for p in paths] or default_targets(repo_root)
    for target in targets:
        report.findings.extend(_audit_path(target, report))
    if repair:
        for finding in report.errors:
            victim = Path(finding.path)
            if not victim.exists():
                continue
            moved = quarantine_file(
                victim, f"{finding.defect}: {finding.detail}",
                finding.category, root=victim.parent,
            )
            finding.action = (
                ACTION_QUARANTINED if moved else ACTION_REPAIR_FAILED
            )
    return report
