"""Graceful degradation: corrupt artefacts are moved aside, not lost.

When a layer detects corruption it calls :func:`quarantine_file`: the
bad entry moves into a ``quarantine/`` subdirectory (so the slot is
free for a clean rewrite and the evidence survives for post-mortem)
next to a structured *reason record* naming the artefact class and the
defect.  ``repro doctor`` reads these records to build its failure
taxonomy, and ``--repair`` routes bad entries through here too.

Quarantine never raises: if even the move fails the caller's
degradation path (miss → recompute, sidecar → redraw, checkpoint →
resume from last valid record) must still proceed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .durable import dump_json, wrap_json
from .health import HEALTH

PathLike = Union[str, Path]

QUARANTINE_DIRNAME = "quarantine"
REASON_SCHEMA = "repro-quarantine/1"
REASON_SUFFIX = ".reason.json"


def quarantine_dir(root: PathLike) -> Path:
    return Path(root) / QUARANTINE_DIRNAME


def quarantine_file(
    path: PathLike,
    reason: str,
    category: str,
    root: Optional[PathLike] = None,
) -> Optional[Path]:
    """Move ``path`` into ``root/quarantine/`` with a reason record.

    ``category`` is the artefact class (``result-cache``,
    ``campaign-result``, ``sizes-sidecar``, ``manifest``, ...) and
    ``reason`` the human-readable defect.  ``root`` defaults to the
    artefact's own directory.  Returns the quarantined path, or
    ``None`` if the artefact was already gone or could not be moved.
    """
    path = Path(path)
    directory = quarantine_dir(root if root is not None else path.parent)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        dest = directory / path.name
        suffix = 0
        while dest.exists():  # keep older evidence, never clobber it
            suffix += 1
            dest = directory / f"{path.name}.{suffix}"
        path.replace(dest)
    except OSError:
        return None
    HEALTH.quarantined += 1
    record = wrap_json(
        {
            "artifact": str(path),
            "category": category,
            "quarantined_as": dest.name,
            "reason": reason,
        },
        REASON_SCHEMA,
    )
    try:
        # Plain write, not the injectable path: evidence recording must
        # not itself be torn by an installed fault injector.
        (directory / f"{dest.name}{REASON_SUFFIX}").write_bytes(
            dump_json(record)
        )
    except OSError:
        pass
    return dest


def load_reason(reason_path: PathLike) -> Optional[dict]:
    """Parse a reason record; ``None`` if unreadable (best effort)."""
    try:
        data = json.loads(Path(reason_path).read_text())
    except (OSError, ValueError):
        return None
    payload = data.get("payload") if isinstance(data, dict) else None
    return payload if isinstance(payload, dict) else None
