"""Trace-driven simulation engine (the HyCSim/gem5 substitute).

A :class:`Workload` bundles the four per-core application traces of a
mix with the shared :class:`~repro.workloads.data.DataModel`; a
:class:`Simulation` drives one insertion policy over that workload.

Cores advance on private clocks charged by the analytical core model;
the engine interleaves them through a min-heap so LLC accesses happen
in global time order, and fires Set-Dueling epoch boundaries from the
global clock (2M cycles by default, Sec. IV-C).  Replaying the same
:class:`Workload` against different policies guarantees an identical
reference stream and identical per-block compressibility, which is
what makes the paper's normalised comparisons meaningful.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from .cache.hierarchy import MemoryHierarchy
from .cache.stats import HierarchyStats
from .config import SystemConfig
from .core.policy import InsertionPolicy
from .timing.core_model import AnalyticalCore
from .workloads.cache import (
    load_or_materialize,
    load_sizes_sidecar,
    save_sizes_sidecar,
)
from .workloads.data import DataModel
from .workloads.mixes import mix_profiles
from .workloads.profiles import AppProfile
from .workloads.trace import MaterializedTrace, TraceRecord


class Workload:
    """A mix's traces + data model, shared across policy runs."""

    def __init__(
        self,
        profiles: Sequence[AppProfile],
        seed: int = 0,
        trace_records_per_core: int = 150_000,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one profile")
        self.profiles = list(profiles)
        self.seed = seed
        self.data_model = DataModel(self.profiles, seed=seed)
        self.traces: List[MaterializedTrace] = [
            load_or_materialize(prof, core, seed, trace_records_per_core)
            for core, prof in enumerate(self.profiles)
        ]
        # Every address a replay can touch is known now; warm the data
        # model's size memo here so no simulation pays the (per-address
        # PRNG-seeding) cost of a first-touch draw mid-run.  With the
        # on-disk trace cache enabled, the per-address draws themselves
        # are skipped: each trace's (csize, ecb) table persists in a
        # sidecar keyed by the same content hash, so the whole policy
        # matrix synthesises BDI sizes for a given trace exactly once.
        for core, (prof, trace) in enumerate(zip(self.profiles, self.traces)):
            sizes = load_sizes_sidecar(
                prof, core, seed, trace_records_per_core
            )
            if sizes is not None:
                self.data_model.preload_sizes(sizes)
            else:
                self.data_model.prefetch_sizes(trace.addrs)
                save_sizes_sidecar(
                    prof, core, seed, trace_records_per_core,
                    self.data_model.sizes_for(set(trace.addrs)),
                )

    @classmethod
    def from_mix(
        cls, mix_name: str, seed: int = 0, trace_records_per_core: int = 150_000
    ) -> "Workload":
        return cls(mix_profiles(mix_name), seed=seed,
                   trace_records_per_core=trace_records_per_core)

    @property
    def n_cores(self) -> int:
        return len(self.profiles)

    def players(self) -> List[Iterator[TraceRecord]]:
        return [trace.player() for trace in self.traces]


@dataclass
class EpochRecord:
    """Per-epoch LLC activity (feeds Fig. 8 and the dueling analysis)."""

    index: int
    end_cycle: float
    hits: int
    nvm_bytes_written: int
    winner_cpth: Optional[int]
    after_warmup: bool


@dataclass
class SimulationResult:
    """Everything one simulation phase reports."""

    stats: HierarchyStats
    epochs: List[EpochRecord] = field(default_factory=list)
    cycles: float = 0.0
    seconds: float = 0.0
    ipcs: List[float] = field(default_factory=list)

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs) if self.ipcs else 0.0

    @property
    def hit_rate(self) -> float:
        return self.stats.llc.hit_rate

    @property
    def llc_hits(self) -> int:
        return self.stats.llc.hits

    @property
    def nvm_bytes_written(self) -> int:
        return self.stats.llc.nvm_bytes_written


class Simulation:
    """One policy driven by one workload over a cycle budget."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        workload: Workload,
        size_fn=None,
    ) -> None:
        if workload.n_cores != config.cores.n_cores:
            raise ValueError(
                f"workload has {workload.n_cores} apps, system has "
                f"{config.cores.n_cores} cores"
            )
        self.config = config
        self.policy = policy
        self.workload = workload
        self.hierarchy = MemoryHierarchy(
            config,
            policy,
            size_fn=size_fn if size_fn is not None else workload.data_model.size_fn,
        )
        self.cores = [
            AnalyticalCore(i, config.cores, config.latency)
            for i in range(config.cores.n_cores)
        ]
        # Cursor-based replay state: per-core (gaps, addrs, writes)
        # columns plus a wrapping cursor.  Cursors persist across run()
        # calls so simulations stay resumable (the forecaster re-enters
        # run() to age the NVM in place).
        self._columns = [trace.replay_columns() for trace in workload.traces]
        self._cursors = [0] * workload.n_cores
        self._next_epoch = float(config.dueling.epoch_cycles)
        self._epoch_index = 0

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: float,
        warmup_cycles: float = 0.0,
        record_epochs: bool = True,
    ) -> SimulationResult:
        """Simulate for ``cycles`` more cycles (runs are resumable).

        Statistics are zeroed when the global clock passes
        ``warmup_cycles`` (relative to this run's start); IPC and all
        reported counters cover only the measured window, while Set
        Dueling and cache contents persist across runs — the
        forecasting procedure relies on this to age the NVM in place
        without re-warming from scratch.
        """
        if cycles <= warmup_cycles:
            raise ValueError("cycles must exceed warmup_cycles")
        hierarchy = self.hierarchy
        cores = self.cores
        epoch_cycles = self.config.dueling.epoch_cycles
        epochs: List[EpochRecord] = []
        epoch_snap = hierarchy.stats.llc.snapshot()
        start = min(core.cycles for core in cores)
        cycles = start + cycles
        warmup_cycles = start + warmup_cycles
        next_epoch = self._next_epoch
        epoch_index = self._epoch_index
        warmed = warmup_cycles <= start
        if warmed:
            hierarchy.reset_stats()
            epoch_snap = hierarchy.stats.llc.snapshot()
        base_instr = [core.instructions for core in cores]
        base_cycles = [core.cycles for core in cores]

        # Cores are interleaved through a min-heap, but advanced in short
        # bursts: strict per-access global ordering costs a heap
        # operation per access for no modelling benefit (the mixes share
        # no data), while bursts keep cores within ~a thousand cycles of
        # each other — far finer than the 2M-cycle epoch granularity.
        #
        # The burst body is the simulator's innermost loop.  It indexes
        # the trace columns directly and inlines AnalyticalCore.account
        # (same two float additions, so timing is bit-identical) to
        # avoid per-record generator resumption and method dispatch.
        burst = 64
        access_level = hierarchy.access_level
        columns = self._columns
        cursors = self._cursors
        heap = [(core.cycles, core_id) for core_id, core in enumerate(cores)]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        # The loop allocates short-lived acyclic objects (heap tuples,
        # fill contexts) at a rate that keeps the cyclic GC's gen-0
        # scanning busy for nothing — refcounting already frees them.
        # Pause collection for the duration of the loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                now, core_id = heappop(heap)
                if not warmed and now >= warmup_cycles:
                    hierarchy.reset_stats()
                    epoch_snap = hierarchy.stats.llc.snapshot()
                    for i, core in enumerate(cores):
                        base_instr[i] = core.instructions
                        base_cycles[i] = core.cycles
                    warmed = True
                while now >= next_epoch:
                    llc_stats = hierarchy.stats.llc
                    delta = llc_stats.delta_since(epoch_snap)
                    winner = self.policy.current_cpth()  # CP_th this epoch
                    hierarchy.end_epoch()
                    if record_epochs:
                        epochs.append(
                            EpochRecord(
                                index=epoch_index,
                                end_cycle=next_epoch,
                                hits=delta["gets_hits"] + delta["getx_hits"],
                                nvm_bytes_written=delta["nvm_bytes_written"],
                                winner_cpth=winner,
                                after_warmup=warmed and next_epoch > warmup_cycles,
                            )
                        )
                    epoch_snap = llc_stats.snapshot()
                    epoch_index += 1
                    next_epoch += epoch_cycles
                if now >= cycles:
                    continue  # this core is done; drain the rest
                # Burst: stop early at the next epoch/warmup/end boundary
                # so boundary processing stays accurate.
                stop_at = min(cycles, next_epoch)
                if not warmed:
                    stop_at = min(stop_at, warmup_cycles)
                core = cores[core_id]
                gaps, addrs, writes = columns[core_id]
                n_records = len(addrs)
                cursor = cursors[core_id]
                base_cpi = core.base_cpi
                penalty = core._penalty
                instructions = core.instructions
                new_time = core.cycles
                for _ in range(burst):
                    gap = gaps[cursor]
                    addr = addrs[cursor]
                    is_write = writes[cursor]
                    cursor += 1
                    if cursor == n_records:
                        cursor = 0
                    level = access_level(core_id, addr, is_write)
                    instructions += gap + 1
                    new_time += gap * base_cpi + base_cpi
                    new_time += penalty[level]
                    if new_time >= stop_at:
                        break
                cursors[core_id] = cursor
                core.instructions = instructions
                core.cycles = new_time
                heappush(heap, (new_time, core_id))
        finally:
            if gc_was_enabled:
                gc.enable()

        self._next_epoch = next_epoch
        self._epoch_index = epoch_index
        ipcs = []
        for i, core in enumerate(cores):
            d_instr = core.instructions - base_instr[i]
            d_cycles = core.cycles - base_cycles[i]
            ipcs.append(d_instr / d_cycles if d_cycles else 0.0)
            core.export(hierarchy.stats.core(i))

        measured = cycles - warmup_cycles
        return SimulationResult(
            stats=hierarchy.stats,
            epochs=epochs,
            cycles=measured,
            seconds=measured / self.config.latency.cpu_freq_hz,
            ipcs=ipcs,
        )


def run_policy_on_mix(
    config: SystemConfig,
    policy: InsertionPolicy,
    workload: Workload,
    cycles: float,
    warmup_cycles: float = 0.0,
) -> SimulationResult:
    """Convenience one-shot simulation."""
    return Simulation(config, policy, workload).run(cycles, warmup_cycles)
