"""Trace-driven simulation engine (the HyCSim/gem5 substitute).

A :class:`Workload` bundles the four per-core application traces of a
mix with the shared :class:`~repro.workloads.data.DataModel`; a
:class:`Simulation` drives one insertion policy over that workload.

Cores advance on private clocks charged by the analytical core model;
the engine interleaves them through a min-heap so LLC accesses happen
in global time order, and fires Set-Dueling epoch boundaries from the
global clock (2M cycles by default, Sec. IV-C).  Replaying the same
:class:`Workload` against different policies guarantees an identical
reference stream and identical per-block compressibility, which is
what makes the paper's normalised comparisons meaningful.
"""

from __future__ import annotations

import copy
import logging
from dataclasses import dataclass, field, fields
from typing import Iterator, List, Optional, Sequence

from .cache.hierarchy import MemoryHierarchy
from .cache.stats import HierarchyStats
from .config import SystemConfig
from .engine_backends import make_backend, resolve_backend_name
from .metrics.registry import register_metric
from .core.policy import InsertionPolicy
from .timing.core_model import AnalyticalCore
from .workloads.cache import (
    SidecarError,
    load_or_materialize,
    load_sizes_sidecar,
    save_sizes_sidecar,
)
from .workloads.data import DataModel
from .workloads.mixes import mix_profiles
from .workloads.profiles import AppProfile
from .workloads.trace import MaterializedTrace, TraceRecord

register_metric(
    "workload", "sidecar_redraws", "count",
    "Corrupt .sizes sidecars that were quarantined and redrawn while "
    "building this workload (0 on a healthy cache)",
)


class Workload:
    """A mix's traces + data model, shared across policy runs."""

    def __init__(
        self,
        profiles: Sequence[AppProfile],
        seed: int = 0,
        trace_records_per_core: int = 150_000,
        family: str = "synthetic",
        target: Optional[str] = None,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one profile")
        self.profiles = list(profiles)
        self.seed = seed
        #: Workload-registry provenance: the family that produced this
        #: workload and (when built through the registry) its target.
        #: Stamped into RunRecord meta via ``describe_workload``; never
        #: part of simulation digests.
        self.family = family
        self.target = target
        #: Corrupt sidecars this build quarantined and redrew —
        #: collected into RunRecords so quiet corruption is visible.
        self.sidecar_redraws = 0
        self.data_model = DataModel(self.profiles, seed=seed)
        self.traces: List[MaterializedTrace] = [
            load_or_materialize(
                prof, core, seed, trace_records_per_core, family=family
            )
            for core, prof in enumerate(self.profiles)
        ]
        # Every address a replay can touch is known now; warm the data
        # model's size memo here so no simulation pays the (per-address
        # PRNG-seeding) cost of a first-touch draw mid-run.  With the
        # on-disk trace cache enabled, the per-address draws themselves
        # are skipped: each trace's (csize, ecb) table persists in a
        # sidecar keyed by the same content hash, so the whole policy
        # matrix synthesises BDI sizes for a given trace exactly once.
        for core, (prof, trace) in enumerate(zip(self.profiles, self.traces)):
            try:
                sizes = load_sizes_sidecar(
                    prof, core, seed, trace_records_per_core, family=family
                )
            except SidecarError as exc:
                logging.getLogger(__name__).warning(
                    "corrupt sizes sidecar quarantined, redrawing: %s", exc
                )
                # Corrupt (now quarantined): redraw and re-persist.
                # The draw is a pure function of (profile, seed,
                # address), so results are unaffected — only the
                # counter distinguishes this run from a healthy one.
                self.sidecar_redraws += 1
                sizes = None
            if sizes is not None:
                self.data_model.preload_sizes(sizes)
            else:
                self.data_model.prefetch_sizes(trace.addrs)
                save_sizes_sidecar(
                    prof, core, seed, trace_records_per_core,
                    self.data_model.sizes_for(set(trace.addrs)),
                    family=family,
                )

    @classmethod
    def from_mix(
        cls, mix_name: str, seed: int = 0, trace_records_per_core: int = 150_000
    ) -> "Workload":
        return cls(mix_profiles(mix_name), seed=seed,
                   trace_records_per_core=trace_records_per_core)

    @classmethod
    def from_traces(
        cls,
        profiles: Sequence[AppProfile],
        traces: Sequence[MaterializedTrace],
        seed: int = 0,
        sizes_per_core: Optional[Sequence] = None,
        family: str = "external",
        target: Optional[str] = None,
    ) -> "Workload":
        """A workload over already-materialized traces.

        The ingestion path of the ``external`` workload family: the
        traces were imported (not generated), so the synthetic
        generator and its disk cache are bypassed entirely.
        ``sizes_per_core`` optionally supplies each core's persisted
        ``addr -> (csize, ecb)`` table (``None`` entries are redrawn
        from the data model, which is deterministic for the import
        seed, so a missing table changes nothing but build time).
        """
        if len(profiles) != len(traces):
            raise ValueError("one profile per trace required")
        workload = cls.__new__(cls)
        workload.profiles = list(profiles)
        workload.seed = seed
        workload.family = family
        workload.target = target
        workload.sidecar_redraws = 0
        workload.data_model = DataModel(workload.profiles, seed=seed)
        workload.traces = list(traces)
        for core, trace in enumerate(workload.traces):
            sizes = sizes_per_core[core] if sizes_per_core else None
            if sizes is not None:
                workload.data_model.preload_sizes(sizes)
            else:
                workload.data_model.prefetch_sizes(trace.addrs)
        return workload

    @property
    def n_cores(self) -> int:
        return len(self.profiles)

    def players(self) -> List[Iterator[TraceRecord]]:
        return [trace.player() for trace in self.traces]


@dataclass
class EpochRecord:
    """Per-epoch LLC activity (feeds Fig. 8 and the dueling analysis)."""

    index: int
    end_cycle: float
    hits: int
    nvm_bytes_written: int
    winner_cpth: Optional[int]
    after_warmup: bool


@dataclass
class SimulationResult:
    """Everything one simulation phase reports."""

    stats: HierarchyStats
    epochs: List[EpochRecord] = field(default_factory=list)
    cycles: float = 0.0
    seconds: float = 0.0
    ipcs: List[float] = field(default_factory=list)

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs) if self.ipcs else 0.0

    @property
    def hit_rate(self) -> float:
        return self.stats.llc.hit_rate

    @property
    def llc_hits(self) -> int:
        return self.stats.llc.hits

    @property
    def nvm_bytes_written(self) -> int:
        return self.stats.llc.nvm_bytes_written

    def to_run_record(self, kind: str = "simulation", meta=None, policy=None):
        """This result as a :class:`~repro.metrics.RunRecord`.

        The returned record keeps a live reference to this result, so
        the historical attribute accessors (``stats``, ``epochs``, …)
        keep working on it unchanged.
        """
        from .metrics.record import RunRecord

        return RunRecord.from_simulation(
            self, kind=kind, meta=meta, policy=policy
        )


# Phase-level observations of one simulation window.  ``seconds`` is
# *simulated* wall-clock time — what leakage energy and wear rates
# integrate over — not host time.
register_metric("sim", "cycles", "cycles",
                "Simulated cycles of the measured window",
                aggregation="last")
register_metric("sim", "seconds", "s",
                "Simulated seconds of the measured window",
                aggregation="last")
register_metric("sim", "mean_ipc", "instructions/cycle",
                "Mean per-core IPC over the measured window",
                aggregation="derived")
register_metric("sim", "hit_rate", "fraction",
                "LLC hit rate over the whole run",
                aggregation="derived")


class Simulation:
    """One policy driven by one workload over a cycle budget."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        workload: Workload,
        size_fn=None,
        backend: Optional[str] = None,
    ) -> None:
        if workload.n_cores != config.cores.n_cores:
            raise ValueError(
                f"workload has {workload.n_cores} apps, system has "
                f"{config.cores.n_cores} cores"
            )
        self.config = config
        self.policy = policy
        self.workload = workload
        self.hierarchy = MemoryHierarchy(
            config,
            policy,
            size_fn=size_fn if size_fn is not None else workload.data_model.size_fn,
        )
        self.cores = [
            AnalyticalCore(i, config.cores, config.latency)
            for i in range(config.cores.n_cores)
        ]
        # Cursor-based replay state: per-core (gaps, addrs, writes)
        # columns plus a wrapping cursor.  Cursors persist across run()
        # calls so simulations stay resumable (the forecaster re-enters
        # run() to age the NVM in place).
        self._columns = [trace.replay_columns() for trace in workload.traces]
        self._cursors = [0] * workload.n_cores
        self._next_epoch = float(config.dueling.epoch_cycles)
        self._epoch_index = 0
        # Engine backend: an execution strategy, never a modelling
        # choice — every backend is byte-identical by contract (see
        # repro.engine_backends), so the name is deliberately kept out
        # of memo fingerprints and snapshot keys.
        self.backend_name = resolve_backend_name(backend)
        self._backend = make_backend(self.backend_name, self)

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: float,
        warmup_cycles: float = 0.0,
        record_epochs: bool = True,
    ) -> SimulationResult:
        """Simulate for ``cycles`` more cycles (runs are resumable).

        Statistics are zeroed when the global clock passes
        ``warmup_cycles`` (relative to this run's start); IPC and all
        reported counters cover only the measured window, while Set
        Dueling and cache contents persist across runs — the
        forecasting procedure relies on this to age the NVM in place
        without re-warming from scratch.
        """
        if cycles <= warmup_cycles:
            raise ValueError("cycles must exceed warmup_cycles")
        start = min(core.cycles for core in self.cores)
        return self._run(start + cycles, start + warmup_cycles, record_epochs)

    def run_until(
        self,
        end_cycle: float,
        warmup_until: Optional[float] = None,
        record_epochs: bool = True,
    ) -> SimulationResult:
        """Simulate up to the *absolute* global cycle ``end_cycle``.

        Unlike :meth:`run`, whose budget is relative to the current
        core positions, the end (and the optional ``warmup_until``
        stats-reset boundary) are absolute clock values.  This is what
        makes warm-started runs byte-identical to cold ones: cores
        overshoot a warmup boundary by a few hundred cycles, so a
        relative budget re-applied after a snapshot restore would move
        the end of the measured window.  ``run(c, warmup_cycles=w)``
        from a fresh simulation is exactly ``run_until(c, w)``, and
        ``run_until(w, w)`` followed by ``run_until(c, w)`` replays the
        same access stream, statistics, and epoch records in two steps
        (``tests/test_snapshot.py`` pins this against the goldens).

        ``end_cycle == warmup_until`` is allowed: it runs pure warmup —
        every core crosses the boundary, stats are reset, and the
        returned (measured-window) result is empty.
        """
        start = min(core.cycles for core in self.cores)
        if warmup_until is None:
            warmup_until = start
        if end_cycle < warmup_until:
            raise ValueError("end_cycle must be >= warmup_until")
        return self._run(float(end_cycle), float(warmup_until), record_epochs)

    def _run(
        self,
        cycles: float,
        warmup_cycles: float,
        record_epochs: bool,
    ) -> SimulationResult:
        """Core loop; ``cycles``/``warmup_cycles`` are absolute.

        Delegates to the selected engine backend.  The historical
        scalar loop lives in
        :class:`repro.engine_backends.reference.ReferenceBackend`; the
        numpy batch-replay kernel in
        :class:`repro.engine_backends.vectorized.VectorizedBackend`.
        Both are byte-identical by the golden-digest contract, so
        callers never observe which one ran.
        """
        return self._backend.run(cycles, warmup_cycles, record_epochs)

    @property
    def last_phase_timings(self):
        """Wall-clock phase breakdown of the most recent ``_run``."""
        return self._backend.last_phase_timings

    # ------------------------------------------------------------------
    # snapshot / restore (the memoization subsystem's engine hook)
    # ------------------------------------------------------------------
    def _snapshot_shared(self) -> tuple:
        """Objects shared (not copied) between a snapshot and its host.

        The immutable system config (and its frozen sub-configs, which
        the hierarchy references directly) plus the workload and its
        data model — a snapshot captures *simulation state*, not the
        multi-megabyte trace columns or the size memo, which are
        read-only during a run.
        """
        shared = [self.config, self.workload, self.workload.data_model]
        for f in fields(self.config):
            shared.append(getattr(self.config, f.name))
        return tuple(shared)

    def snapshot(self) -> "SimulationSnapshot":
        """Deep-copy the mutable simulation state.

        Captures hierarchy (sets, directory, metadata, fault map, wear,
        stats), cores (clocks + instruction counts), trace cursors and
        the epoch schedule — everything :meth:`restore` needs to make a
        subsequent ``run_until`` byte-identical to continuing this
        simulation.  Policy state rides along because the policy hangs
        off ``hierarchy.llc``.
        """
        shared = self._snapshot_shared()
        memo = {id(obj): obj for obj in shared}
        state = copy.deepcopy(
            (self.hierarchy, self.cores, self._cursors,
             self._next_epoch, self._epoch_index),
            memo,
        )
        return SimulationSnapshot(state, shared)

    def restore(self, snap: "SimulationSnapshot") -> None:
        """Adopt a snapshot's state (the snapshot stays reusable).

        The state is deep-copied *again* on the way in, so one stored
        snapshot can warm-start any number of simulations.  The host
        simulation must have been built for the same geometry (same
        core count); key construction in :mod:`repro.memo.snapshots`
        guarantees full config/workload equality for store-served
        snapshots.
        """
        memo = {id(obj): obj for obj in snap._shared}
        hierarchy, cores, cursors, next_epoch, epoch_index = copy.deepcopy(
            snap._state, memo
        )
        if len(cursors) != len(self._cursors):
            raise ValueError("snapshot core count does not match simulation")
        self.hierarchy = hierarchy
        self.policy = hierarchy.llc.policy
        self.cores = cores
        self._cursors = cursors
        self._next_epoch = next_epoch
        self._epoch_index = epoch_index


class SimulationSnapshot:
    """Opaque, reusable deep snapshot of a :class:`Simulation`.

    Produced by :meth:`Simulation.snapshot`, consumed by
    :meth:`Simulation.restore`.  Holds the copied mutable state plus
    the identity list of intentionally shared immutables (config,
    workload, data model) that restore must keep shared rather than
    clone.  In-process only: the object graph hangs onto mmap-backed
    trace views and bound methods, so it is deliberately not
    picklable across processes.
    """

    __slots__ = ("_state", "_shared")

    def __init__(self, state: tuple, shared: tuple) -> None:
        self._state = state
        self._shared = shared


def run_policy_on_mix(
    config: SystemConfig,
    policy: InsertionPolicy,
    workload: Workload,
    cycles: float,
    warmup_cycles: float = 0.0,
) -> SimulationResult:
    """Convenience one-shot simulation."""
    return Simulation(config, policy, workload).run(cycles, warmup_cycles)
