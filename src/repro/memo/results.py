"""On-disk campaign result cache (memo layer 1).

Campaign units are deterministic: the same ``(experiment, unit,
scale)`` on the same code version serialises to byte-identical JSON
(the contract ``experiments/campaign_tasks.py`` documents and the
resume tests enforce).  That makes completed unit payloads safe to
reuse *across campaigns* — re-running a figure, widening a matrix, or
replaying the whole evaluation at another path re-pays only the units
it has never computed.

Design mirrors the trace cache (:mod:`repro.workloads.cache`):

* keys are SHA-256 over a canonical-JSON rendering of every input that
  shapes the result, *including* :func:`~repro.memo.fingerprint.code_fingerprint`
  — a stale-code entry simply never matches a live key, exactly like a
  bumped ``GENERATOR_VERSION``;
* entries are written through :mod:`repro.fsio` — atomic rename plus
  the checksummed ``repro-blob/1`` envelope — so a crashed writer can
  at worst leave a temp file and a bit-rotted entry is *detected*,
  not served;
* readers treat anything unreadable, unparsable or shape-invalid as a
  miss — corrupt envelopes are moved to ``quarantine/`` with a reason
  record and recomputed, never fatal; pre-envelope (legacy) entries
  are a plain miss and get overwritten in place on the next put.

The scheduler stays the sole integrity authority: a cache hit is
written through the normal checkpoint/manifest machinery and verified
like a worker-produced result, so resume and ``--chaos`` semantics are
unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..fsio.durable import (
    BlobError,
    atomic_write_bytes,
    is_blob_payload,
    read_bytes,
    unwrap_json,
    wrap_json,
)
from ..fsio.health import HEALTH
from ..fsio.quarantine import quarantine_file
from ..manifest import canonical_json
from ..metrics import RUN_RECORD_SCHEMA, RunRecord, SchemaError
from .fingerprint import code_fingerprint

RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Envelope schema tag of result-cache entries.
CACHE_SCHEMA = "repro-result-cache/1"


def result_cache_key(
    experiment: str,
    unit: Mapping[str, Any],
    scale: str,
    fingerprint: Optional[str] = None,
    workload: Optional[Mapping[str, Any]] = None,
) -> str:
    """Hex SHA-256 over every input that shapes a campaign unit result.

    Flipping any of experiment, unit contents (policy, mix, seed, …),
    scale, or the code fingerprint produces a different key — cache
    misuse is a key mismatch, not a runtime check.

    ``workload`` is the workload-family key component
    (:func:`~repro.workloads.registry.workload_ref_fingerprint` of the
    unit's reference): ``None`` for synthetic-family units — whose
    keys must stay byte-compatible with the pre-registry key space —
    and a ``{family, target, spec_hash}`` dict otherwise, so cached
    results never cross families and a re-imported external target
    (new spec hash) sheds its stale entries.
    """
    inputs: Dict[str, Any] = {
        "fingerprint": (
            fingerprint if fingerprint is not None else code_fingerprint()
        ),
        "experiment": experiment,
        "unit": dict(unit),
        "scale": scale,
        # A RunRecord schema bump sheds every old-shape entry at
        # the *key* level, on top of the get()-time validation.
        "record_schema": RUN_RECORD_SCHEMA,
    }
    if workload is not None:
        inputs["workload"] = dict(workload)
    blob = canonical_json(inputs)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_cache_dir() -> Optional[Path]:
    """The on-disk cache directory, or None if caching is disabled."""
    value = os.environ.get(RESULT_CACHE_ENV, "").strip()
    return Path(value) if value else None


class ResultCache:
    """Content-addressed store of verified campaign result payloads."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self, key: str, task_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None on any defect.

        ``task_id``, when given, must match the payload's recorded
        task id — a belt-and-braces check on top of the key (a
        hand-renamed entry serves a miss, not a wrong result).

        The embedded result must also parse as a *current-schema*
        :class:`~repro.metrics.RunRecord`: an entry whose keys have
        drifted from the live schema (renamed metric, old version,
        extra fields) is stale and must be recomputed, never trusted —
        the pre-spine cache passed unknown shapes through unvalidated.

        Corruption handling: an entry that fails to parse or whose
        envelope checksum no longer holds is quarantined (the shared
        store keeps serving; the evidence keeps for ``repro doctor``);
        a pre-envelope legacy entry or a stale-shape payload is a
        silent miss — the next put overwrites it under the same key.
        """
        path = self.path_for(key)
        try:
            raw = read_bytes(path)
        except FileNotFoundError:
            return None
        except OSError:
            HEALTH.read_failures += 1
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            quarantine_file(
                path, f"unparsable cache entry ({exc})", "result-cache",
                root=self.root,
            )
            return None
        if not is_blob_payload(data):
            return None  # legacy (pre-envelope) entry: plain miss
        try:
            payload = unwrap_json(data, schema=CACHE_SCHEMA, path=path)
        except BlobError as exc:
            quarantine_file(path, exc.reason, "result-cache", root=self.root)
            return None
        if not isinstance(payload, dict) or payload.get("status") != "ok":
            return None
        if task_id is not None and payload.get("task_id") != task_id:
            return None
        try:
            RunRecord.from_json(payload.get("result"))
        except SchemaError:
            return None
        return payload

    def summary(self) -> Dict[str, int]:
        """Entry count and byte volume of the store, best-effort.

        Service-status telemetry: ``repro serve`` reports how much the
        shared cache holds without opening (or trusting) any entry.
        Quarantined files live in a subdirectory and are not counted —
        they are the doctor's to report, not the cache's.
        """
        entries = 0
        size = 0
        try:
            for path in self.root.glob("*.json"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
        except OSError:
            pass
        return {"entries": entries, "bytes": size}

    def put(
        self,
        key: str,
        payload: Mapping[str, Any],
        annotations: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """Store a payload atomically; failures are non-fatal misses.

        ``annotations`` travel outside the checksummed payload (so the
        payload bytes a hit serves are exactly what was stored) and
        give ``repro doctor`` the producing fingerprint and task id
        without re-deriving every key.
        """
        path = self.path_for(key)
        try:
            envelope = wrap_json(
                dict(payload),
                CACHE_SCHEMA,
                dict(annotations) if annotations else None,
            )
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, canonical_json(envelope).encode("utf-8"))
        except (OSError, TypeError, ValueError):
            HEALTH.write_failures += 1
            return False
        return True
