"""On-disk campaign result cache (memo layer 1).

Campaign units are deterministic: the same ``(experiment, unit,
scale)`` on the same code version serialises to byte-identical JSON
(the contract ``experiments/campaign_tasks.py`` documents and the
resume tests enforce).  That makes completed unit payloads safe to
reuse *across campaigns* — re-running a figure, widening a matrix, or
replaying the whole evaluation at another path re-pays only the units
it has never computed.

Design mirrors the trace cache (:mod:`repro.workloads.cache`):

* keys are SHA-256 over a canonical-JSON rendering of every input that
  shapes the result, *including* :func:`~repro.memo.fingerprint.code_fingerprint`
  — a stale-code entry simply never matches a live key, exactly like a
  bumped ``GENERATOR_VERSION``;
* entries are written atomically (temp file + ``os.replace``) so a
  crashed writer can at worst leave a temp file, never a torn entry;
* readers treat anything unreadable, unparsable or shape-invalid as a
  miss — corrupt entries are silently recomputed, never fatal.

The scheduler stays the sole integrity authority: a cache hit is
written through the normal checkpoint/manifest machinery and verified
like a worker-produced result, so resume and ``--chaos`` semantics are
unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..manifest import canonical_json
from ..metrics import RUN_RECORD_SCHEMA, RunRecord, SchemaError
from .fingerprint import code_fingerprint

RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"


def result_cache_key(
    experiment: str,
    unit: Mapping[str, Any],
    scale: str,
    fingerprint: Optional[str] = None,
) -> str:
    """Hex SHA-256 over every input that shapes a campaign unit result.

    Flipping any of experiment, unit contents (policy, mix, seed, …),
    scale, or the code fingerprint produces a different key — cache
    misuse is a key mismatch, not a runtime check.
    """
    blob = canonical_json(
        {
            "fingerprint": (
                fingerprint if fingerprint is not None else code_fingerprint()
            ),
            "experiment": experiment,
            "unit": dict(unit),
            "scale": scale,
            # A RunRecord schema bump sheds every old-shape entry at
            # the *key* level, on top of the get()-time validation.
            "record_schema": RUN_RECORD_SCHEMA,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_cache_dir() -> Optional[Path]:
    """The on-disk cache directory, or None if caching is disabled."""
    value = os.environ.get(RESULT_CACHE_ENV, "").strip()
    return Path(value) if value else None


class ResultCache:
    """Content-addressed store of verified campaign result payloads."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self, key: str, task_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None on any defect.

        ``task_id``, when given, must match the payload's recorded
        task id — a belt-and-braces check on top of the key (a
        hand-renamed entry serves a miss, not a wrong result).

        The embedded result must also parse as a *current-schema*
        :class:`~repro.metrics.RunRecord`: an entry whose keys have
        drifted from the live schema (renamed metric, old version,
        extra fields) is stale and must be recomputed, never trusted —
        the pre-spine cache passed unknown shapes through unvalidated.
        """
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if not isinstance(payload, dict) or payload.get("status") != "ok":
            return None
        if task_id is not None and payload.get("task_id") != task_id:
            return None
        try:
            RunRecord.from_json(payload.get("result"))
        except SchemaError:
            return None
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> bool:
        """Store a payload atomically; failures are non-fatal misses."""
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(canonical_json(dict(payload)), encoding="utf-8")
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True
