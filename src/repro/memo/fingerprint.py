"""Code-version fingerprint for memo keys.

A cached simulation result is only reusable while the engine still
produces byte-identical statistics, and the repo already maintains the
exact sentinel for that: the golden digests in
``tests/goldens/determinism.json``, which every tier-1 run pins the
engine against.  The digests are *embedded here as a literal* — not
read from disk — so that installed/packaged trees hash the same value,
and a test (``tests/test_memo.py``) asserts the literal matches the
committed golden file.  The update discipline is therefore forced:
changing engine semantics requires re-recording the goldens, which
requires updating this literal, which rolls every memo key.
"""

from __future__ import annotations

import hashlib

# Canonical rendering lives in repro.manifest (the single identity-
# serialisation home); re-exported here for existing importers.
from ..manifest import canonical_json

__all__ = [
    "MEMO_SCHEMA", "EMBEDDED_GOLDEN_DIGESTS", "canonical_json",
    "code_fingerprint",
]

#: Schema version of the memoized payloads themselves; bump to shed
#: every existing cache entry without touching the goldens.
MEMO_SCHEMA = "repro-memo/1"

#: Copy of tests/goldens/determinism.json (see module docstring).
EMBEDDED_GOLDEN_DIGESTS = {
    "bh": "e720bd3adfa7cf5dcd682c88445909afe9a12a56b891b8f0aca58910f4686bcb",
    "ca_rwr": "80eee0f5f939548d51c718ec80b9a0787a7618f54b13b4bce4d50b822bd7a2ae",
    "cp_sd": "0769cb1de2abe84f5f96b591e33918e5238b1da50a4d7f257481875f354d5ad0",
}


def code_fingerprint() -> str:
    """Digest of (memo schema, embedded golden digests)."""
    payload = {"schema": MEMO_SCHEMA, "goldens": EMBEDDED_GOLDEN_DIGESTS}
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()
