"""Content-addressed memoization above the engine.

Three layers, all keyed by content hashes and tolerant of corrupt or
stale entries (mirroring the trace/sidecar cache design in
:mod:`repro.workloads.cache`):

* :mod:`repro.memo.fingerprint` — the code-version fingerprint derived
  from the committed golden digests; any engine change that alters
  statistics changes every memo key.
* :mod:`repro.memo.results` — the on-disk campaign result cache: a
  completed unit's verified JSON payload, keyed by (fingerprint,
  experiment, unit, scale).
* :mod:`repro.memo.snapshots` — the in-process post-warmup snapshot
  store: a warmed :class:`~repro.engine.SimulationSnapshot`, keyed by
  (fingerprint, config, policy, workload, warmup, capacities).
"""

from .fingerprint import EMBEDDED_GOLDEN_DIGESTS, code_fingerprint
from .results import RESULT_CACHE_ENV, ResultCache, result_cache_key
from .snapshots import (
    SNAPSHOT_MEMO_ENV,
    SNAPSHOT_MEMO_SLOTS_ENV,
    SnapshotStore,
    reset_shared_snapshot_store,
    shared_snapshot_store,
    warm_prefix_key,
)

__all__ = [
    "EMBEDDED_GOLDEN_DIGESTS",
    "code_fingerprint",
    "RESULT_CACHE_ENV",
    "ResultCache",
    "result_cache_key",
    "SNAPSHOT_MEMO_ENV",
    "SNAPSHOT_MEMO_SLOTS_ENV",
    "SnapshotStore",
    "reset_shared_snapshot_store",
    "shared_snapshot_store",
    "warm_prefix_key",
]
