"""In-process post-warmup snapshot store (memo layer 2).

Units that share a ``(config, policy, mix, seed, warmup)`` prefix —
figure variants measuring different horizons, the forecaster's
baseline phase, repeat studies — re-simulate the identical warmup
stream before their measured windows diverge.  The store keeps the
warmed :class:`~repro.engine.SimulationSnapshot` (plus the epoch
records the warmup produced) under a content-hash key, so the next
simulation with the same prefix restores state instead of replaying
it.  Split-run equivalence is exact: warm-started results are
byte-identical to cold ones (golden-digest gated in
``tests/test_snapshot.py``).

The store is deliberately in-memory and per-process: the snapshot
graph hangs onto mmap-backed trace views and bound methods, so disk
persistence would be fragile where the result cache is robust.  The
persistent worker pool keeps workers alive across many units, which is
where the cross-unit reuse happens.  A small LRU bound (snapshots hold
a full hierarchy copy) keeps memory predictable.

Keys cover the code fingerprint, the full system config, the policy's
pre-bind state, the workload identity (profiles, seed, trace lengths),
the warmup horizon and any preloaded fault-map capacities — flipping
any of them changes the key.  Anything un-canonicalisable in a policy
simply opts that policy out of snapshot reuse (key is ``None``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import types
from collections import OrderedDict
from typing import Any, List, NamedTuple, Optional, Tuple

from .fingerprint import canonical_json, code_fingerprint

SNAPSHOT_MEMO_ENV = "REPRO_SNAPSHOT_MEMO"
SNAPSHOT_MEMO_SLOTS_ENV = "REPRO_SNAPSHOT_MEMO_SLOTS"
DEFAULT_SLOTS = 4

#: Schema tag stored on every entry (the in-memory analogue of the
#: ``repro-blob/1`` envelope's schema field).  Bump when
#: ``SimulationSnapshot``'s shape changes: a store populated by an
#: older definition — possible when workers fork after a hot code
#: reload — then serves misses instead of incompatible state.
SNAPSHOT_SCHEMA = "repro-snapshot/1"

_OFF_VALUES = {"0", "off", "no", "false"}


class _Unfreezable(TypeError):
    """Raised when a value cannot be canonicalised into a key."""


def _freeze(value: Any) -> Any:
    """Canonical, JSON-renderable form of config/policy state.

    Handles the types that actually occur in configs and policy
    instances (primitives, containers, dataclasses, enums, plain
    objects with ``__dict__``); anything else raises, which callers
    turn into "no key, no caching" rather than a wrong key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "name": value.name}
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_freeze(v) for v in value)}
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (str(k), _freeze(v)) for k, v in value.items()
            )
        }
    if isinstance(
        value,
        (types.FunctionType, types.MethodType, types.BuiltinFunctionType),
    ) or isinstance(value, type):
        # Two distinct callables would both freeze to an empty
        # ``__dict__`` state — an identical key for different
        # behaviour.  Refuse instead; the caller opts out of caching.
        raise _Unfreezable(f"cannot canonicalise callable {value!r}")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dc__": type(value).__qualname__,
            "fields": sorted(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        }
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__obj__": type(value).__qualname__,
            "state": sorted((str(k), _freeze(v)) for k, v in state.items()),
        }
    raise _Unfreezable(f"cannot canonicalise {type(value).__qualname__}")


def warm_prefix_key(
    config: Any,
    policy: Any,
    workload: Any,
    warmup_cycles: float,
    capacities: Any = None,
) -> Optional[str]:
    """Content key of a warmup prefix, or None if not cacheable.

    ``policy`` must be *pre-run* (fresh from ``make_policy``): its
    instance state at construction, together with the config, fully
    determines its bound state — binding and dueling assignment are
    deterministic functions of (policy args, geometry).
    """
    if capacities is None:
        cap_digest = None
    else:
        try:
            raw = capacities.tobytes()
            shape = list(getattr(capacities, "shape", ()))
        except AttributeError:
            return None
        cap_digest = {
            "sha256": hashlib.sha256(raw).hexdigest(),
            "shape": shape,
        }
    try:
        state = {
            k: v for k, v in vars(policy).items() if k not in ("llc", "controller")
        }
        blob = canonical_json(
            {
                "fingerprint": code_fingerprint(),
                "config": _freeze(config),
                "policy": {"name": policy.name, "state": _freeze(state)},
                "workload": {
                    "profiles": [_freeze(p) for p in workload.profiles],
                    "seed": workload.seed,
                    "records": [len(t) for t in workload.traces],
                },
                "warmup_cycles": float(warmup_cycles).hex(),
                "capacities": cap_digest,
            }
        )
    except (_Unfreezable, AttributeError, TypeError):
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SnapshotEntry(NamedTuple):
    """A warmed snapshot plus the epoch records its warmup emitted."""

    snapshot: Any
    epochs: Tuple[Any, ...]
    schema: str = SNAPSHOT_SCHEMA


class SnapshotStore:
    """Bounded in-memory LRU of warmed simulation snapshots."""

    def __init__(self, capacity: int = DEFAULT_SLOTS) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Entries dropped for carrying a stale schema tag.
        self.schema_drops = 0
        self._entries: "OrderedDict[str, SnapshotEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[SnapshotEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.schema != SNAPSHOT_SCHEMA:
            del self._entries[key]
            self.schema_drops += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, snapshot: Any, epochs: List[Any]) -> None:
        self._entries[key] = SnapshotEntry(snapshot, tuple(epochs))
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


_shared_store: Optional[SnapshotStore] = None


def shared_snapshot_store() -> Optional[SnapshotStore]:
    """The process-wide store, or None when disabled via env.

    ``REPRO_SNAPSHOT_MEMO=0`` (or off/no/false) disables snapshot
    reuse; ``REPRO_SNAPSHOT_MEMO_SLOTS`` bounds the number of retained
    snapshots (default 4).  Enablement is re-read per call so tests
    and workers can flip it; the store itself is created once.
    """
    value = os.environ.get(SNAPSHOT_MEMO_ENV, "").strip().lower()
    if value in _OFF_VALUES:
        return None
    global _shared_store
    if _shared_store is None:
        try:
            slots = int(os.environ.get(SNAPSHOT_MEMO_SLOTS_ENV, DEFAULT_SLOTS))
        except ValueError:
            slots = DEFAULT_SLOTS
        _shared_store = SnapshotStore(max(1, slots))
    return _shared_store


def reset_shared_snapshot_store() -> None:
    """Drop the process-wide store (tests, or to release memory)."""
    global _shared_store
    _shared_store = None
