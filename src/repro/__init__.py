"""repro — reproduction of "Compression-Aware and Performance-Efficient
Insertion Policies for Long-Lasting Hybrid LLCs" (HPCA 2023).

Public entry points:

* :func:`repro.config.paper_system` — the Table IV system configuration;
* :class:`repro.engine.Workload` / :class:`repro.engine.Simulation` —
  trace-driven simulation of one mix under one insertion policy;
* :func:`repro.core.make_policy` — instantiate any Table III policy
  (``bh``, ``bh_cp``, ``lhybrid``, ``tap``, ``ca``, ``ca_rwr``,
  ``cp_sd``, ``cp_sd_th``, ``sram``);
* :class:`repro.forecast.Forecaster` — the lifetime forecasting
  procedure producing the paper's IPC-vs-time curves.
"""

# Defined before the subpackage imports: repro.manifest (reached via
# the metrics spine during those imports) reads it at import time.
__version__ = "1.0.0"

from . import analysis, cache, compression, config, core, forecast, nvm, timing, workloads
from .config import SystemConfig, paper_system
from .engine import Simulation, SimulationResult, Workload, run_policy_on_mix

__all__ = [
    "Simulation",
    "SimulationResult",
    "SystemConfig",
    "Workload",
    "analysis",
    "cache",
    "compression",
    "config",
    "core",
    "forecast",
    "nvm",
    "paper_system",
    "run_policy_on_mix",
    "timing",
    "workloads",
]
