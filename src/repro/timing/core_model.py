"""Analytical out-of-order core model.

The paper runs gem5 with 8-wide ARMv8 OoO cores; this reproduction
charges time analytically: non-memory instructions cost ``base_cpi``
cycles each, and every demand access adds the service latency of the
level that supplied it, divided by an MLP factor that models the
overlap the OoO window extracts.  L1 hits are considered fully hidden
by the pipeline (their cost is part of ``base_cpi``).

This keeps IPC *responsive to exactly what the insertion policies
change* — LLC hit rate, SRAM-vs-NVM hit split, memory traffic — which
is what the paper's normalised IPC curves measure.
"""

from __future__ import annotations

from ..cache.hierarchy import Level
from ..cache.stats import CoreStats
from ..config import CoreConfig, LatencyConfig


class AnalyticalCore:
    """Time accounting for one core."""

    def __init__(
        self, core_id: int, core_config: CoreConfig, latency: LatencyConfig
    ) -> None:
        self.core_id = core_id
        self.base_cpi = core_config.base_cpi
        self.mlp = core_config.mlp
        # Indexed by Level's integer value (L1=0 .. MEMORY=5): a flat
        # tuple beats a dict keyed by enum members on the hot path.
        self._penalty = (
            0.0,                                           # L1
            latency.l2_hit / core_config.mlp,              # L2
            latency.llc_sram_load / core_config.mlp,       # LLC_SRAM
            latency.llc_nvm_total_load / core_config.mlp,  # LLC_NVM
            latency.llc_sram_load / core_config.mlp,       # PEER
            latency.memory / core_config.mlp,              # MEMORY
        )
        self.cycles = 0.0
        self.instructions = 0

    def account(self, gap_instructions: int, level: Level) -> float:
        """Charge ``gap`` non-memory instructions plus one access.

        Returns the core's new local time in cycles.
        """
        self.instructions += gap_instructions + 1
        self.cycles += gap_instructions * self.base_cpi + self.base_cpi
        self.cycles += self._penalty[level]
        return self.cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def export(self, stats: CoreStats) -> None:
        stats.instructions = self.instructions
        stats.cycles = self.cycles

    def reset(self) -> None:
        self.cycles = 0.0
        self.instructions = 0
