"""Timing substrate: analytical core model and latency accounting."""

from .core_model import AnalyticalCore
from .energy import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["AnalyticalCore", "EnergyBreakdown", "EnergyModel", "EnergyParams"]
