"""Energy accounting for the hybrid LLC (Sec. I/II context).

Hybrid LLCs exist because SRAM leakage at LLC capacities "is becoming
prohibitive" while NVM writes are energy-hungry — TAP's original goal
is a 25 % LLC energy reduction.  This model charges:

* **dynamic energy** per event: L1/L2 accesses, LLC SRAM/NVM reads,
  SRAM writes, NVM writes (scaled by the *bytes actually written*, so
  compression and byte-disabling directly save write energy), and main
  memory accesses;
* **leakage power** over the simulated wall-clock time: SRAM cells leak
  heavily, NVM cells essentially not at all — the hybrid's density
  argument in energy form.

Default per-event numbers are in the range NVSim reports for ~22 nm
SRAM/STT-MRAM LLC banks; they are configuration, not truth — the
experiments only consume *relative* energies between policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cache.stats import HierarchyStats
from ..config import SystemConfig
from ..metrics.registry import REGISTRY, register_metric


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and leakage powers (mW per MiB)."""

    l1_access_nj: float = 0.01
    l2_access_nj: float = 0.05
    llc_sram_read_nj: float = 0.20
    llc_sram_write_nj: float = 0.25
    llc_nvm_read_nj: float = 0.30
    llc_nvm_write_nj: float = 1.20      # full 64-byte frame write
    memory_access_nj: float = 15.0
    sram_leakage_mw_per_mib: float = 25.0
    nvm_leakage_mw_per_mib: float = 0.5


@dataclass
class EnergyBreakdown:
    """Energy totals of one simulation window (nJ)."""

    l1_dynamic: float = 0.0
    l2_dynamic: float = 0.0
    llc_sram_read: float = 0.0
    llc_sram_write: float = 0.0
    llc_nvm_read: float = 0.0
    llc_nvm_write: float = 0.0
    memory_dynamic: float = 0.0
    sram_leakage: float = 0.0
    nvm_leakage: float = 0.0

    @property
    def llc_dynamic(self) -> float:
        return (
            self.llc_sram_read
            + self.llc_sram_write
            + self.llc_nvm_read
            + self.llc_nvm_write
        )

    @property
    def llc_total(self) -> float:
        return self.llc_dynamic + self.sram_leakage + self.nvm_leakage

    @property
    def total(self) -> float:
        return (
            self.l1_dynamic
            + self.l2_dynamic
            + self.llc_dynamic
            + self.memory_dynamic
            + self.sram_leakage
            + self.nvm_leakage
        )

    # Deprecated: thin wrapper over the registry collector (see
    # repro.metrics.registry); kept one release for external callers.
    # Keys and values match the historical hand-rolled dict exactly.
    def as_dict(self) -> Dict[str, float]:
        return REGISTRY.collect_raw("energy", self)


# Declaration order mirrors the historical as_dict() key order.
for _name, _doc in (
    ("l1_dynamic", "Dynamic energy of all L1 accesses"),
    ("l2_dynamic", "Dynamic energy of all L2 accesses"),
    ("llc_sram_read", "Dynamic energy of LLC SRAM-part reads"),
    ("llc_sram_write", "Dynamic energy of LLC SRAM-part writes"),
    ("llc_nvm_read", "Dynamic energy of LLC NVM-part reads"),
    ("llc_nvm_write", "Dynamic energy of LLC NVM-part writes "
                      "(scaled by bytes actually written)"),
    ("memory_dynamic", "Dynamic energy of main-memory accesses"),
    ("sram_leakage", "SRAM leakage over the measured window"),
    ("nvm_leakage", "NVM leakage over the measured window"),
):
    register_metric("energy", _name, "nJ", _doc)
register_metric("energy", "llc_total", "nJ",
                "LLC dynamic energy plus both leakage terms",
                aggregation="derived")
register_metric("energy", "total", "nJ",
                "Total energy of the measured window",
                aggregation="derived")


class EnergyModel:
    """Derives an :class:`EnergyBreakdown` from run statistics."""

    def __init__(self, config: SystemConfig, params: EnergyParams = EnergyParams()):
        self.config = config
        self.params = params
        block = config.llc.block_size
        mib = 1024 * 1024
        self._sram_bytes = (
            config.llc.n_sets * config.llc.sram_ways * block
            + config.l1.size_bytes * config.cores.n_cores
            + config.l2.size_bytes * config.cores.n_cores
        )
        self._nvm_bytes = config.llc.nvm_bytes
        self._sram_mib = self._sram_bytes / mib
        self._nvm_mib = self._nvm_bytes / mib

    def evaluate(self, stats: HierarchyStats, seconds: float) -> EnergyBreakdown:
        """Energy of a measured window of ``seconds`` wall-clock time."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        p = self.params
        llc = stats.llc
        out = EnergyBreakdown()

        l1_accesses = sum(c.accesses for c in stats.cores)
        l2_accesses = sum(c.accesses - c.l1_hits for c in stats.cores)
        out.l1_dynamic = l1_accesses * p.l1_access_nj
        out.l2_dynamic = l2_accesses * p.l2_access_nj

        out.llc_sram_read = llc.hits_sram * p.llc_sram_read_nj
        out.llc_nvm_read = llc.hits_nvm * p.llc_nvm_read_nj
        out.llc_sram_write = llc.sram_writes * p.llc_sram_write_nj
        # NVM write energy scales with the bytes the rearrangement
        # circuitry actually writes: compression saves write energy.
        block = self.config.llc.block_size
        out.llc_nvm_write = (llc.nvm_bytes_written / block) * p.llc_nvm_write_nj

        out.memory_dynamic = (
            stats.memory_reads + llc.writebacks_to_memory
        ) * p.memory_access_nj

        # leakage: P[mW] * t[s] = mJ -> nJ
        out.sram_leakage = p.sram_leakage_mw_per_mib * self._sram_mib * seconds * 1e6
        out.nvm_leakage = p.nvm_leakage_mw_per_mib * self._nvm_mib * seconds * 1e6
        return out
