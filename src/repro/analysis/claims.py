"""The paper's quantitative claims, as machine-checkable records.

Each claim pins one number the paper reports (abstract, Sec. V) to the
experiment that reproduces it and a tolerance band appropriate for a
simulator-substituted reproduction: we check *shape* — orderings and
rough factors — not absolute testbed numbers.  EXPERIMENTS.md is
generated against this table, and the claim checker doubles as an
integration test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class Claim:
    """One reported quantity: paper value + acceptance band."""

    id: str
    source: str              # where the paper states it
    description: str
    paper_value: float
    low: float               # accepted measured range (inclusive)
    high: float
    metric: Callable[[Mapping[str, float]], Optional[float]]

    def evaluate(self, measurements: Mapping[str, float]) -> Dict[str, object]:
        value = self.metric(measurements)
        ok = value is not None and self.low <= value <= self.high
        return {
            "claim": self.id,
            "source": self.source,
            "paper": self.paper_value,
            "measured": value,
            "band": f"[{self.low:g}, {self.high:g}]",
            "ok": bool(ok),
        }


def _ratio(a: str, b: str) -> Callable[[Mapping[str, float]], Optional[float]]:
    def metric(m: Mapping[str, float]) -> Optional[float]:
        if a not in m or b not in m or not m[b]:
            return None
        return m[a] / m[b]

    return metric


#: Measurement keys expected from a lifetime study:
#:   ``ipc_<policy>`` and ``life_<policy>`` for each policy,
#:   plus ``ipc_upper`` (16-way SRAM bound).
LIFETIME_CLAIMS: List[Claim] = [
    Claim(
        id="cp_sd_near_sram_performance",
        source="abstract / Fig. 10a",
        description="CP_SD nearly reaches same-associativity SRAM IPC "
        "(paper: 96.7 % of the bound)",
        paper_value=0.967,
        low=0.90,
        high=1.05,
        metric=_ratio("ipc_cp_sd", "ipc_upper"),
    ),
    Claim(
        id="cp_sd_lifetime_vs_bh",
        source="abstract (17x) / Sec. V-B (16.8x)",
        description="CP_SD lifetime vs the NVM-unaware hybrid",
        paper_value=16.8,
        low=4.0,
        high=60.0,
        metric=_ratio("life_cp_sd", "life_bh"),
    ),
    Claim(
        id="cp_sd_outperforms_lhybrid",
        source="abstract (9 %) / Sec. V-B",
        description="CP_SD IPC vs LHybrid",
        paper_value=1.09,
        low=1.02,
        high=1.40,
        metric=_ratio("ipc_cp_sd", "ipc_lhybrid"),
    ),
    Claim(
        id="lhybrid_performance_loss",
        source="Sec. II-D (11 % below BH)",
        description="LHybrid IPC vs BH",
        paper_value=0.888,
        low=0.75,
        high=0.95,
        metric=_ratio("ipc_lhybrid", "ipc_bh"),
    ),
    Claim(
        id="lhybrid_lifetime_vs_bh",
        source="Sec. II-D (19.7x)",
        description="LHybrid lifetime vs BH",
        paper_value=19.7,
        low=8.0,
        high=80.0,
        metric=_ratio("life_lhybrid", "life_bh"),
    ),
    Claim(
        id="tap_more_conservative_than_lhybrid",
        source="Sec. II-C/II-D",
        description="TAP IPC vs LHybrid (TAP sacrifices more performance)",
        paper_value=0.96,
        low=0.70,
        high=1.02,
        metric=_ratio("ipc_tap", "ipc_lhybrid"),
    ),
    Claim(
        id="bh_cp_lifetime_vs_bh",
        source="Sec. V-B (4.8x from compression alone)",
        description="BH_CP lifetime vs BH",
        paper_value=4.8,
        low=2.0,
        high=10.0,
        metric=_ratio("life_bh_cp", "life_bh"),
    ),
    Claim(
        id="th4_lifetime_gain",
        source="abstract (+28 % over CP_SD)",
        description="CP_SD_Th4 lifetime vs CP_SD",
        paper_value=1.28,
        low=1.05,
        high=1.8,
        metric=_ratio("life_cp_sd_th4", "life_cp_sd"),
    ),
    Claim(
        id="th8_lifetime_gain",
        source="abstract (+44 % over CP_SD)",
        description="CP_SD_Th8 lifetime vs CP_SD",
        paper_value=1.44,
        low=1.10,
        high=2.2,
        metric=_ratio("life_cp_sd_th8", "life_cp_sd"),
    ),
]


def measurements_from_study(study) -> Dict[str, float]:
    """Flatten a :class:`~repro.experiments.lifetime.LifetimeStudy`."""
    out: Dict[str, float] = {"ipc_upper": study.upper_bound_ipc}
    for key in study.forecasts:
        out[f"ipc_{key}"] = study.initial_ipc(key)
        out[f"life_{key}"] = study.lifetime_seconds(key)
    return out


def measurements_from_records(records) -> Dict[str, float]:
    """Build the claim-checker measurement dict from lifetime RunRecords.

    Accepts the ``bound``/``forecast`` records that ``fig10a`` campaign
    units produce (live objects or ``RunRecord.from_json`` round-trips)
    and averages across mixes, mirroring
    :func:`measurements_from_study`:

    * ``forecast`` records contribute ``ipc_<policy>`` and
      ``life_<policy>`` keyed by ``meta["unit"]["policy"]``;
    * ``bound`` records contribute ``ipc_upper`` — the bound with the
      most ways is the SRAM upper bound.
    """
    ipc_sums: Dict[str, List[float]] = {}
    life_sums: Dict[str, List[float]] = {}
    bounds: Dict[int, List[float]] = {}
    for record in records:
        unit = record.meta.get("unit", {})
        if record.kind == "bound":
            ways = int(unit.get("ways", 0))
            value = record.metrics.get("forecast.bound_ipc")
            if value is not None:
                bounds.setdefault(ways, []).append(float(value))
        elif record.kind == "forecast":
            policy = unit.get("policy")
            if policy is None:
                continue
            ipc = record.metrics.get("forecast.initial_ipc")
            life = record.metrics.get("forecast.lifetime_seconds")
            if ipc is not None:
                ipc_sums.setdefault(policy, []).append(float(ipc))
            if life is not None:
                life_sums.setdefault(policy, []).append(float(life))
    out: Dict[str, float] = {}
    if bounds:
        upper = bounds[max(bounds)]
        out["ipc_upper"] = sum(upper) / len(upper)
    for policy, values in ipc_sums.items():
        out[f"ipc_{policy}"] = sum(values) / len(values)
    for policy, values in life_sums.items():
        out[f"life_{policy}"] = sum(values) / len(values)
    return out


def check_claims(
    measurements: Mapping[str, float], claims: Optional[List[Claim]] = None
) -> List[Dict[str, object]]:
    """Evaluate every claim against a measurement dict."""
    return [c.evaluate(measurements) for c in (claims or LIFETIME_CLAIMS)]
