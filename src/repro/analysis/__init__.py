"""Result analysis: curve resampling, ASCII charts, paper-claim checks."""

from .claims import (
    Claim,
    LIFETIME_CLAIMS,
    check_claims,
    measurements_from_study,
)
from .curves import (
    Curve,
    ascii_chart,
    average_curves,
    lifetime_table,
    normalise,
    resample_capacity,
    resample_ipc,
    time_grid,
)

__all__ = [
    "Claim",
    "Curve",
    "LIFETIME_CLAIMS",
    "ascii_chart",
    "average_curves",
    "check_claims",
    "lifetime_table",
    "measurements_from_study",
    "normalise",
    "resample_capacity",
    "resample_ipc",
    "time_grid",
]
