"""Forecast-curve utilities: resampling, averaging, ASCII rendering.

The paper's headline figures (Figs. 1, 10, 11) plot normalised IPC
against time for several policies.  Forecast runs sample IPC at
irregular, policy-dependent times, so cross-policy and cross-mix
aggregation first resamples every run onto a common time grid (step
interpolation — IPC holds between phases, which is exactly what the
forecaster models).  ``ascii_chart`` renders the curves for terminals
and the EXPERIMENTS.md artefacts without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..forecast.forecaster import SECONDS_PER_MONTH, ForecastResult


@dataclass(frozen=True)
class Curve:
    """One named series sampled on a shared grid."""

    label: str
    times: Sequence[float]
    values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")


def time_grid(
    results: Sequence[ForecastResult], points: int = 24, horizon: Optional[float] = None
) -> List[float]:
    """A common time grid covering the longest (or given) horizon."""
    if points < 2:
        raise ValueError("need at least two grid points")
    if horizon is None:
        horizon = max((r.horizon_seconds for r in results), default=1.0)
    step = horizon / (points - 1)
    return [i * step for i in range(points)]


def resample_ipc(result: ForecastResult, grid: Sequence[float]) -> Curve:
    """Step-resample a forecast's IPC onto a grid."""
    return Curve(result.policy, list(grid), [result.ipc_at(t) for t in grid])


def resample_capacity(result: ForecastResult, grid: Sequence[float]) -> Curve:
    """Step-resample a forecast's capacity onto a grid."""
    values = []
    for t in grid:
        cap = result.points[0].capacity_fraction if result.points else 0.0
        for point in result.points:
            if point.time_seconds > t:
                break
            cap = point.capacity_fraction
        values.append(cap)
    return Curve(result.policy, list(grid), values)


def average_curves(label: str, curves: Sequence[Curve]) -> Curve:
    """Pointwise arithmetic mean of same-grid curves (cross-mix mean)."""
    if not curves:
        raise ValueError("need at least one curve")
    grid = curves[0].times
    for curve in curves:
        if list(curve.times) != list(grid):
            raise ValueError("curves must share a grid")
    n = len(curves)
    values = [sum(c.values[i] for c in curves) / n for i in range(len(grid))]
    return Curve(label, list(grid), values)


def normalise(curve: Curve, reference: float) -> Curve:
    """Divide a curve by a scalar (e.g. the upper-bound IPC)."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return Curve(curve.label, curve.times, [v / reference for v in curve.values])


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------
_GLYPHS = "0123456789"


def ascii_chart(
    curves: Sequence[Curve],
    width: int = 64,
    height: int = 12,
    x_label: str = "months",
    x_scale: float = SECONDS_PER_MONTH,
) -> str:
    """Render curves as a compact ASCII chart (one digit per curve)."""
    if not curves:
        return "(no curves)"
    all_values = [v for c in curves for v in c.values]
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    t_max = max(max(c.times) for c in curves) or 1.0

    rows = [[" "] * width for _ in range(height)]
    for idx, curve in enumerate(curves):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for t, v in zip(curve.times, curve.values):
            x = min(width - 1, int(t / t_max * (width - 1)))
            y = min(height - 1, int((v - lo) / (hi - lo) * (height - 1)))
            rows[height - 1 - y][x] = glyph
    lines = [f"{hi:8.3f} |" + "".join(rows[0])]
    for row in rows[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{lo:8.3f} |" + "".join(rows[-1]))
    lines.append(" " * 10 + "-" * width)
    lines.append(
        " " * 10 + f"0 .. {t_max / x_scale:.3g} {x_label}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={c.label}" for i, c in enumerate(curves)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def lifetime_table(
    results: Mapping[str, ForecastResult], capacity: float = 0.5
) -> List[Dict[str, object]]:
    """Per-policy lifetime/IPC rows, normalised to the first entry."""
    rows: List[Dict[str, object]] = []
    base_seconds: Optional[float] = None
    for label, result in results.items():
        seconds = result.lifetime_or_horizon_seconds(capacity)
        if base_seconds is None:
            base_seconds = seconds
        rows.append(
            {
                "policy": label,
                "initial_ipc": result.initial_ipc,
                "lifetime_months": seconds / SECONDS_PER_MONTH,
                "lifetime_ratio": seconds / base_seconds,
                "reached_target": result.reached_stop,
            }
        )
    return rows
