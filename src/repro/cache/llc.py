"""The shared hybrid SRAM/NVM last-level cache (Sec. III).

The LLC owns the set array, the NVM fault map, the wear tracker and
the statistics; all *decisions* (where to insert, which victim, when
to migrate) are delegated to the bound insertion policy.  Protocol
behaviour implemented here (Sec. III-A):

* non-inclusive / mostly-exclusive: the LLC is only filled by L2
  evictions (``fill_from_l2``); demand misses bypass it;
* GetX requests that hit invalidate the LLC copy immediately
  (invalidate-on-hit), handing the block — and responsibility for its
  dirty data — back to the private levels;
* a dirty L2 eviction that finds a stale resident copy updates it in
  place (one frame write); a clean one is dropped silently.

Fault-awareness: frames are usable for a block only if their effective
capacity (live bytes, from the fault map) can hold its extended
compressed block; non-compressing policies need the full 64 bytes.
Every NVM frame write is charged to the wear tracker with the number
of bytes the rearrangement circuitry would actually write.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

from ..config import SystemConfig
from ..core.policy import GLOBAL, FillContext, InsertionPolicy
from ..nvm.faultmap import FaultMap
from ..nvm.wear import WearTracker
from .block import BlockMeta, MetadataTable, ReuseClass
from .cacheset import NVM, SRAM, CacheSet
from .replacement import usable_invalid_way
from .stats import LLCStats

SizeFn = Callable[[int], Tuple[int, int]]
"""``size_fn(addr) -> (compressed_size, ecb_size)`` from the data model."""


class EvictedBlock(NamedTuple):
    """A block removed from the LLC by replacement."""

    addr: int
    dirty: bool
    csize: int
    reuse: ReuseClass
    part: int


class RequestResult(NamedTuple):
    """Outcome of an L2-originated GetS/GetX request."""

    hit: bool
    part: Optional[int]      # SRAM or NVM on a hit
    dirty: bool              # resident copy was dirty (GetX takes it over)
    invalidated: bool        # GetX invalidate-on-hit fired


#: Shared miss result — immutable, so one instance serves every miss.
_MISS = RequestResult(False, None, False, False)


class HybridLLC:
    """One shared hybrid LLC (all banks; sets are bank-interleaved)."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        size_fn: Optional[SizeFn] = None,
        stats: Optional[LLCStats] = None,
    ) -> None:
        geom = config.llc
        self.config = config
        self.geom = geom
        self.policy = policy
        self.block_size = geom.block_size
        self.n_sets = geom.n_sets
        self._set_mask = geom.n_sets - 1
        self.sets: List[CacheSet] = [
            CacheSet(i, geom.sram_ways, geom.nvm_ways) for i in range(geom.n_sets)
        ]
        self.faultmap = FaultMap(
            geom.n_sets, geom.nvm_ways, geom.block_size, policy.granularity
        )
        self.wear = WearTracker(geom.n_sets, geom.nvm_ways)
        self.stats = stats if stats is not None else LLCStats()
        self._size_fn = size_fn
        # ``policy.compressed`` is a plain class attribute fixed at
        # construction; sizes_of runs once per fill, so cache it.
        self._compressed = bool(policy.compressed)
        #: called with (addr,) when a block leaves the LLC toward memory;
        #: the hierarchy uses it to garbage-collect block metadata.
        self.on_block_to_memory: Optional[Callable[[int], None]] = None
        policy.bind(self)
        # Policy-hook fast path: most policies keep the base-class no-op
        # hooks, so detect that once and skip the virtual call per
        # hit / NVM write / SRAM eviction entirely.
        base = InsertionPolicy
        hook = policy.on_hit
        self._on_hit = None if hook.__func__ is base.on_hit else hook
        hook = policy.on_nvm_write
        self._on_nvm_write = (
            None if hook.__func__ is base.on_nvm_write else hook
        )
        hook = policy.handle_sram_eviction
        self._handle_sram_eviction = (
            None if hook.__func__ is base.handle_sram_eviction else hook
        )
        # Fill-path devirtualisation: a constant placement tuple skips
        # the placement call, and the base-class (fit-)LRU victim scan
        # is inlined when the policy doesn't override choose_victim.
        self._static_placement = policy.static_placement
        self._default_victim = (
            policy.choose_victim.__func__ is base.choose_victim
        )

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def set_of(self, addr: int) -> CacheSet:
        return self.sets[addr & self._set_mask]

    def bank_of(self, addr: int) -> int:
        """Bank an address maps to (sets are interleaved across banks)."""
        return (addr & self._set_mask) % self.geom.n_banks

    def sizes_of(self, addr: int) -> Tuple[int, int]:
        """(compressed size, ECB size) the LLC would store for ``addr``."""
        if not self._compressed or self._size_fn is None:
            return self.block_size, self.block_size
        return self._size_fn(addr)

    def capacity_of(self, cache_set: CacheSet, way: int) -> int:
        """Effective capacity of a frame: 64 for SRAM, fault-map for NVM."""
        if way < cache_set.sram_ways:
            return self.block_size
        return self.faultmap.rows[cache_set.index][way - cache_set.sram_ways]

    def contains(self, addr: int) -> bool:
        return self.set_of(addr).find(addr) is not None

    # ------------------------------------------------------------------
    # request path (L2 miss -> GetS / GetX)
    # ------------------------------------------------------------------
    def request(
        self, addr: int, is_getx: bool, meta_table: MetadataTable
    ) -> RequestResult:
        # One call per L2 miss: set lookup, metadata classification and
        # recency update are inlined (classify_llc_hit semantics copied
        # verbatim from MetadataTable).
        cache_set = self.sets[addr & self._set_mask]
        stats = self.stats
        if is_getx:
            stats.getx += 1
        else:
            stats.gets += 1
        way = cache_set.way_of.get(addr)
        if way is None:
            return _MISS

        copy_dirty = cache_set.dirty[way]
        table = meta_table._table
        meta = table.get(addr)
        if meta is None:
            meta = BlockMeta()
            table[addr] = meta
        meta.llc_hits += 1
        if is_getx or copy_dirty:
            meta.reuse = ReuseClass.WRITE
        elif meta.reuse is not ReuseClass.WRITE:
            meta.reuse = ReuseClass.READ
        cache_set.reuse[way] = meta.reuse
        if is_getx:
            stats.getx_hits += 1
        else:
            stats.gets_hits += 1
        if way < cache_set.sram_ways:
            part = SRAM
            stats.hits_sram += 1
        else:
            part = NVM
            stats.hits_nvm += 1
        if self._on_hit is not None:
            self._on_hit(cache_set, way, is_getx)

        if is_getx:
            # Invalidate-on-hit: the block (with its dirty data) moves to
            # the requester; no memory writeback happens here.
            # (Inlined CacheSet.evict — the way is known valid.)
            cache_set.tags[way] = None
            cache_set.dirty[way] = False
            cache_set.csize[way] = 0
            cache_set.ecb[way] = 0
            cache_set.reuse[way] = ReuseClass.NONE
            # Inlined recency unlink (CacheSet.evict's link surgery).
            prv = cache_set.rec_prev
            nxt = cache_set.rec_next
            before, after = prv[way], nxt[way]
            nxt[before] = after
            prv[after] = before
            del cache_set.way_of[addr]
            if part == SRAM:
                cache_set.free_sram += 1
            else:
                cache_set.free_nvm += 1
            return RequestResult(True, part, copy_dirty, True)
        # Inlined CacheSet.touch: promote to MRU unless already there.
        nxt = cache_set.rec_next
        sentinel = cache_set.total_ways
        if nxt[way] != sentinel:
            prv = cache_set.rec_prev
            before, after = prv[way], nxt[way]
            nxt[before] = after
            prv[after] = before
            mru = prv[sentinel]
            nxt[mru] = way
            prv[way] = mru
            nxt[way] = sentinel
            prv[sentinel] = way
        return RequestResult(True, part, copy_dirty, False)

    def upgrade(self, addr: int, meta_table: MetadataTable) -> bool:
        """A store hit a clean private line: acquire write permission.

        Behaves like a GetX for the directory state — if the LLC holds
        a copy it is invalidated (the requester already has the data)
        and the block is classified as write-reused.  Returns True if a
        copy was invalidated.
        """
        cache_set = self.set_of(addr)
        self.stats.upgrades += 1
        way = cache_set.find(addr)
        if way is None:
            return False
        self.stats.upgrade_hits += 1
        meta_table.classify_llc_hit(addr, True, cache_set.dirty[way])
        cache_set.evict(way)
        return True

    # ------------------------------------------------------------------
    # fill path (L2 eviction)
    # ------------------------------------------------------------------
    def fill_from_l2(self, addr: int, dirty: bool, meta_table: MetadataTable) -> None:
        cache_set = self.sets[addr & self._set_mask]
        stats = self.stats
        way = cache_set.way_of.get(addr)
        if way is not None:
            if dirty:
                cache_set.dirty[way] = True
                self._charge_write(cache_set, way, cache_set.ecb[way])
                stats.updates_in_place += 1
            else:
                stats.silent_drops += 1
            # Inlined CacheSet.touch.
            nxt = cache_set.rec_next
            sentinel = cache_set.total_ways
            if nxt[way] != sentinel:
                prv = cache_set.rec_prev
                before, after = prv[way], nxt[way]
                nxt[before] = after
                prv[after] = before
                mru = prv[sentinel]
                nxt[mru] = way
                prv[way] = mru
                nxt[way] = sentinel
                prv[sentinel] = way
            return

        meta = meta_table._table.get(addr)
        reuse = meta.reuse if meta is not None else ReuseClass.NONE
        if self._compressed and self._size_fn is not None:
            csize, ecb = self._size_fn(addr)
        else:
            csize = ecb = self.block_size
        ctx = FillContext(addr, dirty, csize, ecb, reuse, cache_set.index)
        stats.fills += 1
        self._insert(cache_set, ctx, migrating=False)

    # ------------------------------------------------------------------
    def _insert(
        self,
        cache_set: CacheSet,
        ctx: FillContext,
        migrating: bool,
        parts: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        """Generic insertion: try parts in order, evict, write, account.

        Runs once per LLC fill; the invalid-way scan (the common case)
        and the victim-eviction/insert bookkeeping are inlined here
        rather than routed through :func:`usable_invalid_way` /
        :meth:`CacheSet.evict` / :meth:`CacheSet.insert`.  Policy
        decisions (``placement`` / ``choose_victim`` / migration) stay
        virtual calls — they are the policies' interface.
        """
        stats = self.stats
        if parts is None:
            parts = self._static_placement
            if parts is None:
                parts = self.policy.placement(cache_set, ctx)
        ecb = ctx.ecb
        tags = cache_set.tags
        sram_ways = cache_set.sram_ways
        total_ways = cache_set.total_ways
        sram_fits = self.block_size >= ecb
        for part in parts:
            # Slot: first usable invalid frame of the part, else a
            # policy-chosen victim (same order as the part arguments).
            # The free-frame counters skip the scans outright for full
            # sets — the steady-state common case.
            way = None
            if part != NVM and sram_fits and cache_set.free_sram:
                for w in range(sram_ways):
                    if tags[w] is None:
                        way = w
                        break
            if way is None and part != SRAM and cache_set.free_nvm:
                row = self.faultmap.rows[cache_set.index]
                for w in range(sram_ways, total_ways):
                    if tags[w] is None and row[w - sram_ways] >= ecb:
                        way = w
                        break
            if way is None:
                if self._default_victim:
                    # Inlined InsertionPolicy.choose_victim: (fit-)LRU
                    # walk of the linked recency order (LRU -> MRU),
                    # restricted to the part.
                    nxt = cache_set.rec_next
                    w = nxt[total_ways]
                    if part == SRAM:
                        while w != total_ways:
                            if w < sram_ways:
                                way = w
                                break
                            w = nxt[w]
                    elif part == GLOBAL:
                        block_size = self.block_size
                        row = self.faultmap.rows[cache_set.index]
                        while w != total_ways:
                            cap = (
                                block_size if w < sram_ways
                                else row[w - sram_ways]
                            )
                            if cap >= ecb:
                                way = w
                                break
                            w = nxt[w]
                    else:
                        row = self.faultmap.rows[cache_set.index]
                        while w != total_ways:
                            if w >= sram_ways and row[w - sram_ways] >= ecb:
                                way = w
                                break
                            w = nxt[w]
                else:
                    way = self.policy.choose_victim(cache_set, part, ctx)
                if way is None:
                    continue
            v_addr = tags[way]
            if v_addr is not None:
                # Inlined CacheSet.evict + victim retirement.  The
                # EvictedBlock record (and the _retire hop) is only
                # materialised when an SRAM-eviction handler might
                # consume the victim — the migrating policies.
                dirty_l = cache_set.dirty
                v_dirty = dirty_l[way]
                v_in_sram = way < sram_ways
                handler = self._handle_sram_eviction
                if v_in_sram and not migrating and handler is not None:
                    victim = EvictedBlock(
                        v_addr, v_dirty, cache_set.csize[way],
                        cache_set.reuse[way], SRAM,
                    )
                else:
                    victim = None
                tags[way] = None
                dirty_l[way] = False
                cache_set.csize[way] = 0
                cache_set.ecb[way] = 0
                cache_set.reuse[way] = ReuseClass.NONE
                # Inlined recency unlink.
                prv = cache_set.rec_prev
                nxt = cache_set.rec_next
                before, after = prv[way], nxt[way]
                nxt[before] = after
                prv[after] = before
                del cache_set.way_of[v_addr]
                if v_in_sram:
                    cache_set.free_sram += 1
                else:
                    cache_set.free_nvm += 1
                stats.evictions += 1
                if victim is None or not handler(cache_set, victim):
                    # Inlined _to_memory.
                    if v_dirty:
                        stats.writebacks_to_memory += 1
                    cb = self.on_block_to_memory
                    if cb is not None:
                        cb(v_addr)
            # Inlined CacheSet.insert (the way is known to be empty).
            tags[way] = ctx.addr
            cache_set.dirty[way] = ctx.dirty
            cache_set.csize[way] = ctx.csize
            cache_set.ecb[way] = ecb
            cache_set.reuse[way] = ctx.reuse
            # Inlined recency link at MRU (before the sentinel).
            prv = cache_set.rec_prev
            nxt = cache_set.rec_next
            mru = prv[total_ways]
            nxt[mru] = way
            prv[way] = mru
            nxt[way] = total_ways
            prv[total_ways] = way
            cache_set.way_of[ctx.addr] = way
            # Inlined _charge_write + fill-side counters.
            if way < sram_ways:
                cache_set.free_sram -= 1
                stats.sram_writes += 1
                stats.fills_sram += 1
            else:
                cache_set.free_nvm -= 1
                # Inlined WearTracker.record_write.
                set_index = cache_set.index
                nvm_way = way - sram_ways
                wear = self.wear
                wear._bytes_rows[set_index][nvm_way] += ecb
                wear._writes_rows[set_index][nvm_way] += 1
                stats.nvm_writes += 1
                stats.nvm_bytes_written += ecb
                if self._on_nvm_write is not None:
                    self._on_nvm_write(set_index, ecb)
                stats.fills_nvm += 1
            if migrating:
                stats.migrations_to_nvm += 1
            return True

        # No usable frame anywhere the policy allowed.
        if migrating:
            # Failed migration: the caller still owns the victim and
            # will write it back; charging memory here would double it.
            return False
        stats.bypasses += 1
        self._to_memory(ctx.addr, ctx.dirty)
        return False

    def _slot_for(
        self, cache_set: CacheSet, part: int, ctx: FillContext
    ) -> Optional[int]:
        """Reference slot selection (kept for tests/inspection; the hot
        path in :meth:`_insert` inlines the same logic)."""
        if part == GLOBAL:
            for p in (SRAM, NVM):
                way = usable_invalid_way(cache_set, p, ctx.ecb, self.capacity_of)
                if way is not None:
                    return way
        else:
            way = usable_invalid_way(cache_set, part, ctx.ecb, self.capacity_of)
            if way is not None:
                return way
        return self.policy.choose_victim(cache_set, part, ctx)

    def _retire(
        self, cache_set: CacheSet, victim: EvictedBlock, migrating: bool
    ) -> None:
        """Dispose of a replacement victim: migrate or send to memory."""
        if victim.part == SRAM and not migrating:
            handler = self._handle_sram_eviction
            if handler is not None and handler(cache_set, victim):
                return
        self._to_memory(victim.addr, victim.dirty)

    def _to_memory(self, addr: int, dirty: bool) -> None:
        if dirty:
            self.stats.writebacks_to_memory += 1
        if self.on_block_to_memory is not None:
            self.on_block_to_memory(addr)

    def migrate_to_nvm(self, cache_set: CacheSet, victim: EvictedBlock) -> bool:
        """Insert an SRAM victim into the NVM part (policy helper).

        Used by CA_RWR-style migration and LHybrid's loop-block
        replacement.  Returns True if the block found an NVM frame; on
        failure the caller's victim falls through to memory.
        """
        csize, ecb = self.sizes_of(victim.addr)
        ctx = FillContext(
            victim.addr, victim.dirty, csize, ecb, victim.reuse, cache_set.index
        )
        return self._insert(cache_set, ctx, migrating=True, parts=(NVM,))

    # ------------------------------------------------------------------
    def _charge_write(self, cache_set: CacheSet, way: int, n_bytes: int) -> None:
        stats = self.stats
        if way < cache_set.sram_ways:
            stats.sram_writes += 1
            return
        nvm_way = way - cache_set.sram_ways
        self.wear.record_write(cache_set.index, nvm_way, n_bytes)
        stats.nvm_writes += 1
        stats.nvm_bytes_written += n_bytes
        if self._on_nvm_write is not None:
            self._on_nvm_write(cache_set.index, n_bytes)

    # ------------------------------------------------------------------
    def end_epoch(self) -> None:
        """Propagate an epoch boundary to the policy (Set Dueling)."""
        self.policy.end_epoch()

    def reconcile_faults(self) -> int:
        """Evict blocks whose frame can no longer hold them.

        Called by the forecaster after aging the fault map: a frame
        that lost bytes (or died, under frame-disabling) while holding
        a block loses that block — dirty data is written back to
        memory.  Returns the number of evictions.
        """
        evicted = 0
        for cache_set in self.sets:
            for way in range(cache_set.sram_ways, cache_set.total_ways):
                if cache_set.tags[way] is None:
                    continue
                if cache_set.ecb[way] > self.capacity_of(cache_set, way):
                    addr, dirty, _csize, _reuse = cache_set.evict(way)
                    self._to_memory(addr, dirty)
                    evicted += 1
        return evicted

    def flush(self) -> None:
        """Drop all resident blocks (dirty ones count as writebacks)."""
        for cache_set in self.sets:
            for way in list(cache_set.lru_order()):
                addr, dirty, _csize, _reuse = cache_set.evict(way)
                self._to_memory(addr, dirty)

    def resident_blocks(self) -> List[int]:
        return [addr for s in self.sets for addr in s.way_of]

    def export_state(self) -> dict:
        """Full cache state as stacked ``(n_sets, ...)`` numpy matrices.

        Stacks every set's :meth:`CacheSet.export_arrays` field into
        one matrix per field and adds the NVM side (fault-map
        capacities, wear byte/write accumulators).  This is the
        cross-backend equality oracle: two backends that report the
        same statistics but diverge in resident tags, recency links,
        free counters or wear are caught by ``np.array_equal`` over
        these matrices — strictly stronger than the digest, which only
        covers reported numbers.  Read-only copies, never live views.
        """
        import numpy as np

        per_set = [s.export_arrays() for s in self.sets]
        state = {
            field: np.stack([arrays[field] for arrays in per_set])
            for field in per_set[0]
        }
        state["fault_capacity"] = np.array(self.faultmap.rows, dtype=np.int32)
        state["wear_bytes"] = self.wear.bytes_written
        state["wear_writes"] = self.wear.writes
        return state

    def occupancy_fraction(self) -> float:
        total = self.n_sets * self.geom.total_ways
        used = sum(len(s.way_of) for s in self.sets)
        return used / total if total else 0.0
