"""Statistics counters for the hierarchy and the hybrid LLC.

The counters stay *plain int attributes* — the engine's inlined hot
path bumps them directly and nothing may sit in that path.  What this
module adds on top is declaration: every counter is registered once in
the :mod:`repro.metrics.registry` (name, unit, layer, docstring,
aggregation), and the collection helpers (``snapshot`` and friends)
are thin forwards to the registry's attribute walker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..metrics.registry import REGISTRY, register_metric


@dataclass
class LLCStats:
    """Counters the LLC maintains; the paper's metrics derive from these."""

    gets: int = 0
    getx: int = 0
    gets_hits: int = 0
    getx_hits: int = 0
    upgrades: int = 0
    upgrade_hits: int = 0
    hits_sram: int = 0
    hits_nvm: int = 0
    fills: int = 0
    fills_sram: int = 0
    fills_nvm: int = 0
    bypasses: int = 0
    updates_in_place: int = 0
    silent_drops: int = 0
    migrations_to_nvm: int = 0
    evictions: int = 0
    writebacks_to_memory: int = 0
    nvm_writes: int = 0
    nvm_bytes_written: int = 0
    sram_writes: int = 0

    @property
    def accesses(self) -> int:
        return self.gets + self.getx

    @property
    def hits(self) -> int:
        return self.gets_hits + self.getx_hits

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    # Deprecated: thin wrappers over the registry collector (see
    # repro.metrics.registry); kept one release for external callers.
    # The returned dict is byte-identical to the historical
    # field-walking implementation — the golden digests hash it.
    def snapshot(self) -> Dict[str, int]:
        return REGISTRY.collect_raw("llc", self)

    def delta_since(self, snap: Dict[str, int]) -> Dict[str, int]:
        return {k: getattr(self, k) - v for k, v in snap.items()}


@dataclass
class CoreStats:
    """Per-core counters of the analytical core model."""

    instructions: int = 0
    cycles: float = 0.0
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class HierarchyStats:
    """Aggregate statistics of one simulation run."""

    llc: LLCStats = field(default_factory=LLCStats)
    cores: List[CoreStats] = field(default_factory=list)
    memory_reads: int = 0
    memory_writes: int = 0
    coherence_invalidations: int = 0

    def core(self, core_id: int) -> CoreStats:
        while len(self.cores) <= core_id:
            self.cores.append(CoreStats())
        return self.cores[core_id]

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def mean_ipc(self) -> float:
        """Arithmetic mean of per-core IPCs (the paper's workload IPC)."""
        ipcs = [c.ipc for c in self.cores if c.cycles]
        return sum(ipcs) / len(ipcs) if ipcs else 0.0


# ----------------------------------------------------------------------
# Metric declarations.  Order matters for the llc layer: it must match
# the dataclass field order so collect_raw() reproduces the historical
# snapshot() dict exactly (repro export --check enforces this).
_LLC_DOCS = {
    "gets": ("count", "Read (GETS) requests reaching the LLC"),
    "getx": ("count", "Write/ownership (GETX) requests reaching the LLC"),
    "gets_hits": ("count", "GETS requests that hit"),
    "getx_hits": ("count", "GETX requests that hit"),
    "upgrades": ("count", "Upgrade requests (S->M) reaching the LLC"),
    "upgrade_hits": ("count", "Upgrade requests that hit"),
    "hits_sram": ("count", "Hits served by the SRAM part"),
    "hits_nvm": ("count", "Hits served by the NVM part"),
    "fills": ("count", "Blocks filled into the LLC"),
    "fills_sram": ("count", "Fills placed in the SRAM part"),
    "fills_nvm": ("count", "Fills placed in the NVM part"),
    "bypasses": ("count", "Fills bypassed around the LLC"),
    "updates_in_place": ("count", "Dirty updates rewritten in place"),
    "silent_drops": ("count", "Clean evictions dropped without writeback"),
    "migrations_to_nvm": ("count", "SRAM->NVM demotions (migration policy)"),
    "evictions": ("count", "Blocks evicted from the LLC"),
    "writebacks_to_memory": ("count", "Dirty evictions written to memory"),
    "nvm_writes": ("count", "Frame writes charged to the NVM part"),
    "nvm_bytes_written": ("bytes", "Bytes actually written to NVM frames "
                                   "(compression and byte-disabling save these)"),
    "sram_writes": ("count", "Frame writes charged to the SRAM part"),
}
for _name, (_unit, _doc) in _LLC_DOCS.items():
    register_metric("llc", _name, _unit, _doc)

for _name, _unit, _doc in (
    ("instructions", "count", "Instructions retired by the core"),
    ("cycles", "cycles", "Core cycles accumulated by the analytical model"),
    ("accesses", "count", "Demand accesses issued by the core"),
    ("l1_hits", "count", "Demand accesses that hit in the L1"),
    ("l2_hits", "count", "Demand accesses that hit in the L2"),
    ("llc_hits", "count", "Demand accesses that hit in the LLC"),
    ("memory_accesses", "count", "Demand accesses served by main memory"),
):
    register_metric("core", _name, _unit, _doc)

register_metric("hierarchy", "memory_reads", "count",
                "LLC misses read from main memory")
register_metric("hierarchy", "memory_writes", "count",
                "Writebacks received by main memory")
register_metric("hierarchy", "coherence_invalidations", "count",
                "Back-invalidations sent to private caches")
register_metric("hierarchy", "total_instructions", "count",
                "Instructions retired across all cores",
                aggregation="derived")
register_metric("hierarchy", "mean_ipc", "instructions/cycle",
                "Arithmetic mean of per-core IPCs (the paper's workload IPC)",
                aggregation="derived")
