"""Statistics counters for the hierarchy and the hybrid LLC."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List


@dataclass
class LLCStats:
    """Counters the LLC maintains; the paper's metrics derive from these."""

    gets: int = 0
    getx: int = 0
    gets_hits: int = 0
    getx_hits: int = 0
    upgrades: int = 0
    upgrade_hits: int = 0
    hits_sram: int = 0
    hits_nvm: int = 0
    fills: int = 0
    fills_sram: int = 0
    fills_nvm: int = 0
    bypasses: int = 0
    updates_in_place: int = 0
    silent_drops: int = 0
    migrations_to_nvm: int = 0
    evictions: int = 0
    writebacks_to_memory: int = 0
    nvm_writes: int = 0
    nvm_bytes_written: int = 0
    sram_writes: int = 0

    @property
    def accesses(self) -> int:
        return self.gets + self.getx

    @property
    def hits(self) -> int:
        return self.gets_hits + self.getx_hits

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, snap: Dict[str, int]) -> Dict[str, int]:
        return {k: getattr(self, k) - v for k, v in snap.items()}


@dataclass
class CoreStats:
    """Per-core counters of the analytical core model."""

    instructions: int = 0
    cycles: float = 0.0
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class HierarchyStats:
    """Aggregate statistics of one simulation run."""

    llc: LLCStats = field(default_factory=LLCStats)
    cores: List[CoreStats] = field(default_factory=list)
    memory_reads: int = 0
    memory_writes: int = 0
    coherence_invalidations: int = 0

    def core(self, core_id: int) -> CoreStats:
        while len(self.cores) <= core_id:
            self.cores.append(CoreStats())
        return self.cores[core_id]

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def mean_ipc(self) -> float:
        """Arithmetic mean of per-core IPCs (the paper's workload IPC)."""
        ipcs = [c.ipc for c in self.cores if c.cycles]
        return sum(ipcs) / len(ipcs) if ipcs else 0.0
