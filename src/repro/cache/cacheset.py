"""One set of the hybrid LLC: tags, per-way state, recency order.

Ways ``0 .. sram_ways-1`` are SRAM frames, ways ``sram_ways ..
total_ways-1`` are NVM frames.  A single recency order per set supports
both the global LRU of BH/BH_CP and the per-part local LRU of the
NVM-aware policies (a local LRU is the global order filtered to one
part, which is exactly how the replacement helpers consume it).

The order is kept in an array-backed doubly-linked list rather than a
Python list: the old representation paid ``list.remove`` — an O(ways)
scan plus an O(ways) element shift — on every hit promotion and every
eviction.  The linked list does the same mutations with a constant
number of array reads/writes, while yielding the *identical* LRU→MRU
sequence (``tests/test_cacheset_replacement.py`` pins the two
representations against each other, and the golden digests pin the
whole engine).

Representation: ``rec_next[w]`` / ``rec_prev[w]`` link way ``w`` into a
circular list through a sentinel slot at index ``total_ways``.
``rec_next[sentinel]`` is the LRU way, ``rec_prev[sentinel]`` the MRU
way; an empty set links the sentinel to itself.  A way is linked iff
its frame holds a block.  Hot paths (``llc.py`` / ``hierarchy.py``)
inline the link/unlink sequences directly on the two arrays.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .block import ReuseClass

SRAM = 0
NVM = 1
PART_NAMES = {SRAM: "sram", NVM: "nvm"}


class CacheSet:
    """Tag/state storage for one LLC set."""

    __slots__ = (
        "index",
        "sram_ways",
        "total_ways",
        "tags",
        "dirty",
        "csize",
        "ecb",
        "reuse",
        "rec_prev",
        "rec_next",
        "way_of",
        "free_sram",
        "free_nvm",
    )

    def __init__(self, index: int, sram_ways: int, nvm_ways: int) -> None:
        self.index = index
        self.sram_ways = sram_ways
        self.total_ways = sram_ways + nvm_ways
        n = self.total_ways
        self.tags: List[Optional[int]] = [None] * n
        self.dirty: List[bool] = [False] * n
        self.csize: List[int] = [0] * n      # compressed size of the resident block
        self.ecb: List[int] = [0] * n        # bytes occupied in the frame
        self.reuse: List[ReuseClass] = [ReuseClass.NONE] * n
        # Doubly-linked recency order (LRU -> MRU) through the sentinel
        # slot ``n``; only valid ways are linked.
        self.rec_prev: List[int] = [n] * (n + 1)
        self.rec_next: List[int] = [n] * (n + 1)
        self.way_of = {}                     # addr -> way
        # Count of *empty* frames per part (disabled NVM frames still
        # count — they hold no block).  Lets the fill path skip the
        # invalid-way scan for full sets, the steady-state common case.
        # Every tag transition (here and at the inlined hot-path sites)
        # keeps these in step.
        self.free_sram = sram_ways
        self.free_nvm = nvm_ways

    # ------------------------------------------------------------------
    def part_of(self, way: int) -> int:
        return SRAM if way < self.sram_ways else NVM

    def nvm_way(self, way: int) -> int:
        """Index of a way within the NVM part (for fault-map lookup)."""
        if way < self.sram_ways:
            raise ValueError(f"way {way} is SRAM")
        return way - self.sram_ways

    def ways_of_part(self, part: int) -> range:
        if part == SRAM:
            return range(0, self.sram_ways)
        return range(self.sram_ways, self.total_ways)

    # ------------------------------------------------------------------
    def find(self, addr: int) -> Optional[int]:
        return self.way_of.get(addr)

    def touch(self, way: int) -> None:
        """Move a way to MRU position."""
        nxt = self.rec_next
        sentinel = self.total_ways
        if nxt[way] == sentinel:
            return  # already MRU (a linked way pointing at the sentinel)
        prv = self.rec_prev
        # unlink
        before, after = prv[way], nxt[way]
        nxt[before] = after
        prv[after] = before
        # relink before the sentinel (MRU position)
        mru = prv[sentinel]
        nxt[mru] = way
        prv[way] = mru
        nxt[way] = sentinel
        prv[sentinel] = way

    @property
    def recency(self) -> List[int]:
        """Valid ways from LRU to MRU (a fresh read-only list).

        Kept as a property for tests, debugging and cold paths; the
        authoritative order lives in ``rec_prev``/``rec_next``.
        Mutating the returned list does nothing.
        """
        return self.lru_order()

    def lru_order(self) -> List[int]:
        """Valid ways from LRU to MRU (freshly materialised)."""
        nxt = self.rec_next
        sentinel = self.total_ways
        order = []
        way = nxt[sentinel]
        while way != sentinel:
            order.append(way)
            way = nxt[way]
        return order

    # ------------------------------------------------------------------
    def insert(
        self,
        way: int,
        addr: int,
        dirty: bool,
        csize: int,
        ecb: int,
        reuse: ReuseClass,
    ) -> None:
        """Place a block in an *empty* way and make it MRU."""
        if self.tags[way] is not None:
            raise ValueError(f"way {way} is occupied")
        self.tags[way] = addr
        self.dirty[way] = dirty
        self.csize[way] = csize
        self.ecb[way] = ecb
        self.reuse[way] = reuse
        prv = self.rec_prev
        nxt = self.rec_next
        sentinel = self.total_ways
        mru = prv[sentinel]
        nxt[mru] = way
        prv[way] = mru
        nxt[way] = sentinel
        prv[sentinel] = way
        self.way_of[addr] = way
        if way < self.sram_ways:
            self.free_sram -= 1
        else:
            self.free_nvm -= 1

    def evict(self, way: int) -> Tuple[int, bool, int, ReuseClass]:
        """Remove the block at ``way``; returns (addr, dirty, csize, reuse)."""
        addr = self.tags[way]
        if addr is None:
            raise ValueError(f"way {way} is empty")
        info = (addr, self.dirty[way], self.csize[way], self.reuse[way])
        self.tags[way] = None
        self.dirty[way] = False
        self.csize[way] = 0
        self.ecb[way] = 0
        self.reuse[way] = ReuseClass.NONE
        prv = self.rec_prev
        nxt = self.rec_next
        before, after = prv[way], nxt[way]
        nxt[before] = after
        prv[after] = before
        del self.way_of[addr]
        if way < self.sram_ways:
            self.free_sram += 1
        else:
            self.free_nvm += 1
        return info

    def invalid_way(self, part: int) -> Optional[int]:
        """First empty frame of a part (free counters early-out the scan)."""
        if part == SRAM:
            if not self.free_sram:
                return None
            if self.free_sram == self.sram_ways:
                return 0
            tags = self.tags
            for way in range(0, self.sram_ways):
                if tags[way] is None:
                    return way
            return None
        if not self.free_nvm:
            return None
        if self.free_nvm == self.total_ways - self.sram_ways:
            return self.sram_ways
        tags = self.tags
        for way in range(self.sram_ways, self.total_ways):
            if tags[way] is None:
                return way
        return None

    def occupancy(self, part: int) -> int:
        """Valid blocks in a part — from the free counters, no scan."""
        if part == SRAM:
            return self.sram_ways - self.free_sram
        return (self.total_ways - self.sram_ways) - self.free_nvm

    # ------------------------------------------------------------------
    def export_arrays(self) -> dict:
        """Snapshot of this set's per-way state as numpy arrays.

        The array-kernel contract: every field a backend is allowed to
        mutate, in a representation two backends can be diffed over
        with ``np.array_equal`` — empty frames encode ``tags == -1``,
        reuse as its ``ReuseClass`` integer value, the recency order as
        the raw linked-list arrays (sentinel slot included, so the
        full LRU→MRU sequence is reconstructable).  Read-only: the
        arrays are fresh copies, never views of live state.
        """
        import numpy as np

        return {
            "tags": np.array(
                [-1 if t is None else t for t in self.tags], dtype=np.int64
            ),
            "dirty": np.array(self.dirty, dtype=np.uint8),
            "csize": np.array(self.csize, dtype=np.int32),
            "ecb": np.array(self.ecb, dtype=np.int32),
            "reuse": np.array([int(r) for r in self.reuse], dtype=np.int8),
            "rec_prev": np.array(self.rec_prev, dtype=np.int32),
            "rec_next": np.array(self.rec_next, dtype=np.int32),
            "free": np.array([self.free_sram, self.free_nvm], dtype=np.int32),
        }
