"""One set of the hybrid LLC: tags, per-way state, recency order.

Ways ``0 .. sram_ways-1`` are SRAM frames, ways ``sram_ways ..
total_ways-1`` are NVM frames.  A single recency list per set supports
both the global LRU of BH/BH_CP and the per-part local LRU of the
NVM-aware policies (a local LRU is the global order filtered to one
part, which is exactly how the replacement helpers consume it).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .block import ReuseClass

SRAM = 0
NVM = 1
PART_NAMES = {SRAM: "sram", NVM: "nvm"}


class CacheSet:
    """Tag/state storage for one LLC set."""

    __slots__ = (
        "index",
        "sram_ways",
        "total_ways",
        "tags",
        "dirty",
        "csize",
        "ecb",
        "reuse",
        "recency",
        "way_of",
        "free_sram",
        "free_nvm",
    )

    def __init__(self, index: int, sram_ways: int, nvm_ways: int) -> None:
        self.index = index
        self.sram_ways = sram_ways
        self.total_ways = sram_ways + nvm_ways
        n = self.total_ways
        self.tags: List[Optional[int]] = [None] * n
        self.dirty: List[bool] = [False] * n
        self.csize: List[int] = [0] * n      # compressed size of the resident block
        self.ecb: List[int] = [0] * n        # bytes occupied in the frame
        self.reuse: List[ReuseClass] = [ReuseClass.NONE] * n
        self.recency: List[int] = []         # valid ways, LRU first, MRU last
        self.way_of = {}                     # addr -> way
        # Count of *empty* frames per part (disabled NVM frames still
        # count — they hold no block).  Lets the fill path skip the
        # invalid-way scan for full sets, the steady-state common case.
        # Every tag transition (here and at the inlined hot-path sites)
        # keeps these in step.
        self.free_sram = sram_ways
        self.free_nvm = nvm_ways

    # ------------------------------------------------------------------
    def part_of(self, way: int) -> int:
        return SRAM if way < self.sram_ways else NVM

    def nvm_way(self, way: int) -> int:
        """Index of a way within the NVM part (for fault-map lookup)."""
        if way < self.sram_ways:
            raise ValueError(f"way {way} is SRAM")
        return way - self.sram_ways

    def ways_of_part(self, part: int) -> range:
        if part == SRAM:
            return range(0, self.sram_ways)
        return range(self.sram_ways, self.total_ways)

    # ------------------------------------------------------------------
    def find(self, addr: int) -> Optional[int]:
        return self.way_of.get(addr)

    def touch(self, way: int) -> None:
        """Move a way to MRU position."""
        recency = self.recency
        if recency and recency[-1] == way:
            return
        recency.remove(way)
        recency.append(way)

    def lru_order(self) -> List[int]:
        """Valid ways from LRU to MRU (read-only)."""
        return self.recency

    # ------------------------------------------------------------------
    def insert(
        self,
        way: int,
        addr: int,
        dirty: bool,
        csize: int,
        ecb: int,
        reuse: ReuseClass,
    ) -> None:
        """Place a block in an *empty* way and make it MRU."""
        if self.tags[way] is not None:
            raise ValueError(f"way {way} is occupied")
        self.tags[way] = addr
        self.dirty[way] = dirty
        self.csize[way] = csize
        self.ecb[way] = ecb
        self.reuse[way] = reuse
        self.recency.append(way)
        self.way_of[addr] = way
        if way < self.sram_ways:
            self.free_sram -= 1
        else:
            self.free_nvm -= 1

    def evict(self, way: int) -> Tuple[int, bool, int, ReuseClass]:
        """Remove the block at ``way``; returns (addr, dirty, csize, reuse)."""
        addr = self.tags[way]
        if addr is None:
            raise ValueError(f"way {way} is empty")
        info = (addr, self.dirty[way], self.csize[way], self.reuse[way])
        self.tags[way] = None
        self.dirty[way] = False
        self.csize[way] = 0
        self.ecb[way] = 0
        self.reuse[way] = ReuseClass.NONE
        self.recency.remove(way)
        del self.way_of[addr]
        if way < self.sram_ways:
            self.free_sram += 1
        else:
            self.free_nvm += 1
        return info

    def invalid_way(self, part: int) -> Optional[int]:
        for way in self.ways_of_part(part):
            if self.tags[way] is None:
                return way
        return None

    def occupancy(self, part: int) -> int:
        return sum(1 for way in self.ways_of_part(part) if self.tags[way] is not None)
