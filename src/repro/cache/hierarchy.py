"""Non-inclusive multi-core memory hierarchy (Sec. III-A, Fig. 3).

Implements the NVM-friendly mostly-exclusive flow the paper adopts
from the gem5 MOESI_CMP_directory protocol:

* a miss in all levels fetches the block from memory straight into the
  private L1/L2 of the requester — the LLC is *not* filled;
* the victim replaced in L2 (clean or dirty) is sent to the LLC and
  written there if absent — this is the only LLC fill path;
* a GetX (write-permission) request that hits the LLC returns the
  block and invalidates the LLC copy immediately;
* GetX also invalidates copies in other cores' private caches
  (directory semantics); a dirty peer copy is forwarded to the
  requester.  GetS misses in the LLC probe peer L2s before going to
  memory (cache-to-cache transfer), with the owner keeping its copy.

Multi-programmed mixes never share addresses, so the directory paths
mostly idle there, but they are implemented and tested so shared
workloads behave correctly.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, NamedTuple, Optional

from ..config import SystemConfig
from ..core.policy import InsertionPolicy
from .block import MetadataTable
from .cacheset import NVM, SRAM
from .llc import HybridLLC, SizeFn
from .private_cache import PrivateCache
from .stats import HierarchyStats


class Level(IntEnum):
    """Where an access was serviced (drives the latency model)."""

    L1 = 0
    L2 = 1
    LLC_SRAM = 2
    LLC_NVM = 3
    PEER = 4       # cache-to-cache transfer from another core's L2
    MEMORY = 5


class AccessOutcome(NamedTuple):
    level: Level
    llc_hit: bool


class MemoryHierarchy:
    """Private L1D/L2 per core + shared hybrid LLC + flat main memory."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        size_fn: Optional[SizeFn] = None,
    ) -> None:
        self.config = config
        n_cores = config.cores.n_cores
        self.l1: List[PrivateCache] = [PrivateCache(config.l1) for _ in range(n_cores)]
        self.l2: List[PrivateCache] = [PrivateCache(config.l2) for _ in range(n_cores)]
        self.meta = MetadataTable()
        self.llc = HybridLLC(config, policy, size_fn=size_fn)
        self.stats = HierarchyStats(llc=self.llc.stats)
        for core in range(n_cores):
            self.stats.core(core)
        self.llc.on_block_to_memory = self._on_llc_eviction_to_memory

    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool) -> AccessOutcome:
        """One demand access from a core; returns where it was serviced."""
        core_stats = self.stats.core(core)
        core_stats.accesses += 1

        r1 = self.l1[core].lookup(addr, is_write)
        if r1:
            core_stats.l1_hits += 1
            if r1 == PrivateCache.HIT_UPGRADE:
                self._upgrade(core, addr)
            return AccessOutcome(Level.L1, False)

        l2 = self.l2[core]
        if l2.lookup(addr, is_write=False):
            core_stats.l2_hits += 1
            if is_write and not l2.is_dirty(addr):
                # store to a clean L2 line: acquire write permission
                self._upgrade(core, addr)
            self._fill_l1(core, addr, dirty=is_write)
            return AccessOutcome(Level.L2, False)

        # L2 miss: issue GetS/GetX to the shared LLC (directory home).
        is_getx = is_write
        result = self.llc.request(addr, is_getx, self.meta)
        # GetX revokes peer copies; a dirty peer copy is forwarded.
        peer_dirty = self._snoop_peers(core, addr) if is_getx else None

        if result.hit:
            core_stats.llc_hits += 1
            # On GetX the (possibly dirty) block moved out of the LLC
            # into the requester's L2; on GetS the L2 copy is clean.
            l2_dirty = (result.dirty or bool(peer_dirty)) if result.invalidated else False
            self._fill_l2(core, addr, dirty=l2_dirty)
            self._fill_l1(core, addr, dirty=is_write)
            level = Level.LLC_SRAM if result.part == SRAM else Level.LLC_NVM
            return AccessOutcome(level, True)

        # LLC miss: try a cache-to-cache transfer from a peer L2 (on
        # GetX the snoop above already found and revoked any peer copy).
        if peer_dirty is None and not is_getx:
            peer_dirty = self._probe_peers(core, addr)
        if peer_dirty is not None:
            self._fill_l2(core, addr, dirty=peer_dirty if is_getx else False)
            self._fill_l1(core, addr, dirty=is_write)
            return AccessOutcome(Level.PEER, False)

        # Memory fetch straight into the private levels (non-inclusive).
        core_stats.memory_accesses += 1
        self.stats.memory_reads += 1
        self._fill_l2(core, addr, dirty=False)
        self._fill_l1(core, addr, dirty=is_write)
        self.meta.get_or_create(addr)  # enters the hierarchy untagged (NLB)
        return AccessOutcome(Level.MEMORY, False)

    # ------------------------------------------------------------------
    def _fill_l1(self, core: int, addr: int, dirty: bool) -> None:
        victim = self.l1[core].fill(addr, dirty)
        if victim is not None:
            v_addr, v_dirty = victim
            # Write back into L2; if L2 no longer holds it (inclusion is
            # not enforced), the refill may spill an L2 victim to the LLC.
            if self.l2[core].contains(v_addr):
                if v_dirty:
                    self.l2[core].set_dirty(v_addr)
            else:
                self._fill_l2(core, v_addr, dirty=v_dirty)

    def _fill_l2(self, core: int, addr: int, dirty: bool) -> None:
        victim = self.l2[core].fill(addr, dirty)
        if victim is not None:
            v_addr, v_dirty = victim
            self.llc.fill_from_l2(v_addr, v_dirty, self.meta)

    def _upgrade(self, core: int, addr: int) -> None:
        """GetX/Upgrade for a store that hit a clean private line.

        Invalidates the (now stale) LLC copy — the invalidate-on-hit
        rule of Sec. III-A — and revokes any shared peer copies.  The
        request is off the critical path (store buffer), so no latency
        is charged.
        """
        self.llc.upgrade(addr, self.meta)
        self._snoop_peers(core, addr)

    # ------------------------------------------------------------------
    def _snoop_peers(self, requester: int, addr: int) -> Optional[bool]:
        """GetX: revoke all other cores' copies; returns the dirtiness of
        a found copy (forwarded to the requester), or None if no peer
        held the block."""
        found: Optional[bool] = None
        for core, (l1, l2) in enumerate(zip(self.l1, self.l2)):
            if core == requester:
                continue
            present1, dirty1 = l1.invalidate(addr)
            present2, dirty2 = l2.invalidate(addr)
            if present1 or present2:
                self.stats.coherence_invalidations += 1
                found = bool(found) or dirty1 or dirty2
        return found

    def _probe_peers(self, requester: int, addr: int) -> Optional[bool]:
        """GetS cache-to-cache probe: the owner keeps its copy (O/S
        states) and forwards the data; returns its dirtiness if found."""
        for core, l2 in enumerate(self.l2):
            if core == requester:
                continue
            if l2.contains(addr):
                return l2.is_dirty(addr)
        return None

    # ------------------------------------------------------------------
    def _on_llc_eviction_to_memory(self, addr: int) -> None:
        """Drop the block tag once no hierarchy copy remains."""
        for l1, l2 in zip(self.l1, self.l2):
            if l1.contains(addr) or l2.contains(addr):
                return
        self.meta.drop(addr)

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters (end of warm-up) without touching contents."""
        n_cores = self.config.cores.n_cores
        new = HierarchyStats()
        self.llc.stats = new.llc
        self.stats = new
        for core in range(n_cores):
            self.stats.core(core)
        for cache in (*self.l1, *self.l2):
            cache.hits = 0
            cache.misses = 0
        self.llc.wear.reset()

    def end_epoch(self) -> None:
        self.llc.end_epoch()
