"""Non-inclusive multi-core memory hierarchy (Sec. III-A, Fig. 3).

Implements the NVM-friendly mostly-exclusive flow the paper adopts
from the gem5 MOESI_CMP_directory protocol:

* a miss in all levels fetches the block from memory straight into the
  private L1/L2 of the requester — the LLC is *not* filled;
* the victim replaced in L2 (clean or dirty) is sent to the LLC and
  written there if absent — this is the only LLC fill path;
* a GetX (write-permission) request that hits the LLC returns the
  block and invalidates the LLC copy immediately;
* GetX also invalidates copies in other cores' private caches
  (directory semantics); a dirty peer copy is forwarded to the
  requester.  GetS misses in the LLC probe peer L2s before going to
  memory (cache-to-cache transfer), with the owner keeping its copy.

Multi-programmed mixes never share addresses, so the directory paths
mostly idle there, but they are implemented and tested so shared
workloads behave correctly.

**Directory sharer index.**  The hierarchy maintains two dicts mapping
block address to a per-core presence bitmask — one for L1 contents,
one for L2 — updated on every private fill, eviction and invalidation.
This is the precise sharer tracking a MOESI directory keeps in
hardware; with it, GetX snoops (:meth:`_snoop_peers`), GetS
cache-to-cache probes (:meth:`_probe_peers`) and metadata
garbage-collection on LLC eviction (:meth:`_on_llc_eviction_to_memory`)
are O(1) dictionary lookups instead of linear scans over every private
cache per event.  The invariant — each mask equals the brute-force
scan of the corresponding caches — is enforced by property tests
(``tests/test_hierarchy_properties.py``).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..config import SystemConfig
from ..core.policy import FillContext, InsertionPolicy
from .block import BlockMeta, MetadataTable, ReuseClass
from .cacheset import NVM, SRAM
from .llc import HybridLLC, SizeFn
from .private_cache import PrivateCache
from .stats import HierarchyStats


class Level(IntEnum):
    """Where an access was serviced (drives the latency model)."""

    L1 = 0
    L2 = 1
    LLC_SRAM = 2
    LLC_NVM = 3
    PEER = 4       # cache-to-cache transfer from another core's L2
    MEMORY = 5


# Hot-path constants.  ``access_level`` returns the *plain int* value
# of a Level: an exact int keeps the engine's penalty-table subscript
# on CPython's specialised tuple-index path (an IntEnum falls back to
# the generic __index__ protocol), and the engine only ever indexes
# with it.  ``access`` re-wraps the int as a Level for the outcome API.
_L1 = int(Level.L1)
_L2 = int(Level.L2)
_LLC_SRAM = int(Level.LLC_SRAM)
_LLC_NVM = int(Level.LLC_NVM)
_PEER = int(Level.PEER)
_MEMORY = int(Level.MEMORY)
_WRITE = ReuseClass.WRITE
_READ = ReuseClass.READ
_NONE = ReuseClass.NONE


class AccessOutcome(NamedTuple):
    level: Level
    llc_hit: bool


class MemoryHierarchy:
    """Private L1D/L2 per core + shared hybrid LLC + flat main memory."""

    def __init__(
        self,
        config: SystemConfig,
        policy: InsertionPolicy,
        size_fn: Optional[SizeFn] = None,
    ) -> None:
        self.config = config
        n_cores = config.cores.n_cores
        self.l1: List[PrivateCache] = [PrivateCache(config.l1) for _ in range(n_cores)]
        self.l2: List[PrivateCache] = [PrivateCache(config.l2) for _ in range(n_cores)]
        self.meta = MetadataTable()
        self.llc = HybridLLC(config, policy, size_fn=size_fn)
        self.stats = HierarchyStats(llc=self.llc.stats)
        for core in range(n_cores):
            self.stats.core(core)
        self.llc.on_block_to_memory = self._on_llc_eviction_to_memory
        # Directory sharer index: addr -> bitmask of cores holding the
        # block in their L1 / L2 (see module docstring).  A key is
        # present iff its mask is non-zero.
        self._sharer_l1: Dict[int, int] = {}
        self._sharer_l2: Dict[int, int] = {}
        # Hot-path caches: per-core stat objects (refreshed by
        # reset_stats) and the L1/L2 set arrays the access fast path
        # indexes directly.
        self._core_stats = [self.stats.core(core) for core in range(n_cores)]
        self._l1_sets = [cache._sets for cache in self.l1]
        self._l2_sets = [cache._sets for cache in self.l2]
        self._l1_mask = self.l1[0]._set_mask
        self._l2_mask = self.l2[0]._set_mask
        self._l1_ways = self.l1[0].ways
        self._l2_ways = self.l2[0].ways

    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool) -> AccessOutcome:
        """One demand access from a core; returns where it was serviced."""
        level = self.access_level(core, addr, is_write)
        return AccessOutcome(
            Level(level), level == _LLC_SRAM or level == _LLC_NVM
        )

    def access_level(self, core: int, addr: int, is_write: bool) -> int:
        """:meth:`access` without the outcome-tuple allocation.

        This is the engine's entry point: one call per demand access,
        with the L1/L2 hit paths inlined (the dict-recency trick of
        :class:`PrivateCache`) so the common case costs a handful of
        dict operations and no nested method calls.
        """
        core_stats = self._core_stats[core]
        core_stats.accesses += 1

        l1 = self.l1[core]
        entries = self._l1_sets[core][addr & self._l1_mask]
        if addr in entries:
            was_dirty = entries.pop(addr)
            entries[addr] = was_dirty or is_write
            l1.hits += 1
            core_stats.l1_hits += 1
            if is_write and not was_dirty:
                self._upgrade(core, addr)
            return _L1
        l1.misses += 1

        l2 = self.l2[core]
        l2_entries = self._l2_sets[core][addr & self._l2_mask]
        if addr in l2_entries:
            # Recency refresh; dirtiness is untouched by a read lookup.
            was_dirty = l2_entries.pop(addr)
            l2_entries[addr] = was_dirty
            l2.hits += 1
            core_stats.l2_hits += 1
            if is_write and not was_dirty:
                # store to a clean L2 line: acquire write permission
                self._upgrade(core, addr)
            self._fill_l1(core, addr, is_write)
            return _L2

        l2.misses += 1

        # L2 miss: issue GetS/GetX to the shared LLC (directory home).
        # The body of HybridLLC.request — classification, recency and
        # invalidate-on-hit — is inlined here, as is the zero-sharers
        # fast path of the GetX snoop / GetS peer probe; this region
        # runs once per private-level miss.
        llc = self.llc
        cache_set = llc.sets[addr & llc._set_mask]
        llc_stats = llc.stats
        way = cache_set.way_of.get(addr)
        if is_write:
            llc_stats.getx += 1
        else:
            llc_stats.gets += 1

        if way is not None:
            copy_dirty = cache_set.dirty[way]
            table = self.meta._table
            meta = table.get(addr)
            if meta is None:
                meta = BlockMeta()
                table[addr] = meta
            meta.llc_hits += 1
            if is_write or copy_dirty:
                meta.reuse = _WRITE
            elif meta.reuse is not _WRITE:
                meta.reuse = _READ
            cache_set.reuse[way] = meta.reuse
            in_sram = way < cache_set.sram_ways
            if in_sram:
                llc_stats.hits_sram += 1
                ret = _LLC_SRAM
            else:
                llc_stats.hits_nvm += 1
                ret = _LLC_NVM
            on_hit = llc._on_hit
            if is_write:
                llc_stats.getx_hits += 1
                if on_hit is not None:
                    on_hit(cache_set, way, True)
                # Invalidate-on-hit: the block (with its dirty data)
                # moves into the requester's L2 (inlined CacheSet.evict).
                cache_set.tags[way] = None
                cache_set.dirty[way] = False
                cache_set.csize[way] = 0
                cache_set.ecb[way] = 0
                cache_set.reuse[way] = _NONE
                # Inlined recency unlink (CacheSet.evict's link surgery).
                prv = cache_set.rec_prev
                nxt = cache_set.rec_next
                before, after = prv[way], nxt[way]
                nxt[before] = after
                prv[after] = before
                del cache_set.way_of[addr]
                if in_sram:
                    cache_set.free_sram += 1
                else:
                    cache_set.free_nvm += 1
                # GetX revokes peer copies; a dirty copy is forwarded.
                others = (
                    self._sharer_l1.get(addr, 0) | self._sharer_l2.get(addr, 0)
                ) & ~(1 << core)
                peer_dirty = self._snoop_peers(core, addr) if others else None
                l2_dirty = copy_dirty or bool(peer_dirty)
            else:
                llc_stats.gets_hits += 1
                if on_hit is not None:
                    on_hit(cache_set, way, False)
                # Inlined CacheSet.touch: promote to MRU unless there.
                nxt = cache_set.rec_next
                sentinel = cache_set.total_ways
                if nxt[way] != sentinel:
                    prv = cache_set.rec_prev
                    before, after = prv[way], nxt[way]
                    nxt[before] = after
                    prv[after] = before
                    mru = prv[sentinel]
                    nxt[mru] = way
                    prv[way] = mru
                    nxt[way] = sentinel
                    prv[sentinel] = way
                l2_dirty = False
            core_stats.llc_hits += 1
        else:
            # LLC miss: try a cache-to-cache transfer from a peer L2.
            # The sharer index makes both the GetX snoop and the GetS
            # probe a mask check when no peer holds the block (the
            # common case).
            l2_dirty = False
            ret = _MEMORY
            if is_write:
                others = (
                    self._sharer_l1.get(addr, 0) | self._sharer_l2.get(addr, 0)
                ) & ~(1 << core)
                peer_dirty = self._snoop_peers(core, addr) if others else None
                if peer_dirty is not None:
                    # GetX revoked the peer copy; its data (possibly
                    # dirty) is forwarded to the requester.
                    l2_dirty = peer_dirty
                    ret = _PEER
            elif self._sharer_l2.get(addr, 0) & ~(1 << core):
                # The lowest-numbered sharing core answers and keeps its
                # copy (O/S states); the forwarded L2 copy is clean.
                ret = _PEER
            if ret == _MEMORY:
                # Memory fetch straight into the private levels
                # (non-inclusive).
                core_stats.memory_accesses += 1
                self.stats.memory_reads += 1

        # Refill both private levels — every L2-missing access ends
        # here.  This is the body of _fill_l2 + _fill_l1 (the methods
        # below remain the building blocks for the other paths).
        # ---- L2 fill ----
        entries = self._l2_sets[core][addr & self._l2_mask]
        sharers = self._sharer_l2
        bit = 1 << core
        sharers[addr] = sharers.get(addr, 0) | bit
        if addr in entries:
            entries[addr] = entries.pop(addr) or l2_dirty
        elif len(entries) >= self._l2_ways:
            v_addr = next(iter(entries))
            v_dirty = entries.pop(v_addr)
            entries[addr] = l2_dirty
            mask = sharers[v_addr] & ~bit
            if mask:
                sharers[v_addr] = mask
            else:
                del sharers[v_addr]
            # Spill the L2 victim to the LLC (inlined fill_from_l2).
            cache_set = llc.sets[v_addr & llc._set_mask]
            way = cache_set.way_of.get(v_addr)
            if way is not None:
                if v_dirty:
                    cache_set.dirty[way] = True
                    llc._charge_write(cache_set, way, cache_set.ecb[way])
                    llc_stats.updates_in_place += 1
                else:
                    llc_stats.silent_drops += 1
                # Inlined CacheSet.touch.
                nxt = cache_set.rec_next
                sentinel = cache_set.total_ways
                if nxt[way] != sentinel:
                    prv = cache_set.rec_prev
                    before, after = prv[way], nxt[way]
                    nxt[before] = after
                    prv[after] = before
                    mru = prv[sentinel]
                    nxt[mru] = way
                    prv[way] = mru
                    nxt[way] = sentinel
                    prv[sentinel] = way
            else:
                meta = self.meta._table.get(v_addr)
                reuse = meta.reuse if meta is not None else _NONE
                if llc._compressed and llc._size_fn is not None:
                    csize, ecb = llc._size_fn(v_addr)
                else:
                    csize = ecb = llc.block_size
                llc_stats.fills += 1
                llc._insert(
                    cache_set,
                    FillContext(v_addr, v_dirty, csize, ecb, reuse,
                                cache_set.index),
                    migrating=False,
                )
        else:
            entries[addr] = l2_dirty
        # ---- L1 fill ----
        entries = self._l1_sets[core][addr & self._l1_mask]
        sharers = self._sharer_l1
        sharers[addr] = sharers.get(addr, 0) | bit
        if addr in entries:
            entries[addr] = entries.pop(addr) or is_write
        elif len(entries) >= self._l1_ways:
            v_addr = next(iter(entries))
            v_dirty = entries.pop(v_addr)
            entries[addr] = is_write
            mask = sharers[v_addr] & ~bit
            if mask:
                sharers[v_addr] = mask
            else:
                del sharers[v_addr]
            l2_entries = self._l2_sets[core][v_addr & self._l2_mask]
            if v_addr in l2_entries:
                if v_dirty:
                    l2_entries[v_addr] = True
            else:
                self._fill_l2(core, v_addr, v_dirty)
        else:
            entries[addr] = is_write

        if ret == _MEMORY:
            table = self.meta._table  # enters the hierarchy untagged (NLB)
            if addr not in table:
                table[addr] = BlockMeta()
        return ret

    # ------------------------------------------------------------------
    def _fill_l1(self, core: int, addr: int, dirty: bool) -> None:
        # Inlined PrivateCache.fill (dict-recency LRU) + sharer upkeep.
        entries = self._l1_sets[core][addr & self._l1_mask]
        sharers = self._sharer_l1
        bit = 1 << core
        sharers[addr] = sharers.get(addr, 0) | bit
        if addr in entries:
            entries[addr] = entries.pop(addr) or dirty
            return
        if len(entries) >= self._l1_ways:
            v_addr = next(iter(entries))
            v_dirty = entries.pop(v_addr)
            entries[addr] = dirty
            # The victim left this core's L1; fix the index before any
            # downstream spill consults it.
            mask = sharers[v_addr] & ~bit
            if mask:
                sharers[v_addr] = mask
            else:
                del sharers[v_addr]
            # Write back into L2; if L2 no longer holds it (inclusion is
            # not enforced), the refill may spill an L2 victim to the LLC.
            l2_entries = self._l2_sets[core][v_addr & self._l2_mask]
            if v_addr in l2_entries:
                if v_dirty:
                    l2_entries[v_addr] = True
            else:
                self._fill_l2(core, v_addr, v_dirty)
            return
        entries[addr] = dirty

    def _fill_l2(self, core: int, addr: int, dirty: bool) -> None:
        entries = self._l2_sets[core][addr & self._l2_mask]
        sharers = self._sharer_l2
        bit = 1 << core
        sharers[addr] = sharers.get(addr, 0) | bit
        if addr in entries:
            entries[addr] = entries.pop(addr) or dirty
            return
        if len(entries) >= self._l2_ways:
            v_addr = next(iter(entries))
            v_dirty = entries.pop(v_addr)
            entries[addr] = dirty
            mask = sharers[v_addr] & ~bit
            if mask:
                sharers[v_addr] = mask
            else:
                del sharers[v_addr]
            # Spill the L2 victim to the LLC — the only LLC fill path.
            # HybridLLC.fill_from_l2 is inlined here (resident update /
            # silent drop / fresh insert), one spill per L2 eviction.
            llc = self.llc
            cache_set = llc.sets[v_addr & llc._set_mask]
            llc_stats = llc.stats
            way = cache_set.way_of.get(v_addr)
            if way is not None:
                if v_dirty:
                    cache_set.dirty[way] = True
                    llc._charge_write(cache_set, way, cache_set.ecb[way])
                    llc_stats.updates_in_place += 1
                else:
                    llc_stats.silent_drops += 1
                # Inlined CacheSet.touch.
                nxt = cache_set.rec_next
                sentinel = cache_set.total_ways
                if nxt[way] != sentinel:
                    prv = cache_set.rec_prev
                    before, after = prv[way], nxt[way]
                    nxt[before] = after
                    prv[after] = before
                    mru = prv[sentinel]
                    nxt[mru] = way
                    prv[way] = mru
                    nxt[way] = sentinel
                    prv[sentinel] = way
                return
            meta = self.meta._table.get(v_addr)
            reuse = meta.reuse if meta is not None else _NONE
            if llc._compressed and llc._size_fn is not None:
                csize, ecb = llc._size_fn(v_addr)
            else:
                csize = ecb = llc.block_size
            llc_stats.fills += 1
            llc._insert(
                cache_set,
                FillContext(v_addr, v_dirty, csize, ecb, reuse, cache_set.index),
                migrating=False,
            )
            return
        entries[addr] = dirty

    def _upgrade(self, core: int, addr: int) -> None:
        """GetX/Upgrade for a store that hit a clean private line.

        Invalidates the (now stale) LLC copy — the invalidate-on-hit
        rule of Sec. III-A — and revokes any shared peer copies.  The
        request is off the critical path (store buffer), so no latency
        is charged.
        """
        self.llc.upgrade(addr, self.meta)
        self._snoop_peers(core, addr)

    # ------------------------------------------------------------------
    def _snoop_peers(self, requester: int, addr: int) -> Optional[bool]:
        """GetX: revoke all other cores' copies; returns the dirtiness of
        a found copy (forwarded to the requester), or None if no peer
        held the block."""
        sharers_l1 = self._sharer_l1
        sharers_l2 = self._sharer_l2
        mask_l1 = sharers_l1.get(addr, 0)
        mask_l2 = sharers_l2.get(addr, 0)
        others = (mask_l1 | mask_l2) & ~(1 << requester)
        if not others:
            return None
        found = False
        stats = self.stats
        remaining = others
        while remaining:
            low = remaining & -remaining
            core = low.bit_length() - 1
            remaining -= low
            _present1, dirty1 = self.l1[core].invalidate(addr)
            _present2, dirty2 = self.l2[core].invalidate(addr)
            stats.coherence_invalidations += 1
            if dirty1 or dirty2:
                found = True
        mask_l1 &= ~others
        mask_l2 &= ~others
        if mask_l1:
            sharers_l1[addr] = mask_l1
        elif addr in sharers_l1:
            del sharers_l1[addr]
        if mask_l2:
            sharers_l2[addr] = mask_l2
        elif addr in sharers_l2:
            del sharers_l2[addr]
        return found

    def _probe_peers(self, requester: int, addr: int) -> Optional[bool]:
        """GetS cache-to-cache probe: the owner keeps its copy (O/S
        states) and forwards the data; returns its dirtiness if found.
        Matches the pre-index scan order: the lowest-numbered sharing
        core answers."""
        mask = self._sharer_l2.get(addr, 0) & ~(1 << requester)
        if not mask:
            return None
        core = (mask & -mask).bit_length() - 1
        return self.l2[core].is_dirty(addr)

    # ------------------------------------------------------------------
    def _on_llc_eviction_to_memory(self, addr: int) -> None:
        """Drop the block tag once no hierarchy copy remains."""
        if addr in self._sharer_l1 or addr in self._sharer_l2:
            return
        self.meta._table.pop(addr, None)  # inlined MetadataTable.drop

    # ------------------------------------------------------------------
    def sharer_masks(self, addr: int) -> Tuple[int, int]:
        """(L1 mask, L2 mask) of cores holding ``addr`` (index view)."""
        return self._sharer_l1.get(addr, 0), self._sharer_l2.get(addr, 0)

    def rebuild_sharer_index(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Brute-force recomputation from cache contents (test oracle)."""
        l1_masks: Dict[int, int] = {}
        l2_masks: Dict[int, int] = {}
        for core, (l1, l2) in enumerate(zip(self.l1, self.l2)):
            bit = 1 << core
            for block in l1.resident_blocks():
                l1_masks[block] = l1_masks.get(block, 0) | bit
            for block in l2.resident_blocks():
                l2_masks[block] = l2_masks.get(block, 0) | bit
        return l1_masks, l2_masks

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters (end of warm-up) without touching contents."""
        n_cores = self.config.cores.n_cores
        new = HierarchyStats()
        self.llc.stats = new.llc
        self.stats = new
        for core in range(n_cores):
            self.stats.core(core)
        self._core_stats = [self.stats.core(core) for core in range(n_cores)]
        for cache in (*self.l1, *self.l2):
            cache.hits = 0
            cache.misses = 0
        self.llc.wear.reset()

    def end_epoch(self) -> None:
        self.llc.end_epoch()
