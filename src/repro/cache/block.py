"""Per-block metadata that travels through the cache hierarchy.

The insertion policies classify blocks by their *reuse* behaviour
(Sec. IV-B): a block starts without reuse when it enters the hierarchy
from main memory; an LLC hit promotes it to read-reused (clean hit) or
write-reused (GetX hit, or hit on a dirty copy).  LHybrid's loop-block
tag maps onto the same lattice (LB == read-reused, NLB == the rest),
and TAP's thrashing detection adds a saturating LLC-hit counter.

Metadata is keyed by block address and lives as long as the block is
anywhere in the hierarchy; when the last copy is evicted to memory the
tag is dropped (blocks re-enter as non-reused, matching LHybrid's
"blocks entering L2 from main memory are marked NLB").  TAP's hit
counter is kept in a separate persistent table, since thrashing
detection must survive evictions to be able to fire at all.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Optional


class ReuseClass(IntEnum):
    """Reuse category of a block (Sec. IV-B)."""

    NONE = 0
    READ = 1
    WRITE = 2


class BlockMeta:
    """Mutable per-block tag carried between L2 and LLC."""

    __slots__ = ("reuse", "llc_hits")

    def __init__(self) -> None:
        self.reuse: ReuseClass = ReuseClass.NONE
        self.llc_hits: int = 0

    @property
    def is_loop_block(self) -> bool:
        """LHybrid LB tag: clean blocks that showed reuse in the LLC."""
        return self.reuse is ReuseClass.READ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockMeta(reuse={self.reuse.name}, llc_hits={self.llc_hits})"


class MetadataTable:
    """Tags for all blocks currently resident somewhere in the hierarchy."""

    def __init__(self) -> None:
        self._table: Dict[int, BlockMeta] = {}

    def get(self, addr: int) -> Optional[BlockMeta]:
        return self._table.get(addr)

    def get_or_create(self, addr: int) -> BlockMeta:
        meta = self._table.get(addr)
        if meta is None:
            meta = BlockMeta()
            self._table[addr] = meta
        return meta

    def drop(self, addr: int) -> None:
        """Forget a block once its last hierarchy copy is gone."""
        self._table.pop(addr, None)

    def classify_llc_hit(self, addr: int, is_getx: bool, copy_dirty: bool) -> BlockMeta:
        """Apply the Sec. IV-B hit rule and return the updated tag.

        A hit classifies the block as read-reused if it has not been
        modified, write-reused if it has been written at least once
        (GetX request or dirty resident copy).
        """
        meta = self.get_or_create(addr)
        meta.llc_hits += 1
        if is_getx or copy_dirty:
            meta.reuse = ReuseClass.WRITE
        elif meta.reuse is not ReuseClass.WRITE:
            meta.reuse = ReuseClass.READ
        return meta

    def __len__(self) -> int:
        return len(self._table)
