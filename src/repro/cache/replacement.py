"""Replacement helpers: LRU and fit-LRU victim selection (Sec. III-B1).

Fit-LRU [18] picks the least-recently-used block among those occupying
frames whose *effective capacity* (live bytes) is at least the size of
the incoming extended compressed block; plain LRU is the special case
where every candidate frame fits.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .cacheset import NVM, SRAM, CacheSet

CapacityFn = Callable[[CacheSet, int], int]
"""``capacity(set, way)`` — live bytes of a frame (64 for SRAM)."""


def lru_victim(cache_set: CacheSet, ways: Sequence[int]) -> Optional[int]:
    """LRU-ordered first valid way within ``ways``."""
    allowed = set(ways)
    for way in cache_set.lru_order():
        if way in allowed:
            return way
    return None


def fit_lru_victim(
    cache_set: CacheSet,
    ways: Sequence[int],
    ecb_size: int,
    capacity_of: CapacityFn,
) -> Optional[int]:
    """LRU block among frames in ``ways`` that can hold ``ecb_size`` bytes."""
    allowed = set(ways)
    for way in cache_set.lru_order():
        if way in allowed and capacity_of(cache_set, way) >= ecb_size:
            return way
    return None


def usable_invalid_way(
    cache_set: CacheSet,
    part: int,
    ecb_size: int,
    capacity_of: CapacityFn,
) -> Optional[int]:
    """First empty frame of a part with enough live bytes.

    The per-part free counters early-out full parts (the steady state)
    without touching the tag array; SRAM frames all share one capacity,
    so that part delegates to :meth:`CacheSet.invalid_way` outright.
    """
    if part == SRAM:
        way = cache_set.invalid_way(SRAM)
        if way is None or capacity_of(cache_set, way) < ecb_size:
            return None
        return way
    if not cache_set.free_nvm:
        return None
    tags = cache_set.tags
    for way in cache_set.ways_of_part(part):
        if tags[way] is None and capacity_of(cache_set, way) >= ecb_size:
            return way
    return None


def mru_victim_where(
    cache_set: CacheSet,
    ways: Sequence[int],
    predicate: Callable[[int], bool],
) -> Optional[int]:
    """Most-recently-used way within ``ways`` satisfying ``predicate``.

    LHybrid's SRAM replacement migrates "the most recent LB, in LRU
    order" to the NVM part; this helper finds that block.
    """
    allowed = set(ways)
    for way in reversed(cache_set.lru_order()):
        if way in allowed and predicate(way):
            return way
    return None
