"""Cache hierarchy substrate: private caches, hybrid LLC, protocol."""

from .block import BlockMeta, MetadataTable, ReuseClass
from .cacheset import NVM, PART_NAMES, SRAM, CacheSet
from .hierarchy import AccessOutcome, Level, MemoryHierarchy
from .llc import EvictedBlock, HybridLLC, RequestResult
from .private_cache import PrivateCache
from .replacement import fit_lru_victim, lru_victim, mru_victim_where
from .stats import CoreStats, HierarchyStats, LLCStats

__all__ = [
    "AccessOutcome",
    "BlockMeta",
    "CacheSet",
    "CoreStats",
    "EvictedBlock",
    "HierarchyStats",
    "HybridLLC",
    "LLCStats",
    "Level",
    "MemoryHierarchy",
    "MetadataTable",
    "NVM",
    "PART_NAMES",
    "PrivateCache",
    "RequestResult",
    "ReuseClass",
    "SRAM",
    "fit_lru_victim",
    "lru_victim",
    "mru_victim_where",
]
