"""Private set-associative write-back caches (L1D, L2) with LRU.

These caches filter the core reference stream before it reaches the
shared LLC; their organisation follows Table IV.  Implementation note:
per-set storage is a plain dict from block address to dirty flag —
Python dicts preserve insertion order, so the first key is the LRU
entry and re-inserting a key on every hit maintains recency with O(1)
operations.

Hot-path note: set indexing (``self._sets[addr & self._set_mask]``) is
inlined into every method rather than factored through a helper — the
helper alone accounted for ~3.1M calls per short simulation — and
:class:`~repro.cache.hierarchy.MemoryHierarchy` inlines the L1/L2
lookup bodies into its access fast path the same way.  ``_sets`` and
``_set_mask`` are therefore a stable internal interface for the
hierarchy, not an implementation accident.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CacheGeometry

Victim = Tuple[int, bool]  # (block address, dirty)


class PrivateCache:
    """One private cache level, addressed by block address."""

    __slots__ = ("geometry", "n_sets", "ways", "_set_mask", "_sets", "hits", "misses")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.n_sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    # lookup() return codes
    MISS = 0
    HIT = 1
    HIT_UPGRADE = 2  # a store turned a clean line dirty (needs GetX/Upgrade)

    # ------------------------------------------------------------------
    def lookup(self, addr: int, is_write: bool = False) -> int:
        """Access the cache; on a hit, update recency (and dirty).

        Returns ``MISS``/``HIT``/``HIT_UPGRADE``; the upgrade code tells
        the hierarchy that write permission must be acquired from the
        directory (the line was clean before this store).
        """
        entries = self._sets[addr & self._set_mask]
        if addr in entries:
            was_dirty = entries.pop(addr)
            entries[addr] = was_dirty or is_write
            self.hits += 1
            if is_write and not was_dirty:
                return self.HIT_UPGRADE
            return self.HIT
        self.misses += 1
        return self.MISS

    def fill(self, addr: int, dirty: bool) -> Optional[Victim]:
        """Insert a block, returning the evicted victim if the set spilled."""
        entries = self._sets[addr & self._set_mask]
        if addr in entries:
            # Refresh an existing copy (e.g. writeback from an inner level).
            entries[addr] = entries.pop(addr) or dirty
            return None
        victim: Optional[Victim] = None
        if len(entries) >= self.ways:
            v_addr = next(iter(entries))
            victim = (v_addr, entries.pop(v_addr))
        entries[addr] = dirty
        return victim

    def set_dirty(self, addr: int) -> None:
        entries = self._sets[addr & self._set_mask]
        if addr in entries:
            entries[addr] = True

    def contains(self, addr: int) -> bool:
        return addr in self._sets[addr & self._set_mask]

    def is_dirty(self, addr: int) -> bool:
        return self._sets[addr & self._set_mask].get(addr, False)

    def invalidate(self, addr: int) -> Tuple[bool, bool]:
        """Remove a block; returns (was_present, was_dirty)."""
        entries = self._sets[addr & self._set_mask]
        if addr in entries:
            return True, entries.pop(addr)
        return False, False

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> List[int]:
        return [addr for entries in self._sets for addr in entries]
