"""The metrics spine: declared metrics + one versioned RunRecord.

``registry``  — declare-once metric metadata (name, unit, layer, doc,
aggregation) with attribute-walking collectors that never touch the
simulation hot path.
``record``    — the versioned, schema-validated :class:`RunRecord`
every producing layer returns and every consuming layer reads.
``export``    — JSON/CSV/JSONL/Prometheus exporters and the committed-
artefact schema check behind ``python -m repro export``.

See docs/metrics.md for the schema and versioning policy.
"""

from .export import (
    EXPORT_FORMATS,
    ExportError,
    check_artifacts,
    export_records,
    load_records,
    to_canonical_json,
    to_flat_csv,
    to_jsonl_events,
    to_prometheus,
)
from .record import (
    RUN_RECORD_SCHEMA,
    RUN_RECORD_VERSION,
    RunRecord,
    SchemaError,
    is_run_record_payload,
)
from .registry import (
    AGGREGATIONS,
    REGISTRY,
    MetricRegistry,
    MetricSpec,
    MetricSpecError,
    register_metric,
)

__all__ = [
    "AGGREGATIONS",
    "EXPORT_FORMATS",
    "ExportError",
    "MetricRegistry",
    "MetricSpec",
    "MetricSpecError",
    "REGISTRY",
    "RUN_RECORD_SCHEMA",
    "RUN_RECORD_VERSION",
    "RunRecord",
    "SchemaError",
    "check_artifacts",
    "export_records",
    "is_run_record_payload",
    "load_records",
    "register_metric",
    "to_canonical_json",
    "to_flat_csv",
    "to_jsonl_events",
    "to_prometheus",
]
