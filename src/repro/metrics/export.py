"""Exporters: one RunRecord, four output formats, one schema check.

Everything behind ``python -m repro export``:

* **json**  — canonical JSON (the repo-wide content-hash rendering);
* **csv**   — flat ``record,metric,value,unit,layer,aggregation`` rows,
  one per registered metric, ready for pandas/spreadsheets;
* **jsonl** — an event stream: one ``task`` line per record (built
  from the campaign scheduler's heartbeat-derived manifest state) and
  one ``epoch`` line per recorded epoch;
* **prom**  — Prometheus text exposition (HELP/TYPE from the registry
  metadata, one labelled sample per record x metric).

``check_artifacts`` is the CI leg (``repro export --check``): every
committed ``BENCH_*.json`` and the golden digests must validate
against the *current* schema version and registry, so a metric rename
or schema bump can never silently orphan committed artefacts.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..manifest import canonical_json
from .record import RunRecord, SchemaError, is_run_record_payload
from .registry import REGISTRY, MetricRegistry

PathLike = Union[str, Path]

EXPORT_FORMATS: Tuple[str, ...] = ("json", "csv", "jsonl", "prom")

#: Committed artefacts ``--check`` validates (repo-root relative).
CHECKED_BENCH_GLOB = "benchmarks/results/BENCH_*.json"
CHECKED_GOLDENS = "tests/goldens/determinism.json"


class ExportError(ValueError):
    """A path that holds no readable RunRecords."""


# ----------------------------------------------------------------------
# Loading: files, worker envelopes, campaign directories.
def _ensure_registrations() -> None:
    """Import every metric-producing module.

    Validation of a detached record checks its metric names against the
    registry, and some registrations live in modules ``import repro``
    does not reach (experiment units, the bench runner).  Loading is
    the one place that must see the full registry, so it imports them.
    """
    from ..analytical import model as _analytical  # noqa: F401
    from ..bench import runner as _bench_runner  # noqa: F401
    from ..experiments import compressibility as _fig2  # noqa: F401
    from ..experiments import lifetime as _lifetime  # noqa: F401
    from ..explore import explorer as _explorer  # noqa: F401
    from ..fsio import health as _storage_health  # noqa: F401
    from ..harness import scheduler as _scheduler  # noqa: F401


def _record_from_payload(data: Any, source: str) -> RunRecord:
    try:
        return RunRecord.from_json(data)
    except SchemaError as exc:
        raise ExportError(f"{source}: {exc}") from None


def _records_from_file(path: Path) -> List[RunRecord]:
    from ..fsio.durable import BlobError, unwrap_json

    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ExportError(f"{path}: unreadable ({exc})") from None
    try:
        # Checksummed repro-blob/1 envelopes (bench artefacts, campaign
        # results) unwrap to their payload; pre-envelope files pass
        # through untouched.
        data = unwrap_json(data, path=path)
    except BlobError as exc:
        raise ExportError(f"{path}: corrupt envelope ({exc.reason})") from None
    if is_run_record_payload(data):
        return [_record_from_payload(data, str(path))]
    if isinstance(data, dict) and is_run_record_payload(data.get("result")):
        # A campaign worker envelope: lift the task identity into meta.
        record = _record_from_payload(data["result"], str(path))
        for key in ("task_id", "experiment", "unit", "scale"):
            if key in data:
                record.meta.setdefault(key, data[key])
        return [record]
    if isinstance(data, list) and data and all(
        is_run_record_payload(item) for item in data
    ):
        return [
            _record_from_payload(item, f"{path}[{i}]")
            for i, item in enumerate(data)
        ]
    raise ExportError(f"{path}: not a RunRecord, envelope, or list of them")


def _records_from_campaign(directory: Path) -> List[RunRecord]:
    # Imported lazily: the harness package is heavier than this module.
    from ..harness.manifest import CampaignManifest

    manifest = CampaignManifest.load(directory)
    records: List[RunRecord] = []
    for task_id, entry in sorted(manifest.tasks.items()):
        if entry.status != "complete" or not entry.result:
            continue
        for record in _records_from_file(directory / entry.result):
            # Scheduler-side state (from the heartbeat-driven manifest)
            # rides along so the JSONL task stream can report it.
            record.meta.setdefault("task_id", task_id)
            record.meta.setdefault("attempts", entry.attempts)
            if entry.sha256:
                record.meta.setdefault("result_sha256", entry.sha256)
            record.meta.setdefault("campaign_scale", manifest.scale)
            records.append(record)
    # The campaign health record (scheduler.* / storage.* counters plus
    # per-shard wall clocks) rides along when present, so the file
    # exporter and the service's /metrics endpoint read the same spine.
    from ..harness.scheduler import HEALTH_RECORD_NAME

    health_path = directory / HEALTH_RECORD_NAME
    if health_path.exists():
        records.extend(_records_from_file(health_path))
    if not records:
        raise ExportError(f"{directory}: campaign has no completed results")
    return records


def load_records(paths: Sequence[PathLike]) -> List[RunRecord]:
    """Every RunRecord found at ``paths`` (files or campaign dirs)."""
    _ensure_registrations()
    records: List[RunRecord] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            records.extend(_records_from_campaign(path))
        else:
            records.extend(_records_from_file(path))
    return records


# ----------------------------------------------------------------------
# Formats.
def record_label(record: RunRecord, index: int) -> str:
    """A stable display label for one record within an export."""
    for key in ("task_id", "label"):
        value = record.meta.get(key)
        if isinstance(value, str) and value:
            return value
    return f"{record.kind}[{index}]"


def _cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)  # full precision survives the round-trip
    return str(value)


def to_canonical_json(records: Sequence[RunRecord]) -> str:
    """Canonical JSON: one object for one record, else a list."""
    payloads = [r.to_json() for r in records]
    document = payloads[0] if len(payloads) == 1 else payloads
    return canonical_json(document) + "\n"


def to_flat_csv(
    records: Sequence[RunRecord], registry: MetricRegistry = REGISTRY
) -> str:
    """One CSV row per (record, registered metric)."""
    lines = ["record,kind,metric,value,unit,layer,aggregation"]
    for index, record in enumerate(records):
        label = record_label(record, index)
        for name in sorted(record.metrics):
            spec = registry.get(name)
            lines.append(
                ",".join(
                    (
                        label,
                        record.kind,
                        name,
                        _cell(record.metrics[name]),
                        spec.unit,
                        spec.layer,
                        spec.aggregation,
                    )
                )
            )
    return "\n".join(lines) + "\n"


def to_jsonl_events(records: Sequence[RunRecord]) -> str:
    """One ``task`` line per record, one line per recorded event."""
    lines: List[str] = []
    for index, record in enumerate(records):
        label = record_label(record, index)
        lines.append(
            canonical_json(
                {
                    "event": "task",
                    "record": label,
                    "kind": record.kind,
                    "schema": record.schema,
                    "meta": record.meta,
                    "metrics": record.metrics,
                }
            )
        )
        for event in record.events:
            lines.append(canonical_json({"record": label, **event}))
    return "\n".join(lines) + "\n"


def _prom_name(metric_name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", metric_name)


def to_prometheus(
    records: Sequence[RunRecord], registry: MetricRegistry = REGISTRY
) -> str:
    """Prometheus text exposition format (counters/gauges + labels)."""
    names: List[str] = []
    seen = set()
    for record in records:
        for name in record.metrics:
            if name not in seen:
                seen.add(name)
                names.append(name)
    lines: List[str] = []
    for name in sorted(names):
        spec = registry.get(name)
        prom = _prom_name(name)
        kind = "counter" if spec.aggregation == "sum" else "gauge"
        lines.append(f"# HELP {prom} {spec.doc} [{spec.unit}]")
        lines.append(f"# TYPE {prom} {kind}")
        for index, record in enumerate(records):
            value = record.metrics.get(name)
            if value is None:
                continue
            label = record_label(record, index).replace('"', r"\"")
            lines.append(f'{prom}{{record="{label}"}} {_cell(value)}')
    return "\n".join(lines) + "\n"


_EXPORTERS = {
    "json": to_canonical_json,
    "csv": to_flat_csv,
    "jsonl": to_jsonl_events,
    "prom": to_prometheus,
}


def export_records(records: Sequence[RunRecord], fmt: str) -> str:
    try:
        exporter = _EXPORTERS[fmt]
    except KeyError:
        raise ExportError(
            f"unknown export format {fmt!r}; choose from {EXPORT_FORMATS}"
        ) from None
    return exporter(records)


# ----------------------------------------------------------------------
# --check: committed artefacts vs the current schema version.
def check_artifacts(
    repo_root: PathLike = ".",
    extra_paths: Sequence[PathLike] = (),
) -> Tuple[List[str], List[str]]:
    """Validate committed artefacts; returns (checked, errors)."""
    _ensure_registrations()
    root = Path(repo_root)
    checked: List[str] = []
    errors: List[str] = []

    bench_paths = sorted(root.glob(CHECKED_BENCH_GLOB))
    if not bench_paths:
        errors.append(f"no committed artefacts match {CHECKED_BENCH_GLOB}")
    for path in list(bench_paths) + [Path(p) for p in extra_paths]:
        checked.append(str(path))
        try:
            records = _records_from_file(path)
        except ExportError as exc:
            errors.append(str(exc))
            continue
        for record in records:
            if record.kind == "bench":
                # Matrix benches carry "cases"; the parallel-scaling
                # bench carries "scaling"; the memo, explorer and
                # service benches carry their namesake sections — each
                # must keep its schema-tagged document for the
                # consumers (``compare``, the speedup gates) to read.
                document = record.values.get("document")
                if (
                    not isinstance(document, dict)
                    or "schema" not in document
                    or not ({"cases", "scaling", "memo", "explore",
                             "service"} & set(document))
                ):
                    errors.append(
                        f"{path}: bench record has no embedded document"
                    )

    goldens_path = root / CHECKED_GOLDENS
    checked.append(str(goldens_path))
    from ..memo.fingerprint import EMBEDDED_GOLDEN_DIGESTS

    try:
        committed = json.loads(goldens_path.read_text())
    except (OSError, ValueError) as exc:
        errors.append(f"{goldens_path}: unreadable ({exc})")
    else:
        if committed != EMBEDDED_GOLDEN_DIGESTS:
            errors.append(
                f"{goldens_path}: digests diverge from the embedded "
                "literal in repro.memo.fingerprint"
            )

    errors.extend(_registry_drift_errors())
    return checked, errors


def _registry_drift_errors(registry: MetricRegistry = REGISTRY) -> List[str]:
    """Declared layers must still match the producing dataclasses."""
    import dataclasses

    from ..cache.stats import CoreStats, LLCStats
    from ..timing.energy import EnergyBreakdown

    errors: List[str] = []
    llc_declared = [s.short_name for s in registry.by_layer("llc")]
    llc_fields = [f.name for f in dataclasses.fields(LLCStats)]
    if llc_declared != llc_fields:
        errors.append(
            "registry drift: llc layer declares "
            f"{llc_declared} but LLCStats has fields {llc_fields}"
        )
    core_declared = {s.short_name for s in registry.by_layer("core")}
    core_fields = {f.name for f in dataclasses.fields(CoreStats)}
    if not core_fields <= core_declared:
        errors.append(
            "registry drift: core layer is missing "
            f"{sorted(core_fields - core_declared)}"
        )
    energy = EnergyBreakdown()
    for spec in registry.by_layer("energy"):
        if not hasattr(energy, spec.source_attr):
            errors.append(
                f"registry drift: EnergyBreakdown has no {spec.source_attr!r}"
            )
    # The campaign health record is built by collect()ing these two
    # layers straight off their producing objects, so a renamed field
    # there must show up here, not as a silent zero in /metrics.
    from ..fsio.health import StorageHealth
    from ..harness.scheduler import CampaignReport

    report = CampaignReport(total=0)
    for spec in registry.by_layer("scheduler"):
        if not hasattr(report, spec.source_attr):
            errors.append(
                f"registry drift: CampaignReport has no {spec.source_attr!r}"
            )
    storage = StorageHealth()
    for spec in registry.by_layer("storage"):
        if not hasattr(storage, spec.source_attr):
            errors.append(
                f"registry drift: StorageHealth has no {spec.source_attr!r}"
            )
    for spec in registry:
        if spec.unit == "" or spec.doc == "":
            errors.append(f"metric {spec.name} lacks unit/doc metadata")
    return errors
