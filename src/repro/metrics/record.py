"""The versioned RunRecord: one result shape from engine to report.

Every producing layer — ``run_one``, the campaign unit runners, the
bench runner — returns a :class:`RunRecord`; every consuming layer —
exporters, the memo result cache, analysis, reports — reads one.  The
record is deliberately small:

``schema``
    ``"repro-run/<version>"``.  Loaders reject unknown versions, and
    the memo cache treats any mismatch as *stale* (recompute), so a
    schema change can never silently serve old-shape payloads.
``kind``
    What produced the record: ``simulation``, ``table``, ``unit``,
    ``forecast``, ``bench`` — free-form but stable per producer.
``meta``
    JSON-able provenance (policy/workload identity from
    :mod:`repro.manifest`, experiment/unit/scale labels, ...).
``metrics``
    Flat ``{"<layer>.<name>": number}`` mapping whose keys must be
    declared in the :mod:`~repro.metrics.registry` — validation fails
    on any unregistered name, which is what makes a metric rename a
    *loud* schema event instead of silent drift.
``values``
    Free-form JSON-able payloads that are not scalar metrics (table
    rows, winner-share distributions, per-core breakdowns).
``events``
    Ordered event stream (epoch records), exported as JSONL.

A record built from a live :class:`~repro.engine.SimulationResult`
keeps a (non-serialised) reference to it and delegates the historical
accessors (``stats``, ``epochs``, ``ipcs``, ``cycles``, ...), so
existing callers — including the byte-identity golden digests in
:mod:`repro.bench.golden` — work unchanged on the returned record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .registry import REGISTRY, MetricRegistry

#: Bump on any backward-incompatible change to the record layout or to
#: the meaning of a registered metric; see docs/metrics.md for policy.
RUN_RECORD_VERSION = 1
RUN_RECORD_SCHEMA = f"repro-run/{RUN_RECORD_VERSION}"

#: The serialised field set; anything else in a payload is a schema
#: violation (loud, so drifted producers/caches surface immediately).
_RECORD_FIELDS = ("schema", "kind", "meta", "metrics", "values", "events")


class SchemaError(ValueError):
    """A payload that does not parse as a current-schema RunRecord."""


@dataclass
class RunRecord:
    """One versioned, registry-validated result record."""

    kind: str = "run"
    meta: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    schema: str = RUN_RECORD_SCHEMA
    #: Live simulation result this record was built from, if any.
    #: Never serialised; enables the compatibility accessors below.
    result: Optional[Any] = field(
        default=None, repr=False, compare=False
    )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_simulation(
        cls,
        result: Any,
        kind: str = "simulation",
        meta: Optional[Mapping[str, Any]] = None,
        policy: Optional[Any] = None,
    ) -> "RunRecord":
        """Collect every registered layer of a finished simulation.

        ``result`` is a :class:`~repro.engine.SimulationResult` (duck
        typed); ``policy`` optionally contributes the ``policy.*``
        layer (``current_cpth`` et al.).  Collection happens *after*
        the run — the registry never touches the hot path.
        """
        stats = result.stats
        metrics: Dict[str, Any] = {}
        metrics.update(REGISTRY.collect("llc", stats.llc))
        metrics.update(REGISTRY.collect("hierarchy", stats))
        metrics.update(REGISTRY.collect("sim", result))
        if policy is not None:
            metrics.update(REGISTRY.collect("policy", policy))
        values: Dict[str, Any] = {
            "cores": [
                REGISTRY.collect_raw("core", core) for core in stats.cores
            ],
            "ipcs": list(result.ipcs),
        }
        events = [
            {
                "event": "epoch",
                "index": e.index,
                "end_cycle": e.end_cycle,
                "hits": e.hits,
                "nvm_bytes_written": e.nvm_bytes_written,
                "winner_cpth": e.winner_cpth,
                "after_warmup": bool(e.after_warmup),
            }
            for e in result.epochs
        ]
        return cls(
            kind=kind,
            meta=dict(meta or {}),
            metrics=metrics,
            values=values,
            events=events,
            result=result,
        )

    # -- serialisation --------------------------------------------------
    def validate(self, registry: MetricRegistry = REGISTRY) -> None:
        """Raise :class:`SchemaError` unless this record is well-formed."""
        if self.schema != RUN_RECORD_SCHEMA:
            raise SchemaError(
                f"unknown RunRecord schema {self.schema!r} "
                f"(this build reads {RUN_RECORD_SCHEMA!r})"
            )
        if not isinstance(self.kind, str) or not self.kind:
            raise SchemaError("RunRecord.kind must be a non-empty string")
        for name, expected in (
            ("meta", dict), ("values", dict), ("events", list)
        ):
            if not isinstance(getattr(self, name), expected):
                raise SchemaError(
                    f"RunRecord.{name} must be a {expected.__name__}"
                )
        errors = registry.validate_metrics(self.metrics)
        if errors:
            raise SchemaError("; ".join(errors))

    def to_json(self) -> Dict[str, Any]:
        """The JSON-able payload (validated); ``result`` is dropped."""
        self.validate()
        return {
            "schema": self.schema,
            "kind": self.kind,
            "meta": self.meta,
            "metrics": self.metrics,
            "values": self.values,
            "events": self.events,
        }

    @classmethod
    def from_json(
        cls, data: Any, registry: MetricRegistry = REGISTRY
    ) -> "RunRecord":
        """Parse and validate a payload; any defect is a SchemaError."""
        if not isinstance(data, dict):
            raise SchemaError(
                f"RunRecord payload must be a dict, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_RECORD_FIELDS))
        if unknown:
            raise SchemaError(f"unknown RunRecord fields {unknown}")
        if "schema" not in data or "kind" not in data:
            raise SchemaError("RunRecord payload needs 'schema' and 'kind'")
        record = cls(
            kind=data["kind"],
            meta=data.get("meta", {}),
            metrics=data.get("metrics", {}),
            values=data.get("values", {}),
            events=data.get("events", []),
            schema=data["schema"],
        )
        record.validate(registry)
        return record

    # -- reading --------------------------------------------------------
    def metric(self, name: str, default: Any = None) -> Any:
        return self.metrics.get(name, default)

    # -- compatibility accessors ---------------------------------------
    # Callers that predate the metrics spine read simulation results
    # attribute-wise; a record built from a live run delegates to it
    # (exactly — the golden digests hash those objects), and a record
    # parsed back from JSON falls back to its collected metrics.
    def _live(self) -> Any:
        if self.result is None:
            raise AttributeError(
                "detached RunRecord (parsed from JSON) has no live "
                "simulation objects; read .metrics/.values instead"
            )
        return self.result

    @property
    def stats(self) -> Any:
        return self._live().stats

    @property
    def epochs(self) -> Any:
        return self._live().epochs

    @property
    def ipcs(self) -> List[float]:
        if self.result is not None:
            return self.result.ipcs
        return list(self.values.get("ipcs", ()))

    @property
    def cycles(self) -> float:
        if self.result is not None:
            return self.result.cycles
        return self.metric("sim.cycles")

    @property
    def seconds(self) -> float:
        if self.result is not None:
            return self.result.seconds
        return self.metric("sim.seconds")

    @property
    def mean_ipc(self) -> float:
        if self.result is not None:
            return self.result.mean_ipc
        return self.metric("sim.mean_ipc")

    @property
    def hit_rate(self) -> float:
        if self.result is not None:
            return self.result.hit_rate
        return self.metric("sim.hit_rate")

    @property
    def llc_hits(self) -> int:
        if self.result is not None:
            return self.result.llc_hits
        return self.metric("llc.gets_hits", 0) + self.metric("llc.getx_hits", 0)

    @property
    def nvm_bytes_written(self) -> int:
        if self.result is not None:
            return self.result.nvm_bytes_written
        return self.metric("llc.nvm_bytes_written")


def is_run_record_payload(data: Any) -> bool:
    """Does ``data`` look like a serialised RunRecord (any version)?"""
    return (
        isinstance(data, dict)
        and isinstance(data.get("schema"), str)
        and data["schema"].startswith("repro-run/")
    )
