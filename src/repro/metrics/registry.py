"""Declarative metric registry: the single source of metric metadata.

Every counter the reproduction reports — LLC hit counters, per-core
IPC inputs, energy components, NVM wear totals, set-dueling outcomes —
is *declared* here once by its producing module (name, unit, layer,
docstring, aggregation) and *collected* from plain attributes.  The
registry never sits in the access path: hot-path code keeps bumping
ordinary ``int`` attributes exactly as before (the discipline PRs 2–4
established), and collection walks the declared attribute names only
at epoch/report boundaries.

Layers group metrics by producing object::

    llc        -> repro.cache.stats.LLCStats
    core       -> repro.cache.stats.CoreStats        (per core)
    hierarchy  -> repro.cache.stats.HierarchyStats
    sim        -> repro.engine.SimulationResult
    energy     -> repro.timing.energy.EnergyBreakdown
    nvm        -> repro.nvm.wear.WearTracker
    policy     -> repro.core.policy.InsertionPolicy
    bench      -> bench documents (repro.bench.runner)
    experiment / forecast -> experiment unit payloads

``collect(layer, obj)`` returns ``{"<layer>.<name>": value}`` for a
:class:`~repro.metrics.record.RunRecord`'s ``metrics`` mapping;
``collect_raw`` returns plain attribute-name keys — the exact dict the
deprecated ``LLCStats.snapshot()`` / ``EnergyBreakdown.as_dict()``
wrappers forward to, so their output stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Valid aggregation semantics for a metric across runs/units:
#: ``sum`` (additive counter), ``mean`` (average of runs), ``last``
#: (point-in-time observation) and ``derived`` (recomputed from other
#: metrics, never added).
AGGREGATIONS: Tuple[str, ...] = ("sum", "mean", "last", "derived")


class MetricSpecError(ValueError):
    """An invalid or conflicting metric declaration."""


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: identity, metadata and collection source."""

    name: str          # fully-qualified "<layer>.<short_name>"
    short_name: str    # attribute-level name within the layer
    unit: str          # "count", "bytes", "nJ", "instructions/cycle", ...
    layer: str
    doc: str
    aggregation: str = "sum"
    attr: Optional[str] = None  # attribute/method on the producer;
    #                             defaults to ``short_name``

    @property
    def source_attr(self) -> str:
        return self.attr if self.attr is not None else self.short_name


class MetricRegistry:
    """Ordered declaration table with attribute-walking collectors."""

    def __init__(self) -> None:
        self._specs: Dict[str, MetricSpec] = {}
        self._by_layer: Dict[str, List[MetricSpec]] = {}

    # -- declaration ----------------------------------------------------
    def register(
        self,
        layer: str,
        short_name: str,
        unit: str,
        doc: str,
        aggregation: str = "sum",
        attr: Optional[str] = None,
    ) -> MetricSpec:
        """Declare one metric; idempotent for identical redeclarations.

        Modules register at import time, and imports can legitimately
        re-execute (e.g. under test runners); an *identical* duplicate
        is a no-op while a conflicting one is a hard error.
        """
        if not layer or "." in layer:
            raise MetricSpecError(f"invalid layer {layer!r}")
        if not short_name:
            raise MetricSpecError("metric short_name must be non-empty")
        if aggregation not in AGGREGATIONS:
            raise MetricSpecError(
                f"unknown aggregation {aggregation!r} for "
                f"{layer}.{short_name}; choose from {AGGREGATIONS}"
            )
        if not doc:
            raise MetricSpecError(
                f"metric {layer}.{short_name} needs a docstring"
            )
        spec = MetricSpec(
            name=f"{layer}.{short_name}",
            short_name=short_name,
            unit=unit,
            layer=layer,
            doc=doc,
            aggregation=aggregation,
            attr=attr,
        )
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise MetricSpecError(
                    f"conflicting redeclaration of metric {spec.name}"
                )
            return existing
        self._specs[spec.name] = spec
        self._by_layer.setdefault(layer, []).append(spec)
        return spec

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> MetricSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unregistered metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> List[str]:
        return list(self._specs)

    def layers(self) -> List[str]:
        return list(self._by_layer)

    def by_layer(self, layer: str) -> List[MetricSpec]:
        return list(self._by_layer.get(layer, ()))

    # -- collection -----------------------------------------------------
    @staticmethod
    def _read(obj: Any, spec: MetricSpec) -> Any:
        value = getattr(obj, spec.source_attr)
        return value() if callable(value) else value

    def collect(self, layer: str, obj: Any) -> Dict[str, Any]:
        """``{"<layer>.<name>": value}`` for a RunRecord's metrics."""
        return {
            spec.name: self._read(obj, spec)
            for spec in self._by_layer.get(layer, ())
        }

    def collect_raw(self, layer: str, obj: Any) -> Dict[str, Any]:
        """Plain attribute-name keys, in declaration order.

        This is what the deprecated ``snapshot()`` / ``as_dict()``
        wrappers return — key names and values must stay byte-identical
        to the historical hand-rolled dicts.
        """
        return {
            spec.short_name: self._read(obj, spec)
            for spec in self._by_layer.get(layer, ())
        }

    # -- validation -----------------------------------------------------
    def validate_metrics(self, metrics: Any) -> List[str]:
        """Schema errors (empty list = valid) for a metrics mapping."""
        errors: List[str] = []
        if not isinstance(metrics, dict):
            return [f"metrics must be a dict, got {type(metrics).__name__}"]
        for name, value in metrics.items():
            if name not in self._specs:
                errors.append(f"unregistered metric {name!r}")
            elif value is not None and not isinstance(value, (int, float)):
                errors.append(
                    f"metric {name!r} must be numeric or null, "
                    f"got {type(value).__name__}"
                )
        return errors


#: The process-wide registry every producing module declares into.
REGISTRY = MetricRegistry()

#: Convenience alias used by producing modules at import time.
register_metric = REGISTRY.register
