"""Baseline comparison: turn a bench run into a pass/fail gate.

A committed ``BENCH_<label>.json`` is the performance contract; this
module diffs a fresh run against it.  The verdict is driven by the
geomean of the *matched per-case* ratios (current / baseline over the
(policy, mix) cells both documents ran) — so a reduced-matrix smoke
run compares fairly against a full-matrix baseline instead of being
skewed by the cells it skipped.  Documents with no matched cases fall
back to the ratio of the two headline geomeans.  The verdict:

* ``regression``  — ratio below ``1 - threshold``; the CLI exits 1;
* ``improvement`` — ratio above ``1 + threshold`` (time to re-commit
  the baseline so the gate tightens);
* ``ok``          — within the threshold band;
* ``missing-baseline`` — no baseline document to compare against.

Per-case ratios are reported too, because a flat geomean can hide one
policy getting slower while another gets faster.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

PathLike = Union[str, Path]

STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_OK = "ok"
STATUS_MISSING_BASELINE = "missing-baseline"


class BackendMismatchError(ValueError):
    """Raised when two bench documents come from different backends.

    Cross-backend ratios answer "which backend is faster", not "did
    this change regress the engine" — mixing them in the regression
    gate silently moves the goalposts.  The caller must opt in with
    ``cross_backend=True`` (the CLI's ``--cross-backend``).
    """


def bench_backend(document: dict) -> str:
    """Backend a bench document was recorded under.

    Documents written before backends existed were all timed on the
    scalar loop that is now the ``reference`` backend, so a missing
    field means ``reference``.
    """
    return document.get("backend") or "reference"


#: Phase-breakdown keys diffed between documents (seconds spent per
#: engine phase across the matrix; see ``runner.phase_breakdown``).
_PHASE_KEYS = ("trace_replay_est_s", "access_path_s", "epoch_bookkeeping_s")

#: Host fields whose mismatch makes a timing ratio suspect.
_HOST_KEYS = ("platform", "machine", "cpu_count")


@dataclass(frozen=True)
class PhaseComparison:
    """One engine phase's time, current vs baseline (whole matrix)."""

    phase: str
    baseline_seconds: float
    current_seconds: float

    @property
    def ratio(self) -> float:
        if self.baseline_seconds <= 0:
            return 0.0
        return self.current_seconds / self.baseline_seconds


@dataclass(frozen=True)
class CaseComparison:
    """One (policy, mix) cell diffed against the baseline."""

    policy: str
    mix: str
    baseline_mcycles_per_s: float
    current_mcycles_per_s: float

    @property
    def ratio(self) -> float:
        if self.baseline_mcycles_per_s <= 0:
            return 0.0
        return self.current_mcycles_per_s / self.baseline_mcycles_per_s


@dataclass
class BenchComparison:
    """Outcome of comparing one bench run to one baseline."""

    status: str
    threshold: float
    geomean_ratio: float = 0.0
    baseline_geomean: float = 0.0
    current_geomean: float = 0.0
    cases: List[CaseComparison] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)
    phases: List[PhaseComparison] = field(default_factory=list)
    host_warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status != STATUS_REGRESSION

    def summary(self) -> str:
        if self.status == STATUS_MISSING_BASELINE:
            return "bench: no baseline to compare against"
        if self.cases:
            return (
                f"bench {self.status}: {self.geomean_ratio:.2f}x geomean "
                f"over {len(self.cases)} matched cases "
                f"(threshold +/-{self.threshold:.0%})"
            )
        return (
            f"bench {self.status}: geomean {self.current_geomean:.3f} "
            f"vs baseline {self.baseline_geomean:.3f} Mcycles/s "
            f"({self.geomean_ratio:.2f}x, threshold +/-{self.threshold:.0%})"
        )


def load_bench(path: PathLike) -> Optional[dict]:
    """Load a BENCH_*.json document, or None if the file is absent.

    Artefacts are checksummed ``repro-blob/1`` envelopes around a
    RunRecord (``values["document"]`` holds the timing document); bare
    RunRecord envelopes and raw pre-envelope documents are still
    accepted so old baselines keep comparing.
    """
    path = Path(path)
    if not path.exists():
        return None
    from ..fsio.durable import unwrap_json
    from ..metrics import RunRecord, is_run_record_payload

    data = unwrap_json(json.loads(path.read_text()), path=path)
    if is_run_record_payload(data):
        return RunRecord.from_json(data).values.get("document", {})
    return data


def compare_benches(
    current: dict,
    baseline: Optional[dict],
    threshold: float = 0.10,
    cross_backend: bool = False,
) -> BenchComparison:
    """Diff two bench documents (see module docstring for the verdict).

    Refuses to compare documents recorded under different engine
    backends unless ``cross_backend`` is set: a backend switch changes
    what is being measured, so a same-backend gate would read it as a
    spurious regression/improvement.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    if baseline is None:
        return BenchComparison(status=STATUS_MISSING_BASELINE, threshold=threshold)
    cur_backend = bench_backend(current)
    base_backend = bench_backend(baseline)
    if cur_backend != base_backend and not cross_backend:
        raise BackendMismatchError(
            f"refusing to compare backend {cur_backend!r} against baseline "
            f"backend {base_backend!r}; pass --cross-backend to compare "
            "engine backends against each other"
        )

    base_cases = {
        (c["policy"], c["mix"]): c for c in baseline.get("cases", [])
    }
    cases: List[CaseComparison] = []
    missing: List[str] = []
    for case in current.get("cases", []):
        key = (case["policy"], case["mix"])
        base = base_cases.get(key)
        if base is None:
            missing.append(f"{key[0]}/{key[1]}")
            continue
        cases.append(
            CaseComparison(
                policy=case["policy"],
                mix=case["mix"],
                baseline_mcycles_per_s=base["mcycles_per_s"],
                current_mcycles_per_s=case["mcycles_per_s"],
            )
        )

    # A moved-goalposts warning, not a gate: a ratio taken across two
    # different hosts measures the hardware, not the change.
    host_warnings: List[str] = []
    cur_host = current.get("host") or {}
    base_host = baseline.get("host") or {}
    if cur_host and base_host:
        for key in _HOST_KEYS:
            if cur_host.get(key) != base_host.get(key):
                host_warnings.append(
                    f"host mismatch: {key} {cur_host.get(key)!r} vs "
                    f"baseline {base_host.get(key)!r} — timing ratios "
                    "compare hosts, not the change"
                )

    # Where did a regression go?  The per-phase seconds localise it to
    # record delivery, the access path, or epoch bookkeeping.
    phases: List[PhaseComparison] = []
    cur_phases = current.get("phase_breakdown") or {}
    base_phases = baseline.get("phase_breakdown") or {}
    if cur_phases and base_phases:
        for key in _PHASE_KEYS:
            phases.append(PhaseComparison(
                phase=key[: -len("_s")] if key.endswith("_s") else key,
                baseline_seconds=float(base_phases.get(key, 0.0)),
                current_seconds=float(cur_phases.get(key, 0.0)),
            ))

    baseline_geomean = baseline.get("geomean_mcycles_per_s", 0.0)
    current_geomean = current.get("geomean_mcycles_per_s", 0.0)
    ratios = [c.ratio for c in cases]
    if ratios and all(r > 0 for r in ratios):
        ratio = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    elif ratios:
        ratio = 0.0  # a zero-rate case is a regression by definition
    else:
        ratio = (
            current_geomean / baseline_geomean if baseline_geomean > 0 else 0.0
        )
    if ratio < 1.0 - threshold:
        status = STATUS_REGRESSION
    elif ratio > 1.0 + threshold:
        status = STATUS_IMPROVEMENT
    else:
        status = STATUS_OK
    return BenchComparison(
        status=status,
        threshold=threshold,
        geomean_ratio=ratio,
        baseline_geomean=baseline_geomean,
        current_geomean=current_geomean,
        cases=cases,
        missing_cases=missing,
        phases=phases,
        host_warnings=host_warnings,
    )
