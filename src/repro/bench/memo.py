"""Memoization benchmark: prove the caches are fast *and* honest.

``python -m repro bench --memo`` measures the two memo layers that
PR 4 adds on top of the engine:

* **result cache** — a ``bench_cells`` campaign is run twice against a
  shared content-addressed result cache.  The second pass must be
  served entirely from cache *and* produce byte-identical result
  files; the benchmark raises if either fails, so the recorded speedup
  can never come from a wrong answer.
* **snapshot store** — one (policy, mix) cell is simulated cold and
  then warm-started from the in-process post-warmup snapshot store;
  the warm result's :func:`~repro.bench.golden.simulation_digest` must
  equal the cold one.

The emitted ``BENCH_memo.json`` carries ``cases`` rows shaped like the
engine bench's (``policy``/``mix``/``mcycles_per_s``) so
:func:`~repro.bench.compare.compare_benches` can gate it against the
committed baseline, plus a ``memo`` section with the verified
speedups.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..core import make_policy
from ..experiments.bench_cells import (
    BENCH_CELL_EPOCHS,
    BENCH_CELL_MIXES,
    BENCH_CELL_POLICIES,
    BENCH_CELL_WARMUP_EPOCHS,
)
from ..experiments.common import ExperimentScale, run_one
from ..memo.snapshots import (
    SNAPSHOT_MEMO_ENV,
    reset_shared_snapshot_store,
    shared_snapshot_store,
)
from ..workloads.cache import TRACE_CACHE_ENV
from .golden import simulation_digest
from .runner import BENCH_SCHEMA, _host_metadata

#: Snapshot microbench horizons: a long warmup against a short
#: measured window is the shape the store exists for (figure variants
#: re-measuring past the same warmed state), and it makes the restore
#: win visible rather than amortised away.
SNAPSHOT_WARMUP_EPOCHS = 2.0
SNAPSHOT_MEASURE_EPOCHS = 1.0
SNAPSHOT_POLICY = "cp_sd"


class MemoBenchError(RuntimeError):
    """A memoization correctness check failed during the benchmark."""


def _result_bytes(directory: Path) -> dict:
    return {
        p.name: p.read_bytes()
        for p in (Path(directory) / "results").glob("*.json")
    }


def _campaign_pass(directory: Path, scale_name: str, settings):
    """Run one timed ``bench_cells`` campaign; returns (report, seconds)."""
    from ..harness import run_campaign

    start = time.perf_counter()
    report = run_campaign(
        directory, scale=scale_name, experiments=["bench_cells"], settings=settings
    )
    seconds = time.perf_counter() - start
    if not report.ok:
        raise MemoBenchError(
            f"bench_cells campaign at {directory} did not complete"
        )
    return report, seconds


def _campaign_phase(scale: ExperimentScale, base: Path, jobs: int, say) -> dict:
    from ..harness import CampaignSettings

    settings = CampaignSettings(
        jobs=max(1, jobs),
        task_timeout=600.0,
        retries=2,
        backoff_base=0.05,
        result_cache_dir=str(base / "result_cache"),
    )
    cold_report, cold_seconds = _campaign_pass(base / "cold", scale.name, settings)
    say(
        f"cold pass: {cold_report.completed} units in {cold_seconds:.2f}s "
        f"({cold_report.cache_hits} cache hits)"
    )
    warm_report, warm_seconds = _campaign_pass(base / "warm", scale.name, settings)
    say(
        f"warm pass: {warm_report.completed} units in {warm_seconds:.2f}s "
        f"({warm_report.cache_hits} cache hits)"
    )

    if warm_report.cache_hits != warm_report.total:
        raise MemoBenchError(
            f"warm pass served {warm_report.cache_hits}/{warm_report.total} "
            "units from cache; expected all of them"
        )
    if _result_bytes(base / "cold") != _result_bytes(base / "warm"):
        raise MemoBenchError(
            "cache-served results are not byte-identical to computed ones"
        )

    units = warm_report.total
    cycles_per_unit = scale.epoch_cycles * (
        BENCH_CELL_WARMUP_EPOCHS + BENCH_CELL_EPOCHS
    )
    simulated_cycles = float(units * cycles_per_unit)
    return {
        "units": units,
        "mixes": list(scale.mixes[:BENCH_CELL_MIXES]),
        "policies": list(BENCH_CELL_POLICIES),
        "simulated_cycles": simulated_cycles,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "verified_identical": True,
    }


def _snapshot_phase(scale: ExperimentScale, say) -> dict:
    """Cold vs snapshot-restored ``run_one`` on one cell, digest-gated."""
    mix = scale.mixes[0]
    config = scale.system()
    workload = scale.workload(mix, seed=0)
    cycles = scale.epoch_cycles * (
        SNAPSHOT_WARMUP_EPOCHS + SNAPSHOT_MEASURE_EPOCHS
    )

    def timed_run():
        policy = make_policy(SNAPSHOT_POLICY)
        start = time.perf_counter()
        result = run_one(
            config,
            policy,
            workload,
            warmup_epochs=SNAPSHOT_WARMUP_EPOCHS,
            measure_epochs=SNAPSHOT_MEASURE_EPOCHS,
        )
        return result, time.perf_counter() - start

    old = os.environ.get(SNAPSHOT_MEMO_ENV)
    try:
        os.environ[SNAPSHOT_MEMO_ENV] = "0"
        cold_result, cold_seconds = timed_run()
        os.environ[SNAPSHOT_MEMO_ENV] = "1"
        reset_shared_snapshot_store()
        timed_run()  # populates the store (miss + snapshot cost)
        warm_result, warm_seconds = timed_run()
        again, again_seconds = timed_run()
        warm_seconds = min(warm_seconds, again_seconds)
        store = shared_snapshot_store()
        if store is None or store.hits < 2:
            raise MemoBenchError("snapshot store never served a warm start")
    finally:
        if old is None:
            os.environ.pop(SNAPSHOT_MEMO_ENV, None)
        else:
            os.environ[SNAPSHOT_MEMO_ENV] = old
        reset_shared_snapshot_store()

    cold_digest = simulation_digest(cold_result)
    if simulation_digest(warm_result) != cold_digest:
        raise MemoBenchError("snapshot-restored result diverged from cold run")
    if simulation_digest(again) != cold_digest:
        raise MemoBenchError("second snapshot restore diverged from cold run")
    say(
        f"snapshot cell {SNAPSHOT_POLICY}/{mix}: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s (digest-identical)"
    )
    return {
        "policy": SNAPSHOT_POLICY,
        "mix": mix,
        "warmup_epochs": SNAPSHOT_WARMUP_EPOCHS,
        "measure_epochs": SNAPSHOT_MEASURE_EPOCHS,
        "simulated_cycles": float(cycles),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "verified_identical": True,
    }


def run_memo_bench(
    scale: ExperimentScale,
    label: str = "memo",
    jobs: int = 2,
    progress=None,
) -> dict:
    """Benchmark both memo layers; raise :class:`MemoBenchError` on any
    correctness defect (wrong bytes, missed hits, digest divergence)."""
    say = progress or (lambda message: None)
    base = Path(tempfile.mkdtemp(prefix="repro_memo_bench_"))
    old_trace_env = os.environ.get(TRACE_CACHE_ENV)
    try:
        # Share one trace cache across both passes and prewarm it, so
        # the cold pass times engine + scheduler work, not one-time
        # trace materialisation.
        os.environ[TRACE_CACHE_ENV] = str(base / "trace_cache")
        for mix in scale.mixes[:BENCH_CELL_MIXES]:
            scale.workload(mix, seed=0)
        campaign = _campaign_phase(scale, base, jobs, say)
        snapshot = _snapshot_phase(scale, say)
    finally:
        if old_trace_env is None:
            os.environ.pop(TRACE_CACHE_ENV, None)
        else:
            os.environ[TRACE_CACHE_ENV] = old_trace_env
        shutil.rmtree(base, ignore_errors=True)

    def rate(simulated_cycles: float, seconds: float) -> float:
        return simulated_cycles / 1e6 / seconds if seconds > 0 else 0.0

    cases = [
        {
            "policy": "campaign",
            "mix": "cold",
            "seconds": campaign["cold_seconds"],
            "mcycles_per_s": rate(
                campaign["simulated_cycles"], campaign["cold_seconds"]
            ),
        },
        {
            "policy": "campaign",
            "mix": "cache_served",
            "seconds": campaign["warm_seconds"],
            "mcycles_per_s": rate(
                campaign["simulated_cycles"], campaign["warm_seconds"]
            ),
        },
        {
            "policy": "snapshot",
            "mix": "cold",
            "seconds": snapshot["cold_seconds"],
            "mcycles_per_s": rate(
                snapshot["simulated_cycles"], snapshot["cold_seconds"]
            ),
        },
        {
            "policy": "snapshot",
            "mix": "restored",
            "seconds": snapshot["warm_seconds"],
            "mcycles_per_s": rate(
                snapshot["simulated_cycles"], snapshot["warm_seconds"]
            ),
        },
    ]
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "created_unix": time.time(),
        "host": _host_metadata(),
        "scale": scale.name,
        "memo": {"campaign": campaign, "snapshot": snapshot},
        "cases": cases,
    }
