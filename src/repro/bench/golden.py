"""Content digests that prove two engine versions agree bit-for-bit.

The performance work on the hot path (sharer index, array replay,
inlined lookups) is only admissible if it is *semantics-preserving*:
the same ``(mix, seed, policy, cycles)`` must produce the same
statistics, epoch records and IPCs.  :func:`simulation_digest` folds a
:class:`~repro.engine.SimulationResult` into a SHA-256 over a
canonical JSON rendering — floats serialised with ``float.hex`` so
even the last mantissa bit is covered — and
:func:`compute_golden_digests` runs the committed golden window.

``tests/goldens/determinism.json`` holds digests recorded with the
*pre-optimization* engine; ``tests/test_golden_determinism.py`` keeps
every later engine pinned to them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Sequence

from ..core import make_policy
from ..engine import Simulation, SimulationResult, Workload
from ..experiments.common import SMOKE
from ..workloads.mixes import mix_profiles

#: The golden window: small enough for tier-1 CI, large enough to
#: cross epoch boundaries, warm-up reset and every insertion path.
GOLDEN_MIX = "mix1"
GOLDEN_POLICIES: Sequence[str] = ("bh", "ca_rwr", "cp_sd")
GOLDEN_SEED = 0
GOLDEN_RECORDS_PER_CORE = 20_000
GOLDEN_SCALE_FACTOR = 1 / 32
GOLDEN_EPOCHS = 2.0
GOLDEN_WARMUP_EPOCHS = 0.5


def _hex(value: float) -> str:
    return float(value).hex()


def simulation_digest(result: SimulationResult) -> str:
    """SHA-256 over every number a simulation reports."""
    stats = result.stats
    payload = {
        "llc": stats.llc.snapshot(),
        "cores": [
            [
                c.instructions,
                _hex(c.cycles),
                c.accesses,
                c.l1_hits,
                c.l2_hits,
                c.llc_hits,
                c.memory_accesses,
            ]
            for c in stats.cores
        ],
        "memory_reads": stats.memory_reads,
        "memory_writes": stats.memory_writes,
        "coherence_invalidations": stats.coherence_invalidations,
        "epochs": [
            [
                e.index,
                _hex(e.end_cycle),
                e.hits,
                e.nvm_bytes_written,
                e.winner_cpth,
                bool(e.after_warmup),
            ]
            for e in result.epochs
        ],
        "ipcs": [_hex(v) for v in result.ipcs],
        "cycles": _hex(result.cycles),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def _golden_workload(via_registry: bool = False) -> Workload:
    """The golden window's workload, built directly or via the registry.

    The two paths must agree byte-for-byte: ``via_registry=True`` is
    the ci.sh workloads-leg gate proving the registry's ``synthetic``
    family resolves to exactly the pre-registry construction.
    """
    if via_registry:
        from dataclasses import replace

        from ..workloads.registry import build_workload

        golden_scale = replace(
            SMOKE,
            factor=GOLDEN_SCALE_FACTOR,
            trace_records_per_core=GOLDEN_RECORDS_PER_CORE,
        )
        return build_workload(GOLDEN_MIX, scale=golden_scale, seed=GOLDEN_SEED)
    profiles = [p.scaled(GOLDEN_SCALE_FACTOR) for p in mix_profiles(GOLDEN_MIX)]
    return Workload(
        profiles,
        seed=GOLDEN_SEED,
        trace_records_per_core=GOLDEN_RECORDS_PER_CORE,
    )


def compute_golden_digests(
    backend: str = None, via_registry: bool = False
) -> Dict[str, str]:
    """Digest of the golden window under each golden policy.

    ``backend`` selects the engine backend (flag > ``REPRO_BACKEND`` >
    default); the digests must be identical whatever it resolves to —
    that equality is the backend-equivalence gate of ``scripts/ci.sh``.
    ``via_registry`` resolves the golden workload through the workload
    registry instead of constructing it directly; the digests must
    again be identical (the registry byte-identity gate).
    """
    config = SMOKE.system()
    epoch = config.dueling.epoch_cycles
    digests: Dict[str, str] = {}
    for policy_name in GOLDEN_POLICIES:
        workload = _golden_workload(via_registry=via_registry)
        sim = Simulation(
            config, make_policy(policy_name), workload, backend=backend
        )
        result = sim.run(
            cycles=epoch * (GOLDEN_WARMUP_EPOCHS + GOLDEN_EPOCHS),
            warmup_cycles=epoch * GOLDEN_WARMUP_EPOCHS,
        )
        digests[policy_name] = simulation_digest(result)
    return digests
