"""The benchmark runner behind ``python -m repro bench``.

Three things are timed, because they bound three different layers of a
reproduction campaign:

* **workload build** — cold construction of one mix's traces + data
  model (what every campaign worker pays before simulating anything);
* **raw replay** — iterating the reference stream with no hierarchy
  attached (the floor the engine's record-delivery protocol sets);
* **simulation** — simulated Mcycles per wall-clock second for every
  (policy, mix) cell of the matrix, the number every figure's
  end-to-end time divides by.

The headline metric is the **geometric mean of Mcycles/s** across the
matrix — geomean, as in the instrumentation-infra reporting idiom, so
no single fast case can buy back a regression elsewhere.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..config import resolve_backend_name
from ..core import make_policy
from ..engine import Simulation, Workload
from ..experiments.common import ExperimentScale, geometric_mean
from ..fsio.durable import write_blob_json
from ..metrics import RunRecord
from ..metrics.registry import register_metric

#: Schema tag of the embedded bench document (bump on layout change);
#: the artefact on disk is a RunRecord envelope around it, inside a
#: checksummed ``repro-blob/1`` envelope tagged with this schema.
BENCH_ARTIFACT_SCHEMA = "repro-bench-artifact/1"
BENCH_SCHEMA = "repro-bench/1"

register_metric("bench", "geomean_mcycles_per_s", "Mcycles/s",
                "Geometric mean simulation rate across the bench matrix",
                aggregation="last")

PathLike = Union[str, Path]

#: Default policy matrix: the paper's baselines plus its proposals.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "bh", "bh_cp", "lhybrid", "tap", "ca", "ca_rwr", "cp_sd",
)


@dataclass(frozen=True)
class BenchMatrix:
    """One bench invocation's parameters (everything that shapes load)."""

    policies: Tuple[str, ...] = DEFAULT_POLICIES
    mixes: Tuple[str, ...] = ("mix1", "mix4")
    epochs: float = 2.0
    warmup_epochs: float = 0.5
    seed: int = 0
    repeats: int = 1
    #: Engine backend to time (``None`` → flag/env/default resolution).
    #: An execution strategy, not a modelling choice: every backend is
    #: pinned byte-identical by the golden digests, so the matrix
    #: numbers stay comparable while the engine underneath changes.
    backend: Optional[str] = None


def _host_metadata() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def _time_workload_build(scale: ExperimentScale, mix: str, seed: int) -> Tuple[Workload, dict]:
    start = time.perf_counter()
    workload = scale.workload(mix, seed=seed)
    seconds = time.perf_counter() - start
    records = sum(len(t) for t in workload.traces)
    return workload, {
        "mix": mix,
        "seconds": seconds,
        "records": records,
        "records_per_s": records / seconds if seconds > 0 else 0.0,
    }


def _time_raw_replay(workload: Workload, n_records: int) -> dict:
    """Drain ``n_records`` records per core with no hierarchy attached.

    Uses the engine's actual delivery protocol — flat column arrays
    when the trace provides them, the legacy ``player()`` generator
    otherwise — so the number reflects what ``Simulation.run`` really
    pays per record before any cache modelling starts.
    """
    total = 0
    start = time.perf_counter()
    for trace in workload.traces:
        columns = getattr(trace, "replay_columns", None)
        if columns is not None:
            gaps, addrs, writes = columns()
            n = len(addrs)
            cursor = 0
            sink = 0
            for _ in range(n_records):
                sink += gaps[cursor] + addrs[cursor] + writes[cursor]
                cursor += 1
                if cursor == n:
                    cursor = 0
        else:  # pre-columns engines: per-record generator protocol
            player = trace.player()
            sink = 0
            for _ in range(n_records):
                gap, addr, is_write = next(player)
                sink += gap + addr + is_write
        total += n_records
    seconds = time.perf_counter() - start
    return {
        "records": total,
        "seconds": seconds,
        "records_per_s": total / seconds if seconds > 0 else 0.0,
    }


def _time_case(
    scale: ExperimentScale,
    workload: Workload,
    policy_name: str,
    mix: str,
    matrix: BenchMatrix,
) -> dict:
    config = scale.system()
    epoch = config.dueling.epoch_cycles
    cycles = epoch * (matrix.warmup_epochs + matrix.epochs)
    warmup = epoch * matrix.warmup_epochs
    best_seconds = None
    result = None
    phases = None
    for _ in range(max(1, matrix.repeats)):
        sim = Simulation(
            config, make_policy(policy_name), workload, backend=matrix.backend
        )
        start = time.perf_counter()
        result = sim.run(cycles=cycles, warmup_cycles=warmup)
        seconds = time.perf_counter() - start
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
            phases = dict(sim.last_phase_timings)
    assert result is not None and best_seconds is not None
    mcycles = cycles / 1e6
    return {
        "policy": policy_name,
        "mix": mix,
        "simulated_cycles": cycles,
        "seconds": best_seconds,
        "mcycles_per_s": mcycles / best_seconds if best_seconds > 0 else 0.0,
        "llc_accesses": result.stats.llc.accesses,
        "demand_accesses": sum(c.accesses for c in result.stats.cores),
        "mean_ipc": result.mean_ipc,
        "phases": phases or {},
    }


def phase_breakdown(cases: Sequence[dict], raw_replay: dict) -> dict:
    """Aggregate the per-case phase timings into one breakdown.

    ``access_path_s`` and ``epoch_bookkeeping_s`` are measured inside
    the backend; ``trace_replay_est_s`` is the record-delivery floor
    *estimated* from the raw-replay rate (it happens inline in the
    burst loop, so it cannot be clocked separately without perturbing
    the thing being measured).
    """
    access = sum(c.get("phases", {}).get("access_path_s", 0.0) for c in cases)
    epoch = sum(c.get("phases", {}).get("epoch_bookkeeping_s", 0.0) for c in cases)
    records = sum(c.get("phases", {}).get("records", 0) for c in cases)
    rate = raw_replay.get("records_per_s", 0.0)
    replay_est = records / rate if rate > 0 else 0.0
    return {
        "records": records,
        "trace_replay_est_s": replay_est,
        "access_path_s": access,
        "epoch_bookkeeping_s": epoch,
        "fallback_cases": sum(
            1 for c in cases if c.get("phases", {}).get("fallback")
        ),
    }


def run_bench(
    scale: ExperimentScale,
    matrix: Optional[BenchMatrix] = None,
    label: str = "engine",
    progress=None,
) -> dict:
    """Run the full matrix and return the canonical result document."""
    matrix = matrix or BenchMatrix()
    say = progress or (lambda message: None)
    backend = resolve_backend_name(matrix.backend)
    say(f"engine backend: {backend}")

    # Workload build is timed cold on the first mix; the built workloads
    # are then shared across that mix's policy cases, exactly as the
    # sweep experiments share them.
    workloads = {}
    build_info = None
    for mix in matrix.mixes:
        workload, info = _time_workload_build(scale, mix, matrix.seed)
        workloads[mix] = workload
        if build_info is None:
            build_info = info
        say(f"built {mix}: {info['records']} records in {info['seconds']:.2f}s")

    first = workloads[matrix.mixes[0]]
    replay_records = min(len(first.traces[0]), 200_000)
    raw_replay = _time_raw_replay(first, replay_records)
    say(
        f"raw replay: {raw_replay['records_per_s'] / 1e6:.2f} Mrecords/s "
        f"({raw_replay['records']} records)"
    )

    cases: List[dict] = []
    for mix in matrix.mixes:
        for policy_name in matrix.policies:
            case = _time_case(scale, workloads[mix], policy_name, mix, matrix)
            cases.append(case)
            say(
                f"{policy_name:>8} on {mix}: "
                f"{case['mcycles_per_s']:.3f} Mcycles/s "
                f"({case['seconds']:.2f}s)"
            )

    geomean = geometric_mean([c["mcycles_per_s"] for c in cases])
    breakdown = phase_breakdown(cases, raw_replay)
    say(
        "phases: "
        f"trace replay ~{breakdown['trace_replay_est_s']:.2f}s (est), "
        f"access path {breakdown['access_path_s']:.2f}s, "
        f"epoch bookkeeping {breakdown['epoch_bookkeeping_s']:.2f}s"
    )
    if breakdown["fallback_cases"]:
        say(f"scalar fallback on {breakdown['fallback_cases']} case(s)")
    say(f"geomean: {geomean:.3f} Mcycles/s over {len(cases)} cases")
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "backend": backend,
        "created_unix": time.time(),
        "host": _host_metadata(),
        "scale": scale.name,
        "matrix": {
            "policies": list(matrix.policies),
            "mixes": list(matrix.mixes),
            "epochs": matrix.epochs,
            "warmup_epochs": matrix.warmup_epochs,
            "seed": matrix.seed,
            "repeats": matrix.repeats,
        },
        "workload_build": build_info,
        "raw_replay": raw_replay,
        "cases": cases,
        "phase_breakdown": breakdown,
        "geomean_mcycles_per_s": geomean,
    }


def bench_record(document: dict) -> RunRecord:
    """Wrap a bench document in the versioned RunRecord envelope.

    The timing numbers stay verbatim in ``values["document"]``; the
    headline geomean is additionally surfaced as a registered metric so
    the exporters and ``repro export --check`` treat bench artefacts
    like any other run.
    """
    metrics = {}
    geomean = document.get("geomean_mcycles_per_s")
    if geomean is not None:
        metrics["bench.geomean_mcycles_per_s"] = geomean
    return RunRecord(
        kind="bench",
        meta={
            "label": document.get("label"),
            "scale": document.get("scale"),
            "bench_schema": document.get("schema"),
            "backend": document.get("backend"),
        },
        metrics=metrics,
        values={"document": document},
    )


def write_bench(document: dict, out_dir: PathLike) -> Path:
    """Write ``BENCH_<label>.json`` under ``out_dir`` (durably).

    The on-disk artefact is the RunRecord envelope of the document,
    wrapped in the checksummed ``repro-blob/1`` envelope and committed
    through the crash-consistent fsio path — one format shared with
    campaign results and the memo cache, auditable by ``repro
    doctor``.  Pre-envelope artefacts stay loadable via
    :func:`repro.bench.compare.load_bench`'s legacy passthrough.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{document['label']}.json"
    write_blob_json(path, bench_record(document).to_json(), BENCH_ARTIFACT_SCHEMA)
    return path
