"""Service-mode benchmark: ``python -m repro bench --service``.

Measures what the sharded dispatcher delivers over real subprocess
shards on this host, with correctness gated before any number is
recorded:

* **byte identity** — every sharded run's ``results/`` directory must
  hash identically to the single-pool reference run's.  This gate is
  unconditional: a fast wrong answer is not a benchmark result;
* **scaling** — one ``bench_cells`` campaign per fleet size from one
  shard up to ``max_shards``; ``speedup`` is wall(1 shard) /
  wall(N shards);
* **the floor** — the service contract is near-linear scaling with a
  hard ``>= 1.8x at 2 shards`` floor.  The floor is *enforced* only
  when the host can physically exhibit it (``cpu_count >= 2``); on a
  single-core host the document is stamped ``degenerate_single_core``
  and the floor is recorded as unenforced rather than faked.  The
  same honesty applies when a committed ``BENCH_service.json`` is
  gated later: :func:`service_floor_errors` re-reads the stamp.

All runs (pool reference and every fleet) share one pre-warmed
on-disk trace cache, so the comparison isolates dispatch mode, not
trace-generation luck.  Shard workers are spawned subprocesses and
inherit the cache via the environment.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..experiments.bench_cells import (
    BENCH_CELL_EPOCHS,
    BENCH_CELL_MIXES,
    BENCH_CELL_WARMUP_EPOCHS,
)
from ..experiments.common import ExperimentScale
from .runner import BENCH_SCHEMA, _host_metadata

#: The service contract: two shards must beat one by at least this
#: factor on a host with two or more cores.
SERVICE_SPEEDUP_FLOOR = 1.8
#: Fleet size the floor is defined at.
FLOOR_SHARDS = 2


class ServiceBenchError(RuntimeError):
    """A correctness or contract failure during the service bench."""


def _results_digest(directory: Path) -> str:
    """One hex digest over the bytes of every result file.

    Filename-keyed and order-independent: two campaign directories
    digest equal iff their ``results/`` trees are byte-identical.
    """
    digest = hashlib.sha256()
    for path in sorted((Path(directory) / "results").glob("*.json")):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def _run_campaign(directory: Path, scale_name: str, settings) -> Dict:
    from ..harness import run_campaign

    start = time.perf_counter()
    report = run_campaign(
        directory,
        scale=scale_name,
        experiments=("bench_cells",),
        settings=settings,
    )
    wall = time.perf_counter() - start
    if not report.ok:
        kinds = [f.failures[-1].kind for f in report.failed if f.failures]
        raise ServiceBenchError(
            f"campaign at {directory} did not complete: "
            f"{len(report.failed)} failed {kinds}"
        )
    return {
        "tasks": report.completed,
        "wall_seconds": wall,
        "tasks_per_s": report.completed / wall if wall > 0 else 0.0,
        "shard_walls": dict(sorted(report.shard_walls.items())),
        "shard_deaths": report.shard_deaths,
    }


def run_service_bench(
    scale: ExperimentScale,
    label: str = "service",
    max_shards: int = FLOOR_SHARDS,
    task_timeout: float = 600.0,
    progress=None,
) -> dict:
    """Run the service scaling matrix; return the result document.

    Raises :class:`ServiceBenchError` on any byte-identity divergence,
    and on a floor violation when the floor is enforceable here.
    """
    from ..harness import CampaignSettings
    from ..service.shard import LocalShardSet
    from ..workloads.cache import SHARED_WORKLOAD_CACHE, TRACE_CACHE_ENV

    say = progress or (lambda message: None)
    if max_shards < 1:
        raise ValueError("--max-shards must be >= 1")

    cpu_count = os.cpu_count() or 1
    previous_cache = os.environ.get(TRACE_CACHE_ENV)
    runs: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-svcbench-") as tmp:
        root = Path(tmp)
        os.environ[TRACE_CACHE_ENV] = str(root / "trace_cache")
        try:
            say("pre-warming trace cache ...")
            for mix in scale.mixes[:BENCH_CELL_MIXES]:
                scale.workload(mix, seed=0)
            SHARED_WORKLOAD_CACHE.clear()

            say("single-pool reference campaign ...")
            reference = _run_campaign(
                root / "reference",
                scale.name,
                CampaignSettings(
                    jobs=1, task_timeout=task_timeout, retries=0
                ),
            )
            reference_digest = _results_digest(root / "reference")
            say(
                f"  {reference['tasks']} tasks in "
                f"{reference['wall_seconds']:.2f}s "
                f"(digest {reference_digest[:12]})"
            )

            for shards in range(1, max_shards + 1):
                say(f"sharded campaign, {shards} shard(s) ...")
                with LocalShardSet(shards, root / f"fleet-{shards}") as fleet:
                    run = _run_campaign(
                        root / f"sharded-{shards}",
                        scale.name,
                        CampaignSettings(
                            task_timeout=task_timeout,
                            retries=0,
                            shards=fleet.endpoints,
                        ),
                    )
                run["shards"] = shards
                digest = _results_digest(root / f"sharded-{shards}")
                if digest != reference_digest:
                    raise ServiceBenchError(
                        f"sharded run ({shards} shards) results are NOT "
                        f"byte-identical to the single-pool reference "
                        f"({digest[:12]} vs {reference_digest[:12]})"
                    )
                run["results_digest"] = digest
                runs.append(run)
                say(
                    f"  {run['tasks']} tasks in {run['wall_seconds']:.2f}s "
                    f"({run['tasks_per_s']:.2f} tasks/s, byte-identical)"
                )
        finally:
            if previous_cache is None:
                os.environ.pop(TRACE_CACHE_ENV, None)
            else:
                os.environ[TRACE_CACHE_ENV] = previous_cache

    base = runs[0]
    scaling = []
    for run in runs:
        speedup = (
            base["wall_seconds"] / run["wall_seconds"]
            if run["wall_seconds"] > 0 else 0.0
        )
        scaling.append(
            {
                "shards": run["shards"],
                "wall_seconds": run["wall_seconds"],
                "speedup": speedup,
                "efficiency": speedup / run["shards"],
            }
        )
        say(
            f"shards={run['shards']}: speedup {speedup:.2f}x, "
            f"efficiency {speedup / run['shards']:.2f}"
        )

    floor = _floor_section(scaling, cpu_count)
    if floor["enforced"] and floor["measured_speedup"] < floor["min_speedup"]:
        raise ServiceBenchError(
            f"scaling floor violated: {floor['measured_speedup']:.2f}x at "
            f"{FLOOR_SHARDS} shards, contract requires >= "
            f"{floor['min_speedup']:.1f}x on a {cpu_count}-core host"
        )
    if not floor["enforced"] and floor["degenerate_single_core"]:
        say(
            f"single-core host: {FLOOR_SHARDS}-shard floor recorded as "
            "unenforced (degenerate_single_core)"
        )

    units = base["tasks"]
    cycles_per_unit = scale.epoch_cycles * (
        BENCH_CELL_WARMUP_EPOCHS + BENCH_CELL_EPOCHS
    )
    simulated_cycles = float(units * cycles_per_unit)

    def rate(seconds: float) -> float:
        return simulated_cycles / 1e6 / seconds if seconds > 0 else 0.0

    # Cases shaped like the engine bench's (policy/mix/mcycles_per_s)
    # so compare_benches can gate a fresh run against the committed
    # baseline per fleet size.
    cases = [
        {
            "policy": "service",
            "mix": "single_pool",
            "seconds": reference["wall_seconds"],
            "mcycles_per_s": rate(reference["wall_seconds"]),
        }
    ]
    for run in runs:
        cases.append(
            {
                "policy": "service",
                "mix": f"shards{run['shards']}",
                "seconds": run["wall_seconds"],
                "mcycles_per_s": rate(run["wall_seconds"]),
            }
        )

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "created_unix": time.time(),
        "host": _host_metadata(),
        "scale": scale.name,
        "cases": cases,
        "service": {
            "max_shards": max_shards,
            "reference": dict(reference),
            "runs": runs,
            "scaling": scaling,
            "results_digest": reference_digest,
            "byte_identical": True,
            "floor": floor,
        },
    }


def _floor_section(scaling: List[Dict], cpu_count: int) -> Dict:
    """The floor verdict recorded into (and re-read from) the document."""
    measured = 0.0
    have_floor_point = False
    for row in scaling:
        if row["shards"] == FLOOR_SHARDS:
            measured = row["speedup"]
            have_floor_point = True
    multi_core = cpu_count >= FLOOR_SHARDS
    return {
        "min_speedup": SERVICE_SPEEDUP_FLOOR,
        "at_shards": FLOOR_SHARDS,
        "measured_speedup": measured,
        "cpu_count": cpu_count,
        # A 1-core host cannot run two shards concurrently, so the
        # floor is physically unreachable there; recording it as
        # unenforced-and-stamped beats recording a fake pass.
        "degenerate_single_core": not multi_core,
        "enforced": multi_core and have_floor_point,
    }


def service_floor_errors(document: dict) -> List[str]:
    """Gate a (possibly committed) service document's scaling floor.

    Used by ``repro bench --service --baseline`` and CI: re-checks the
    floor recorded in the document, honouring the
    ``degenerate_single_core`` stamp so a single-core measurement
    neither fails the gate nor silently masquerades as a pass.
    """
    service = document.get("service")
    if not isinstance(service, dict):
        return ["document has no 'service' section to gate"]
    floor = service.get("floor") or {}
    errors: List[str] = []
    if not service.get("byte_identical"):
        errors.append(
            "service document does not attest byte-identical sharded "
            "results"
        )
    if floor.get("degenerate_single_core"):
        return errors  # stamped honest; nothing to enforce
    if not floor.get("enforced"):
        errors.append(
            "floor was not enforced and the document is not stamped "
            "degenerate_single_core"
        )
        return errors
    measured = float(floor.get("measured_speedup", 0.0))
    minimum = float(floor.get("min_speedup", SERVICE_SPEEDUP_FLOOR))
    if measured < minimum:
        errors.append(
            f"scaling floor violated: {measured:.2f}x at "
            f"{floor.get('at_shards', FLOOR_SHARDS)} shards "
            f"(contract >= {minimum:.1f}x)"
        )
    return errors
