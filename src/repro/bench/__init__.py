"""Engine benchmark suite: measure, record and gate simulator speed.

Every paper figure is bounded by simulator throughput, so speed is a
tracked number here, not folklore: :mod:`.runner` times workload
construction, raw trace replay and per-policy simulated-cycles-per-
second over a policy x mix matrix, :mod:`.compare` diffs a run against
a committed baseline with a regression threshold, and :mod:`.golden`
produces the content digests that prove two engine versions compute
*identical* results (the guard that keeps optimizations honest).

The canonical artefacts live in ``benchmarks/results/BENCH_<label>.json``
and are produced by ``python -m repro bench``.
"""

from .compare import (
    STATUS_IMPROVEMENT,
    STATUS_MISSING_BASELINE,
    STATUS_OK,
    STATUS_REGRESSION,
    BackendMismatchError,
    BenchComparison,
    CaseComparison,
    PhaseComparison,
    bench_backend,
    compare_benches,
    load_bench,
)
from .explore import MIN_INSTRUCTION_SPEEDUP, ExploreBenchError, run_explore_bench
from .golden import GOLDEN_MIX, GOLDEN_POLICIES, compute_golden_digests, simulation_digest
from .memo import MemoBenchError, run_memo_bench
from .parallel import run_parallel_bench
from .service import (
    SERVICE_SPEEDUP_FLOOR,
    ServiceBenchError,
    run_service_bench,
    service_floor_errors,
)
from .runner import BENCH_SCHEMA, BenchMatrix, phase_breakdown, run_bench, write_bench

__all__ = [
    "BENCH_SCHEMA",
    "BackendMismatchError",
    "BenchComparison",
    "BenchMatrix",
    "CaseComparison",
    "bench_backend",
    "GOLDEN_MIX",
    "GOLDEN_POLICIES",
    "ExploreBenchError",
    "MemoBenchError",
    "MIN_INSTRUCTION_SPEEDUP",
    "PhaseComparison",
    "STATUS_IMPROVEMENT",
    "STATUS_MISSING_BASELINE",
    "STATUS_OK",
    "STATUS_REGRESSION",
    "SERVICE_SPEEDUP_FLOOR",
    "ServiceBenchError",
    "compare_benches",
    "compute_golden_digests",
    "phase_breakdown",
    "load_bench",
    "run_bench",
    "run_explore_bench",
    "run_memo_bench",
    "run_parallel_bench",
    "run_service_bench",
    "service_floor_errors",
    "simulation_digest",
    "write_bench",
]
