"""Explorer benchmark: measure the analytical fast path's leverage.

The claim behind ``repro explore`` is quantitative: screening the
design space with the closed-form estimator and simulating only the
confirmed survivors must cost **at least 50x fewer simulated
instructions** than exhaustively simulating every point.  This module
runs the full default space (1000+ configurations) end to end, times
the analytical and confirm tiers separately, and records the measured
instruction accounting in ``BENCH_explore.json`` — the committed
artefact the test suite and the ci.sh leg check the floor against.
"""

from __future__ import annotations

import tempfile
import time
from typing import Optional

from ..config import resolve_backend_name
from ..experiments.common import ExperimentScale
from .runner import BENCH_SCHEMA, _host_metadata

#: The measured instruction_speedup must not fall below this.
MIN_INSTRUCTION_SPEEDUP = 50.0


class ExploreBenchError(RuntimeError):
    """The explorer failed to deliver its advertised leverage."""


def run_explore_bench(
    scale: ExperimentScale,
    label: str = "explore",
    space: str = "default",
    confirm: int = 16,
    objective: str = "balanced",
    progress=None,
) -> dict:
    """One full exploration, instrumented; returns the bench document."""
    from ..explore import ExploreSettings, run_explore

    say = progress or (lambda message: None)
    settings = ExploreSettings(space=space, confirm=confirm,
                               objective=objective)
    backend = resolve_backend_name(settings.backend)
    say(f"explore bench: space={space} confirm={confirm} "
        f"objective={objective} backend={backend}")

    with tempfile.TemporaryDirectory(prefix="repro_explore_bench_") as tmp:
        start = time.perf_counter()
        result = run_explore(scale, tmp, settings, progress=say)
        total_seconds = time.perf_counter() - start

    speedup = result.instruction_speedup
    say(
        f"explored {result.n_points} points in {total_seconds:.1f}s: "
        f"{result.n_evaluations} analytical evaluations, "
        f"{len(result.confirmed)} confirmed, {speedup:.0f}x fewer "
        "simulated instructions than exhaustive"
    )
    if speedup < MIN_INSTRUCTION_SPEEDUP:
        raise ExploreBenchError(
            f"instruction speedup {speedup:.1f}x is below the "
            f"{MIN_INSTRUCTION_SPEEDUP:.0f}x floor — the explorer no "
            "longer earns its screening tier"
        )

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "backend": backend,
        "created_unix": time.time(),
        "host": _host_metadata(),
        "scale": scale.name,
        "explore": {
            "space": space,
            "n_points": result.n_points,
            "eta": settings.eta,
            "confirm": settings.confirm,
            "objective": settings.objective,
            "rungs": result.n_rungs,
            "analytical_evaluations": result.n_evaluations,
            "confirmed": len(result.confirmed),
            "frontier": [e.point.key() for e in result.frontier],
            "total_seconds": total_seconds,
            "simulated_instructions": result.simulated_instructions,
            "exhaustive_instructions_est": result.exhaustive_instructions_est,
            "instruction_speedup": speedup,
            "speedup_floor": MIN_INSTRUCTION_SPEEDUP,
        },
    }
