"""Parallel scaling benchmark: ``python -m repro bench --jobs``.

Measures what the campaign harness actually delivers, not what the
engine could: each run drives a full campaign of uniform
``bench_cells`` tasks (one per policy x mix) through the real
scheduler and reports wall-clock speedup, per-worker efficiency and
the warm-pool advantage.

Three questions, three measurements:

* **scaling** — pool-mode campaigns at each requested job count;
  ``speedup`` is wall(jobs=1) / wall(jobs=N) and ``efficiency`` is
  speedup / N.  On a single-core host this is degenerate by
  construction (N=1, efficiency 1.0) — the document records
  ``cpu_count`` so a reader can tell;
* **warm-pool advantage** — the same matrix in ``isolate_tasks`` mode
  (a fresh process per task, the PR 1 model) versus the *warm* tasks
  of the pool run.  A pool worker pays interpreter start-up, imports
  and the workload build once per mix; every later same-mix cell
  reuses them.  The first cell of each mix is the cold one, so it is
  excluded from the warm geomean;
* **cold-start floor** — those excluded first-per-mix durations,
  reported separately.

Caveat on measurement points: pool durations are measured *inside*
the worker (dispatch overhead excluded), isolated durations are
launch-to-exit (interpreter start-up included).  That asymmetry is
the point — process start-up is precisely the cost the pool
amortises — but it means the two duration sets answer "what does one
task cost in this mode", not "how fast is the engine".

All runs share one on-disk trace cache (pre-warmed before timing), so
no run pays trace *generation* and the comparison isolates execution
mode, not cache luck.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..experiments.common import ExperimentScale, geometric_mean
from .runner import BENCH_SCHEMA, _host_metadata


def _parse_jobs_spec(spec: str) -> List[int]:
    """``auto`` -> {1, cpu_count}; else a comma list of counts."""
    if spec.strip() == "auto":
        return sorted({1, max(1, os.cpu_count() or 1)})
    try:
        values = sorted({int(v) for v in spec.split(",") if v.strip()})
    except ValueError:
        raise ValueError(
            f"bad --jobs spec {spec!r}: expected 'auto' or e.g. '1,4,8'"
        ) from None
    if not values or any(v < 1 for v in values):
        raise ValueError(f"bad --jobs spec {spec!r}: counts must be >= 1")
    return values


def _run_campaign_timed(
    scale: ExperimentScale,
    directory: Path,
    jobs: int,
    isolate_tasks: bool,
    task_timeout: float,
) -> Dict:
    from ..harness import CampaignSettings, run_campaign

    settings = CampaignSettings(
        jobs=jobs,
        task_timeout=task_timeout,
        retries=0,
        isolate_tasks=isolate_tasks,
    )
    start = time.perf_counter()
    report = run_campaign(
        directory,
        scale=scale.name,
        experiments=("bench_cells",),
        settings=settings,
    )
    wall = time.perf_counter() - start
    if not report.ok:
        kinds = [f.failures[-1].kind for f in report.failed if f.failures]
        raise RuntimeError(
            f"scaling campaign (jobs={jobs}, "
            f"{'isolated' if isolate_tasks else 'pool'}) did not complete: "
            f"{len(report.failed)} failed {kinds}"
        )
    return {
        "mode": "isolated" if isolate_tasks else "pool",
        "jobs": jobs,
        "tasks": report.completed,
        "wall_seconds": wall,
        "tasks_per_s": report.completed / wall if wall > 0 else 0.0,
        "durations": dict(sorted(report.durations.items())),
    }


def _split_cold_warm(scale: ExperimentScale, durations: Dict[str, float]):
    """Partition pool durations into first-per-mix (cold) and warm."""
    from ..experiments.bench_cells import enumerate_bench_cell_units
    from ..experiments.campaign_tasks import CampaignTask

    cold_ids = set()
    seen_mixes = set()
    for unit in enumerate_bench_cell_units(scale):
        task_id = CampaignTask("bench_cells", unit).task_id
        if unit["mix"] not in seen_mixes:
            seen_mixes.add(unit["mix"])
            cold_ids.add(task_id)
    cold = {t: s for t, s in durations.items() if t in cold_ids}
    warm = {t: s for t, s in durations.items() if t not in cold_ids}
    return cold, warm


def run_parallel_bench(
    scale: ExperimentScale,
    jobs_values: Optional[Sequence[int]] = None,
    label: str = "parallel",
    task_timeout: float = 600.0,
    progress=None,
) -> dict:
    """Run the scaling matrix; return the canonical result document."""
    from ..workloads.cache import TRACE_CACHE_ENV

    say = progress or (lambda message: None)
    jobs_values = sorted(
        set(jobs_values) if jobs_values else {1, max(1, os.cpu_count() or 1)}
    )

    runs: List[Dict] = []
    previous_cache = os.environ.get(TRACE_CACHE_ENV)
    with tempfile.TemporaryDirectory(prefix="repro-parbench-") as tmp:
        root = Path(tmp)
        os.environ[TRACE_CACHE_ENV] = str(root / "trace_cache")
        try:
            # Pre-warm the on-disk trace cache (and size sidecars) so no
            # timed run pays one-off trace generation — then drop the
            # in-process workload cache: under the fork start method
            # every worker would inherit it, handing both modes a
            # pre-built workload and erasing exactly the cost the
            # comparison exists to measure.
            say("pre-warming trace cache ...")
            from ..workloads.cache import SHARED_WORKLOAD_CACHE

            for mix in scale.mixes[:2]:
                scale.workload(mix, seed=0)
            SHARED_WORKLOAD_CACHE.clear()

            for jobs in jobs_values:
                say(f"pool campaign, jobs={jobs} ...")
                run = _run_campaign_timed(
                    scale, root / f"pool-{jobs}", jobs,
                    isolate_tasks=False, task_timeout=task_timeout,
                )
                runs.append(run)
                say(
                    f"  {run['tasks']} tasks in {run['wall_seconds']:.2f}s "
                    f"({run['tasks_per_s']:.2f} tasks/s)"
                )

            say("isolated campaign, jobs=1 ...")
            isolated = _run_campaign_timed(
                scale, root / "isolated-1", 1,
                isolate_tasks=True, task_timeout=task_timeout,
            )
            runs.append(isolated)
            say(
                f"  {isolated['tasks']} tasks in "
                f"{isolated['wall_seconds']:.2f}s"
            )
        finally:
            if previous_cache is None:
                os.environ.pop(TRACE_CACHE_ENV, None)
            else:
                os.environ[TRACE_CACHE_ENV] = previous_cache

    pool_runs = [r for r in runs if r["mode"] == "pool"]
    base = pool_runs[0]
    scaling = []
    for run in pool_runs:
        speedup = (
            base["wall_seconds"] / run["wall_seconds"]
            if run["wall_seconds"] > 0 else 0.0
        )
        scaling.append(
            {
                "jobs": run["jobs"],
                "wall_seconds": run["wall_seconds"],
                "speedup": speedup,
                "efficiency": speedup / run["jobs"],
            }
        )
        say(
            f"jobs={run['jobs']}: speedup {speedup:.2f}x, "
            f"efficiency {speedup / run['jobs']:.2f}"
        )

    # Warm-pool advantage: isolated vs warm pool tasks, matched by id.
    cold, warm = _split_cold_warm(scale, base["durations"])
    ratios = [
        isolated["durations"][task_id] / seconds
        for task_id, seconds in warm.items()
        if task_id in isolated["durations"] and seconds > 0
    ]
    warm_advantage = geometric_mean(ratios)
    say(
        f"warm-pool advantage: {warm_advantage:.2f}x over "
        f"{len(ratios)} warm tasks (cold floor "
        f"{geometric_mean(cold.values()):.2f}s/task)"
    )

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "created_unix": time.time(),
        "host": _host_metadata(),
        "scale": scale.name,
        "runs": runs,
        "scaling": scaling,
        "warm_pool": {
            "advantage_geomean": warm_advantage,
            "warm_tasks": len(ratios),
            "cold_tasks": len(cold),
            "pool_warm_geomean_s": geometric_mean(warm.values()),
            "pool_cold_geomean_s": geometric_mean(cold.values()),
            "isolated_geomean_s": geometric_mean(
                isolated["durations"].values()
            ),
        },
    }
