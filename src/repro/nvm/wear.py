"""Write-wear accounting and intra-frame wear leveling (Sec. II-A, III-B).

During a simulation phase the cache charges every NVM write to a
:class:`WearTracker` — ``ECB size`` bytes for compressed writes, the
whole frame for uncompressed ones.  The block-rearrangement circuitry
plus the slowly-advancing global counter (as in [24]) spread those
byte-writes uniformly over the live bytes of the frame, so the
forecaster can reason about per-frame byte-write totals instead of
per-byte positions; :class:`GlobalWearCounter` models the counter
itself for the functional rearrangement path.
"""

from __future__ import annotations

import numpy as np

from ..metrics.registry import register_metric

# Collected from the LLC's WearTracker at record-building time; the
# per-write accumulation path stays plain nested-list arithmetic.
register_metric("nvm", "bytes_written", "bytes",
                "Total bytes charged to NVM frames over the phase",
                attr="total_bytes_written")
register_metric("nvm", "writes", "count",
                "Total NVM frame writes over the phase",
                attr="total_writes")


class WearTracker:
    """Per-frame byte-write accumulators for one simulation phase.

    Accumulation happens on every NVM frame write, so the counters live
    in plain nested lists (scalar ``+=`` into a numpy array boxes a new
    scalar per write); the analysis-side ``bytes_written`` / ``writes``
    arrays are materialised on demand.
    """

    def __init__(self, n_sets: int, nvm_ways: int) -> None:
        self.n_sets = n_sets
        self.nvm_ways = nvm_ways
        self._bytes_rows = [[0] * nvm_ways for _ in range(n_sets)]
        self._writes_rows = [[0] * nvm_ways for _ in range(n_sets)]

    def record_write(self, set_index: int, nvm_way: int, n_bytes: int) -> None:
        """Charge one NVM frame write of ``n_bytes`` bytes."""
        self._bytes_rows[set_index][nvm_way] += n_bytes
        self._writes_rows[set_index][nvm_way] += 1

    @property
    def bytes_written(self) -> np.ndarray:
        """Per-frame byte-write totals (built on demand, read-only use)."""
        return np.array(self._bytes_rows, dtype=np.float64).reshape(
            self.n_sets, self.nvm_ways
        )

    @property
    def writes(self) -> np.ndarray:
        """Per-frame write counts (built on demand, read-only use)."""
        return np.array(self._writes_rows, dtype=np.int64).reshape(
            self.n_sets, self.nvm_ways
        )

    def total_bytes_written(self) -> float:
        return float(sum(sum(row) for row in self._bytes_rows))

    def total_writes(self) -> int:
        return sum(sum(row) for row in self._writes_rows)

    def reset(self) -> None:
        for row in self._bytes_rows:
            for i in range(len(row)):
                row[i] = 0
        for row in self._writes_rows:
            for i in range(len(row)):
                row[i] = 0

    def rates(self, elapsed_seconds: float) -> np.ndarray:
        """Per-frame byte-write rates (bytes/s) over the phase."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return self.bytes_written / elapsed_seconds


class GlobalWearCounter:
    """The global rotation counter shared by all sets (Sec. III-B1).

    The counter indicates the live-byte position at which the next
    write starts; it advances after long periods (hours/days) so that
    the written region shifts over the frame.  ``advance_period_writes``
    expresses the period in writes for simulation purposes.
    """

    def __init__(self, block_size: int = 64, advance_period_writes: int = 1 << 20) -> None:
        if advance_period_writes <= 0:
            raise ValueError("advance period must be positive")
        self.block_size = block_size
        self.advance_period_writes = advance_period_writes
        self._writes_seen = 0
        self.value = 0

    def tick(self, n_writes: int = 1) -> None:
        """Account writes; rotate the counter when the period elapses."""
        self._writes_seen += n_writes
        steps, self._writes_seen = divmod(self._writes_seen, self.advance_period_writes)
        if steps:
            self.value = (self.value + steps) % self.block_size

    def start_position(self) -> int:
        return self.value
