"""Pluggable intra-frame wear-leveling strategies (Sec. II-A, III-B1).

The paper's design rotates the byte at which each write starts using a
single global counter that advances every few hours ([24]); but it
stresses that "our proposal is independent of the wear-leveling
mechanism used ... any other mechanism could be used".  This module
makes that claim executable: a :class:`WearLevelingStrategy` chooses
the rotation start for every frame write, and
:func:`simulate_frame_wear` measures the per-byte write distribution a
strategy produces on a stream of compressed-block writes — the
quantity that decides how evenly endurance is consumed.

Strategies
----------
* :class:`GlobalCounterLeveling` — the paper's mechanism: one counter
  shared by all sets, advanced every ``period`` writes (hours/days in
  real time).
* :class:`PerFrameRotation` — a per-frame counter advancing with every
  write to that frame (more metadata, finest leveling).
* :class:`HashedStart` — start position derived from a hash of the
  write index (no counters, statistically uniform).
* :class:`NoLeveling` — always start at byte 0 (the pathological
  baseline: the low bytes of every frame wear out first).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Optional

import numpy as np

from .rearrangement import scatter
from .wear import GlobalWearCounter


class WearLevelingStrategy(abc.ABC):
    """Chooses the rotation start position for each frame write."""

    name: str = "abstract"

    @abc.abstractmethod
    def start_position(self, frame_id: int, write_index: int, block_size: int) -> int:
        """Start byte for the ``write_index``-th write to ``frame_id``."""


class GlobalCounterLeveling(WearLevelingStrategy):
    """The paper's global counter, shared across all frames ([24])."""

    name = "global_counter"

    def __init__(self, period_writes: int = 64, block_size: int = 64) -> None:
        self._counter = GlobalWearCounter(
            block_size=block_size, advance_period_writes=period_writes
        )

    def start_position(self, frame_id: int, write_index: int, block_size: int) -> int:
        position = self._counter.start_position()
        self._counter.tick()
        return position


class PerFrameRotation(WearLevelingStrategy):
    """A private counter per frame, advanced on every write."""

    name = "per_frame"

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}

    def start_position(self, frame_id: int, write_index: int, block_size: int) -> int:
        position = self._counters.get(frame_id, 0)
        self._counters[frame_id] = (position + 1) % block_size
        return position


class HashedStart(WearLevelingStrategy):
    """Counter-free: a multiplicative hash of (frame, write index)."""

    name = "hashed"

    def __init__(self, seed: int = 0x9E3779B1) -> None:
        self.seed = seed

    def start_position(self, frame_id: int, write_index: int, block_size: int) -> int:
        h = (frame_id * 0x85EBCA77 + write_index * self.seed) & 0xFFFFFFFF
        h ^= h >> 13
        return h % block_size


class NoLeveling(WearLevelingStrategy):
    """Every write starts at byte 0 — the worst case for endurance."""

    name = "none"

    def start_position(self, frame_id: int, write_index: int, block_size: int) -> int:
        return 0


def simulate_frame_wear(
    strategy: WearLevelingStrategy,
    ecb_sizes: Iterable[int],
    live_mask: Optional[np.ndarray] = None,
    frame_id: int = 0,
    block_size: int = 64,
) -> np.ndarray:
    """Per-byte write counts for one frame under a strategy.

    Drives the actual rearrangement circuitry (:func:`scatter`) for
    every write, so faulty bytes are skipped exactly as in hardware.
    """
    if live_mask is None:
        live_mask = np.ones(block_size, dtype=bool)
    counts = np.zeros(block_size, dtype=np.int64)
    for write_index, size in enumerate(ecb_sizes):
        start = strategy.start_position(frame_id, write_index, block_size)
        _recb, write_mask = scatter(bytes(size), live_mask, start)
        counts += write_mask
    return counts


def wear_imbalance(counts: np.ndarray, live_mask: Optional[np.ndarray] = None) -> float:
    """Max/mean write-count ratio over live bytes (1.0 = perfectly even).

    This is the factor by which the most-written byte ages faster than
    the average — directly proportional to lost lifetime, since the
    frame's capacity follows its most-worn bytes.
    """
    if live_mask is not None:
        counts = counts[live_mask]
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)
