"""Functional model of the block-rearrangement circuitry (Sec. III-B, Fig. 5).

The circuitry scatters an extended compressed block (ECB) over the
non-faulty bytes of a target frame, starting at the position named by
the global wear-leveling counter, producing the rearranged ECB (RECB)
plus a selective write mask; reading inverts the permutation.  The
hardware computes an index vector with a parallel tree adder and routes
bytes through a crossbar; here both reduce to the same permutation,
computed directly.

The hot simulation path never calls this module (wear accounting only
needs byte *counts*); it exists to validate the mechanism, to serve the
examples, and to let tests check the scatter/gather inverse property.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

DONT_CARE = -1


def index_vector(live_mask: np.ndarray, start: int, ecb_size: int) -> np.ndarray:
    """Index vector I of Fig. 5c.

    ``I[pos] = k`` means ECB byte ``k`` is stored at frame byte ``pos``;
    positions that receive no ECB byte (faulty, or beyond the ECB) hold
    :data:`DONT_CARE`.  Frame positions are visited in rotation order
    beginning at ``start`` (the wear-leveling counter), skipping faulty
    bytes, exactly as the index-generator tree adder does.
    """
    block_size = len(live_mask)
    live_count = int(np.count_nonzero(live_mask))
    if ecb_size > live_count:
        raise ValueError(
            f"ECB of {ecb_size} bytes cannot fit frame with {live_count} live bytes"
        )
    if not 0 <= start < block_size:
        raise ValueError(f"counter {start} out of range")
    indices = np.full(block_size, DONT_CARE, dtype=np.int16)
    k = 0
    for step in range(block_size):
        if k >= ecb_size:
            break
        pos = (start + step) % block_size
        if live_mask[pos]:
            indices[pos] = k
            k += 1
    return indices


def scatter(
    ecb: bytes, live_mask: np.ndarray, start: int
) -> Tuple[bytearray, np.ndarray]:
    """Write path (Fig. 5c): ECB -> (RECB, write mask).

    Returns the sparse 64-byte RECB (don't-care bytes zeroed) and the
    boolean write mask used for selective writing — the mask is what
    the wear model charges.
    """
    indices = index_vector(live_mask, start, len(ecb))
    block_size = len(live_mask)
    recb = bytearray(block_size)
    write_mask = np.zeros(block_size, dtype=bool)
    for pos in range(block_size):
        k = indices[pos]
        if k != DONT_CARE:
            recb[pos] = ecb[k]
            write_mask[pos] = True
    return recb, write_mask


def gather(recb: bytes, live_mask: np.ndarray, start: int, ecb_size: int) -> bytes:
    """Read path (Fig. 5d): RECB -> ECB, inverting :func:`scatter`."""
    indices = index_vector(live_mask, start, ecb_size)
    out = bytearray(ecb_size)
    for pos in range(len(live_mask)):
        k = indices[pos]
        if k != DONT_CARE:
            out[k] = recb[pos]
    return bytes(out)
