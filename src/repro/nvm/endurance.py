"""NVM bitcell endurance model (Sec. II-A).

Write endurance of NVM bitcells is approximated by a normal
distribution with mean 10^n (10^10 in Table IV) and a coefficient of
variation reflecting manufacturing variability (0.2-0.3).  We sample
one endurance value per *byte*: byte-disabling retires a byte when its
weakest bitcell fails, so the byte-level endurance is the minimum over
its eight bitcells; that minimum is again well approximated by a
normal with a slightly smaller mean, which the configured mean/cv
absorbs (the paper makes the same byte-level approximation).
"""

from __future__ import annotations

import numpy as np

from ..config import EnduranceConfig


def sample_byte_endurance(
    config: EnduranceConfig,
    n_frames: int,
    block_size: int = 64,
    *,
    sort: bool = True,
    seed_offset: int = 0,
) -> np.ndarray:
    """Per-byte endurance (writes-to-failure) for ``n_frames`` frames.

    Returns an array of shape ``(n_frames, block_size)``; with
    ``sort=True`` each frame's bytes are sorted ascending, which is the
    canonical form the aging model consumes (under intra-frame wear
    leveling all live bytes of a frame accumulate identical wear, so
    only the order statistics of endurance matter, not byte positions).
    """
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    rng = np.random.default_rng(config.seed + seed_offset)
    draws = rng.normal(config.mean, config.sigma, size=(n_frames, block_size))
    np.clip(draws, config.min_fraction * config.mean, None, out=draws)
    if sort:
        draws.sort(axis=1)
    return draws


def frame_endurance(byte_endurance: np.ndarray) -> np.ndarray:
    """Endurance of whole frames under frame-disabling.

    A frame-disabled cache retires the entire frame at its first hard
    fault, i.e. when the weakest byte fails; every (uncompressed) write
    wears all bytes equally, so the frame endurance is the per-frame
    minimum byte endurance.
    """
    return byte_endurance.min(axis=1)


def expected_min_endurance(config: EnduranceConfig, block_size: int = 64) -> float:
    """Analytic estimate of E[min of ``block_size`` draws].

    Useful for sanity checks and for sizing forecast steps: with the
    Blom approximation the expected minimum of n normal draws is
    ``mean - sigma * Phi^-1((n - 0.375) / (n + 0.25))``.
    """
    from scipy.stats import norm  # local import: scipy optional elsewhere

    n = block_size
    q = (n - 0.375) / (n + 0.25)
    return float(config.mean - config.sigma * norm.ppf(q))
