"""Byte-level fault map for the NVM part of the hybrid LLC (Sec. III-B).

Each NVM frame carries a fault-map entry recording which of its bytes
are hard-faulty.  The cache controller only needs the *effective
capacity* (count of live bytes) to run fit-LRU replacement, so the hot
path exposes a dense integer capacity array; the full per-byte mask is
materialised lazily for the rearrangement circuitry and for tests.

Two disabling granularities are supported (Table III):

* ``byte`` — a faulty byte is retired, the rest of the frame remains
  usable for compressed blocks (BH_CP, CP_SD*).
* ``frame`` — the first fault disables the whole frame (BH, LHybrid,
  TAP, following [7], [46]).

Hot-path note: the authoritative storage is the numpy ``capacities``
array (bulk aging updates, vectorised queries), but scalar indexing
into a numpy array boxes a fresh ``np.int16`` per call — measurably
slow at one lookup per LLC insertion attempt.  ``rows`` mirrors the
array as a plain list of per-set lists of Python ints and is kept in
sync by every mutator; the LLC replacement loop reads only ``rows``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

GRANULARITIES = ("byte", "frame")


class FaultMap:
    """Fault state of every NVM frame in the LLC.

    Frames are addressed by ``(set_index, nvm_way)`` where ``nvm_way``
    counts from 0 within the NVM part.  ``capacities[s, w]`` is the
    number of live bytes of that frame (0..block_size); a frame-
    disabled map only ever holds ``block_size`` or 0.
    """

    def __init__(
        self,
        n_sets: int,
        nvm_ways: int,
        block_size: int = 64,
        granularity: str = "byte",
    ) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(f"granularity must be one of {GRANULARITIES}")
        if n_sets <= 0 or nvm_ways < 0:
            raise ValueError("bad fault-map geometry")
        self.n_sets = n_sets
        self.nvm_ways = nvm_ways
        self.block_size = block_size
        self.granularity = granularity
        self.capacities = np.full((n_sets, nvm_ways), block_size, dtype=np.int16)
        self.rows: List[List[int]] = [
            [block_size] * nvm_ways for _ in range(n_sets)
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def capacity(self, set_index: int, nvm_way: int) -> int:
        """Live bytes of one frame."""
        return int(self.capacities[set_index, nvm_way])

    def set_capacities(self, set_index: int) -> np.ndarray:
        """Capacities of all NVM frames of one set (read-only view)."""
        return self.capacities[set_index]

    def is_frame_dead(self, set_index: int, nvm_way: int, min_bytes: int = 1) -> bool:
        return self.capacity(set_index, nvm_way) < min_bytes

    @property
    def total_bytes(self) -> int:
        return self.n_sets * self.nvm_ways * self.block_size

    def alive_bytes(self) -> int:
        return int(self.capacities.sum())

    def effective_capacity_fraction(self) -> float:
        """Fraction of the original NVM byte capacity still usable.

        This is the paper's "effective capacity" axis: the forecast
        runs until it drops to 0.5 (Sec. V-A).
        """
        if self.total_bytes == 0:
            return 0.0
        return self.alive_bytes() / self.total_bytes

    def dead_frame_fraction(self) -> float:
        if self.capacities.size == 0:
            return 0.0
        return float((self.capacities == 0).mean())

    # ------------------------------------------------------------------
    # mutation (driven by the aging model / fault injection)
    # ------------------------------------------------------------------
    def set_capacity(self, set_index: int, nvm_way: int, capacity: int) -> None:
        if not 0 <= capacity <= self.block_size:
            raise ValueError(f"capacity {capacity} out of range")
        if self.granularity == "frame" and 0 < capacity < self.block_size:
            capacity = 0  # any fault kills a frame-disabled frame
        self.capacities[set_index, nvm_way] = capacity
        self.rows[set_index][nvm_way] = capacity

    def kill_bytes(self, set_index: int, nvm_way: int, n_bytes: int = 1) -> int:
        """Retire ``n_bytes`` of a frame; returns the new capacity."""
        cap = self.capacity(set_index, nvm_way)
        new_cap = max(0, cap - n_bytes)
        self.set_capacity(set_index, nvm_way, new_cap)
        return self.capacity(set_index, nvm_way)

    def disable_frame(self, set_index: int, nvm_way: int) -> None:
        self.capacities[set_index, nvm_way] = 0
        self.rows[set_index][nvm_way] = 0

    def load_capacities(self, capacities: np.ndarray) -> None:
        """Bulk-update from the aging model (one forecast step)."""
        if capacities.shape != self.capacities.shape:
            raise ValueError(
                f"shape {capacities.shape} != {self.capacities.shape}"
            )
        if self.granularity == "frame":
            capacities = np.where(capacities >= self.block_size, self.block_size, 0)
        np.copyto(self.capacities, capacities.astype(np.int16))
        self.rows = self.capacities.tolist()

    # ------------------------------------------------------------------
    # per-byte view (rearrangement circuitry, tests)
    # ------------------------------------------------------------------
    def byte_mask(
        self, set_index: int, nvm_way: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """A concrete per-byte liveness mask consistent with capacity.

        The aging model only tracks capacities (wear leveling makes
        byte identity irrelevant); when a caller needs actual byte
        positions — e.g. to exercise the rearrangement crossbar — dead
        bytes are assigned pseudo-randomly but deterministically per
        frame unless an ``rng`` is supplied.
        """
        cap = self.capacity(set_index, nvm_way)
        mask = np.ones(self.block_size, dtype=bool)
        n_dead = self.block_size - cap
        if n_dead == 0:
            return mask
        if rng is None:
            seed = (set_index * 0x9E3779B1 + nvm_way * 0x85EBCA77) & 0xFFFFFFFF
            rng = np.random.default_rng(seed)
        dead = rng.choice(self.block_size, size=n_dead, replace=False)
        mask[dead] = False
        return mask

    def iter_frames(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(set_index, nvm_way, capacity)`` for every frame."""
        for s in range(self.n_sets):
            for w in range(self.nvm_ways):
                yield s, w, int(self.capacities[s, w])

    def clone(self) -> "FaultMap":
        other = FaultMap(self.n_sets, self.nvm_ways, self.block_size, self.granularity)
        np.copyto(other.capacities, self.capacities)
        other.rows = self.capacities.tolist()
        return other
