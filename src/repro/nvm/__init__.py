"""NVM fault-tolerance substrate: endurance, fault maps, wear, SECDED."""

from .endurance import frame_endurance, sample_byte_endurance
from .faultmap import FaultMap
from .leveling import (
    GlobalCounterLeveling,
    HashedStart,
    NoLeveling,
    PerFrameRotation,
    WearLevelingStrategy,
    simulate_frame_wear,
    wear_imbalance,
)
from .rearrangement import DONT_CARE, gather, index_vector, scatter
from .secded import NVM_DATA_CODE, DecodeResult, SECDED
from .wear import GlobalWearCounter, WearTracker

__all__ = [
    "DONT_CARE",
    "DecodeResult",
    "FaultMap",
    "GlobalCounterLeveling",
    "GlobalWearCounter",
    "HashedStart",
    "NoLeveling",
    "PerFrameRotation",
    "WearLevelingStrategy",
    "simulate_frame_wear",
    "wear_imbalance",
    "NVM_DATA_CODE",
    "SECDED",
    "WearTracker",
    "frame_endurance",
    "gather",
    "index_vector",
    "sample_byte_endurance",
    "scatter",
]
