"""Hamming SECDED codec (Sec. III-B).

All arrays in the design are protected by single-error-correct /
double-error-detect Hamming codes; the NVM data array uses code
(527, 516): 516 data bits (512-bit block vector + 4-bit CE), 10 Hamming
check bits and one overall parity bit.  This is a generic extended-
Hamming implementation over Python integers; the data word is treated
as a little-endian bit vector.

The simulator charges no latency for SECDED (all competing schemes need
it equally, Sec. III-B3); the codec exists so that the fault-tolerance
story is executable and testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: Optional[int]
    corrected_bit: Optional[int]  # codeword bit position fixed, if any
    double_error: bool

    @property
    def ok(self) -> bool:
        return not self.double_error


class SECDED:
    """Extended Hamming SECDED code for ``data_bits``-bit words."""

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.check_bits = r
        #: total codeword bits, including the overall parity bit
        self.codeword_bits = data_bits + r + 1
        # Positions 1..m in classic Hamming numbering; powers of two are
        # check bits, the rest carry data.  Position 0 (added at the
        # end) is the overall parity.
        self._data_positions = [
            p for p in range(1, data_bits + r + 1) if p & (p - 1)
        ]
        assert len(self._data_positions) == data_bits

    # ------------------------------------------------------------------
    def encode(self, data: int) -> int:
        """Encode ``data`` into a codeword integer.

        Codeword bit layout: bit 0 = overall parity, bits 1..m = classic
        Hamming positions.
        """
        if data < 0 or data >= (1 << self.data_bits):
            raise ValueError("data out of range")
        word = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << pos
        for j in range(self.check_bits):
            check_pos = 1 << j
            parity = 0
            for pos in self._data_positions:
                if pos & check_pos and (word >> pos) & 1:
                    parity ^= 1
            if parity:
                word |= 1 << check_pos
        if _parity(word >> 1):
            word |= 1
        return word

    # ------------------------------------------------------------------
    def _syndrome(self, word: int) -> int:
        syndrome = 0
        for j in range(self.check_bits):
            check_pos = 1 << j
            parity = 0
            for pos in range(1, self.data_bits + self.check_bits + 1):
                if pos & check_pos and (word >> pos) & 1:
                    parity ^= 1
            if parity:
                syndrome |= check_pos
        return syndrome

    def _extract(self, word: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (word >> pos) & 1:
                data |= 1 << i
        return data

    def decode(self, word: int) -> DecodeResult:
        """Decode, correcting a single-bit error, flagging double errors."""
        syndrome = self._syndrome(word)
        overall = _parity(word)  # includes the parity bit itself
        if syndrome == 0 and overall == 0:
            return DecodeResult(self._extract(word), None, False)
        if overall == 1:
            # odd number of flipped bits: single-bit error, correctable
            if syndrome == 0:
                # the overall parity bit itself flipped
                return DecodeResult(self._extract(word), 0, False)
            if syndrome > self.data_bits + self.check_bits:
                return DecodeResult(None, None, True)
            corrected = word ^ (1 << syndrome)
            return DecodeResult(self._extract(corrected), syndrome, False)
        # even number of errors with non-zero syndrome: uncorrectable
        return DecodeResult(None, None, True)


#: The paper's NVM data-array code: 512-bit block + 4-bit CE = 516 data bits.
NVM_DATA_CODE = SECDED(516)
