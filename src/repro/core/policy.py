"""Insertion-policy interface for the hybrid LLC (Sec. IV, Table III).

A policy controls four things during an LLC fill:

* ``placement`` — the ordered list of parts (SRAM / NVM / GLOBAL) to
  try for the incoming block;
* ``choose_victim`` — victim selection within a part (LRU by default,
  fit-LRU on the byte-disabled NVM part, LHybrid's loop-block-first
  rule in SRAM);
* ``handle_sram_eviction`` — whether an SRAM victim is migrated to the
  NVM part instead of being dropped (CA_RWR read-reused blocks,
  LHybrid loop-blocks);
* hit/write/epoch hooks — used by Set Dueling to tune ``CP_th``.

Policies also declare their Table III taxonomy: disabling granularity,
whether they compress, and whether they are NVM-aware.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, NamedTuple, Optional, Tuple

from ..cache.block import ReuseClass
from ..cache.cacheset import NVM, SRAM, CacheSet

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.llc import EvictedBlock, HybridLLC

#: Pseudo-part used by the NVM-unaware baselines: one LRU list over all
#: ways of the set, regardless of technology.
GLOBAL = 2


class FillContext(NamedTuple):
    """Everything a policy may inspect when placing an incoming block.

    A NamedTuple rather than a frozen dataclass: one is built per LLC
    fill, and frozen-dataclass construction (object.__setattr__ per
    field) is an order of magnitude slower than tuple construction.
    """

    addr: int
    dirty: bool
    csize: int          # compressed size (CP_th compares against this)
    ecb: int            # bytes written to an NVM frame if stored there
    reuse: ReuseClass
    set_index: int


class InsertionPolicy(abc.ABC):
    """Base class for all insertion policies."""

    name: str = "abstract"
    #: Table III taxonomy
    granularity: str = "byte"      # "byte" or "frame"
    compressed: bool = True
    nvm_aware: bool = True
    #: If a policy's ``placement`` returns the same tuple for every
    #: fill, it can declare that tuple here and the LLC skips the
    #: placement call on its fill fast path.  ``placement`` must still
    #: be implemented (and agree) — it stays the canonical interface.
    static_placement: Optional[Tuple[int, ...]] = None

    def __init__(self) -> None:
        self.llc: Optional["HybridLLC"] = None

    # ------------------------------------------------------------------
    def bind(self, llc: "HybridLLC") -> None:
        """Called once by the LLC constructor."""
        self.llc = llc

    @abc.abstractmethod
    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        """Ordered parts to try for this fill (earlier preferred)."""

    # ------------------------------------------------------------------
    def choose_victim(
        self, cache_set: CacheSet, part: int, ctx: FillContext
    ) -> Optional[int]:
        """Victim way within ``part`` able to hold the incoming block.

        (Fit-)LRU as a direct walk of the linked recency order: this
        runs once per replacement, and the generic helpers' per-way
        ``capacity_of`` callbacks dominated the NVM-unaware baselines'
        runtime.
        """
        assert self.llc is not None
        sram_ways = cache_set.sram_ways
        nxt = cache_set.rec_next
        sentinel = cache_set.total_ways
        way = nxt[sentinel]
        if part == SRAM:
            while way != sentinel:       # LRU-first order
                if way < sram_ways:
                    return way
                way = nxt[way]
            return None
        ecb = ctx.ecb
        row = self.llc.faultmap.rows[cache_set.index]
        if part == GLOBAL:
            block_size = self.llc.block_size
            while way != sentinel:
                cap = block_size if way < sram_ways else row[way - sram_ways]
                if cap >= ecb:
                    return way
                way = nxt[way]
            return None
        while way != sentinel:           # NVM part: fit-LRU
            if way >= sram_ways and row[way - sram_ways] >= ecb:
                return way
            way = nxt[way]
        return None

    def handle_sram_eviction(
        self, cache_set: CacheSet, victim: "EvictedBlock"
    ) -> bool:
        """Return True if the SRAM victim was migrated (consumed)."""
        return False

    # ------------------------------------------------------------------
    # runtime feedback hooks (Set Dueling)
    # ------------------------------------------------------------------
    def on_hit(self, cache_set: CacheSet, way: int, is_getx: bool) -> None:
        """Called on every LLC hit, before any invalidate-on-hit."""

    def on_nvm_write(self, set_index: int, n_bytes: int) -> None:
        """Called whenever a frame of the NVM part is written."""

    def end_epoch(self) -> None:
        """Called by the engine at each epoch boundary (Sec. IV-C)."""

    def cpth_for_set(self, set_index: int) -> Optional[int]:
        """Current compression threshold for a set, if the policy has one."""
        return None

    def current_cpth(self) -> Optional[int]:
        """The threshold follower sets currently use, if any."""
        return None

    # ------------------------------------------------------------------
    def taxonomy(self) -> Dict[str, str]:
        """Table III row for this policy."""
        return {
            "name": self.name,
            "disabling": self.granularity,
            "compression": "yes" if self.compressed else "no",
            "nvm_aware": "yes" if self.nvm_aware else "no",
        }


PolicyFactory = Callable[..., InsertionPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Class decorator adding a policy to the global registry."""

    def deco(factory: PolicyFactory) -> PolicyFactory:
        if name in _REGISTRY:
            raise ValueError(f"duplicate policy name {name!r}")
        _REGISTRY[name] = factory
        return factory

    return deco


def make_policy(name: str, **kwargs) -> InsertionPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_policies() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
