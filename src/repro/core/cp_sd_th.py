"""CP_SD_Th — Set Dueling tuned for performance *and* lifetime (Sec. IV-D).

Same machinery as CP_SD, but the epoch election applies the rule-based
trade-off of Eq. (1): starting from the max-hits candidate ``i``, the
smallest ``CP_th = j`` is adopted whose leader sets kept more than
``(1 - Th/100)`` of the hits while cutting NVM bytes written by more
than ``Tw`` percent.  ``Th`` is the knob the paper sweeps
(CP_SD_Th4 / CP_SD_Th8 trade 1.1 % / 1.9 % performance for 28 % / 44 %
extra lifetime); ``Tw = 5 %`` throughout, to which results are shown
to be insensitive.
"""

from __future__ import annotations

from typing import Optional

from ..config import SetDuelingConfig
from .cp_sd import CPSDPolicy
from .policy import register_policy
from .set_dueling import HitWriteTradeoffRule


@register_policy("cp_sd_th")
class CPSDThPolicy(CPSDPolicy):
    """CP_SD with the Eq. (1) hit/write trade-off election."""

    name = "cp_sd_th"

    def __init__(
        self,
        th: float = 4.0,
        tw: float = 5.0,
        dueling: Optional[SetDuelingConfig] = None,
    ) -> None:
        base = dueling if dueling is not None else SetDuelingConfig()
        base = base.with_th(th, tw)
        super().__init__(dueling=base, rule=HitWriteTradeoffRule(th, tw))
        self.th = th
        self.tw = tw
        self.name = f"cp_sd_th{th:g}"
