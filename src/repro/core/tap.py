"""TAP — thrashing-aware placement [32] in a fault-aware setting.

TAP routes only *clean thrashing blocks* — blocks whose LLC hit count
exceeded a threshold — to the NVM part; everything else (demand
writes, dirty data, blocks without repeated reuse) stays in SRAM.
Because a block must prove reuse more than once (unlike LHybrid's
loop-block, which qualifies on the first clean hit), TAP inserts even
more conservatively: longest lifetime, lowest performance of the
NVM-aware policies (Fig. 1).

Thrashing detection uses a persistent saturating per-block hit counter
(the tag must survive evictions, or no block could ever accumulate
enough reuse to qualify).  Frame-disabling, uncompressed storage, as
in the paper's fault-aware adaptation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cache.cacheset import NVM, SRAM, CacheSet
from .policy import FillContext, InsertionPolicy, register_policy

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)

_COUNTER_MAX = 15


@register_policy("tap")
class TAPPolicy(InsertionPolicy):
    """Clean-thrashing-block insertion with frame-disabling."""

    name = "tap"
    granularity = "frame"
    compressed = False
    nvm_aware = True

    def __init__(
        self,
        hit_threshold: int = 1,
        table_capacity: int = 1 << 20,
        decay_epochs: int = 6,
    ) -> None:
        super().__init__()
        if hit_threshold < 1:
            raise ValueError("hit_threshold must be >= 1")
        if decay_epochs < 1:
            raise ValueError("decay_epochs must be >= 1")
        self.hit_threshold = hit_threshold
        self.table_capacity = table_capacity
        self.decay_epochs = decay_epochs
        self._epochs_since_decay = 0
        self._hit_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def on_hit(self, cache_set: CacheSet, way: int, is_getx: bool) -> None:
        addr = cache_set.tags[way]
        if addr is None:
            return
        count = self._hit_counts.get(addr, 0)
        if count < _COUNTER_MAX:
            if len(self._hit_counts) >= self.table_capacity and addr not in self._hit_counts:
                self._hit_counts.clear()  # cheap wholesale aging
            self._hit_counts[addr] = count + 1

    def is_thrashing(self, addr: int) -> bool:
        return self._hit_counts.get(addr, 0) > self.hit_threshold

    def end_epoch(self) -> None:
        """Age the thrashing detector.

        Halving the counters every ``decay_epochs`` epochs keeps
        genuinely hot blocks (hit repeatedly across program phases)
        qualified while blocks with sporadic reuse — e.g. long scans
        that sneak one SRAM hit now and then — never stay above the
        threshold.  Without decay the persistent table slowly declares
        everything thrashing; with too-fast decay nothing ever
        qualifies.
        """
        self._epochs_since_decay += 1
        if self._epochs_since_decay < self.decay_epochs:
            return
        self._epochs_since_decay = 0
        decayed = {addr: c >> 1 for addr, c in self._hit_counts.items() if c >> 1}
        self._hit_counts = decayed

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        if not ctx.dirty and self._hit_counts.get(ctx.addr, 0) > self.hit_threshold:
            return _NVM_FIRST
        return _SRAM_ONLY
