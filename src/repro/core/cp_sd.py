"""CP_SD — compression-aware insertion with Set Dueling (Sec. IV-C).

CP_SD is CA_RWR whose compression threshold is chosen at runtime: each
candidate ``CP_th`` in {30..64} is fixed on its own group of leader
sets, and all follower sets adopt whichever candidate scored the most
LLC hits in the previous 2M-cycle epoch.  This adapts to both workload
phase changes and the shrinking effective capacity of an aging NVM
part (Fig. 8 shows the optimum drifting to smaller thresholds as
capacity decays).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.block import ReuseClass
from ..cache.cacheset import NVM, SRAM, CacheSet
from ..config import SetDuelingConfig
from .ca_rwr import CARWRPolicy
from .policy import FillContext, register_policy
from .set_dueling import DuelingController, ElectionRule, MaxHitsRule

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)


@register_policy("cp_sd")
class CPSDPolicy(CARWRPolicy):
    """CA_RWR + Set Dueling on CP_th (performance-optimised)."""

    name = "cp_sd"

    def __init__(
        self,
        dueling: Optional[SetDuelingConfig] = None,
        rule: Optional[ElectionRule] = None,
    ) -> None:
        super().__init__(cpth=64)
        self.dueling_config = dueling if dueling is not None else SetDuelingConfig()
        self._rule = rule if rule is not None else MaxHitsRule()
        self.controller: Optional[DuelingController] = None

    def bind(self, llc) -> None:
        super().bind(llc)
        self.controller = DuelingController(
            self.dueling_config, llc.n_sets, rule=self._rule
        )

    # ------------------------------------------------------------------
    def cpth_for_set(self, set_index: int) -> int:
        assert self.controller is not None
        return self.controller.cpth_for_set(set_index)

    def current_cpth(self) -> int:
        assert self.controller is not None
        return self.controller.current_winner

    # The placement / hit / write hooks fire once per LLC fill, hit and
    # NVM write respectively; they inline the controller's lookups
    # (leader-slot table, winner threshold) instead of chaining through
    # DuelingController method calls.
    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        reuse = ctx.reuse
        if reuse is ReuseClass.READ:
            return _NVM_FIRST
        if reuse is ReuseClass.WRITE:
            return _SRAM_ONLY
        controller = self.controller
        slot = controller._slot_of_set[ctx.set_index]
        candidates = controller.candidates
        cpth = candidates[slot] if slot >= 0 else candidates[controller.winner_index]
        if ctx.csize <= cpth:
            return _NVM_FIRST
        return _SRAM_ONLY

    def on_hit(self, cache_set: CacheSet, way: int, is_getx: bool) -> None:
        controller = self.controller
        slot = controller._slot_of_set[cache_set.index]
        if slot >= 0:
            controller.hits[slot] += 1

    def on_nvm_write(self, set_index: int, n_bytes: int) -> None:
        controller = self.controller
        slot = controller._slot_of_set[set_index]
        if slot >= 0:
            controller.writes[slot] += n_bytes

    def end_epoch(self) -> None:
        assert self.controller is not None
        self.controller.end_epoch()
