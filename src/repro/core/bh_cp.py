"""BH_CP — compressed baseline hybrid LLC (Sec. V-B, Table III).

BH_CP adds compression and byte-disabling to BH but stays oblivious to
NVM wear: a single *fit-LRU* list covers both parts, and the victim is
the LRU block among the frames (SRAM or NVM) whose effective capacity
can hold the incoming compressed block.  Compression alone stretches
BH's lifetime by ~4.8x without any insertion intelligence (Fig. 10a).
"""

from __future__ import annotations

from typing import Tuple

from ..cache.cacheset import CacheSet
from .policy import GLOBAL, FillContext, InsertionPolicy, register_policy

_GLOBAL_ONLY = (GLOBAL,)


@register_policy("bh_cp")
class BHCPPolicy(InsertionPolicy):
    """Global fit-LRU baseline with compression + byte-disabling."""

    name = "bh_cp"
    granularity = "byte"
    compressed = True
    nvm_aware = False
    static_placement = _GLOBAL_ONLY

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        return _GLOBAL_ONLY
