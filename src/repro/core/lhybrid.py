"""LHybrid — loop-block aware insertion [9] in a fault-aware setting.

LHybrid (Cheng et al.) tags blocks as loop-blocks (LB: clean blocks
that showed read reuse in the LLC) or non-loop-blocks (NLB) and keeps
the NVM part for LBs:

* insertion: an L2 eviction tagged LB goes to NVM, everything else to
  SRAM;
* NVM replacement: plain local LRU;
* SRAM replacement: if the set holds LBs, the most recent LB (in LRU
  order) is *migrated* to the NVM part and its frame hosts the
  incoming block; otherwise the LRU block is evicted.

Per Sec. I (contributions), the policy is evaluated here in the same
fault-aware environment as the proposals: frame-disabling tolerates
hard errors, and blocks are stored uncompressed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.block import ReuseClass
from ..cache.cacheset import NVM, SRAM, CacheSet
from ..cache.llc import EvictedBlock
from .policy import FillContext, InsertionPolicy, register_policy

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)


@register_policy("lhybrid")
class LHybridPolicy(InsertionPolicy):
    """Loop-block aware insertion with frame-disabling."""

    name = "lhybrid"
    granularity = "frame"
    compressed = False
    nvm_aware = True

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        if ctx.reuse is ReuseClass.READ:  # loop-block
            return _NVM_FIRST
        return _SRAM_ONLY

    def choose_victim(
        self, cache_set: CacheSet, part: int, ctx: FillContext
    ) -> Optional[int]:
        if part == SRAM:
            # Most recent LB in SRAM (migration candidate), else SRAM LRU;
            # inlined mru_victim_where/lru_victim as linked-list walks
            # (rec_prev walks MRU-first), once per replacement.
            sram_ways = cache_set.sram_ways
            reuse = cache_set.reuse
            sentinel = cache_set.total_ways
            prv = cache_set.rec_prev
            way = prv[sentinel]
            while way != sentinel:
                if way < sram_ways and reuse[way] is ReuseClass.READ:
                    return way
                way = prv[way]
            nxt = cache_set.rec_next
            way = nxt[sentinel]
            while way != sentinel:
                if way < sram_ways:
                    return way
                way = nxt[way]
            return None
        return super().choose_victim(cache_set, part, ctx)

    def handle_sram_eviction(
        self, cache_set: CacheSet, victim: EvictedBlock
    ) -> bool:
        if victim.reuse is not ReuseClass.READ:
            return False
        assert self.llc is not None
        return self.llc.migrate_to_nvm(cache_set, victim)
