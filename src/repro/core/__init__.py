"""The paper's contribution: insertion policies for hybrid LLCs.

Importing this package registers every policy of Table III (plus the
CA/CA_RWR building blocks and the SRAM bounds) with the registry, so
``make_policy("cp_sd")`` etc. work out of the box.
"""

from .bh import BHPolicy
from .bh_cp import BHCPPolicy
from .ca import CAPolicy
from .ca_rwr import CARWRPolicy
from .cp_sd import CPSDPolicy
from .cp_sd_th import CPSDThPolicy
from .lhybrid import LHybridPolicy
from .policy import (
    GLOBAL,
    FillContext,
    InsertionPolicy,
    make_policy,
    register_policy,
    registered_policies,
)
from .set_dueling import (
    DuelingController,
    ElectionRule,
    HitWriteTradeoffRule,
    MaxHitsRule,
)
from .sram import SRAMOnlyPolicy
from .tap import TAPPolicy

__all__ = [
    "BHCPPolicy",
    "BHPolicy",
    "CAPolicy",
    "CARWRPolicy",
    "CPSDPolicy",
    "CPSDThPolicy",
    "DuelingController",
    "ElectionRule",
    "FillContext",
    "GLOBAL",
    "HitWriteTradeoffRule",
    "InsertionPolicy",
    "LHybridPolicy",
    "MaxHitsRule",
    "SRAMOnlyPolicy",
    "TAPPolicy",
    "make_policy",
    "register_policy",
    "registered_policies",
]
