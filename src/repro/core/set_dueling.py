"""Set Dueling machinery for runtime CP_th selection (Sec. IV-C/IV-D).

Each candidate threshold owns one *leader group*: the sets whose
``set_index % leader_groups`` equals the candidate's slot keep a fixed
``CP_th`` and sample the workload with it; all remaining sets follow
the current winner.  At every epoch boundary (2M cycles by default,
the value the paper's sweep selects) the controller elects the next
winner from the leader groups' hit and NVM-bytes-written counters.

Two election rules are provided:

* :class:`MaxHitsRule` — CP_SD: the group with most hits wins.
* :class:`HitWriteTradeoffRule` — CP_SD_Th: Eq. (1); starting from the
  max-hits candidate ``i``, pick the smallest threshold ``j`` with
  ``H(j) > H(i) * (1 - Th/100)`` and ``W(j) < W(i) * (1 - Tw/100)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import SetDuelingConfig
from ..metrics.registry import register_metric

# Duel outcomes, collected from a bound policy's controller when a
# RunRecord is built; the per-access record_hit/record_nvm_write hooks
# stay inlined plain-int arithmetic.
register_metric("policy", "current_cpth", "bytes",
                "CP_th follower sets currently use (null for fixed policies)",
                aggregation="last", attr="current_cpth")
register_metric("duel", "winner_cpth", "bytes",
                "CP_th elected by the last completed duel epoch",
                aggregation="last", attr="current_winner")
register_metric("duel", "epochs", "count",
                "Completed set-dueling election epochs",
                aggregation="last", attr="epochs_elapsed")


class ElectionRule(abc.ABC):
    """Chooses the next epoch's CP_th from leader-group counters."""

    @abc.abstractmethod
    def elect(
        self, candidates: Sequence[int], hits: Sequence[int], writes: Sequence[int]
    ) -> int:
        """Return the index of the winning candidate."""


class MaxHitsRule(ElectionRule):
    """CP_SD: performance-optimal winner (Sec. IV-C)."""

    def elect(
        self, candidates: Sequence[int], hits: Sequence[int], writes: Sequence[int]
    ) -> int:
        return max(range(len(candidates)), key=lambda k: (hits[k], -candidates[k]))


@dataclass(frozen=True)
class HitWriteTradeoffRule(ElectionRule):
    """CP_SD_Th: rule-based hit/write trade-off, Eq. (1) of Sec. IV-D."""

    hit_loss_pct: float  # Th: max % of hits we are willing to sacrifice
    write_gain_pct: float  # Tw: min % write reduction required in exchange

    def elect(
        self, candidates: Sequence[int], hits: Sequence[int], writes: Sequence[int]
    ) -> int:
        best = MaxHitsRule().elect(candidates, hits, writes)
        h_floor = hits[best] * (1.0 - self.hit_loss_pct / 100.0)
        w_ceil = writes[best] * (1.0 - self.write_gain_pct / 100.0)
        # Candidates are sorted ascending; the smallest CP_th writes the
        # fewest NVM bytes, so scan upward and take the first admissible.
        for k in range(len(candidates)):
            if k == best:
                continue
            if hits[k] > h_floor and writes[k] < w_ceil:
                return k
        return best


class DuelingController:
    """Leader/follower set bookkeeping plus per-epoch election."""

    def __init__(
        self,
        config: SetDuelingConfig,
        n_sets: int,
        rule: Optional[ElectionRule] = None,
    ) -> None:
        self.candidates: Tuple[int, ...] = tuple(sorted(config.cpth_candidates))
        if not self.candidates:
            raise ValueError("need at least one CP_th candidate")
        if len(self.candidates) > config.leader_groups:
            raise ValueError("more candidates than leader groups")
        self.leader_groups = config.leader_groups
        self.n_sets = n_sets
        self.rule = rule if rule is not None else MaxHitsRule()
        # group slot of each set: candidate index, or -1 for followers
        self._slot_of_set: List[int] = [
            (i % config.leader_groups)
            if (i % config.leader_groups) < len(self.candidates)
            else -1
            for i in range(n_sets)
        ]
        self.hits: List[int] = [0] * len(self.candidates)
        self.writes: List[int] = [0] * len(self.candidates)
        self.winner_index: int = len(self.candidates) - 1  # start permissive
        self.epochs_elapsed = 0
        self.winner_history: List[int] = []

    # ------------------------------------------------------------------
    def slot_of(self, set_index: int) -> int:
        """Candidate slot of a leader set, -1 for followers."""
        return self._slot_of_set[set_index]

    def is_leader(self, set_index: int) -> bool:
        return self._slot_of_set[set_index] >= 0

    def cpth_for_set(self, set_index: int) -> int:
        slot = self._slot_of_set[set_index]
        if slot >= 0:
            return self.candidates[slot]
        return self.candidates[self.winner_index]

    @property
    def current_winner(self) -> int:
        return self.candidates[self.winner_index]

    # ------------------------------------------------------------------
    def record_hit(self, set_index: int) -> None:
        slot = self._slot_of_set[set_index]
        if slot >= 0:
            self.hits[slot] += 1

    def record_nvm_write(self, set_index: int, n_bytes: int) -> None:
        slot = self._slot_of_set[set_index]
        if slot >= 0:
            self.writes[slot] += n_bytes

    def end_epoch(self) -> int:
        """Elect the next winner and reset the sampling counters."""
        self.winner_index = self.rule.elect(self.candidates, self.hits, self.writes)
        self.winner_history.append(self.candidates[self.winner_index])
        self.hits = [0] * len(self.candidates)
        self.writes = [0] * len(self.candidates)
        self.epochs_elapsed += 1
        return self.candidates[self.winner_index]
