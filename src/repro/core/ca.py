"""CA — naive compression-aware insertion (Sec. IV-A).

Blocks whose compressed size is at most the compression threshold
``CP_th`` ("small" blocks) are inserted into the NVM part, bigger
blocks into the SRAM part; both parts run a local (fit-)LRU.  A small
block that fits no NVM frame falls back to SRAM.

CA ignores reuse, so workloads whose compressibility is one-sided
(e.g. 100 %-incompressible xz17/milc, or fully-HCR GemsFDTD/zeusmp)
over-reference one part and lose performance — the imbalance CA_RWR
and Set Dueling repair.
"""

from __future__ import annotations

from typing import Tuple

from ..cache.cacheset import NVM, SRAM, CacheSet
from .policy import FillContext, InsertionPolicy, register_policy

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)


@register_policy("ca")
class CAPolicy(InsertionPolicy):
    """Compression-threshold-only insertion."""

    name = "ca"
    granularity = "byte"
    compressed = True
    nvm_aware = True

    def __init__(self, cpth: int = 58) -> None:
        super().__init__()
        if not 0 <= cpth <= 64:
            raise ValueError(f"CP_th {cpth} out of range")
        self.cpth = cpth

    def cpth_for_set(self, set_index: int) -> int:
        return self.cpth

    def current_cpth(self) -> int:
        return self.cpth

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        if ctx.csize <= self.cpth_for_set(ctx.set_index):
            return _NVM_FIRST
        return _SRAM_ONLY
