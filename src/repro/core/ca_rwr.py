"""CA_RWR — compression + read/write-reuse aware insertion (Sec. IV-B).

Placement rules (Table II):

* read-reused blocks -> NVM regardless of size (long LLC residents,
  each insertion prevents further frame writes);
* write-reused blocks -> SRAM regardless of size (GetX invalidate-on-
  hit makes them short-lived and repeatedly re-inserted);
* non-reused blocks -> by compressed size against ``CP_th`` (as CA).

A block directed to NVM that fits no NVM frame is placed in SRAM.
Two migrations keep blocks converging to their right home:

* an SRAM replacement victim that showed *read* reuse is migrated to
  the NVM part instead of being evicted;
* a block in NVM that shows *write* reuse is invalidated by the GetX
  hit and will re-enter through SRAM when evicted from L2 (this needs
  no extra mechanism here — the insertion rule handles it).
"""

from __future__ import annotations

from typing import Tuple

from ..cache.block import ReuseClass
from ..cache.cacheset import NVM, SRAM, CacheSet
from ..cache.llc import EvictedBlock
from .ca import CAPolicy
from .policy import FillContext, register_policy

_NVM_FIRST = (NVM, SRAM)
_SRAM_ONLY = (SRAM,)


@register_policy("ca_rwr")
class CARWRPolicy(CAPolicy):
    """CA plus read/write-reuse steering and SRAM->NVM migration.

    ``migrate_on_eviction=False`` disables the SRAM->NVM migration of
    read-reused victims — an ablation knob for the design choice, not a
    paper configuration.
    """

    name = "ca_rwr"

    def __init__(self, cpth: int = 58, migrate_on_eviction: bool = True) -> None:
        super().__init__(cpth=cpth)
        self.migrate_on_eviction = migrate_on_eviction

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        reuse = ctx.reuse
        if reuse is ReuseClass.READ:
            return _NVM_FIRST
        if reuse is ReuseClass.WRITE:
            return _SRAM_ONLY
        if ctx.csize <= self.cpth_for_set(ctx.set_index):
            return _NVM_FIRST
        return _SRAM_ONLY

    def handle_sram_eviction(
        self, cache_set: CacheSet, victim: EvictedBlock
    ) -> bool:
        if not self.migrate_on_eviction:
            return False
        if victim.reuse is not ReuseClass.READ:
            return False
        assert self.llc is not None
        return self.llc.migrate_to_nvm(cache_set, victim)
