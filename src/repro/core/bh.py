"""BH — the baseline hybrid LLC (Sec. II-D, Table III).

BH is NVM-unaware: it manages a single LRU list over all 16 ways of a
set and inserts every incoming block at the global LRU way regardless
of technology.  Blocks are stored uncompressed and hard faults are
tolerated by frame-disabling, so its initial performance matches a
16-way SRAM cache (minus NVM latency) but the NVM part wears out in
months (Fig. 1).
"""

from __future__ import annotations

from typing import Tuple

from ..cache.cacheset import CacheSet
from .policy import GLOBAL, FillContext, InsertionPolicy, register_policy

_GLOBAL_ONLY = (GLOBAL,)


@register_policy("bh")
class BHPolicy(InsertionPolicy):
    """Global-LRU hybrid baseline with frame-disabling."""

    name = "bh"
    granularity = "frame"
    compressed = False
    nvm_aware = False
    static_placement = _GLOBAL_ONLY

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        return _GLOBAL_ONLY
