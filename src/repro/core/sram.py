"""SRAM-only LLC bounds (Sec. II-D).

The paper brackets every hybrid configuration between a 16-way SRAM
LLC (upper bound: same associativity, no NVM latency or wear) and a
4-way SRAM LLC (lower bound: as if the 12 NVM ways were fully worn
out).  Both use plain LRU.  Use them with a geometry whose
``nvm_ways`` is 0 and whose ``sram_ways`` is 16 or 4.
"""

from __future__ import annotations

from typing import Tuple

from ..cache.cacheset import SRAM, CacheSet
from .policy import FillContext, InsertionPolicy, register_policy


@register_policy("sram")
class SRAMOnlyPolicy(InsertionPolicy):
    """Plain LRU over SRAM ways only (the paper's dashed bounds)."""

    name = "sram"
    granularity = "byte"
    compressed = False
    nvm_aware = False

    def placement(self, cache_set: CacheSet, ctx: FillContext) -> Tuple[int, ...]:
        return (SRAM,)
