"""Synthetic profiles of the 20 SPEC CPU 2006/2017 applications used
by the paper's mixes (Table V).

The real benchmarks are not redistributable, so each application is
modelled by the properties the insertion policies actually react to:

* **compressibility** — the per-app HCR / LCR / incompressible split of
  Fig. 2 (library averages: 49 % HCR, 29 % LCR, 22 % incompressible;
  GemsFDTD/zeusmp almost fully compressible, xz17/milc fully
  incompressible), refined into a distribution over the modified-BDI
  sizes of Table I;
* **reuse behaviour** — a weighted mixture of access regions (below);
* **memory intensity** — mean non-memory instruction gap between
  demand accesses and total block footprint.

Regions and the policy behaviour they exercise:

``loop``    tight repeated sequential scans; re-referenced well within
            SRAM residency, so they are detected as loop-blocks /
            read-reused and become the ideal NVM residents.
``scan``    medium cyclic sweeps whose reuse distance exceeds the SRAM
            part but fits a 16-way LLC: BH keeps them (global LRU over
            all ways), while conservative policies (LHybrid, TAP) evict
            them from SRAM before they can prove reuse — this class is
            why the state of the art loses ~11 % performance (Sec. II-D).
``rw``      small read-modify-write hot set: dirty, write-reused blocks
            that CA_RWR pins to SRAM to save NVM writes.
``random``  sparse pointer chasing over a large region (rare reuse).
``stream``  ever-advancing thrashing traffic, no reuse.

Values are calibrated to the qualitative characterisations in the
paper and common SPEC lore; DESIGN.md records this as a documented
substitution.  Region sizes are expressed at *paper scale* (8 MB LLC)
and shrink with :meth:`AppProfile.scaled` for scaled experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..compression.encodings import BLOCK_SIZE

SizeWeights = Tuple[Tuple[int, float], ...]

#: modified-BDI sizes available as compression targets.  HCR shapes
#: skew very small: zero blocks and narrow-delta values dominate
#: compressible SPEC data under BDI (the paper's BH_CP gains — 4.8x
#: lifetime from compression alone — imply an average compressed size
#: of roughly 21 B across all traffic).
_TINY = ((1, 0.70), (8, 0.15), (16, 0.10), (20, 0.05))
_SMALL = ((1, 0.25), (8, 0.20), (16, 0.25), (20, 0.10), (23, 0.10),
          (30, 0.05), (34, 0.05))
_MEDIUM = ((1, 0.30), (8, 0.15), (16, 0.15), (20, 0.10), (23, 0.10),
           (30, 0.10), (34, 0.05), (37, 0.05))
_LCR = ((44, 0.40), (50, 0.15), (51, 0.20), (58, 0.25))


def make_comp_weights(
    hcr: float, lcr: float, hcr_shape: SizeWeights = _SMALL
) -> SizeWeights:
    """Distribution over compressed sizes from an (HCR, LCR) split."""
    if not 0 <= hcr <= 1 or not 0 <= lcr <= 1 or hcr + lcr > 1 + 1e-9:
        raise ValueError(f"bad class split hcr={hcr} lcr={lcr}")
    weights: Dict[int, float] = {}
    for size, w in hcr_shape:
        weights[size] = weights.get(size, 0.0) + hcr * w
    for size, w in _LCR:
        weights[size] = weights.get(size, 0.0) + lcr * w
    incompressible = max(0.0, 1.0 - hcr - lcr)
    if incompressible > 0:
        weights[BLOCK_SIZE] = weights.get(BLOCK_SIZE, 0.0) + incompressible
    return tuple(sorted(weights.items()))


@dataclass(frozen=True)
class AppProfile:
    """Synthetic stand-in for one SPEC application."""

    name: str
    footprint_blocks: int        # distinct blocks the app touches
    loop_weight: float
    loop_blocks: int
    scan_weight: float
    scan_blocks: int
    stream_weight: float
    rw_weight: float
    rw_blocks: int
    random_weight: float
    random_blocks: int
    stream_write_frac: float
    rw_write_frac: float
    random_write_frac: float
    gap_mean: float              # non-memory instructions per access
    comp_weights: SizeWeights
    #: program phases: every ``phase_accesses`` accesses the loop/scan/
    #: rw regions shift to the next of ``n_phases`` address slots,
    #: modelling SPEC phase behaviour ("applications may exhibit
    #: different behaviors throughout their execution", Sec. IV-C).
    #: This keeps loop-block populations churning, so conservative
    #: policies keep paying NVM insertions after convergence.
    n_phases: int = 3
    phase_accesses: int = 150_000
    #: When set, the *odd* phase slots of the hot structured regions
    #: draw incompressible data: each phase rotation flips the hot
    #: set's compressibility, so CP set dueling must keep re-electing
    #: its threshold.  Deliberately breaks the Fig. 2 aggregate-split
    #: property the calibrated profiles maintain — adversarial targets
    #: only (:mod:`repro.workloads.families`).
    comp_flip: bool = False

    def __post_init__(self) -> None:
        if sum(self.region_weights) <= 0:
            raise ValueError(f"{self.name}: region weights sum to zero")
        if self.n_phases < 1 or self.phase_accesses < 1:
            raise ValueError(f"{self.name}: bad phase parameters")
        if self.footprint_blocks < self.phased_region_blocks:
            raise ValueError(f"{self.name}: footprint smaller than its regions")
        weight_sum = sum(w for _s, w in self.comp_weights)
        if abs(weight_sum - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: comp weights sum to {weight_sum}")

    @property
    def region_weights(self) -> Tuple[float, float, float, float, float]:
        return (
            self.loop_weight,
            self.scan_weight,
            self.stream_weight,
            self.rw_weight,
            self.random_weight,
        )

    @property
    def hot_region_blocks(self) -> int:
        """Blocks of the structured (loop/scan/rw) regions, all slots.

        Address offsets below this boundary belong to the app's hot
        structured data; offsets above it are the random/stream pool.
        The data model biases compressibility by this boundary:
        structured data compresses better than streaming payloads while
        the app-level aggregate stays on its Fig. 2 split.
        """
        return self.n_phases * (self.loop_blocks + self.scan_blocks + self.rw_blocks)

    @property
    def phased_region_blocks(self) -> int:
        """Blocks reserved for all phase slots of the phased regions."""
        return self.hot_region_blocks + self.random_blocks

    @property
    def hot_traffic_fraction(self) -> float:
        """Fraction of accesses that target the hot structured regions."""
        total = sum(self.region_weights)
        return (self.loop_weight + self.scan_weight + self.rw_weight) / total

    @property
    def hcr_fraction(self) -> float:
        return sum(w for s, w in self.comp_weights if s <= 37)

    @property
    def lcr_fraction(self) -> float:
        return sum(w for s, w in self.comp_weights if 37 < s < BLOCK_SIZE)

    @property
    def incompressible_fraction(self) -> float:
        return sum(w for s, w in self.comp_weights if s >= BLOCK_SIZE)

    def scaled(self, factor: float) -> "AppProfile":
        """Shrink the working set for scaled-down experiments.

        Region sizes (and the footprint) scale by ``factor``; weights,
        write fractions, gap and compressibility are untouched.  Used
        together with proportionally scaled caches so that every
        reuse-distance-to-cache-size ratio — the quantity the policies
        actually respond to — is preserved.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if factor == 1.0:
            return self

        def blocks(n: int) -> int:
            return max(64, int(round(n * factor)))

        loop_b = blocks(self.loop_blocks)
        scan_b = blocks(self.scan_blocks)
        rw_b = blocks(self.rw_blocks)
        rnd_b = blocks(self.random_blocks)
        footprint = max(
            self.n_phases * (loop_b + scan_b + rw_b) + rnd_b + 512,
            int(round(self.footprint_blocks * factor)),
        )
        return replace(
            self,
            footprint_blocks=footprint,
            loop_blocks=loop_b,
            scan_blocks=scan_b,
            rw_blocks=rw_b,
            random_blocks=rnd_b,
            phase_accesses=max(5_000, int(round(self.phase_accesses * factor))),
        )


def _app(
    name: str,
    hcr: float,
    lcr: float,
    shape: SizeWeights = _SMALL,
    *,
    footprint: int = 96 * 1024,
    loop: float = 0.25,
    loop_blocks: int = 5 * 1024,
    scan: float = 0.2,
    scan_blocks: int = 12 * 1024,
    stream: float = 0.25,
    rw: float = 0.15,
    rw_blocks: int = 3 * 1024,
    rnd: float = 0.15,
    rnd_blocks: int = 20 * 1024,
    stream_wf: float = 0.1,
    rw_wf: float = 0.5,
    rnd_wf: float = 0.1,
    gap: float = 16.0,
) -> AppProfile:
    # Random regions are kept sparse (reuse distance around the LLC
    # size): pointer-chasing reuse is visible to a 16-way global LRU
    # but mostly invisible to a 4-way SRAM part, as in the real mixes.
    rnd_blocks = 2 * rnd_blocks
    n_phases = 3
    footprint = max(
        footprint,
        n_phases * (loop_blocks + scan_blocks + rw_blocks) + rnd_blocks + 24 * 1024,
    )
    return AppProfile(
        name=name,
        footprint_blocks=footprint,
        loop_weight=loop,
        loop_blocks=loop_blocks,
        scan_weight=scan,
        scan_blocks=scan_blocks,
        stream_weight=stream,
        rw_weight=rw,
        rw_blocks=rw_blocks,
        random_weight=rnd,
        random_blocks=rnd_blocks,
        stream_write_frac=stream_wf,
        rw_write_frac=rw_wf,
        random_write_frac=rnd_wf,
        gap_mean=gap,
        comp_weights=make_comp_weights(hcr, lcr, shape),
    )


#: The 20 applications of Table V.  HCR/LCR splits follow Fig. 2;
#: region mixtures encode the apps' well-known access patterns.
PROFILES: Dict[str, AppProfile] = {
    p.name: p
    for p in (
        # --- loop/scan-dominated scientific codes ---
        _app("zeusmp06", 0.85, 0.13, _MEDIUM, loop=0.45, loop_blocks=10 * 1024,
             scan=0.15, scan_blocks=12 * 1024, stream=0.15, rw=0.15, rnd=0.10,
             rnd_blocks=16 * 1024, gap=18.0),
        _app("GemsFDTD06", 0.90, 0.08, _MEDIUM, loop=0.50, loop_blocks=12 * 1024,
             scan=0.15, scan_blocks=16 * 1024, stream=0.20, rw=0.05,
             rw_blocks=2 * 1024, rnd=0.10, rnd_blocks=24 * 1024,
             footprint=128 * 1024, gap=14.0),
        _app("bwaves17", 0.55, 0.30, _MEDIUM, loop=0.45, loop_blocks=14 * 1024,
             scan=0.20, scan_blocks=20 * 1024, stream=0.20, rw=0.05,
             rnd=0.10, footprint=160 * 1024, gap=12.0),
        _app("leslie3d06", 0.45, 0.35, _MEDIUM, loop=0.45, loop_blocks=10 * 1024,
             scan=0.15, scan_blocks=14 * 1024, stream=0.20, rw=0.10, rnd=0.10,
             gap=15.0),
        _app("wrf06", 0.50, 0.25, _MEDIUM, loop=0.40, loop_blocks=9 * 1024,
             scan=0.15, scan_blocks=12 * 1024, stream=0.20, rw=0.15, rnd=0.10,
             gap=18.0),
        _app("roms17", 0.55, 0.25, _MEDIUM, loop=0.45, loop_blocks=12 * 1024,
             scan=0.15, scan_blocks=14 * 1024, stream=0.25, rw=0.05, rnd=0.10,
             gap=14.0),
        _app("cactuBSSN17", 0.40, 0.30, _MEDIUM, loop=0.40, loop_blocks=10 * 1024,
             scan=0.15, scan_blocks=14 * 1024, stream=0.25, rw=0.10, rnd=0.10,
             footprint=112 * 1024, gap=16.0),
        # --- streaming / write-streaming ---
        _app("lbm17", 0.15, 0.45, _LCR, loop=0.05, loop_blocks=2 * 1024,
             scan=0.15, scan_blocks=10 * 1024, stream=0.55, rw=0.15,
             rw_blocks=4 * 1024, rnd=0.10, stream_wf=0.45,
             footprint=192 * 1024, gap=10.0),
        _app("libquantum06", 0.95, 0.03, _TINY, loop=0.40, loop_blocks=10 * 1024,
             scan=0.10, scan_blocks=12 * 1024, stream=0.45, rw=0.03,
             rw_blocks=1024, rnd=0.02, rnd_blocks=8 * 1024,
             footprint=128 * 1024, gap=11.0),
        _app("milc06", 0.0, 0.0, loop=0.15, loop_blocks=4 * 1024,
             scan=0.20, scan_blocks=12 * 1024, stream=0.45, rw=0.10, rnd=0.10,
             footprint=160 * 1024, gap=12.0),
        # --- pointer-chasing / irregular ---
        _app("mcf17", 0.60, 0.20, _SMALL, loop=0.05, loop_blocks=2 * 1024,
             scan=0.15, scan_blocks=16 * 1024, stream=0.15, rw=0.15,
             rnd=0.50, rnd_blocks=48 * 1024, footprint=192 * 1024, gap=9.0),
        _app("omnetpp06", 0.55, 0.25, _SMALL, loop=0.10, loop_blocks=3 * 1024,
             scan=0.15, scan_blocks=10 * 1024, stream=0.15, rw=0.20,
             rnd=0.40, rnd_blocks=32 * 1024, footprint=128 * 1024, gap=13.0),
        _app("astar06", 0.50, 0.30, _SMALL, loop=0.10, loop_blocks=3 * 1024,
             scan=0.20, scan_blocks=10 * 1024, stream=0.15, rw=0.15,
             rnd=0.40, rnd_blocks=24 * 1024, gap=16.0),
        _app("xalancbmk06", 0.60, 0.25, _SMALL, loop=0.15, loop_blocks=4 * 1024,
             scan=0.20, scan_blocks=10 * 1024, stream=0.20, rw=0.15,
             rnd=0.30, rnd_blocks=24 * 1024, footprint=112 * 1024, gap=14.0),
        _app("soplex06", 0.45, 0.25, _SMALL, loop=0.20, loop_blocks=5 * 1024,
             scan=0.25, scan_blocks=12 * 1024, stream=0.20, rw=0.15,
             rnd=0.20, footprint=112 * 1024, gap=13.0),
        # --- integer codes with modest footprints ---
        _app("gobmk06", 0.55, 0.20, _SMALL, loop=0.30, loop_blocks=5 * 1024,
             scan=0.10, scan_blocks=6 * 1024, stream=0.15, rw=0.30,
             rw_blocks=2 * 1024, rnd=0.20, rnd_blocks=8 * 1024,
             footprint=32 * 1024, gap=28.0),
        _app("dealII06", 0.50, 0.30, _SMALL, loop=0.35, loop_blocks=6 * 1024,
             scan=0.12, scan_blocks=8 * 1024, stream=0.15, rw=0.20,
             rnd=0.20, rnd_blocks=12 * 1024, footprint=48 * 1024, gap=22.0),
        _app("hmmer06", 0.35, 0.30, _SMALL, loop=0.35, loop_blocks=3 * 1024,
             scan=0.15, scan_blocks=5 * 1024, stream=0.10, rw=0.30,
             rw_blocks=2 * 1024, rnd=0.10, rnd_blocks=5 * 1024,
             footprint=24 * 1024, gap=26.0),
        # --- (mostly) incompressible compressors ---
        _app("bzip206", 0.30, 0.30, _SMALL, loop=0.25, loop_blocks=6 * 1024,
             scan=0.10, scan_blocks=8 * 1024, stream=0.25, rw=0.35,
             rw_blocks=5 * 1024, rw_wf=0.6, rnd=0.10, rnd_blocks=12 * 1024,
             footprint=80 * 1024, gap=17.0),
        _app("xz17", 0.0, 0.0, loop=0.10, loop_blocks=3 * 1024,
             scan=0.15, scan_blocks=8 * 1024, stream=0.30, rw=0.35,
             rw_blocks=6 * 1024, rw_wf=0.6, rnd=0.10, rnd_blocks=12 * 1024,
             footprint=112 * 1024, gap=13.0),
    )
}

APP_NAMES: Tuple[str, ...] = tuple(sorted(PROFILES))


def profile(name: str) -> AppProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: {APP_NAMES}") from None
